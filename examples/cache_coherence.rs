//! The paper's motivating scenario: cache synchronisation in an MPSoC.
//!
//! Cores issue memory requests; writes to shared lines broadcast
//! invalidations ("Broadcasts are a key mechanism to maintain cache
//! coherency in MPSoCs", §2.2). The same coherence workload runs on a Quarc
//! and on a Spidergon of equal size, and the invalidation latencies are
//! compared.
//!
//! ```text
//! cargo run --example cache_coherence --release
//! ```

use quarc::core::config::NocConfig;
use quarc::core::flit::TrafficClass;
use quarc::sim::driver::{run, NocSim, RunSpec};
use quarc::sim::{QuarcNetwork, SpidergonNetwork};
use quarc::workloads::{Coherence, CoherenceConfig};

fn main() {
    let n = 16;
    let cfg = CoherenceConfig {
        request_rate: 0.05, // memory requests per core per cycle
        write_frac: 0.3,
        shared_frac: 0.25,
        miss_frac: 0.15,
        ..Default::default()
    };
    let spec = RunSpec { warmup: 2_000, measure: 20_000, drain: 30_000, ..Default::default() };

    println!("MPSoC write-invalidate workload, {n} cores");
    println!(
        "({}% writes, {}% of writes hit shared lines -> broadcast invalidations)\n",
        cfg.write_frac * 100.0,
        cfg.shared_frac * 100.0
    );

    let mut quarc = QuarcNetwork::new(NocConfig::quarc(n));
    let mut wl = Coherence::new(n, cfg);
    let rq = run(&mut quarc, &mut wl, &spec);

    let mut spider = SpidergonNetwork::new(NocConfig::spidergon(n));
    let mut wl = Coherence::new(n, cfg);
    let rs = run(&mut spider, &mut wl, &spec);

    println!("metric                             Quarc     Spidergon");
    println!(
        "invalidation completion (cycles) {:>9.1} {:>12.1}",
        rq.bcast_completion_mean, rs.bcast_completion_mean
    );
    println!(
        "invalidation per-core reception  {:>9.1} {:>12.1}",
        rq.bcast_reception_mean, rs.bcast_reception_mean
    );
    println!("fetch/data unicast latency       {:>9.1} {:>12.1}", rq.unicast_mean, rs.unicast_mean);
    println!("invalidations measured           {:>9} {:>12}", rq.bcast_samples, rs.bcast_samples);
    println!(
        "\ninvalidation speedup (completion): {:.1}x",
        rs.bcast_completion_mean / rq.bcast_completion_mean
    );

    // Shape check from the paper: the invalidation (broadcast) path is the
    // one that collapses on Spidergon.
    assert!(rs.bcast_completion_mean > 2.0 * rq.bcast_completion_mean);
    let _ = (
        quarc.metrics().completed(TrafficClass::Broadcast),
        spider.metrics().completed(TrafficClass::Broadcast),
    );
}
