//! Sweep offered load until both networks saturate, printing the
//! latency-vs-rate curve — a miniature of the paper's Figs. 9–11 you can run
//! in seconds.
//!
//! ```text
//! cargo run --example saturation_sweep --release
//! ```

use quarc::core::config::NocConfig;
use quarc::sim::{geometric_rates, latency_curve, CurveSpec, RunSpec};

fn main() {
    let n = 16;
    let msg_len = 8;
    let beta = 0.05;
    let rates = geometric_rates(0.003, 0.12, 8);
    let run_spec = RunSpec { warmup: 1_000, measure: 8_000, drain: 12_000, ..Default::default() };

    println!("latency vs offered load: N={n}, M={msg_len}, beta={}%\n", beta * 100.0);
    println!(
        "{:<11} {:>12} {:>14} {:>16} {:>10}",
        "rate", "quarc uni", "spidergon uni", "quarc bcast", "spi bcast"
    );

    let quarc = latency_curve(
        &CurveSpec { noc: NocConfig::quarc(n), msg_len, beta, seed: 42 },
        &rates,
        &run_spec,
    )
    .expect("valid configuration");
    let spider = latency_curve(
        &CurveSpec { noc: NocConfig::spidergon(n), msg_len, beta, seed: 42 },
        &rates,
        &run_spec,
    )
    .expect("valid configuration");

    for (i, rate) in rates.iter().enumerate() {
        let q = quarc.get(i);
        let s = spider.get(i);
        let fmt = |v: Option<(f64, bool)>| match v {
            Some((lat, false)) => format!("{lat:>10.1}"),
            Some((_, true)) => format!("{:>10}", "SAT"),
            None => format!("{:>10}", "-"),
        };
        println!(
            "{:<11.5} {} {} {} {}",
            rate,
            fmt(q.map(|p| (p.result.unicast_mean, p.result.saturated))),
            fmt(s.map(|p| (p.result.unicast_mean, p.result.saturated))),
            fmt(q.map(|p| (p.result.bcast_completion_mean, p.result.saturated))),
            fmt(s.map(|p| (p.result.bcast_completion_mean, p.result.saturated))),
        );
    }

    let sustain = |points: &[quarc::sim::CurvePoint]| {
        points.iter().rev().find(|p| !p.result.saturated).map(|p| p.rate)
    };
    println!(
        "\nmax sustainable rate: quarc {:?}, spidergon {:?}",
        sustain(&quarc),
        sustain(&spider)
    );
    println!(
        "(the Quarc sustains a higher load and keeps broadcast latency flat — Fig. 11's story)"
    );
}
