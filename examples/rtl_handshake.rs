//! Drive the signal-level Quarc switch directly and print a waveform-style
//! trace of the LocalLink handshake (paper §2.7, Fig. 8): `SOF_N`, `EOF_N`,
//! `SRC_RDY_N`, `CH_TO_STORE` on the forward path and the resulting
//! deliveries/forwards. Also dumps a GTKWave-compatible VCD of the same
//! transfer to `rtl_handshake.vcd`.
//!
//! ```text
//! cargo run --example rtl_handshake --release
//! ```

use quarc::core::flit::TrafficClass;
use quarc::core::ids::NodeId;
use quarc::rtl::switch::{QuarcSwitchRtl, SwitchStepIn};
use quarc::rtl::vcd::trace_link;
use quarc::rtl::xcvr::build_frame;
use quarc::rtl::{LlFwd, LlRev};

fn bit(b: bool) -> char {
    if b {
        '1'
    } else {
        '0'
    }
}

fn main() {
    // Node 1 of a 16-node Quarc. We stream a broadcast frame (src 0,
    // branch destination 4) into its rim-CW input: every word must be
    // cloned — absorbed locally AND forwarded on rim-CW — in the same cycle.
    let mut sw = QuarcSwitchRtl::new(NodeId(1), 16);
    let frame = build_frame(TrafficClass::Broadcast, NodeId(0), NodeId(4), 0, 4);

    println!(
        "cycle | in: sof_n eof_n src_rdy_n vc | out(rim-cw): sof_n eof_n valid vc | delivered"
    );
    println!(
        "------+------------------------------+-----------------------------------+----------"
    );

    // `cycle` is a clock that outlives the 4-beat frame, not a frame index.
    #[allow(clippy::needless_range_loop)]
    for cycle in 0..10 {
        let fwd0 = if cycle < 4 {
            LlFwd::beat(frame[cycle], cycle == 0, cycle == 3, 0)
        } else {
            LlFwd::IDLE
        };
        let input = SwitchStepIn {
            fwd: [fwd0, LlFwd::IDLE, LlFwd::IDLE, LlFwd::IDLE],
            rev: [LlRev::READY; 4],
        };
        let out = sw.step(&input);
        let o = &out.fwd[0];
        println!(
            "{cycle:>5} |      {}     {}        {}     {} |            {}     {}     {}   {} | {}",
            bit(fwd0.sof_n),
            bit(fwd0.eof_n),
            bit(fwd0.src_rdy_n),
            fwd0.ch_to_store,
            bit(o.sof_n),
            bit(o.eof_n),
            bit(!o.src_rdy_n),
            o.ch_to_store,
            out.deliveries.len(),
        );
    }

    assert!(sw.is_idle(), "switch retained state after the frame drained");
    println!("\nEvery data beat was simultaneously absorbed (delivered=1) and");
    println!("forwarded (valid=1) — the absorb-and-forward clone of paper §2.2(iii).");

    // Same transfer, dumped as a VCD for a waveform viewer.
    let mut sw = QuarcSwitchRtl::new(NodeId(1), 16);
    let frame = build_frame(TrafficClass::Broadcast, NodeId(0), NodeId(4), 0, 4);
    let vcd = trace_link(10, |t| {
        let fin = if (t as usize) < 4 {
            LlFwd::beat(frame[t as usize], t == 0, t == 3, 0)
        } else {
            LlFwd::IDLE
        };
        let out = sw.step(&SwitchStepIn {
            fwd: [fin, LlFwd::IDLE, LlFwd::IDLE, LlFwd::IDLE],
            rev: [LlRev::READY; 4],
        });
        (fin, out.fwd[0])
    });
    std::fs::write("rtl_handshake.vcd", &vcd).expect("write VCD");
    println!("\nwaveform written to rtl_handshake.vcd ({} bytes) — open with GTKWave", vcd.len());
}
