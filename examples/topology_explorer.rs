//! Explore the structural properties the paper argues from: diameters, mean
//! distances, per-link load balance (the "edge-asymmetry" critique of §2.1)
//! and the analytic saturation/latency picture — all without running a
//! single simulation cycle.
//!
//! ```text
//! cargo run --example topology_explorer --release
//! ```

use quarc::analytical as ana;
use quarc::core::ids::NodeId;
use quarc::core::quadrant::{diameter, mean_hops, quadrant_of};
use quarc::core::ring::Ring;
use quarc::core::topology::MeshTopology;
use quarc::core::vc::{ring_link_id, RingLinkKind};

fn main() {
    println!("== topology geometry ==");
    println!("{:<6} {:>14} {:>12} {:>14}", "n", "quarc diam", "mean hops", "mesh diam");
    for n in [8usize, 16, 32, 64] {
        let ring = Ring::new(n);
        let mesh = MeshTopology::square(n);
        println!(
            "{n:<6} {:>14} {:>12.2} {:>14}",
            diameter(&ring),
            mean_hops(&ring),
            mesh.diameter()
        );
    }

    println!("\n== quadrants from node 0 (n = 16) ==");
    let ring = Ring::new(16);
    for d in 1..16u32 {
        let q = quadrant_of(&ring, NodeId(0), NodeId(d));
        print!("{d}:{q}  ");
        if d % 4 == 0 {
            println!();
        }
    }
    println!();

    println!("\n== per-link load under uniform all-pairs traffic (n = 16) ==");
    let quarc = ana::quarc_loads(16);
    let spider = ana::spidergon_loads(16);
    let show = |name: &str, loads: &ana::LinkLoads, kinds: &[(&str, RingLinkKind)]| {
        print!("{name:<11}");
        for (label, kind) in kinds {
            print!(" {label}={:<5}", loads.count(ring_link_id(NodeId(0), *kind)));
        }
        println!("max/mean={:.2}", loads.imbalance());
    };
    show(
        "quarc",
        &quarc,
        &[
            ("rim-cw", RingLinkKind::RimCw),
            ("rim-ccw", RingLinkKind::RimCcw),
            ("cross-r", RingLinkKind::CrossRight),
            ("cross-l", RingLinkKind::CrossLeft),
        ],
    );
    show(
        "spidergon",
        &spider,
        &[
            ("rim-cw", RingLinkKind::RimCw),
            ("rim-ccw", RingLinkKind::RimCcw),
            ("spoke", RingLinkKind::CrossRight),
        ],
    );
    println!("(the Spidergon spoke carries the sum of the two Quarc cross links)");

    println!("\n== analytic picture (M = 16) ==");
    println!(
        "{:<6} {:>12} {:>14} {:>14} {:>12}",
        "n", "sat rate", "quarc bcast0", "spider bcast0", "bcast gap"
    );
    for n in [16usize, 32, 64] {
        let sat = ana::quarc_saturation_rate(n, 16);
        let q0 = ana::quarc_broadcast_zero_load(n, 16);
        let s0 = ana::spidergon_broadcast_zero_load(n, 16);
        println!("{n:<6} {sat:>12.4} {q0:>14.0} {s0:>14.0} {:>11.1}x", s0 / q0);
    }
    println!("\n(zero-load broadcast gap grows with n: the Quarc pipeline costs n/4 + M");
    println!(" cycles while the Spidergon chain pays ~M per replication hop — §3.2's");
    println!(" 'order of magnitude' at n = 64)");
}
