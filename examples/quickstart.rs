//! Quickstart: build a 16-node Quarc NoC, send some traffic, read the
//! numbers.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```

use quarc::core::config::NocConfig;
use quarc::core::flit::TrafficClass;
use quarc::core::ids::NodeId;
use quarc::sim::driver::NocSim;
use quarc::sim::QuarcNetwork;
use quarc::workloads::{MessageRequest, TraceRecord, TraceWorkload};

fn main() {
    // A 16-node Quarc with the paper's hardware defaults: 2 VCs per link,
    // 4-flit input buffers, single-cycle links.
    let mut net = QuarcNetwork::new(NocConfig::quarc(16));

    // A hand-written workload: three unicasts and one broadcast, all
    // injected at cycle 0. (Synthetic generators live in quarc-workloads;
    // traces are the simplest way to poke the network.)
    let records = vec![
        TraceRecord { cycle: 0, request: MessageRequest::unicast(NodeId(0), NodeId(3), 8) },
        TraceRecord { cycle: 0, request: MessageRequest::unicast(NodeId(5), NodeId(13), 8) },
        TraceRecord { cycle: 0, request: MessageRequest::unicast(NodeId(9), NodeId(2), 8) },
        TraceRecord { cycle: 0, request: MessageRequest::broadcast(NodeId(0), 8) },
    ];
    let mut workload = TraceWorkload::new(16, records);

    // Drive the clock until everything has drained.
    while !net.quiesced() || net.now() == 0 {
        net.step(&mut workload);
        assert!(net.now() < 10_000, "network failed to drain");
    }

    let m = net.metrics();
    println!("simulated cycles        : {}", net.now());
    println!("unicasts completed      : {}", m.completed(TrafficClass::Unicast));
    println!("mean unicast latency    : {:.1} cycles", m.unicast_latency().mean());
    println!("broadcasts completed    : {}", m.completed(TrafficClass::Broadcast));
    println!(
        "broadcast completion    : {:.1} cycles (creation -> last of 15 receivers)",
        m.broadcast_completion_latency().mean()
    );
    println!(
        "broadcast per reception : {:.1} cycles (mean over receivers)",
        m.broadcast_reception_latency().mean()
    );
    println!("flits delivered         : {}", m.flits_delivered());

    // The headline of the paper in one assertion: a Quarc broadcast of M=8
    // flits across 16 nodes completes in roughly n/4 + M cycles even while
    // queued behind a same-quadrant unicast — it is a pipelined wormhole
    // operation, not a store-and-forward chain (which would cost hundreds).
    assert!(m.broadcast_completion_latency().mean() < 2.0 * (4.0 + 8.0 + 1.0));
}
