//! The paper's stated next objective (§4): "compare the performance of the
//! Quarc against other widely used NoC architectures such as mesh and
//! torus". This example runs that comparison on uniform unicast traffic at
//! equal node count, message length and offered load.
//!
//! ```text
//! cargo run --example ring_vs_grid --release
//! ```

use quarc::core::config::NocConfig;
use quarc::sim::driver::{run, NocSim, RunSpec};
use quarc::sim::mesh_net::MeshNetwork;
use quarc::sim::torus_net::TorusNetwork;
use quarc::sim::QuarcNetwork;
use quarc::workloads::{Synthetic, SyntheticConfig};

fn measure(net: &mut dyn NocSim, n: usize, rate: f64, m: usize) -> (f64, bool) {
    let spec = RunSpec { warmup: 1_500, measure: 12_000, drain: 20_000, ..Default::default() };
    let mut wl = Synthetic::new(n, SyntheticConfig::paper(rate, m, 0.0, 55));
    let r = run(net, &mut wl, &spec);
    (r.unicast_mean, r.saturated)
}

fn main() {
    let m = 8;
    println!("uniform unicast, M = {m} flits; mean latency in cycles (SAT = saturated)\n");
    println!("{:<8} {:<9} {:>10} {:>10} {:>10}", "n", "rate", "quarc", "mesh", "torus");

    for n in [16usize, 64] {
        let base = quarc::analytical::quarc_saturation_rate(n, m);
        for frac in [0.1, 0.2, 0.3] {
            let rate = base * frac;
            let mut row = format!("{n:<8} {rate:<9.4}");
            let mut quarc = QuarcNetwork::new(NocConfig::quarc(n));
            let (lat, sat) = measure(&mut quarc, n, rate, m);
            row += &format!(" {:>10}", if sat { "SAT".into() } else { format!("{lat:.1}") });
            let mut cfg = NocConfig::mesh(n);
            cfg.vcs = 1;
            let mut mesh = MeshNetwork::new(cfg);
            let (lat, sat) = measure(&mut mesh, n, rate, m);
            row += &format!(" {:>10}", if sat { "SAT".into() } else { format!("{lat:.1}") });
            let mut torus = TorusNetwork::new(NocConfig::torus(n));
            let (lat, sat) = measure(&mut torus, n, rate, m);
            row += &format!(" {:>10}", if sat { "SAT".into() } else { format!("{lat:.1}") });
            println!("{row}");
        }
    }

    println!("\nGeometry notes (why the numbers look the way they do):");
    for n in [16usize, 64] {
        let ring = quarc::core::ring::Ring::new(n);
        let mesh = quarc::core::topology::MeshTopology::square(n);
        let torus = quarc::core::torus::TorusTopology::square(n);
        println!(
            "  n={n:<3} diameters: quarc {} | mesh {} | torus {}   (quarc mean hops {:.2})",
            quarc::core::quadrant::diameter(&ring),
            mesh.diameter(),
            torus.diameter(),
            quarc::core::quadrant::mean_hops(&ring),
        );
    }
    println!("\nAt 16 nodes the ring topologies are competitive with the grids; by 64");
    println!("nodes the n/4 diameter catches up with them — the structural reason the");
    println!("paper caps the Quarc at 64 nodes (§2.6) and why mesh/torus remain the");
    println!("default beyond that. The Quarc's case is collective traffic, not scale.");
}
