//! Run a small experiment campaign: a topology × size × rate grid with two
//! replications per point, executed in parallel, with a result cache — a
//! miniature of the paper's full Figs. 9–11 evaluation in a few seconds.
//!
//! Run it twice and watch the second invocation serve every point from the
//! cache; add workers and watch the numbers stay bit-identical.
//!
//! ```text
//! cargo run --example campaign_grid --release
//! ```

use quarc::campaign::{run_campaign, CampaignOptions, CampaignSpec, PointOutcomeKind, RateAxis};
use quarc::core::topology::TopologyKind;
use quarc::sim::RunSpec;

fn main() {
    // The grid: 2 topologies × 2 sizes × 3 rates, β = 5%, M = 8.
    let mut spec = CampaignSpec::new("example-grid");
    spec.topologies = vec![TopologyKind::Quarc, TopologyKind::Spidergon];
    spec.sizes = vec![16, 32];
    spec.msg_lens = vec![8];
    spec.betas = vec![0.05];
    spec.rates = RateAxis::Explicit(vec![0.005, 0.015, 0.03]);
    spec.replications = 2;
    spec.run = RunSpec { warmup: 1_000, measure: 8_000, drain: 12_000, ..Default::default() };

    let opts = CampaignOptions {
        workers: 0, // all cores
        cache_dir: Some(std::env::temp_dir().join("quarc-example-campaign-cache")),
        quiet: true,
        ..Default::default()
    };
    let report = run_campaign(&spec, &opts).expect("campaign");

    println!(
        "{} points: {} simulated, {} from cache, {} workers, {:.2}s\n",
        report.results.len(),
        report.executed,
        report.from_cache,
        report.workers,
        report.wall.as_secs_f64()
    );
    println!("{:<30} {:>10} {:>16} {:>10}", "point", "unicast", "(95% CI ±)", "saturated");
    for r in &report.results {
        if let PointOutcomeKind::Rate { merged, .. } = &r.outcome {
            println!(
                "{:<30} {:>10.2} {:>16.2} {:>10}",
                r.label, merged.unicast_mean.mean, merged.unicast_mean.ci95, merged.saturated
            );
        }
    }
    println!("\nre-run me: every point above will come from the cache.");
}
