//! Cross-crate integration: the paper's headline performance claims,
//! asserted as *shapes* on the full stack (workload generator → simulator →
//! driver → metrics).

use quarc::core::config::NocConfig;
use quarc::sim::driver::{run, RunSpec};
use quarc::sim::{QuarcNetwork, SpidergonNetwork};
use quarc::workloads::{Synthetic, SyntheticConfig};

fn spec() -> RunSpec {
    RunSpec { warmup: 1_500, measure: 12_000, drain: 25_000, ..Default::default() }
}

fn measure(
    kind: &str,
    n: usize,
    rate: f64,
    m: usize,
    beta: f64,
    seed: u64,
) -> quarc::sim::RunResult {
    match kind {
        "quarc" => {
            let mut net = QuarcNetwork::new(NocConfig::quarc(n));
            let mut wl = Synthetic::new(n, SyntheticConfig::paper(rate, m, beta, seed));
            run(&mut net, &mut wl, &spec())
        }
        "spidergon" => {
            let mut net = SpidergonNetwork::new(NocConfig::spidergon(n));
            let mut wl = Synthetic::new(n, SyntheticConfig::paper(rate, m, beta, seed));
            run(&mut net, &mut wl, &spec())
        }
        other => panic!("unknown kind {other}"),
    }
}

/// §3.2: "the unicast latency is overall at least a factor of 2 lower"
/// (with broadcast traffic in the mix, which is where the single injection
/// port hurts most).
#[test]
fn unicast_latency_gap_under_broadcast_mix() {
    let (n, m, beta, rate) = (16, 16, 0.05, 0.02);
    let q = measure("quarc", n, rate, m, beta, 1);
    let s = measure("spidergon", n, rate, m, beta, 1);
    assert!(!q.saturated, "quarc unexpectedly saturated: {q:?}");
    assert!(
        s.unicast_mean > 1.8 * q.unicast_mean || s.saturated,
        "expected ≥ ~2x unicast gap: quarc {:.1}, spidergon {:.1}",
        q.unicast_mean,
        s.unicast_mean
    );
}

/// §3.2: "almost an order of magnitude improvement on the latency" for
/// broadcast.
#[test]
fn broadcast_latency_gap() {
    for (n, m, want) in [(16usize, 8usize, 3.0), (64, 16, 6.0)] {
        let rate = quarc::analytical::quarc_saturation_rate(n, m) * 0.1;
        let q = measure("quarc", n, rate, m, 0.05, 2);
        let s = measure("spidergon", n, rate, m, 0.05, 2);
        assert!(q.bcast_samples > 10 && s.bcast_samples > 10);
        let gap = s.bcast_completion_mean / q.bcast_completion_mean;
        assert!(
            gap > want,
            "n={n} m={m}: broadcast completion gap {gap:.1}x below {want}x \
             (quarc {:.1}, spidergon {:.1})",
            q.bcast_completion_mean,
            s.bcast_completion_mean
        );
    }
}

/// §3.2: "the Quarc NoC is capable of sustaining a much higher load before
/// it saturates".
#[test]
fn quarc_sustains_higher_load() {
    // Fig. 11's n=64 / β=10% configuration, between the two knees our
    // sweeps measure (Quarc sustains ≥0.0033, Spidergon collapses above
    // ~0.0022): the Quarc carries this load, the Spidergon cannot — each
    // broadcast costs it N−1 extra injections through one port.
    let (n, m, beta) = (64, 16, 0.10);
    let rate = 0.0028;
    let q = measure("quarc", n, rate, m, beta, 3);
    let s = measure("spidergon", n, rate, m, beta, 3);
    assert!(!q.saturated, "quarc saturated at rate {rate}: {q:?}");
    assert!(
        s.saturated || s.unicast_mean > 3.0 * q.unicast_mean,
        "spidergon should be saturated (or far slower) at rate {rate}: {s:?}"
    );
}

/// Fig. 11's story: raising β barely moves the Quarc, wrecks the Spidergon.
#[test]
fn beta_sensitivity() {
    let (n, m, rate) = (16, 16, 0.015);
    let q0 = measure("quarc", n, rate, m, 0.0, 4);
    let q10 = measure("quarc", n, rate, m, 0.10, 4);
    let s0 = measure("spidergon", n, rate, m, 0.0, 4);
    let s10 = measure("spidergon", n, rate, m, 0.10, 4);
    assert!(!q0.saturated && !q10.saturated && !s0.saturated);
    let q_growth = q10.unicast_mean / q0.unicast_mean;
    let s_growth = if s10.saturated { f64::INFINITY } else { s10.unicast_mean / s0.unicast_mean };
    // At β=10% every tenth message multiplies its delivered-flit load by
    // N−1, so even the Quarc sees real extra contention (growth ~1.8–2.7
    // across seeds at this operating point); what the paper claims — and the
    // second assertion below checks — is that the Spidergon, forcing all of
    // that through one injection port, collapses outright.
    assert!(q_growth < 2.8, "quarc unicast should feel beta mildly: growth {q_growth:.2}");
    assert!(
        s_growth > q_growth * 1.3,
        "spidergon must degrade much faster with beta: {s_growth:.2} vs {q_growth:.2}"
    );
}

/// Throughput accounting is conserved: delivered flits per cycle approaches
/// offered load × message length × mean receivers.
#[test]
fn throughput_matches_offered_load() {
    let (n, m, rate) = (16, 8, 0.02);
    let q = measure("quarc", n, rate, m, 0.0, 5);
    assert!(!q.saturated);
    let offered_flits = rate * m as f64; // per node per cycle, unicast only
    assert!(
        (q.throughput - offered_flits).abs() / offered_flits < 0.1,
        "throughput {:.4} vs offered {:.4}",
        q.throughput,
        offered_flits
    );
}

/// Determinism across the whole stack: same seed, same numbers.
#[test]
fn end_to_end_determinism() {
    let a = measure("quarc", 16, 0.02, 8, 0.05, 77);
    let b = measure("quarc", 16, 0.02, 8, 0.05, 77);
    assert_eq!(a.unicast_mean.to_bits(), b.unicast_mean.to_bits());
    assert_eq!(a.bcast_completion_mean.to_bits(), b.bcast_completion_mean.to_bits());
    assert_eq!(a.unicast_samples, b.unicast_samples);
}
