//! Failure injection: transient link stalls must be absorbed losslessly by
//! the credit-based flow control, and link-utilisation observability must
//! reflect the traffic patterns that exercise each link class.

use quarc::core::config::NocConfig;
use quarc::core::flit::TrafficClass;
use quarc::core::ids::NodeId;
use quarc::core::topology::QuarcOut;
use quarc::sim::driver::NocSim;
use quarc::sim::QuarcNetwork;
use quarc::workloads::{Pattern, Synthetic, SyntheticConfig, TraceWorkload};

fn drain(net: &mut QuarcNetwork, cap: u64) {
    let mut silence = TraceWorkload::new(net.num_nodes(), vec![]);
    for _ in 0..cap {
        net.step(&mut silence);
        if net.quiesced() {
            return;
        }
    }
    panic!("failed to drain");
}

#[test]
fn transient_stall_is_lossless() {
    let n = 16;
    let mut net = QuarcNetwork::new(NocConfig::quarc(n));
    // Stall the busiest rim link for 300 cycles in the middle of the run.
    net.inject_link_stall(NodeId(0), QuarcOut::RimCw, 500, 800);
    net.inject_link_stall(NodeId(8), QuarcOut::RimCcw, 600, 900);
    let mut wl = Synthetic::new(n, SyntheticConfig::paper(0.02, 8, 0.1, 31));
    for _ in 0..3_000 {
        net.step(&mut wl);
    }
    drain(&mut net, 100_000);
    let m = net.metrics();
    assert_eq!(m.created(TrafficClass::Unicast), m.completed(TrafficClass::Unicast));
    assert_eq!(m.created(TrafficClass::Broadcast), m.completed(TrafficClass::Broadcast));
    assert!(m.created(TrafficClass::Unicast) > 300);
}

#[test]
fn stall_during_broadcast_storm_is_lossless() {
    let n = 16;
    let mut net = QuarcNetwork::new(NocConfig::quarc(n).with_buffer_depth(2));
    // Stall one cross link exactly while broadcasts are in flight.
    net.inject_link_stall(NodeId(3), QuarcOut::CrossRight, 2, 400);
    let records: Vec<quarc::workloads::TraceRecord> = (0..n as u32)
        .map(|s| quarc::workloads::TraceRecord {
            cycle: 0,
            request: quarc::workloads::MessageRequest::broadcast(NodeId(s), 8),
        })
        .collect();
    let mut wl = TraceWorkload::new(n, records);
    for _ in 0..10_000 {
        net.step(&mut wl);
        if net.quiesced() && wl.remaining() == 0 {
            break;
        }
    }
    assert!(net.quiesced());
    assert_eq!(net.metrics().completed(TrafficClass::Broadcast), n as u64);
}

#[test]
fn stalled_link_slows_but_does_not_wedge_unrelated_traffic() {
    let n = 16;
    let mut net = QuarcNetwork::new(NocConfig::quarc(n));
    // Permanent-ish stall (whole run) on one rim link.
    net.inject_link_stall(NodeId(4), QuarcOut::RimCw, 0, 1_000_000);
    // Traffic that never uses that link: node 0 → node 2 repeatedly.
    let records: Vec<quarc::workloads::TraceRecord> = (0..50u64)
        .map(|i| quarc::workloads::TraceRecord {
            cycle: i * 20,
            request: quarc::workloads::MessageRequest::unicast(NodeId(0), NodeId(2), 4),
        })
        .collect();
    let mut wl = TraceWorkload::new(n, records);
    for _ in 0..5_000 {
        net.step(&mut wl);
        if net.metrics().completed(TrafficClass::Unicast) == 50 {
            break;
        }
    }
    assert_eq!(net.metrics().completed(TrafficClass::Unicast), 50);
}

#[test]
fn link_utilisation_follows_traffic_pattern() {
    let n = 16;
    // Neighbour traffic: rims only.
    let mut net = QuarcNetwork::new(NocConfig::quarc(n));
    let cfg = SyntheticConfig {
        rate: 0.05,
        msg_len: 8,
        broadcast_frac: 0.0,
        pattern: Pattern::Neighbour,
        seed: 32,
    };
    let mut wl = Synthetic::new(n, cfg);
    for _ in 0..5_000 {
        net.step(&mut wl);
    }
    let (rim, cross) = net.utilisation_by_kind();
    assert!(rim > 0.01, "rim links idle under neighbour traffic: {rim}");
    assert!(cross < 1e-9, "cross links used by neighbour traffic: {cross}");

    // Complement traffic: every message takes exactly one cross hop.
    let mut net = QuarcNetwork::new(NocConfig::quarc(n));
    let cfg = SyntheticConfig { pattern: Pattern::Complement, ..cfg };
    let mut wl = Synthetic::new(n, cfg);
    for _ in 0..5_000 {
        net.step(&mut wl);
    }
    let (rim, cross) = net.utilisation_by_kind();
    assert!(cross > 0.01, "cross links idle under complement traffic: {cross}");
    assert!(rim < 1e-9, "rim links used by complement traffic: {rim}");
}

#[test]
fn per_link_counters_are_conserved() {
    // Total link flits = Σ per-packet (hops × flits); check against a single
    // known unicast.
    let n = 16;
    let mut net = QuarcNetwork::new(NocConfig::quarc(n));
    let mut wl = TraceWorkload::new(
        n,
        vec![quarc::workloads::TraceRecord {
            cycle: 0,
            request: quarc::workloads::MessageRequest::unicast(NodeId(0), NodeId(3), 8),
        }],
    );
    for _ in 0..200 {
        net.step(&mut wl);
        if net.quiesced() {
            break;
        }
    }
    let mut total = 0u64;
    for node in 0..n as u32 {
        for o in [QuarcOut::RimCw, QuarcOut::RimCcw, QuarcOut::CrossRight, QuarcOut::CrossLeft] {
            total += net.link_flits(NodeId(node), o);
        }
    }
    // 3 hops × 8 flits.
    assert_eq!(total, 24);
}
