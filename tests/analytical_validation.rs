//! The paper's §3.2 validation step: the flit-level simulator must agree
//! with the independent M/G/1 analytical models at low and moderate load.
//! (Absolute agreement tightens as load → 0, where both reduce to
//! `1 + d̄ + (M−1)`; at mid load we allow the approximation error of the
//! M/G/1 channel-independence assumption.)

use quarc::analytical as ana;
use quarc::core::config::NocConfig;
use quarc::core::topology::MeshTopology;
use quarc::sim::driver::{run, RunSpec};
use quarc::sim::mesh_net::MeshNetwork;
use quarc::sim::{QuarcNetwork, SpidergonNetwork};
use quarc::workloads::{Synthetic, SyntheticConfig};

fn spec() -> RunSpec {
    RunSpec { warmup: 2_000, measure: 20_000, drain: 30_000, ..Default::default() }
}

#[test]
fn quarc_simulator_matches_model_at_low_load() {
    for (n, m) in [(16usize, 8usize), (16, 16)] {
        let rate = ana::quarc_saturation_rate(n, m) * 0.25;
        let mut net = QuarcNetwork::new(NocConfig::quarc(n));
        let mut wl = Synthetic::new(n, SyntheticConfig::paper(rate, m, 0.0, 9));
        let res = run(&mut net, &mut wl, &spec());
        let model = ana::quarc_unicast_latency(n, m, rate).expect("below saturation");
        let rel = (res.unicast_mean - model).abs() / model;
        assert!(
            rel < 0.15,
            "n={n} m={m} rate={rate:.4}: sim {:.2} vs model {model:.2} (rel {rel:.3})",
            res.unicast_mean
        );
    }
}

#[test]
fn spidergon_simulator_matches_model_at_low_load() {
    for (n, m) in [(16usize, 8usize), (32, 16)] {
        let rate = ana::spidergon_saturation_rate(n, m) * 0.25;
        let mut net = SpidergonNetwork::new(NocConfig::spidergon(n));
        let mut wl = Synthetic::new(n, SyntheticConfig::paper(rate, m, 0.0, 10));
        let res = run(&mut net, &mut wl, &spec());
        let model = ana::spidergon_unicast_latency(n, m, rate).expect("below saturation");
        let rel = (res.unicast_mean - model).abs() / model;
        assert!(
            rel < 0.15,
            "n={n} m={m} rate={rate:.4}: sim {:.2} vs model {model:.2} (rel {rel:.3})",
            res.unicast_mean
        );
    }
}

#[test]
fn mesh_simulator_matches_model_at_low_load() {
    let (n, m, rate) = (16usize, 8usize, 0.005);
    let mut cfg = NocConfig::mesh(n);
    cfg.vcs = 1;
    let mut net = MeshNetwork::new(cfg);
    let mut wl = Synthetic::new(n, SyntheticConfig::paper(rate, m, 0.0, 11));
    let res = run(&mut net, &mut wl, &spec());
    let model = ana::mesh_unicast_latency(&MeshTopology::square(n), m, rate).expect("stable");
    let rel = (res.unicast_mean - model).abs() / model;
    assert!(rel < 0.15, "mesh: sim {:.2} vs model {model:.2} (rel {rel:.3})", res.unicast_mean);
}

#[test]
fn zero_load_broadcast_formulas_match_simulator() {
    use quarc::core::ids::NodeId;
    use quarc::sim::driver::NocSim;
    use quarc::workloads::{MessageRequest, TraceRecord, TraceWorkload};
    for (n, m) in [(16usize, 8usize), (32, 16)] {
        // Quarc.
        let mut net = QuarcNetwork::new(NocConfig::quarc(n));
        let mut wl = TraceWorkload::new(
            n,
            vec![TraceRecord { cycle: 0, request: MessageRequest::broadcast(NodeId(0), m) }],
        );
        while !net.quiesced() || net.now() == 0 {
            net.step(&mut wl);
            assert!(net.now() < 50_000);
        }
        let sim = net.metrics().broadcast_completion_latency().mean();
        let model = ana::quarc_broadcast_zero_load(n, m);
        assert!((sim - model).abs() <= 2.0, "quarc n={n} m={m}: sim {sim} vs formula {model}");

        // Spidergon: the chain formula is an approximation of the re-inject
        // pipeline; allow 20%.
        let mut net = SpidergonNetwork::new(NocConfig::spidergon(n));
        let mut wl = TraceWorkload::new(
            n,
            vec![TraceRecord { cycle: 0, request: MessageRequest::broadcast(NodeId(0), m) }],
        );
        while !net.quiesced() || net.now() == 0 {
            net.step(&mut wl);
            assert!(net.now() < 100_000);
        }
        let sim = net.metrics().broadcast_completion_latency().mean();
        let model = ana::spidergon_broadcast_zero_load(n, m);
        let rel = (sim - model).abs() / model;
        assert!(
            rel < 0.2,
            "spidergon n={n} m={m}: sim {sim:.1} vs formula {model:.1} (rel {rel:.2})"
        );
    }
}
