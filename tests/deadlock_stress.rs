//! Deadlock-freedom stress: sustained overload, adversarial patterns and
//! minimal buffering. The dateline VC discipline (proved acyclic in
//! `quarc-core`'s channel-dependency tests) must translate into live
//! networks — every run keeps delivering and drains clean once injection
//! stops.

use quarc::core::config::NocConfig;
use quarc::core::flit::TrafficClass;
use quarc::sim::driver::NocSim;
use quarc::sim::{QuarcNetwork, SpidergonNetwork};
use quarc::workloads::{Pattern, Synthetic, SyntheticConfig, TraceWorkload};

/// Run under load, then drain; assert liveness and conservation.
fn stress(net: &mut dyn NocSim, wl: &mut Synthetic, load_cycles: u64, drain_cycles: u64) {
    let n = net.num_nodes();
    let mut last_delivered = 0;
    for chunk in 0..load_cycles / 500 {
        for _ in 0..500 {
            net.step(wl);
        }
        let d = net.metrics().flits_delivered();
        assert!(d > last_delivered, "no delivery progress in chunk {chunk} (n={n}) — deadlock");
        last_delivered = d;
    }
    let mut silence = TraceWorkload::new(n, vec![]);
    for _ in 0..drain_cycles {
        net.step(&mut silence);
        if net.quiesced() {
            break;
        }
    }
    assert!(net.quiesced(), "failed to drain after overload (n={n})");
    let m = net.metrics();
    for class in [TrafficClass::Unicast, TrafficClass::Broadcast] {
        assert_eq!(m.created(class), m.completed(class), "lost {class} messages");
    }
}

#[test]
fn quarc_overload_minimal_buffers() {
    // 2k cycles at 3–4× the saturating rate builds a large backlog; the
    // liveness claim is (a) progress in every chunk and (b) a complete
    // drain once injection stops. Budgets are sized to the backlog, not
    // tight: depth-1 buffers cut the wormhole throughput badly.
    let mut net = QuarcNetwork::new(NocConfig::quarc(16).with_buffer_depth(1));
    let mut wl = Synthetic::new(16, SyntheticConfig::paper(0.4, 8, 0.1, 1));
    stress(&mut net, &mut wl, 2_000, 500_000);
}

#[test]
fn spidergon_overload_minimal_buffers() {
    let mut net = SpidergonNetwork::new(NocConfig::spidergon(16).with_buffer_depth(1));
    let mut wl = Synthetic::new(16, SyntheticConfig::paper(0.6, 8, 0.1, 2));
    stress(&mut net, &mut wl, 4_000, 400_000);
}

#[test]
fn quarc_complement_pattern_hammers_cross_links() {
    let cfg = SyntheticConfig {
        rate: 0.3,
        msg_len: 8,
        broadcast_frac: 0.0,
        pattern: Pattern::Complement,
        seed: 3,
    };
    let mut net = QuarcNetwork::new(NocConfig::quarc(16).with_buffer_depth(2));
    let mut wl = Synthetic::new(16, cfg);
    stress(&mut net, &mut wl, 4_000, 60_000);
}

#[test]
fn quarc_hotspot_pattern() {
    let cfg = SyntheticConfig {
        rate: 0.2,
        msg_len: 8,
        broadcast_frac: 0.05,
        pattern: Pattern::Hotspot { node: quarc::core::ids::NodeId(0), frac: 0.5 },
        seed: 4,
    };
    let mut net = QuarcNetwork::new(NocConfig::quarc(16));
    let mut wl = Synthetic::new(16, cfg);
    stress(&mut net, &mut wl, 4_000, 80_000);
}

#[test]
fn big_network_broadcast_storm() {
    // Every broadcast in a 64-node Spidergon costs 63 chained injections;
    // this is the harshest liveness test in the suite.
    let mut net = SpidergonNetwork::new(NocConfig::spidergon(64));
    let mut wl = Synthetic::new(64, SyntheticConfig::paper(0.05, 8, 0.5, 5));
    stress(&mut net, &mut wl, 3_000, 2_000_000);
}

#[test]
fn quarc_broadcast_storm() {
    let mut net = QuarcNetwork::new(NocConfig::quarc(64));
    let mut wl = Synthetic::new(64, SyntheticConfig::paper(0.1, 8, 0.5, 6));
    stress(&mut net, &mut wl, 2_000, 500_000);
}

#[test]
fn long_messages_through_tiny_buffers() {
    // M = 32 flit worms through 1-flit buffers: maximal wormhole stretch.
    let mut net = QuarcNetwork::new(NocConfig::quarc(16).with_buffer_depth(1));
    let mut wl = Synthetic::new(16, SyntheticConfig::paper(0.03, 32, 0.1, 7));
    stress(&mut net, &mut wl, 3_000, 1_000_000);
}
