//! Property-based, full-stack collective-communication coverage: random
//! sources, sizes and target sets must reach exactly the right PEs in both
//! architectures (the metrics layer enforces exactly-once and in-order
//! delivery internally, so completion counts are proof of coverage).

use proptest::prelude::*;
use quarc::core::config::NocConfig;
use quarc::core::flit::TrafficClass;
use quarc::core::ids::NodeId;
use quarc::sim::driver::NocSim;
use quarc::sim::{QuarcNetwork, SpidergonNetwork};
use quarc::workloads::{MessageRequest, TraceRecord, TraceWorkload};

fn sizes() -> impl Strategy<Value = usize> {
    prop_oneof![Just(8usize), Just(16), Just(32)]
}

fn drain(net: &mut dyn NocSim, wl: &mut TraceWorkload, cap: u64) {
    for _ in 0..cap {
        net.step(wl);
        if net.quiesced() && wl.remaining() == 0 {
            return;
        }
    }
    panic!("network failed to drain");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A Quarc broadcast from any source in any legal network completes
    /// with exactly n−1 receptions.
    #[test]
    fn quarc_broadcast_complete(n in sizes(), src_raw in 0usize..64, len in 2usize..12) {
        let src = NodeId::new(src_raw % n);
        let mut net = QuarcNetwork::new(NocConfig::quarc(n));
        let mut wl = TraceWorkload::new(
            n,
            vec![TraceRecord { cycle: 0, request: MessageRequest::broadcast(src, len) }],
        );
        drain(&mut net, &mut wl, 20_000);
        prop_assert_eq!(net.metrics().completed(TrafficClass::Broadcast), 1);
        prop_assert_eq!(
            net.metrics().broadcast_reception_latency().count() as usize,
            n - 1
        );
        prop_assert_eq!(net.metrics().flits_delivered() as usize, len * (n - 1));
    }

    /// The Spidergon replication chain reaches everyone too — just slower.
    #[test]
    fn spidergon_broadcast_complete(n in sizes(), src_raw in 0usize..64, len in 2usize..10) {
        let src = NodeId::new(src_raw % n);
        let mut net = SpidergonNetwork::new(NocConfig::spidergon(n));
        let mut wl = TraceWorkload::new(
            n,
            vec![TraceRecord { cycle: 0, request: MessageRequest::broadcast(src, len) }],
        );
        drain(&mut net, &mut wl, 100_000);
        prop_assert_eq!(net.metrics().completed(TrafficClass::Broadcast), 1);
        prop_assert_eq!(net.metrics().flits_delivered() as usize, len * (n - 1));
    }

    /// Quarc multicast hits exactly the requested target set.
    #[test]
    fn quarc_multicast_exact(
        n in sizes(),
        src_raw in 0usize..64,
        target_bits in 1u64..u64::MAX,
        len in 2usize..10,
    ) {
        let src = NodeId::new(src_raw % n);
        let targets: Vec<NodeId> = (0..n)
            .filter(|&i| target_bits & (1 << i) != 0 && i != src.index())
            .map(NodeId::new)
            .collect();
        prop_assume!(!targets.is_empty());
        let want = targets.len();
        let mut net = QuarcNetwork::new(NocConfig::quarc(n));
        let mut wl = TraceWorkload::new(
            n,
            vec![TraceRecord {
                cycle: 0,
                request: MessageRequest::multicast(src, targets, len),
            }],
        );
        drain(&mut net, &mut wl, 20_000);
        prop_assert_eq!(net.metrics().completed(TrafficClass::Multicast), 1);
        prop_assert_eq!(net.metrics().flits_delivered() as usize, len * want);
    }

    /// Simultaneous broadcasts from every node all complete in both
    /// architectures.
    #[test]
    fn all_sources_broadcast_storm(n in prop_oneof![Just(8usize), Just(16)]) {
        let records: Vec<TraceRecord> = (0..n)
            .map(|s| TraceRecord {
                cycle: 0,
                request: MessageRequest::broadcast(NodeId::new(s), 4),
            })
            .collect();

        let mut net = QuarcNetwork::new(NocConfig::quarc(n));
        let mut wl = TraceWorkload::new(n, records.clone());
        drain(&mut net, &mut wl, 50_000);
        prop_assert_eq!(net.metrics().completed(TrafficClass::Broadcast), n as u64);

        let mut net = SpidergonNetwork::new(NocConfig::spidergon(n));
        let mut wl = TraceWorkload::new(n, records);
        drain(&mut net, &mut wl, 500_000);
        prop_assert_eq!(net.metrics().completed(TrafficClass::Broadcast), n as u64);
    }
}
