//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The container this repository builds in has no access to crates.io, so
//! the real proptest cannot be fetched. This shim implements exactly the
//! surface the repository's property tests use — the [`Strategy`] trait,
//! range / tuple / `Just` / `any` / `prop_oneof!` / `prop::collection::vec`
//! strategies, `prop_map`, [`ProptestConfig`] and the [`proptest!`] macro —
//! with deterministic case generation and *no shrinking*. A failing case
//! panics with the ordinary `assert!` message, which is enough signal for CI;
//! swap the real crate back in when a registry is available.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 finalizer used for all deterministic generation in the shim.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic per-case RNG: a counter-based SplitMix64 stream seeded from
/// the test's name and the case index.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
    counter: u64,
}

impl TestRng {
    /// The RNG for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: splitmix64(h ^ splitmix64(case as u64)), counter: 0 }
    }

    /// Next raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.counter = self.counter.wrapping_add(1);
        splitmix64(self.state.wrapping_add(self.counter.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Widening-multiply range reduction (Lemire, biased variant): the
        // bias is < 2^-32 for the bounds used in tests.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A value generator. The real proptest's `Strategy` also carries shrinking
/// machinery; this shim only generates.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an arbitrary value of this type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit()
    }
}

/// Strategy generating arbitrary values of `T` (see [`any`]).
#[derive(Debug, Clone, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for "any `T`".
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-domain inclusive range.
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Uniform choice between boxed strategies (see [`prop_oneof!`]).
pub struct OneOf<T> {
    choices: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.choices.len() as u64) as usize;
        self.choices[i].generate(rng)
    }
}

/// Build a [`OneOf`] from boxed alternatives.
pub fn one_of<T>(choices: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
    assert!(!choices.is_empty(), "prop_oneof! needs at least one alternative");
    OneOf { choices }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// A length range for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end);
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    /// Strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { elem, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Per-`proptest!`-block configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Assert inside a proptest body (plain `assert!` in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a proptest body (plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Skip the current case when its precondition does not hold. The shim
/// expands this to `continue` on the generated-case loop, so a skipped case
/// simply is not replaced (no re-generation as in the real crate).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !($cond) {
            continue;
        }
    };
}

/// Assert inequality inside a proptest body (plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {{
        let choices: Vec<Box<dyn $crate::Strategy<Value = _>>> = vec![$(Box::new($strat)),+];
        $crate::one_of(choices)
    }};
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }` is
/// expanded into a `#[test]` that runs the body over deterministically
/// generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let strategies = ($($strat,)+);
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                let ($($arg,)+) = $crate::Strategy::generate(&strategies, &mut rng);
                $body
            }
        }
    )*};
}

/// Namespaced access used as `prop::collection::vec(...)`.
pub mod prop {
    pub use crate::collection;
}

/// The glob-import surface mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Any, Arbitrary, Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = crate::Strategy::generate(&(5u64..17), &mut rng);
            assert!((5..17).contains(&v));
            let f = crate::Strategy::generate(&(-2.0f64..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&f));
            let i = crate::Strategy::generate(&(8usize..=12), &mut rng);
            assert!((8..=12).contains(&i));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let a = crate::Strategy::generate(
            &crate::collection::vec(0u64..100, 3..10),
            &mut crate::TestRng::for_case("det", 7),
        );
        let b = crate::Strategy::generate(
            &crate::collection::vec(0u64..100, 3..10),
            &mut crate::TestRng::for_case("det", 7),
        );
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        /// The macro itself works end to end.
        #[test]
        fn macro_generates_cases(x in 0u32..100, ys in prop::collection::vec(0u8..10, 1..5)) {
            prop_assert!(x < 100);
            prop_assert!(!ys.is_empty() && ys.len() < 5);
            prop_assert!(ys.iter().all(|&y| y < 10));
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1usize), Just(2), Just(3)],
                         p in (0usize..4, 0usize..4).prop_map(|(a, b)| a * 10 + b)) {
            prop_assert!((1..=3).contains(&v));
            prop_assert!(p % 10 < 4 && p / 10 < 4);
        }
    }
}
