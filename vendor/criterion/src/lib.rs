//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build container has no crates.io access, so this shim keeps the
//! repository's Criterion benches compiling and runnable offline. It performs
//! a short warm-up, times a fixed number of iterations with
//! [`std::time::Instant`], and prints min/median/mean time per iteration —
//! no outlier analysis or HTML reports. Swap the real crate back in when a
//! registry is available.

use std::time::Instant;

pub use std::hint::black_box;

/// How measured iterations are derived (honoured loosely by the shim).
const MEASURE_ITERS: u32 = 20;
const WARMUP_ITERS: u32 = 3;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hint for `iter_batched` (ignored by the shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// The per-benchmark timing driver handed to `bench_function` closures.
pub struct Bencher {
    iters: u32,
    /// Per-iteration nanosecond samples from the last `iter*` call.
    samples_ns: Vec<f64>,
}

/// Summary statistics over one `iter*` call's per-iteration samples.
struct Stats {
    min: f64,
    median: f64,
    mean: f64,
}

impl Bencher {
    fn new(iters: u32) -> Self {
        Bencher { iters, samples_ns: Vec::new() }
    }

    fn stats(&self) -> Stats {
        if self.samples_ns.is_empty() {
            return Stats { min: f64::NAN, median: f64::NAN, mean: f64::NAN };
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let mid = sorted.len() / 2;
        let median = if sorted.len().is_multiple_of(2) {
            (sorted[mid - 1] + sorted[mid]) / 2.0
        } else {
            sorted[mid]
        };
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        Stats { min: sorted[0], median, mean }
    }

    /// Time `routine` over the shim's fixed iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        self.samples_ns.clear();
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.samples_ns.push(start.elapsed().as_nanos() as f64);
        }
    }

    /// Time `routine` with a fresh `setup()` input per iteration; only the
    /// routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(routine(setup()));
        }
        self.samples_ns.clear();
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples_ns.push(start.elapsed().as_nanos() as f64);
        }
    }
}

fn report(group: Option<&str>, name: &str, b: &Bencher, throughput: Option<Throughput>) {
    let label = match group {
        Some(g) => format!("{g}/{name}"),
        None => name.to_string(),
    };
    let stats = b.stats();
    // Throughput is derived from the median: the least noise-sensitive of
    // the three on a shared machine.
    let extra = match throughput {
        Some(Throughput::Elements(k)) if stats.median > 0.0 => {
            format!("  ({:.0} elem/s)", k as f64 / (stats.median / 1e9))
        }
        Some(Throughput::Bytes(k)) if stats.median > 0.0 => {
            format!("  ({:.0} B/s)", k as f64 / (stats.median / 1e9))
        }
        _ => String::new(),
    };
    println!(
        "bench {label:<48} min {:>12.0}  med {:>12.0}  mean {:>12.0} ns/iter{extra}",
        stats.min, stats.median, stats.mean
    );
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    iters: u32,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count (mapped to the shim's iteration count).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iters = (n as u32).max(1);
        self
    }

    /// Annotate throughput for subsequent benches in this group.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.iters);
        f(&mut b);
        report(Some(&self.name), &name.into(), &b, self.throughput);
        self
    }

    /// End the group (no-op in the shim).
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run one standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(MEASURE_ITERS);
        f(&mut b);
        report(None, &name.into(), &b, None);
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            iters: MEASURE_ITERS,
            _criterion: self,
        }
    }
}

/// Collect benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grouped");
        g.sample_size(5);
        g.throughput(Throughput::Elements(100));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs() {
        benches();
    }
}
