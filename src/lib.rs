//! # quarc
//!
//! Facade crate for the Quarc Network-on-Chip reproduction (Moadeli, Maji,
//! Vanderbauwhede, IPDPS 2009). Re-exports every layer of the stack under one
//! roof; see the individual crates for details:
//!
//! * [`core`] — topologies, flit format, routing, VC discipline;
//! * [`engine`] — simulation kernel (clock, events, RNG, statistics);
//! * [`workloads`] — traffic generation;
//! * [`sim`] — the flit-level wormhole simulator;
//! * [`campaign`] — parallel, deterministic experiment campaigns: declarative
//!   parameter grids sharded across a work-stealing pool, replication merging
//!   with confidence intervals, adaptive saturation search, a content-hashed
//!   result cache and JSON/CSV artifacts;
//! * [`rtl`] — the signal-level switch/transceiver hardware model;
//! * [`area`] — the Virtex-II Pro area model (Table 1 / Fig. 12);
//! * [`analytical`] — M/G/1 latency models used for validation.
//!
//! ## Running a campaign
//!
//! ```no_run
//! use quarc::campaign::{run_campaign, CampaignOptions, CampaignSpec, RateAxis};
//!
//! let mut spec = CampaignSpec::new("demo");
//! spec.sizes = vec![16, 32];
//! spec.rates = RateAxis::Explicit(vec![0.005, 0.01, 0.02]);
//! let report = run_campaign(&spec, &CampaignOptions::default()).unwrap();
//! println!("{}", report.csv());
//! ```
//!
//! or from the command line (the paper's whole Fig. 9–11 grid, cached):
//!
//! ```text
//! cargo run --release -p quarc-bench --bin campaign -- --preset paper
//! ```

#![warn(missing_docs)]

pub use quarc_analytical as analytical;
pub use quarc_area as area;
pub use quarc_campaign as campaign;
pub use quarc_core as core;
pub use quarc_engine as engine;
pub use quarc_rtl as rtl;
pub use quarc_sim as sim;
pub use quarc_workloads as workloads;

pub use quarc_core::prelude;
