//! # quarc
//!
//! Facade crate for the Quarc Network-on-Chip reproduction (Moadeli, Maji,
//! Vanderbauwhede, IPDPS 2009). Re-exports every layer of the stack under one
//! roof; see the individual crates for details:
//!
//! * [`core`] — topologies, flit format, routing, VC discipline;
//! * [`engine`] — simulation kernel (clock, events, RNG, statistics);
//! * [`workloads`] — traffic generation;
//! * [`sim`] — the flit-level wormhole simulator;
//! * [`rtl`] — the signal-level switch/transceiver hardware model;
//! * [`area`] — the Virtex-II Pro area model (Table 1 / Fig. 12);
//! * [`analytical`] — M/G/1 latency models used for validation.

#![warn(missing_docs)]

pub use quarc_analytical as analytical;
pub use quarc_area as area;
pub use quarc_core as core;
pub use quarc_engine as engine;
pub use quarc_rtl as rtl;
pub use quarc_sim as sim;
pub use quarc_workloads as workloads;

pub use quarc_core::prelude;
