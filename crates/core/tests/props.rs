//! Property-based tests over the core routing and encoding invariants.
//!
//! These complement the unit tests with randomly generated configurations:
//! any counterexample here would be a soundness bug in the reproduction (a
//! mis-routed packet, a node missed by a broadcast, or a corrupted wire
//! word), so the strategies deliberately cover every legal network size.

use proptest::prelude::*;
use quarc_core::flit::wire::{decode, encode, WireFlit};
use quarc_core::prelude::*;
use std::collections::HashSet;

/// Legal Quarc network sizes (n ≡ 0 mod 4, ≤ 64 per the 6-bit address field).
fn quarc_sizes() -> impl Strategy<Value = usize> {
    prop_oneof![Just(4usize), Just(8), Just(12), Just(16), Just(24), Just(32), Just(48), Just(64)]
}

fn arb_class() -> impl Strategy<Value = TrafficClass> {
    prop_oneof![
        Just(TrafficClass::Unicast),
        Just(TrafficClass::Multicast),
        Just(TrafficClass::Broadcast),
        Just(TrafficClass::ChainRim),
        Just(TrafficClass::ChainCross),
    ]
}

fn arb_dir() -> impl Strategy<Value = RingDir> {
    prop_oneof![Just(RingDir::Cw), Just(RingDir::Ccw)]
}

proptest! {
    /// Every header survives an encode/decode round trip bit-exactly.
    #[test]
    fn header_wire_roundtrip(
        class in arb_class(),
        dir in arb_dir(),
        src in 0u32..64,
        dst in 0u32..64,
        bitstring in any::<u16>(),
    ) {
        let meta = PacketMeta {
            message: MessageId(0),
            packet: PacketId(0),
            class,
            src: NodeId(src),
            dst: NodeId(dst),
            bitstring: Bits::inline(bitstring as u64),
            dir,
            len: 2,
            created_at: 0,
        };
        match decode(encode(&meta, FlitKind::Header, 0)).expect("valid encoding") {
            WireFlit::Header { class: c, dir: d, bitstring: b, src: s, dst: t } => {
                prop_assert_eq!(c, class);
                prop_assert_eq!(d, dir);
                prop_assert_eq!(b, bitstring);
                prop_assert_eq!(s, NodeId(src));
                prop_assert_eq!(t, NodeId(dst));
            }
            other => prop_assert!(false, "decoded {:?}", other),
        }
    }

    /// Body and tail payloads survive the round trip.
    #[test]
    fn payload_wire_roundtrip(payload in any::<u32>(), tail in any::<bool>()) {
        let meta = PacketMeta {
            message: MessageId(0),
            packet: PacketId(0),
            class: TrafficClass::Unicast,
            src: NodeId(0),
            dst: NodeId(1),
            bitstring: Bits::ZERO,
            dir: RingDir::Cw,
            len: 2,
            created_at: 0,
        };
        let kind = if tail { FlitKind::Tail } else { FlitKind::Body };
        let decoded = decode(encode(&meta, kind, payload)).expect("valid encoding");
        match (tail, decoded) {
            (true, WireFlit::Tail(p)) | (false, WireFlit::Body(p)) => prop_assert_eq!(p, payload),
            other => prop_assert!(false, "decoded {:?}", other.1),
        }
    }

    /// Unicast paths are valid walks: each hop is rim-adjacent or antipodal,
    /// the walk ends at the destination and its length equals `unicast_hops`.
    #[test]
    fn unicast_path_is_valid_walk(n in quarc_sizes(), src_raw in 0usize..64, dst_raw in 0usize..64) {
        let ring = Ring::new(n);
        let src = NodeId::new(src_raw % n);
        let dst = NodeId::new(dst_raw % n);
        let path = unicast_path(&ring, src, dst);
        prop_assert_eq!(path.len(), unicast_hops(&ring, src, dst));
        let mut prev = src;
        for (i, &node) in path.iter().enumerate() {
            let adjacent = node == ring.cw(prev) || node == ring.ccw(prev);
            let crossed = node == ring.antipode(prev) && i == 0;
            prop_assert!(adjacent || crossed, "illegal hop {prev}->{node}");
            prev = node;
        }
        if src != dst {
            prop_assert_eq!(*path.last().unwrap(), dst);
        }
    }

    /// Broadcast branches partition the non-source nodes exactly.
    #[test]
    fn broadcast_partitions_network(n in quarc_sizes(), src_raw in 0usize..64) {
        let ring = Ring::new(n);
        let src = NodeId::new(src_raw % n);
        let mut covered = HashSet::new();
        for b in broadcast_branches(&ring, src) {
            for d in &b.deliveries {
                prop_assert!(covered.insert(*d), "{d} covered twice");
            }
            // Header destination is the last delivery of the branch.
            prop_assert_eq!(*b.deliveries.last().unwrap(), b.dst);
        }
        prop_assert_eq!(covered.len(), n - 1);
        prop_assert!(!covered.contains(&src));
    }

    /// Multicast branches deliver to exactly the requested target set, and
    /// the bitstring has exactly one bit per delivery.
    #[test]
    fn multicast_hits_exact_target_set(
        n in quarc_sizes(),
        src_raw in 0usize..64,
        target_bits in any::<u64>(),
    ) {
        let ring = Ring::new(n);
        let src = NodeId::new(src_raw % n);
        let targets: Vec<NodeId> = (0..n)
            .filter(|&i| target_bits & (1 << i) != 0)
            .map(NodeId::new)
            .collect();
        let want: HashSet<NodeId> = targets.iter().copied().filter(|&t| t != src).collect();
        let mut slab = BitSlab::new(ring.quarter() + 1);
        let branches = multicast_branches(&ring, src, &targets, &mut slab);
        let mut got = HashSet::new();
        for b in &branches {
            prop_assert_eq!(slab.popcount(b.bitstring) as usize, b.deliveries.len());
            for d in &b.deliveries {
                prop_assert!(got.insert(*d), "{d} delivered twice");
            }
        }
        prop_assert_eq!(got, want);
    }

    /// Quarc preserves Spidergon's shortest-path distances (paper §2.2).
    #[test]
    fn distances_agree(n in quarc_sizes(), a in 0usize..64, b in 0usize..64) {
        let ring = Ring::new(n);
        let (a, b) = (NodeId::new(a % n), NodeId::new(b % n));
        prop_assert_eq!(unicast_hops(&ring, a, b), spidergon_hops(&ring, a, b));
    }

    /// The Spidergon replication chain covers every node exactly once
    /// regardless of source.
    #[test]
    fn chain_broadcast_partitions_network(n in quarc_sizes(), src_raw in 0usize..64) {
        let ring = Ring::new(n);
        let src = NodeId::new(src_raw % n);
        let mut covered = HashSet::new();
        let mut queue: Vec<ChainSeed> =
            spidergon_broadcast_seeds(&ring, src).into_iter().collect();
        while let Some(seed) = queue.pop() {
            prop_assert!(covered.insert(seed.dst), "{} twice", seed.dst);
            let meta = PacketMeta {
                message: MessageId(0),
                packet: PacketId(0),
                class: seed.class,
                src,
                dst: seed.dst,
                bitstring: Bits::inline(seed.remaining as u64),
                dir: seed.dir,
                len: 2,
                created_at: 0,
            };
            queue.extend(chain_continuations(&ring, seed.dst, &meta));
        }
        prop_assert_eq!(covered.len(), n - 1);
    }

    /// The slab-backed bitstring is semantically identical to the retired
    /// `u128` representation for every operation the routers perform —
    /// set, positional read, shift (with the cached bit 0), popcount and
    /// clone independence — across the whole n ≤ 128 range the old word
    /// could express.
    #[test]
    fn slab_matches_u128_semantics(
        positions in proptest::collection::vec(0usize..128, 0..24),
        shifts in 0usize..130,
    ) {
        let mut slab = BitSlab::new(128);
        let mut b = Bits::ZERO;
        let mut model: u128 = 0;
        for &i in &positions {
            if model & (1u128 << i) == 0 {
                slab.set_bit(&mut b, i);
                model |= 1u128 << i;
            }
        }
        prop_assert_eq!(slab.popcount(b), model.count_ones());
        prop_assert_eq!(slab.to_u128(b), model);
        for k in 0..130usize {
            let want = k < 128 && (model >> k) & 1 == 1;
            prop_assert_eq!(slab.bit_at(b, k), want, "bit_at({k})");
        }
        let snapshot = slab.clone_bits(b);
        let frozen = model;
        for s in 0..shifts {
            slab.shift(&mut b);
            model >>= 1;
            prop_assert_eq!(b.bit0(), model & 1 == 1, "bit0 after {s} shifts");
            prop_assert_eq!(slab.popcount(b), model.count_ones());
        }
        prop_assert_eq!(slab.to_u128(b), model);
        // Shifting the original never disturbs the clone.
        prop_assert_eq!(slab.to_u128(snapshot), frozen);
        slab.release(b);
        slab.release(snapshot);
        prop_assert_eq!(slab.live_rows(), 0);
    }

    /// The quadrant decision is a function of the CW distance only
    /// (vertex symmetry of the topology).
    #[test]
    fn quadrant_depends_only_on_distance(n in quarc_sizes(), s in 0usize..64, d in 1usize..64) {
        let ring = Ring::new(n);
        let d = 1 + (d % (n - 1));
        let s = s % n;
        let q0 = quadrant_of(&ring, NodeId(0), NodeId::new(d % n));
        let qs = quadrant_of(&ring, NodeId::new(s), NodeId::new((s + d) % n));
        prop_assert_eq!(q0, qs);
    }
}
