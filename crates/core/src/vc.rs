//! The dateline virtual-channel discipline that makes rim rings
//! deadlock-free.
//!
//! Each rim direction of a ring topology is a unidirectional cycle of
//! channels, so wormhole routing over a single channel class could deadlock.
//! The paper assigns **two virtual channels per physical link** (§2.1) — the
//! classical dateline scheme: packets are injected on VC0 and move to VC1
//! permanently once they traverse the dateline edge (CW edge `n−1 → 0`, CCW
//! edge `0 → n−1`). Because no packet travels more than `n/4 (+1)` hops it
//! crosses the dateline at most once, and the resulting channel dependency
//! graph is acyclic — proved constructively by
//! [`ChannelDepGraph`] and asserted in this module's tests for every Quarc and
//! Spidergon route.

use crate::ids::{NodeId, VcId};
use crate::ring::{Ring, RingDir};
use std::collections::HashMap;

/// The VC on which all packets are injected.
pub const INJECTION_VC: VcId = VcId::VC0;

/// The VC a packet uses on the rim hop leaving `node` in direction `dir`,
/// given the VC it held before the hop. Crossing the dateline switches the
/// packet to VC1; it never switches back.
#[inline]
pub fn vc_after_rim_hop(ring: &Ring, node: NodeId, dir: RingDir, current: VcId) -> VcId {
    if ring.crosses_dateline(node, dir) {
        VcId::VC1
    } else {
        current
    }
}

/// The VC used on a cross hop. Cross links are taken only as the first hop of
/// a route, so the packet still holds the injection VC; keeping them on VC0
/// leaves the cross channels trivially acyclic (they never feed another cross
/// channel).
#[inline]
pub fn vc_for_cross_hop() -> VcId {
    INJECTION_VC
}

/// A directed graph over virtual channels used to *prove* deadlock freedom of
/// a routing discipline: nodes are `(link, vc)` pairs, and an edge `a → b`
/// means some packet holds channel `a` while requesting channel `b`.
/// A wormhole network is deadlock-free if this graph is acyclic (Dally &
/// Seitz). The test suites of this crate and of `quarc-sim` feed every route
/// of every source/destination pair through this graph.
#[derive(Debug, Default)]
pub struct ChannelDepGraph {
    /// Adjacency: channel id → set of successor channel ids.
    edges: HashMap<(u64, VcId), Vec<(u64, VcId)>>,
}

impl ChannelDepGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that a route holds `from` while requesting `to`. Link ids are
    /// caller-defined but must uniquely identify a physical channel.
    pub fn add_dependency(&mut self, from: (u64, VcId), to: (u64, VcId)) {
        let succs = self.edges.entry(from).or_default();
        if !succs.contains(&to) {
            succs.push(to);
        }
        self.edges.entry(to).or_default();
    }

    /// Record the channel sequence of a whole route (consecutive pairs become
    /// dependencies).
    pub fn add_route(&mut self, channels: &[(u64, VcId)]) {
        for w in channels.windows(2) {
            self.add_dependency(w[0], w[1]);
        }
        if let [only] = channels {
            self.edges.entry(*only).or_default();
        }
    }

    /// Number of distinct channels seen.
    pub fn num_channels(&self) -> usize {
        self.edges.len()
    }

    /// Whether the dependency graph contains a cycle. `false` means the
    /// routing discipline that produced it is deadlock-free.
    pub fn has_cycle(&self) -> bool {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks: HashMap<(u64, VcId), Mark> =
            self.edges.keys().map(|&k| (k, Mark::White)).collect();
        // Iterative DFS with an explicit stack, colouring grey on entry.
        for &start in self.edges.keys() {
            if marks[&start] != Mark::White {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            marks.insert(start, Mark::Grey);
            while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
                let succs = &self.edges[&node];
                if *idx < succs.len() {
                    let next = succs[*idx];
                    *idx += 1;
                    match marks[&next] {
                        Mark::Grey => return true,
                        Mark::White => {
                            marks.insert(next, Mark::Grey);
                            stack.push((next, 0));
                        }
                        Mark::Black => {}
                    }
                } else {
                    marks.insert(node, Mark::Black);
                    stack.pop();
                }
            }
        }
        false
    }
}

/// A unique id for a directed physical link in a ring topology, for use as
/// the link component of [`ChannelDepGraph`] channels.
///
/// Encoding: `node * 4 + kind` with kind 0 = CW rim leaving `node`,
/// 1 = CCW rim leaving `node`, 2 = cross-right leaving `node`,
/// 3 = cross-left leaving `node`.
pub fn ring_link_id(node: NodeId, kind: RingLinkKind) -> u64 {
    node.index() as u64 * 4 + kind as u64
}

/// Kinds of directed link in a ring topology (Spidergon uses only the first
/// three).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RingLinkKind {
    /// Rim link to the CW neighbour.
    RimCw = 0,
    /// Rim link to the CCW neighbour.
    RimCcw = 1,
    /// Cross-right link (Spidergon's single cross uses this id).
    CrossRight = 2,
    /// Cross-left link (Quarc only).
    CrossLeft = 3,
}

/// The channel sequence of a Quarc unicast route from `src` to `dst`.
pub fn quarc_route_channels(ring: &Ring, src: NodeId, dst: NodeId) -> Vec<(u64, VcId)> {
    use crate::quadrant::{quadrant_of, Quadrant};
    if src == dst {
        return Vec::new();
    }
    let quad = quadrant_of(ring, src, dst);
    let mut channels = Vec::new();
    let mut vc = INJECTION_VC;
    let mut cur = src;
    match quad {
        Quadrant::CrossRight => {
            channels.push((ring_link_id(cur, RingLinkKind::CrossRight), vc_for_cross_hop()));
            cur = ring.antipode(cur);
        }
        Quadrant::CrossLeft => {
            channels.push((ring_link_id(cur, RingLinkKind::CrossLeft), vc_for_cross_hop()));
            cur = ring.antipode(cur);
        }
        _ => {}
    }
    let dir = quad.rim_dir();
    let kind = match dir {
        RingDir::Cw => RingLinkKind::RimCw,
        RingDir::Ccw => RingLinkKind::RimCcw,
    };
    while cur != dst {
        vc = vc_after_rim_hop(ring, cur, dir, vc);
        channels.push((ring_link_id(cur, kind), vc));
        cur = ring.step(cur, dir);
    }
    channels
}

/// The channel sequence of a Spidergon unicast route from `src` to `dst`.
pub fn spidergon_route_channels(ring: &Ring, src: NodeId, dst: NodeId) -> Vec<(u64, VcId)> {
    use crate::routing::{spidergon_route, RouteAction};
    use crate::topology::SpiOut;
    let mut channels = Vec::new();
    let mut vc = INJECTION_VC;
    let mut cur = src;
    loop {
        match spidergon_route(ring, cur, dst) {
            RouteAction::Deliver => return channels,
            RouteAction::Forward(SpiOut::RimCw) => {
                vc = vc_after_rim_hop(ring, cur, RingDir::Cw, vc);
                channels.push((ring_link_id(cur, RingLinkKind::RimCw), vc));
                cur = ring.cw(cur);
            }
            RouteAction::Forward(SpiOut::RimCcw) => {
                vc = vc_after_rim_hop(ring, cur, RingDir::Ccw, vc);
                channels.push((ring_link_id(cur, RingLinkKind::RimCcw), vc));
                cur = ring.ccw(cur);
            }
            RouteAction::Forward(SpiOut::Cross) => {
                channels.push((ring_link_id(cur, RingLinkKind::CrossRight), vc_for_cross_hop()));
                cur = ring.antipode(cur);
                vc = INJECTION_VC;
            }
            _ => unreachable!(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadrant::broadcast_branches;

    #[test]
    fn dateline_switches_vc_exactly_once() {
        let ring = Ring::new(16);
        // CW route 14 → 2 crosses the dateline at 15 → 0.
        let chans = quarc_route_channels(&ring, NodeId(14), NodeId(2));
        let vcs: Vec<VcId> = chans.iter().map(|c| c.1).collect();
        assert_eq!(vcs, vec![VcId::VC0, VcId::VC1, VcId::VC1, VcId::VC1]);
    }

    #[test]
    fn routes_not_touching_dateline_stay_on_vc0() {
        let ring = Ring::new(16);
        let chans = quarc_route_channels(&ring, NodeId(1), NodeId(4));
        assert!(chans.iter().all(|c| c.1 == VcId::VC0));
    }

    #[test]
    fn quarc_unicast_dependency_graph_is_acyclic() {
        for n in [8usize, 16, 32, 64] {
            let ring = Ring::new(n);
            let mut g = ChannelDepGraph::new();
            for s in ring.nodes() {
                for t in ring.nodes() {
                    g.add_route(&quarc_route_channels(&ring, s, t));
                }
            }
            assert!(!g.has_cycle(), "Quarc n={n} unicast CDG has a cycle");
        }
    }

    #[test]
    fn spidergon_unicast_dependency_graph_is_acyclic() {
        for n in [8usize, 16, 32, 64] {
            let ring = Ring::new(n);
            let mut g = ChannelDepGraph::new();
            for s in ring.nodes() {
                for t in ring.nodes() {
                    g.add_route(&spidergon_route_channels(&ring, s, t));
                }
            }
            assert!(!g.has_cycle(), "Spidergon n={n} unicast CDG has a cycle");
        }
    }

    #[test]
    fn quarc_broadcast_dependency_graph_is_acyclic() {
        // BRCP broadcasts follow base-routing paths, so adding all broadcast
        // branch channel sequences must keep the graph acyclic (§2.5.2:
        // "Since the base routing algorithm in the Quarc NoC is
        // deadlock-free, adopting BRCP technique ensures that the broadcast
        // operation ... is also deadlock-free").
        for n in [8usize, 16, 32, 64] {
            let ring = Ring::new(n);
            let mut g = ChannelDepGraph::new();
            for s in ring.nodes() {
                for t in ring.nodes() {
                    g.add_route(&quarc_route_channels(&ring, s, t));
                }
                for b in broadcast_branches(&ring, s) {
                    // A branch's channel sequence equals the unicast route to
                    // its terminal via its quadrant.
                    let mut vc = INJECTION_VC;
                    let mut channels = Vec::new();
                    let mut cur = s;
                    if b.quadrant.is_cross() {
                        let kind = if b.quadrant == crate::quadrant::Quadrant::CrossRight {
                            RingLinkKind::CrossRight
                        } else {
                            RingLinkKind::CrossLeft
                        };
                        channels.push((ring_link_id(cur, kind), vc_for_cross_hop()));
                        cur = ring.antipode(cur);
                    }
                    let dir = b.quadrant.rim_dir();
                    let kind = match dir {
                        RingDir::Cw => RingLinkKind::RimCw,
                        RingDir::Ccw => RingLinkKind::RimCcw,
                    };
                    while cur != b.dst {
                        vc = vc_after_rim_hop(&ring, cur, dir, vc);
                        channels.push((ring_link_id(cur, kind), vc));
                        cur = ring.step(cur, dir);
                    }
                    g.add_route(&channels);
                }
            }
            assert!(!g.has_cycle(), "Quarc n={n} broadcast CDG has a cycle");
        }
    }

    #[test]
    fn single_vc_ring_would_deadlock() {
        // Sanity check that the detector can find cycles: a ring where every
        // packet stays on VC0 produces a cyclic dependency.
        let ring = Ring::new(8);
        let mut g = ChannelDepGraph::new();
        for s in ring.nodes() {
            // Route two hops CW, never switching VC.
            let a = ring_link_id(s, RingLinkKind::RimCw);
            let b = ring_link_id(ring.cw(s), RingLinkKind::RimCw);
            g.add_dependency((a, VcId::VC0), (b, VcId::VC0));
        }
        assert!(g.has_cycle());
    }

    #[test]
    fn cycle_detector_handles_diamonds() {
        // A diamond (two paths to the same node) is acyclic and must not be
        // misreported.
        let mut g = ChannelDepGraph::new();
        g.add_dependency((0, VcId::VC0), (1, VcId::VC0));
        g.add_dependency((0, VcId::VC0), (2, VcId::VC0));
        g.add_dependency((1, VcId::VC0), (3, VcId::VC0));
        g.add_dependency((2, VcId::VC0), (3, VcId::VC0));
        assert!(!g.has_cycle());
        assert_eq!(g.num_channels(), 4);
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g = ChannelDepGraph::new();
        g.add_dependency((7, VcId::VC1), (7, VcId::VC1));
        assert!(g.has_cycle());
    }
}
