//! Ring arithmetic shared by the Quarc and Spidergon topologies.
//!
//! Both networks place `n` nodes on a ring with clockwise (CW) and
//! counter-clockwise (CCW) rim links plus cross ("spoke") links to the
//! antipodal node. All routing maths reduces to modular distances on this
//! ring, centralised here so that the router models, the RTL model and the
//! analytical models cannot drift apart.

use crate::ids::NodeId;
use std::fmt;

/// A direction of travel along the rim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RingDir {
    /// Clockwise: node addresses increase (modulo `n`).
    Cw,
    /// Counter-clockwise: node addresses decrease (modulo `n`).
    Ccw,
}

impl RingDir {
    /// The opposite direction.
    #[inline]
    pub fn opposite(self) -> RingDir {
        match self {
            RingDir::Cw => RingDir::Ccw,
            RingDir::Ccw => RingDir::Cw,
        }
    }

    /// Stable index (CW = 0, CCW = 1) for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            RingDir::Cw => 0,
            RingDir::Ccw => 1,
        }
    }
}

impl fmt::Display for RingDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RingDir::Cw => write!(f, "cw"),
            RingDir::Ccw => write!(f, "ccw"),
        }
    }
}

/// Modular arithmetic on a ring of `n` nodes.
///
/// `n` must be at least 4 and divisible by 4 for the Quarc quadrant scheme to
/// tile exactly (the paper evaluates N ∈ {8, 16, 32, 64}); Spidergon only
/// requires even `n`. Constructors of the concrete topologies enforce their
/// own constraint — `Ring` itself only requires `n ≥ 2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ring {
    n: usize,
}

impl Ring {
    /// A ring of `n` nodes. Panics if `n < 2`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 2, "a ring needs at least 2 nodes");
        assert!(n <= u32::MAX as usize, "node addresses are 32-bit");
        Ring { n }
    }

    /// Number of nodes on the ring.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Rings are never empty (enforced at construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The clockwise neighbour of `a`.
    #[inline]
    pub fn cw(&self, a: NodeId) -> NodeId {
        NodeId::new((a.index() + 1) % self.n)
    }

    /// The counter-clockwise neighbour of `a`.
    #[inline]
    pub fn ccw(&self, a: NodeId) -> NodeId {
        NodeId::new((a.index() + self.n - 1) % self.n)
    }

    /// The neighbour of `a` in direction `dir`.
    #[inline]
    pub fn step(&self, a: NodeId, dir: RingDir) -> NodeId {
        match dir {
            RingDir::Cw => self.cw(a),
            RingDir::Ccw => self.ccw(a),
        }
    }

    /// The node `k` hops from `a` in direction `dir`.
    #[inline]
    pub fn step_n(&self, a: NodeId, dir: RingDir, k: usize) -> NodeId {
        let k = k % self.n;
        match dir {
            RingDir::Cw => NodeId::new((a.index() + k) % self.n),
            RingDir::Ccw => NodeId::new((a.index() + self.n - k) % self.n),
        }
    }

    /// The clockwise distance from `a` to `b`: the number of CW rim hops.
    #[inline]
    pub fn cw_dist(&self, a: NodeId, b: NodeId) -> usize {
        (b.index() + self.n - a.index()) % self.n
    }

    /// The counter-clockwise distance from `a` to `b`.
    #[inline]
    pub fn ccw_dist(&self, a: NodeId, b: NodeId) -> usize {
        (a.index() + self.n - b.index()) % self.n
    }

    /// The node diametrically opposite `a` (requires even `n`).
    #[inline]
    pub fn antipode(&self, a: NodeId) -> NodeId {
        debug_assert!(self.n.is_multiple_of(2), "antipode requires an even ring");
        NodeId::new((a.index() + self.n / 2) % self.n)
    }

    /// One quarter of the ring, the Quarc quadrant depth (`n/4`).
    #[inline]
    pub fn quarter(&self) -> usize {
        self.n / 4
    }

    /// Half of the ring (`n/2`).
    #[inline]
    pub fn half(&self) -> usize {
        self.n / 2
    }

    /// Whether the rim hop leaving `a` in direction `dir` traverses the
    /// dateline edge.
    ///
    /// The dateline is the CW edge `n−1 → 0` (equivalently the CCW edge
    /// `0 → n−1`). Packets move from VC0 to VC1 when they traverse it, which
    /// breaks the cyclic channel dependency of each unidirectional rim ring —
    /// this is the purpose of the paper's two virtual channels per link.
    #[inline]
    pub fn crosses_dateline(&self, a: NodeId, dir: RingDir) -> bool {
        match dir {
            RingDir::Cw => a.index() == self.n - 1,
            RingDir::Ccw => a.index() == 0,
        }
    }

    /// Iterate over all nodes of the ring in address order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.n).map(NodeId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring16() -> Ring {
        Ring::new(16)
    }

    #[test]
    fn neighbours_wrap() {
        let r = ring16();
        assert_eq!(r.cw(NodeId(15)), NodeId(0));
        assert_eq!(r.ccw(NodeId(0)), NodeId(15));
        assert_eq!(r.cw(NodeId(3)), NodeId(4));
        assert_eq!(r.ccw(NodeId(3)), NodeId(2));
    }

    #[test]
    fn distances() {
        let r = ring16();
        assert_eq!(r.cw_dist(NodeId(0), NodeId(5)), 5);
        assert_eq!(r.ccw_dist(NodeId(0), NodeId(5)), 11);
        assert_eq!(r.cw_dist(NodeId(14), NodeId(2)), 4);
        assert_eq!(r.cw_dist(NodeId(7), NodeId(7)), 0);
    }

    #[test]
    fn step_n_matches_repeated_step() {
        let r = ring16();
        for start in 0..16u32 {
            let mut cur = NodeId(start);
            for k in 0..20 {
                assert_eq!(r.step_n(NodeId(start), RingDir::Cw, k), cur);
                cur = r.cw(cur);
            }
        }
    }

    #[test]
    fn antipode_is_involution() {
        let r = ring16();
        for node in r.nodes() {
            assert_eq!(r.antipode(r.antipode(node)), node);
            assert_eq!(r.cw_dist(node, r.antipode(node)), 8);
        }
    }

    #[test]
    fn dateline_edges() {
        let r = ring16();
        assert!(r.crosses_dateline(NodeId(15), RingDir::Cw));
        assert!(!r.crosses_dateline(NodeId(0), RingDir::Cw));
        assert!(r.crosses_dateline(NodeId(0), RingDir::Ccw));
        assert!(!r.crosses_dateline(NodeId(15), RingDir::Ccw));
    }

    #[test]
    fn direction_opposite() {
        assert_eq!(RingDir::Cw.opposite(), RingDir::Ccw);
        assert_eq!(RingDir::Ccw.opposite(), RingDir::Cw);
        assert_eq!(RingDir::Cw.index(), 0);
        assert_eq!(RingDir::Ccw.index(), 1);
    }

    #[test]
    fn cw_and_ccw_distances_sum_to_n() {
        let r = ring16();
        for a in r.nodes() {
            for b in r.nodes() {
                if a != b {
                    assert_eq!(r.cw_dist(a, b) + r.ccw_dist(a, b), 16);
                }
            }
        }
    }
}
