//! # quarc-core
//!
//! Core abstractions of the **Quarc Network-on-Chip** (Moadeli, Maji,
//! Vanderbauwhede, *"Design and implementation of the Quarc Network on-Chip"*,
//! IEEE IPDPS 2009): the 34-bit flit wire format, packet metadata, the Quarc
//! and Spidergon ring topologies (plus a 2D mesh used for validation), the
//! quadrant calculator that constitutes the entirety of Quarc routing, the
//! BRCP broadcast/multicast branch planner, Spidergon's broadcast-by-unicast
//! replication plan, and the dateline virtual-channel discipline with a
//! channel-dependency-graph deadlock-freedom checker.
//!
//! Everything in this crate is pure (no I/O, no clocks, no randomness): these
//! are the definitions that the flit-level simulator (`quarc-sim`), the
//! signal-level hardware model (`quarc-rtl`), the area model (`quarc-area`)
//! and the analytical latency models (`quarc-analytical`) all share, so that
//! a routing convention fixed here is fixed everywhere.
//!
//! ## Quick tour
//!
//! ```
//! use quarc_core::prelude::*;
//!
//! // The paper's Fig. 6: node 0 broadcasting in a 16-node Quarc emits four
//! // streams whose header destinations are 4, 5, 11 and 12.
//! let ring = Ring::new(16);
//! let mut dsts: Vec<u32> = broadcast_branches(&ring, NodeId(0))
//!     .iter()
//!     .map(|b| b.dst.0)
//!     .collect();
//! dsts.sort();
//! assert_eq!(dsts, vec![4, 5, 11, 12]);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bits;
pub mod config;
pub mod flit;
pub mod ids;
pub mod quadrant;
pub mod ring;
pub mod routing;
pub mod topology;
pub mod torus;
pub mod vc;

/// Convenient re-exports of the types used by nearly every downstream module.
pub mod prelude {
    pub use crate::bits::{BitSlab, Bits};
    pub use crate::config::{ArbPolicy, ConfigError, NocConfig, MAX_VCS};
    pub use crate::flit::{Flit, FlitKind, PacketMeta, PacketRef, PacketTable, TrafficClass};
    pub use crate::ids::{MessageId, NodeId, PacketId, VcId};
    pub use crate::quadrant::{
        broadcast_branch_heads, broadcast_branches, multicast_branches, quadrant_of, unicast_hops,
        unicast_path, Branch, Quadrant,
    };
    pub use crate::ring::{Ring, RingDir};
    pub use crate::routing::{
        chain_continuations, quarc_injection_out, quarc_route, spidergon_broadcast_seeds,
        spidergon_hops, spidergon_route, ChainSeed, ChainSeeds, RouteAction,
    };
    pub use crate::topology::{
        GridBranch, MeshOut, MeshTopology, QuarcIn, QuarcOut, QuarcTopology, SpiIn, SpiOut,
        SpidergonTopology, TopologyKind,
    };
    pub use crate::torus::{TorusOut, TorusTopology};
    pub use crate::vc::{vc_after_rim_hop, vc_for_cross_hop, INJECTION_VC};
}
