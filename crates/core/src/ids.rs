//! Small copyable identifier types shared by every layer of the stack.
//!
//! Node addresses in the Quarc NoC are at most 6 bits wide (the paper fixes the
//! practical network size at 64 nodes, §2.6), so a `u32` leaves generous
//! headroom — wide enough for the behavioural simulator's n = 65,536 scaling
//! axis — while keeping the types register-sized.

use std::fmt;

/// Address of a node (router + attached processing element) on the ring.
///
/// Nodes are numbered `0..n` clockwise, matching the paper's figures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Construct from a `usize` index. Panics (debug) if the index exceeds `u32`.
    #[inline]
    pub fn new(idx: usize) -> Self {
        debug_assert!(idx <= u32::MAX as usize, "node index out of range");
        NodeId(idx as u32)
    }

    /// The node's position as a `usize`, for indexing per-node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(u32::from(v))
    }
}

/// Globally unique identifier of one packet (one wormhole worm).
///
/// Allocated monotonically by the traffic source; uniqueness is what lets the
/// ejection side re-associate flits with packets and lets invariant checks
/// detect duplication or loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId(pub u64);

impl PacketId {
    /// The raw id value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Identifier of a message (one application-level send).
///
/// A unicast message maps to exactly one packet; a broadcast message maps to
/// one packet per branch (four in Quarc, a replication tree in Spidergon).
/// Latency statistics are aggregated per *message*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MessageId(pub u64);

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

/// A virtual channel index on a physical link.
///
/// The paper uses exactly two VCs per physical link ("Each physical link is
/// shared by two virtual channels in order to avoid deadlock", §2.1); the
/// simulator keeps the count configurable but defaults to 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VcId(pub u8);

impl VcId {
    /// Virtual channel 0: used before a packet crosses the dateline.
    pub const VC0: VcId = VcId(0);
    /// Virtual channel 1: used after a packet crosses the dateline.
    pub const VC1: VcId = VcId(1);

    /// The VC's position as a `usize`, for indexing per-VC arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vc{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn node_id_roundtrip() {
        for i in [0usize, 1, 15, 63, 1024] {
            assert_eq!(NodeId::new(i).index(), i);
        }
    }

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(PacketId(9).to_string(), "p9");
        assert_eq!(MessageId(3).to_string(), "m3");
        assert_eq!(VcId::VC1.to_string(), "vc1");
    }

    #[test]
    fn ids_are_hashable_and_distinct() {
        let set: HashSet<NodeId> = (0..16u32).map(NodeId).collect();
        assert_eq!(set.len(), 16);
    }

    #[test]
    fn vc_constants() {
        assert_eq!(VcId::VC0.index(), 0);
        assert_eq!(VcId::VC1.index(), 1);
        assert!(VcId::VC0 < VcId::VC1);
    }

    #[test]
    fn node_from_ints() {
        let n: NodeId = 5u16.into();
        assert_eq!(n, NodeId(5));
        let w: NodeId = 70_000u32.into();
        assert_eq!(w.index(), 70_000);
    }
}
