//! Topology descriptions: port enumerations, link maps and feeder tables for
//! the Quarc and Spidergon NoCs (plus a 2D mesh used for simulator
//! validation, mirroring the paper's §3.2, and as the paper's stated "next
//! objective" comparison point).
//!
//! A *feeder table* lists, for every output port of a switch, which input
//! ports may ever request it under the deterministic routing discipline. The
//! paper's cost argument (§2.3.2) rests on these tables being tiny — "the
//! hardware is tailored to the paths allowed by the routing discipline" — so
//! they are defined here once and shared by the behavioural router, the RTL
//! crossbar and the area model.

use crate::bits::{BitSlab, Bits};
use crate::ids::NodeId;
use crate::quadrant::Quadrant;
use crate::ring::Ring;
use std::fmt;

/// Which network family a configuration refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologyKind {
    /// The paper's contribution: edge-symmetric ring + doubled cross links,
    /// all-port router.
    Quarc,
    /// The STMicroelectronics baseline: ring + single cross link, one-port
    /// router.
    Spidergon,
    /// 2D mesh with XY routing (validation / extension).
    Mesh,
    /// 2D torus: the mesh with wrap links, dimension-ordered routing and
    /// per-dimension dateline VCs (see [`crate::torus`]) — the second half of
    /// the paper's §4 "next objective" comparison.
    Torus,
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TopologyKind::Quarc => "quarc",
            TopologyKind::Spidergon => "spidergon",
            TopologyKind::Mesh => "mesh",
            TopologyKind::Torus => "torus",
        };
        write!(f, "{s}")
    }
}

// ---------------------------------------------------------------------------
// Quarc
// ---------------------------------------------------------------------------

/// Input ports of a Quarc switch: four network inputs plus the four local
/// ingress ports of the all-port router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuarcIn {
    /// Rim input carrying clockwise traffic (link from the CCW neighbour).
    RimCw,
    /// Rim input carrying counter-clockwise traffic.
    RimCcw,
    /// Cross-right link input (arrives at the antipode; may deliver there).
    CrossRight,
    /// Cross-left link input (transit only — never delivers, §2.3.2).
    CrossLeft,
    /// Local ingress from the transceiver's per-quadrant queue.
    Local(Quadrant),
}

impl QuarcIn {
    /// All eight input ports.
    pub const ALL: [QuarcIn; 8] = [
        QuarcIn::RimCw,
        QuarcIn::RimCcw,
        QuarcIn::CrossRight,
        QuarcIn::CrossLeft,
        QuarcIn::Local(Quadrant::Right),
        QuarcIn::Local(Quadrant::CrossRight),
        QuarcIn::Local(Quadrant::CrossLeft),
        QuarcIn::Local(Quadrant::Left),
    ];

    /// The four network (non-local) inputs.
    pub const NETWORK: [QuarcIn; 4] =
        [QuarcIn::RimCw, QuarcIn::RimCcw, QuarcIn::CrossRight, QuarcIn::CrossLeft];

    /// Stable index for per-port arrays (0..8).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            QuarcIn::RimCw => 0,
            QuarcIn::RimCcw => 1,
            QuarcIn::CrossRight => 2,
            QuarcIn::CrossLeft => 3,
            QuarcIn::Local(q) => 4 + q.index(),
        }
    }

    /// Is this one of the four local ingress ports?
    #[inline]
    pub fn is_local(self) -> bool {
        matches!(self, QuarcIn::Local(_))
    }
}

impl fmt::Display for QuarcIn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuarcIn::RimCw => write!(f, "in:rim-cw"),
            QuarcIn::RimCcw => write!(f, "in:rim-ccw"),
            QuarcIn::CrossRight => write!(f, "in:cross-right"),
            QuarcIn::CrossLeft => write!(f, "in:cross-left"),
            QuarcIn::Local(q) => write!(f, "in:local-{q}"),
        }
    }
}

/// Output ports of a Quarc switch: four network outputs plus local ejection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuarcOut {
    /// Rim link to the clockwise neighbour.
    RimCw,
    /// Rim link to the counter-clockwise neighbour.
    RimCcw,
    /// Cross-right link to the antipode.
    CrossRight,
    /// Cross-left link to the antipode.
    CrossLeft,
    /// Delivery to the local PE.
    Eject,
}

impl QuarcOut {
    /// All five output ports.
    pub const ALL: [QuarcOut; 5] = [
        QuarcOut::RimCw,
        QuarcOut::RimCcw,
        QuarcOut::CrossRight,
        QuarcOut::CrossLeft,
        QuarcOut::Eject,
    ];

    /// The four network (link) outputs.
    pub const NETWORK: [QuarcOut; 4] =
        [QuarcOut::RimCw, QuarcOut::RimCcw, QuarcOut::CrossRight, QuarcOut::CrossLeft];

    /// Stable index for per-port arrays (0..5).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            QuarcOut::RimCw => 0,
            QuarcOut::RimCcw => 1,
            QuarcOut::CrossRight => 2,
            QuarcOut::CrossLeft => 3,
            QuarcOut::Eject => 4,
        }
    }
}

impl fmt::Display for QuarcOut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuarcOut::RimCw => write!(f, "out:rim-cw"),
            QuarcOut::RimCcw => write!(f, "out:rim-ccw"),
            QuarcOut::CrossRight => write!(f, "out:cross-right"),
            QuarcOut::CrossLeft => write!(f, "out:cross-left"),
            QuarcOut::Eject => write!(f, "out:eject"),
        }
    }
}

/// The Quarc topology: `n` nodes (n ≡ 0 mod 4) on a ring with CW/CCW rim
/// links and *two* unidirectional cross links per node pair.
#[derive(Debug, Clone, Copy)]
pub struct QuarcTopology {
    ring: Ring,
}

impl QuarcTopology {
    /// Build an `n`-node Quarc. Panics unless `n ≥ 4` and `n ≡ 0 (mod 4)`.
    pub fn new(n: usize) -> Self {
        assert!(n >= 4 && n.is_multiple_of(4), "Quarc requires n ≥ 4 and n ≡ 0 (mod 4), got {n}");
        QuarcTopology { ring: Ring::new(n) }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.ring.len()
    }

    /// The underlying ring arithmetic.
    #[inline]
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// Where a network output of `node` lands: the downstream node and the
    /// input port it feeds there. `Eject` has no downstream and returns
    /// `None`.
    pub fn link_target(&self, node: NodeId, out: QuarcOut) -> Option<(NodeId, QuarcIn)> {
        match out {
            QuarcOut::RimCw => Some((self.ring.cw(node), QuarcIn::RimCw)),
            QuarcOut::RimCcw => Some((self.ring.ccw(node), QuarcIn::RimCcw)),
            QuarcOut::CrossRight => Some((self.ring.antipode(node), QuarcIn::CrossRight)),
            QuarcOut::CrossLeft => Some((self.ring.antipode(node), QuarcIn::CrossLeft)),
            QuarcOut::Eject => None,
        }
    }

    /// The feeder table (§2.3.2): which inputs may ever request each output.
    ///
    /// Note the asymmetry between the cross inputs: `CrossRight` may eject
    /// (deliver at the antipode) while `CrossLeft` is transit-only — this is
    /// the paper's "one of the cross input ports may require to send flits in
    /// maximum two possible destinations".
    pub fn feeders(out: QuarcOut) -> &'static [QuarcIn] {
        match out {
            QuarcOut::RimCw => {
                &[QuarcIn::RimCw, QuarcIn::CrossRight, QuarcIn::Local(Quadrant::Right)]
            }
            QuarcOut::RimCcw => {
                &[QuarcIn::RimCcw, QuarcIn::CrossLeft, QuarcIn::Local(Quadrant::Left)]
            }
            QuarcOut::CrossRight => &[QuarcIn::Local(Quadrant::CrossRight)],
            QuarcOut::CrossLeft => &[QuarcIn::Local(Quadrant::CrossLeft)],
            QuarcOut::Eject => &[QuarcIn::RimCw, QuarcIn::RimCcw, QuarcIn::CrossRight],
        }
    }

    /// The outputs an input may request (transpose of [`Self::feeders`]).
    pub fn destinations(input: QuarcIn) -> &'static [QuarcOut] {
        match input {
            QuarcIn::RimCw => &[QuarcOut::Eject, QuarcOut::RimCw],
            QuarcIn::RimCcw => &[QuarcOut::Eject, QuarcOut::RimCcw],
            QuarcIn::CrossRight => &[QuarcOut::Eject, QuarcOut::RimCw],
            QuarcIn::CrossLeft => &[QuarcOut::RimCcw],
            QuarcIn::Local(Quadrant::Right) => &[QuarcOut::RimCw],
            QuarcIn::Local(Quadrant::CrossRight) => &[QuarcOut::CrossRight],
            QuarcIn::Local(Quadrant::CrossLeft) => &[QuarcOut::CrossLeft],
            QuarcIn::Local(Quadrant::Left) => &[QuarcOut::RimCcw],
        }
    }

    /// Every directed network link as `(from, out_port, to)`.
    pub fn links(&self) -> Vec<(NodeId, QuarcOut, NodeId)> {
        let mut v = Vec::with_capacity(self.num_nodes() * 4);
        for node in self.ring.nodes() {
            for out in QuarcOut::NETWORK {
                let (to, _) = self.link_target(node, out).expect("network port");
                v.push((node, out, to));
            }
        }
        v
    }
}

// ---------------------------------------------------------------------------
// Spidergon
// ---------------------------------------------------------------------------

/// Input ports of a Spidergon switch: three network inputs plus the single
/// local ingress of the one-port router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpiIn {
    /// Rim input carrying clockwise traffic.
    RimCw,
    /// Rim input carrying counter-clockwise traffic.
    RimCcw,
    /// Cross ("spoke") link input.
    Cross,
    /// The single local ingress port.
    Local,
}

impl SpiIn {
    /// All four input ports.
    pub const ALL: [SpiIn; 4] = [SpiIn::RimCw, SpiIn::RimCcw, SpiIn::Cross, SpiIn::Local];

    /// Stable index for per-port arrays (0..4).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            SpiIn::RimCw => 0,
            SpiIn::RimCcw => 1,
            SpiIn::Cross => 2,
            SpiIn::Local => 3,
        }
    }
}

impl fmt::Display for SpiIn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiIn::RimCw => write!(f, "in:rim-cw"),
            SpiIn::RimCcw => write!(f, "in:rim-ccw"),
            SpiIn::Cross => write!(f, "in:cross"),
            SpiIn::Local => write!(f, "in:local"),
        }
    }
}

/// Output ports of a Spidergon switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpiOut {
    /// Rim link to the clockwise neighbour.
    RimCw,
    /// Rim link to the counter-clockwise neighbour.
    RimCcw,
    /// Cross link to the antipode.
    Cross,
    /// Delivery to the local PE (single ejection port).
    Eject,
}

impl SpiOut {
    /// All four output ports.
    pub const ALL: [SpiOut; 4] = [SpiOut::RimCw, SpiOut::RimCcw, SpiOut::Cross, SpiOut::Eject];

    /// The three network (link) outputs.
    pub const NETWORK: [SpiOut; 3] = [SpiOut::RimCw, SpiOut::RimCcw, SpiOut::Cross];

    /// Stable index for per-port arrays (0..4).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            SpiOut::RimCw => 0,
            SpiOut::RimCcw => 1,
            SpiOut::Cross => 2,
            SpiOut::Eject => 3,
        }
    }
}

impl fmt::Display for SpiOut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpiOut::RimCw => write!(f, "out:rim-cw"),
            SpiOut::RimCcw => write!(f, "out:rim-ccw"),
            SpiOut::Cross => write!(f, "out:cross"),
            SpiOut::Eject => write!(f, "out:eject"),
        }
    }
}

/// The Spidergon topology: `n` nodes (even) on a ring with CW/CCW rim links
/// and one cross link per node pair.
#[derive(Debug, Clone, Copy)]
pub struct SpidergonTopology {
    ring: Ring,
}

impl SpidergonTopology {
    /// Build an `n`-node Spidergon. Panics unless `n ≥ 4` and `n` is even.
    /// (We additionally require `n ≡ 0 (mod 4)` when comparing against Quarc,
    /// but the topology itself only needs even `n`.)
    pub fn new(n: usize) -> Self {
        assert!(n >= 4 && n.is_multiple_of(2), "Spidergon requires even n ≥ 4, got {n}");
        SpidergonTopology { ring: Ring::new(n) }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.ring.len()
    }

    /// The underlying ring arithmetic.
    #[inline]
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// Where a network output of `node` lands.
    pub fn link_target(&self, node: NodeId, out: SpiOut) -> Option<(NodeId, SpiIn)> {
        match out {
            SpiOut::RimCw => Some((self.ring.cw(node), SpiIn::RimCw)),
            SpiOut::RimCcw => Some((self.ring.ccw(node), SpiIn::RimCcw)),
            SpiOut::Cross => Some((self.ring.antipode(node), SpiIn::Cross)),
            SpiOut::Eject => None,
        }
    }

    /// The feeder table under across-first deterministic routing.
    ///
    /// The cross input may continue in either rim direction (or eject), and
    /// the single ejection port is shared by all three network inputs — both
    /// facts make the Spidergon crossbar busier than Quarc's, which is the
    /// structural root of the paper's cost result.
    pub fn feeders(out: SpiOut) -> &'static [SpiIn] {
        match out {
            SpiOut::RimCw => &[SpiIn::RimCw, SpiIn::Cross, SpiIn::Local],
            SpiOut::RimCcw => &[SpiIn::RimCcw, SpiIn::Cross, SpiIn::Local],
            SpiOut::Cross => &[SpiIn::Local],
            SpiOut::Eject => &[SpiIn::RimCw, SpiIn::RimCcw, SpiIn::Cross],
        }
    }

    /// The outputs an input may request (transpose of [`Self::feeders`]).
    pub fn destinations(input: SpiIn) -> &'static [SpiOut] {
        match input {
            SpiIn::RimCw => &[SpiOut::Eject, SpiOut::RimCw],
            SpiIn::RimCcw => &[SpiOut::Eject, SpiOut::RimCcw],
            SpiIn::Cross => &[SpiOut::Eject, SpiOut::RimCw, SpiOut::RimCcw],
            SpiIn::Local => &[SpiOut::RimCw, SpiOut::RimCcw, SpiOut::Cross],
        }
    }

    /// Every directed network link as `(from, out_port, to)`.
    pub fn links(&self) -> Vec<(NodeId, SpiOut, NodeId)> {
        let mut v = Vec::with_capacity(self.num_nodes() * 3);
        for node in self.ring.nodes() {
            for out in SpiOut::NETWORK {
                let (to, _) = self.link_target(node, out).expect("network port");
                v.push((node, out, to));
            }
        }
        v
    }
}

// ---------------------------------------------------------------------------
// Mesh (validation / extension)
// ---------------------------------------------------------------------------

/// Output ports of a mesh router (XY dimension-ordered routing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MeshOut {
    /// +x direction.
    East,
    /// −x direction.
    West,
    /// +y direction.
    North,
    /// −y direction.
    South,
    /// Delivery to the local PE.
    Eject,
}

impl MeshOut {
    /// All five ports.
    pub const ALL: [MeshOut; 5] =
        [MeshOut::East, MeshOut::West, MeshOut::North, MeshOut::South, MeshOut::Eject];

    /// Stable index (0..5).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            MeshOut::East => 0,
            MeshOut::West => 1,
            MeshOut::North => 2,
            MeshOut::South => 3,
            MeshOut::Eject => 4,
        }
    }
}

/// A `cols × rows` 2D mesh with XY routing; node `i` sits at
/// `(i % cols, i / cols)`.
#[derive(Debug, Clone, Copy)]
pub struct MeshTopology {
    cols: usize,
    rows: usize,
}

impl MeshTopology {
    /// Build a mesh. Panics if either dimension is zero.
    pub fn new(cols: usize, rows: usize) -> Self {
        assert!(cols >= 1 && rows >= 1, "mesh dimensions must be positive");
        assert!(cols * rows <= u32::MAX as usize);
        MeshTopology { cols, rows }
    }

    /// A near-square mesh of at least `n` nodes (used to compare against ring
    /// topologies of size `n`).
    pub fn square(n: usize) -> Self {
        let side = (n as f64).sqrt().ceil() as usize;
        MeshTopology::new(side, side)
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.cols * self.rows
    }

    /// Columns (x extent).
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Rows (y extent).
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Node coordinates.
    #[inline]
    pub fn coords(&self, node: NodeId) -> (usize, usize) {
        (node.index() % self.cols, node.index() / self.cols)
    }

    /// Node at coordinates.
    #[inline]
    pub fn node_at(&self, x: usize, y: usize) -> NodeId {
        debug_assert!(x < self.cols && y < self.rows);
        NodeId::new(y * self.cols + x)
    }

    /// Where a network output of `node` lands (inputs are identified by the
    /// *opposite* output direction at the receiver). `None` at mesh edges.
    pub fn link_target(&self, node: NodeId, out: MeshOut) -> Option<NodeId> {
        let (x, y) = self.coords(node);
        match out {
            MeshOut::East if x + 1 < self.cols => Some(self.node_at(x + 1, y)),
            MeshOut::West if x > 0 => Some(self.node_at(x - 1, y)),
            MeshOut::North if y + 1 < self.rows => Some(self.node_at(x, y + 1)),
            MeshOut::South if y > 0 => Some(self.node_at(x, y - 1)),
            _ => None,
        }
    }

    /// XY-routing decision: x first, then y, then eject.
    pub fn route(&self, cur: NodeId, dst: NodeId) -> MeshOut {
        let (cx, cy) = self.coords(cur);
        let (dx, dy) = self.coords(dst);
        if dx > cx {
            MeshOut::East
        } else if dx < cx {
            MeshOut::West
        } else if dy > cy {
            MeshOut::North
        } else if dy < cy {
            MeshOut::South
        } else {
            MeshOut::Eject
        }
    }

    /// Manhattan hop count.
    pub fn hops(&self, src: NodeId, dst: NodeId) -> usize {
        let (sx, sy) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        sx.abs_diff(dx) + sy.abs_diff(dy)
    }

    /// Mesh diameter `2(√n − 1)` for a square mesh — the paper compares the
    /// Quarc diameter `n/4` against this in §2.6.
    pub fn diameter(&self) -> usize {
        (self.cols - 1) + (self.rows - 1)
    }

    /// Plan the dimension-ordered multicast tree for `targets` — the grid
    /// counterpart of [`crate::quadrant::multicast_branches`], shared by the
    /// mesh and (with wrap arithmetic) the torus.
    ///
    /// Targets are partitioned by destination column and y direction; each
    /// non-empty group becomes one source-routed branch whose path is the XY
    /// route to the group's furthest target, branching out of the x run at
    /// the turn node. The header [`GridBranch::bitstring`] marks which nodes
    /// along that path take a copy (bit `i` = the node after `i + 1` hops —
    /// exactly the semantics the routers shift per hop). Targets equal to
    /// `src` are ignored; duplicates set the same bit once. Broadcast is the
    /// all-targets special case. `out` is cleared and refilled, so a reused
    /// buffer makes steady-state expansion allocation-free; bitstrings are
    /// emitted into `slab` (branches within 63 hops stay inline and never
    /// touch it).
    pub fn multicast_branches_into(
        &self,
        src: NodeId,
        targets: impl IntoIterator<Item = NodeId>,
        slab: &mut BitSlab,
        out: &mut Vec<GridBranch>,
    ) {
        out.clear();
        assert!(
            self.cols <= GRID_MC_MAX_SIDE,
            "grid multicast planner scratch caps the side at {GRID_MC_MAX_SIDE} (n ≤ 65,536)"
        );
        let (sx, sy) = self.coords(src);
        let mut acc = [[None::<GridBranchAcc>; 2]; GRID_MC_MAX_SIDE];
        for t in targets {
            if t == src {
                continue;
            }
            let (tx, ty) = self.coords(t);
            let dist_x = sx.abs_diff(tx);
            // `dy == 0` targets sit on the x run and ride the "up" branch.
            let (down, dy) = if ty >= sy { (0, ty - sy) } else { (1, sy - ty) };
            acc[tx][down].get_or_insert_with(GridBranchAcc::default).add(slab, dist_x + dy, dy);
        }
        for (tx, pair) in acc.iter().enumerate() {
            for (down, a) in pair.iter().enumerate() {
                if let Some(a) = a {
                    let ry = if down == 0 { sy + a.max_dy } else { sy - a.max_dy };
                    out.push(GridBranch { dst: self.node_at(tx, ry), bitstring: a.bits });
                }
            }
        }
    }
}

/// Upper bound on mesh/torus side length in the multicast planner's scratch
/// (a 256×256 grid = the simulator's n = 65,536 cap). Shared with the torus
/// planner in [`crate::torus`].
pub(crate) const GRID_MC_MAX_SIDE: usize = 256;

/// Per-`(column, y-direction)` accumulator of the grid multicast planners
/// (mesh here, torus in [`crate::torus`] — same algorithm, different wrap
/// arithmetic).
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct GridBranchAcc {
    pub(crate) bits: Bits,
    pub(crate) max_dy: usize,
}

impl GridBranchAcc {
    /// Record a target `hops` hops along the branch path, `dy` of them in y.
    pub(crate) fn add(&mut self, slab: &mut BitSlab, hops: usize, dy: usize) {
        debug_assert!(hops >= 1, "src is never a target");
        slab.set_bit(&mut self.bits, hops - 1);
        self.max_dy = self.max_dy.max(dy);
    }
}

/// One source-routed branch of a mesh/torus multicast tree (see
/// [`MeshTopology::multicast_branches_into`]). The flat `Copy` shape keeps
/// the planner's output buffer reusable in the simulators' injection path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridBranch {
    /// Header destination: the last node of the branch (always a target).
    pub dst: NodeId,
    /// Bit `i` ⇒ the node reached after `i + 1` hops takes a copy. The
    /// terminal `dst` bit is always set. Long branches hold a row in the
    /// slab the planner emitted into.
    pub bitstring: Bits,
}

impl GridBranch {
    /// Receivers this branch delivers to.
    pub fn receivers(&self, slab: &BitSlab) -> usize {
        slab.popcount(self.bitstring) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarc_port_indices_are_dense() {
        let mut seen = [false; 8];
        for p in QuarcIn::ALL {
            assert!(!seen[p.index()]);
            seen[p.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
        let mut seen = [false; 5];
        for p in QuarcOut::ALL {
            assert!(!seen[p.index()]);
            seen[p.index()] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn quarc_links_form_consistent_graph() {
        let t = QuarcTopology::new(16);
        // Each node has 4 outgoing network links; every incoming port of every
        // node is fed by exactly one link.
        let links = t.links();
        assert_eq!(links.len(), 64);
        let mut incoming = std::collections::HashMap::new();
        for node in t.ring().nodes() {
            for out in QuarcOut::NETWORK {
                let (to, in_port) = t.link_target(node, out).unwrap();
                assert!(
                    incoming.insert((to, in_port), node).is_none(),
                    "duplicate feeder for {to} {in_port}"
                );
            }
        }
        assert_eq!(incoming.len(), 64);
    }

    #[test]
    fn quarc_cross_links_are_antipodal_and_paired() {
        let t = QuarcTopology::new(16);
        for node in t.ring().nodes() {
            let (r, pr) = t.link_target(node, QuarcOut::CrossRight).unwrap();
            let (l, pl) = t.link_target(node, QuarcOut::CrossLeft).unwrap();
            assert_eq!(r, l, "both cross links reach the antipode");
            assert_eq!(r, t.ring().antipode(node));
            assert_eq!(pr, QuarcIn::CrossRight);
            assert_eq!(pl, QuarcIn::CrossLeft);
        }
    }

    #[test]
    fn quarc_feeder_table_matches_paper_section_232() {
        // "left, right and one of the cross input port may require to send
        // flits in maximum two possible destinations. The remaining input
        // ports only have one possible destination OPC."
        let two_dest: Vec<QuarcIn> = QuarcIn::ALL
            .into_iter()
            .filter(|&p| QuarcTopology::destinations(p).len() == 2)
            .collect();
        let one_dest: Vec<QuarcIn> = QuarcIn::ALL
            .into_iter()
            .filter(|&p| QuarcTopology::destinations(p).len() == 1)
            .collect();
        assert_eq!(two_dest, vec![QuarcIn::RimCw, QuarcIn::RimCcw, QuarcIn::CrossRight]);
        assert_eq!(one_dest.len(), 5); // cross-left + 4 local ingress ports
        assert!(one_dest.contains(&QuarcIn::CrossLeft));
    }

    #[test]
    fn quarc_feeders_and_destinations_are_transposes() {
        for out in QuarcOut::ALL {
            for &input in QuarcTopology::feeders(out) {
                assert!(
                    QuarcTopology::destinations(input).contains(&out),
                    "{input} feeds {out} but {out} not in destinations({input})"
                );
            }
        }
        for input in QuarcIn::ALL {
            for &out in QuarcTopology::destinations(input) {
                assert!(QuarcTopology::feeders(out).contains(&input));
            }
        }
    }

    #[test]
    fn spidergon_feeders_and_destinations_are_transposes() {
        for out in SpiOut::ALL {
            for &input in SpidergonTopology::feeders(out) {
                assert!(SpidergonTopology::destinations(input).contains(&out));
            }
        }
        for input in SpiIn::ALL {
            for &out in SpidergonTopology::destinations(input) {
                assert!(SpidergonTopology::feeders(out).contains(&input));
            }
        }
    }

    #[test]
    fn spidergon_links_count() {
        let t = SpidergonTopology::new(16);
        assert_eq!(t.links().len(), 48); // 3 unidirectional network links/node
        let (to, port) = t.link_target(NodeId(3), SpiOut::Cross).unwrap();
        assert_eq!(to, NodeId(11));
        assert_eq!(port, SpiIn::Cross);
    }

    #[test]
    fn quarc_edge_count_doubles_cross_capacity() {
        // Quarc has 4n directed links vs Spidergon's 3n: the doubled spoke.
        let q = QuarcTopology::new(32);
        let s = SpidergonTopology::new(32);
        assert_eq!(q.links().len(), 128);
        assert_eq!(s.links().len(), 96);
    }

    #[test]
    fn mesh_coords_roundtrip() {
        let m = MeshTopology::new(4, 4);
        for i in 0..16usize {
            let n = NodeId::new(i);
            let (x, y) = m.coords(n);
            assert_eq!(m.node_at(x, y), n);
        }
    }

    #[test]
    fn mesh_xy_route_reaches_destination() {
        let m = MeshTopology::new(4, 4);
        for s in 0..16usize {
            for t in 0..16usize {
                let (src, dst) = (NodeId::new(s), NodeId::new(t));
                let mut cur = src;
                let mut hops = 0;
                loop {
                    match m.route(cur, dst) {
                        MeshOut::Eject => break,
                        out => {
                            cur = m.link_target(cur, out).expect("route stays in mesh");
                            hops += 1;
                        }
                    }
                    assert!(hops <= m.diameter(), "route diverged");
                }
                assert_eq!(cur, dst);
                assert_eq!(hops, m.hops(src, dst));
            }
        }
    }

    #[test]
    fn mesh_edges_have_no_neighbours_outside() {
        let m = MeshTopology::new(3, 3);
        assert_eq!(m.link_target(NodeId(2), MeshOut::East), None);
        assert_eq!(m.link_target(NodeId(0), MeshOut::West), None);
        assert_eq!(m.link_target(NodeId(0), MeshOut::South), None);
        assert_eq!(m.link_target(NodeId(8), MeshOut::North), None);
    }

    #[test]
    fn diameter_comparison_quarc_vs_mesh() {
        // §2.6 motivates the 64-node cap: the Quarc diameter n/4 grows
        // linearly while the mesh diameter 2(√n − 1) grows as √n, so the ring
        // topologies stop being competitive somewhere below n = 64
        // (16 vs 14 at n = 64).
        for n in [16usize, 36] {
            let mesh = MeshTopology::square(n);
            assert!(n / 4 <= mesh.diameter(), "n={n}");
        }
        assert!(64 / 4 > MeshTopology::square(64).diameter());
    }

    #[test]
    fn topology_kind_display() {
        assert_eq!(TopologyKind::Quarc.to_string(), "quarc");
        assert_eq!(TopologyKind::Spidergon.to_string(), "spidergon");
        assert_eq!(TopologyKind::Mesh.to_string(), "mesh");
        assert_eq!(TopologyKind::Torus.to_string(), "torus");
    }

    /// Decode a planned branch back into its delivery set by walking the XY
    /// route the router will take (the oracle for the planner tests).
    fn mesh_branch_deliveries(
        m: &MeshTopology,
        src: NodeId,
        b: &GridBranch,
        slab: &BitSlab,
    ) -> Vec<NodeId> {
        let mut deliveries = Vec::new();
        let mut cur = src;
        let mut k = 0usize;
        while cur != b.dst {
            cur = match m.route(cur, b.dst) {
                MeshOut::Eject => unreachable!("walk ends at dst"),
                port => m.link_target(cur, port).expect("XY stays on the mesh"),
            };
            if slab.bit_at(b.bitstring, k) {
                deliveries.push(cur);
            }
            k += 1;
        }
        assert_eq!(
            slab.popcount(b.bitstring) as usize,
            deliveries.len(),
            "bits past the branch terminal"
        );
        deliveries
    }

    #[test]
    fn mesh_multicast_branches_cover_targets_exactly_once() {
        let m = MeshTopology::new(4, 4);
        let src = NodeId(5); // (1, 1)
        let targets = vec![NodeId(0), NodeId(3), NodeId(7), NodeId(12), NodeId(15), NodeId(6)];
        let mut branches = Vec::new();
        let mut slab = BitSlab::new(m.diameter() + 1);
        m.multicast_branches_into(src, targets.iter().copied(), &mut slab, &mut branches);
        let mut delivered: Vec<NodeId> =
            branches.iter().flat_map(|b| mesh_branch_deliveries(&m, src, b, &slab)).collect();
        delivered.sort();
        let mut want = targets.clone();
        want.sort();
        assert_eq!(delivered, want);
        assert_eq!(
            branches.iter().map(|b| b.receivers(&slab)).sum::<usize>(),
            targets.len(),
            "receiver count must equal the distinct target count"
        );
    }

    #[test]
    fn mesh_broadcast_branches_cover_every_node_exactly_once() {
        for (c, r) in [(4usize, 4usize), (3, 5), (8, 8)] {
            let m = MeshTopology::new(c, r);
            for s in 0..m.num_nodes() {
                let src = NodeId::new(s);
                let mut branches = Vec::new();
                let mut slab = BitSlab::new(m.diameter() + 1);
                m.multicast_branches_into(
                    src,
                    (0..m.num_nodes()).map(NodeId::new),
                    &mut slab,
                    &mut branches,
                );
                let mut seen = std::collections::HashSet::new();
                for b in &branches {
                    for d in mesh_branch_deliveries(&m, src, b, &slab) {
                        assert!(seen.insert(d), "{c}x{r} src={src}: {d} covered twice");
                        assert_ne!(d, src);
                    }
                }
                assert_eq!(seen.len(), m.num_nodes() - 1, "{c}x{r} src={src}");
            }
        }
    }

    #[test]
    fn mesh_multicast_ignores_source_and_duplicates() {
        let m = MeshTopology::new(4, 4);
        let src = NodeId(0);
        let mut branches = Vec::new();
        let mut slab = BitSlab::new(m.diameter() + 1);
        m.multicast_branches_into(
            src,
            [src, NodeId(2), NodeId(2), NodeId(9)],
            &mut slab,
            &mut branches,
        );
        assert_eq!(branches.iter().map(|b| b.receivers(&slab)).sum::<usize>(), 2);
    }

    #[test]
    fn mesh_turn_row_target_rides_the_up_branch() {
        // Source (0,0), targets (2,0) and (2,3): one branch through the turn
        // node (2,0), which takes its copy on the x run.
        let m = MeshTopology::new(4, 4);
        let mut branches = Vec::new();
        let mut slab = BitSlab::new(m.diameter() + 1);
        m.multicast_branches_into(NodeId(0), [NodeId(2), NodeId(14)], &mut slab, &mut branches);
        assert_eq!(branches.len(), 1);
        assert_eq!(branches[0].dst, NodeId(14));
        // Hops 2 (node 2, bit 1) and 5 (node 14, bit 4).
        assert_eq!(branches[0].bitstring, Bits::inline(0b10010));
    }
}
