//! Branch bitstrings for path-based multicast, backed by a network-owned slab.
//!
//! The Quarc multicast header carries one bit per downstream hop: bit `i`
//! says "the node reached after `i + 1` hops absorbs a copy".  Early
//! revisions stored that word inline in [`crate::flit::PacketMeta`] as a
//! `u128`, which capped explicit-target multicast at 128 hops and therefore
//! the whole simulator at n = 4096.  This module lifts the representation
//! into a [`BitSlab`]: packets carry a compact [`Bits`] handle and routers
//! shift/test/clone against slab rows of `[u64; W]` words sized to the
//! network's longest branch.
//!
//! # Representation
//!
//! [`Bits`] is a single `u64` with a tag in bit 63:
//!
//! * **Inline** (tag 0): the bitstring value itself lives in bits `[62:0]`.
//!   Every branch whose furthest delivery is within 63 hops — which includes
//!   *all* branches on networks up to n = 64 plus short branches on larger
//!   ones — never touches the slab, so the paper-scale configurations pay
//!   zero indirection.
//! * **Slab handle** (tag 1): bits `[32:1]` hold the row index, bits
//!   `[62:33]` a 30-bit generation, and bit 0 a *cached copy of the row's
//!   current bit 0*.  The cache is refreshed by every mutation
//!   ([`BitSlab::shift`], [`BitSlab::set_bit`]), so the hot per-hop question
//!   "does the current node absorb?" ([`Bits::bit0`]) is answered without
//!   touching slab memory at all — better than the one-cache-line budget.
//!
//! # Lifecycle
//!
//! Rows are allocated by [`BitSlab::set_bit`] (on inline overflow) or
//! [`BitSlab::clone_bits`], and freed by [`BitSlab::release`].  The sim's
//! `PacketTable` owns one slab per network and releases a packet's row when
//! the packet itself is released, so rows recycle with the existing packet
//! lifecycle and the steady-state hot path performs no allocation.  The
//! generation field is bumped on each free; a stale handle (released row
//! reused by another packet) is caught by debug assertions.
//!
//! Logical right-shift is O(1): each row keeps a cursor and a shift merely
//! advances it.  Bits below the cursor are dead; [`BitSlab::popcount`] and
//! [`BitSlab::bit_at`] mask them off.

/// Compact bitstring: inline value or slab handle. See module docs.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Bits(u64);

const TAG_BIT: u64 = 1 << 63;
/// Number of value bits an inline `Bits` can hold.
pub const INLINE_BITS: usize = 63;
const INLINE_MASK: u64 = (1 << INLINE_BITS) - 1;
const ROW_SHIFT: u32 = 1;
const ROW_BITS: u32 = 32;
const ROW_MASK: u64 = (1 << ROW_BITS) - 1;
const GEN_SHIFT: u32 = ROW_SHIFT + ROW_BITS; // 33
const GEN_BITS: u32 = 30;
const GEN_MASK: u32 = (1 << GEN_BITS) - 1;

impl Bits {
    /// The empty bitstring (inline zero). Unicast/broadcast packets carry
    /// this: Quarc broadcast headers are consumed by hop *count*, not bits.
    pub const ZERO: Bits = Bits(0);

    /// An inline bitstring. `v` must fit in [`INLINE_BITS`] bits.
    #[inline]
    pub fn inline(v: u64) -> Bits {
        debug_assert!(v <= INLINE_MASK, "inline bitstring overflows 63 bits");
        Bits(v & INLINE_MASK)
    }

    #[inline]
    fn handle(row: u32, generation: u32, bit0: bool) -> Bits {
        Bits(
            TAG_BIT
                | (u64::from(generation & GEN_MASK) << GEN_SHIFT)
                | (u64::from(row) << ROW_SHIFT)
                | u64::from(bit0),
        )
    }

    /// Does this value live inline (no slab row)?
    #[inline]
    pub fn is_inline(self) -> bool {
        self.0 & TAG_BIT == 0
    }

    /// Inline value. Must only be called on inline bitstrings; the
    /// Spidergon chain counter and the RTL wire format rely on this.
    #[inline]
    pub fn inline_value(self) -> u64 {
        debug_assert!(self.is_inline(), "inline_value on a slab handle");
        self.0 & INLINE_MASK
    }

    /// Current bit 0: "does the node one hop ahead absorb a copy?".
    ///
    /// Free for both representations — slab handles cache the row's bit 0
    /// in the handle word itself (refreshed on every mutation).
    #[inline]
    pub fn bit0(self) -> bool {
        self.0 & 1 == 1
    }

    /// True iff this is inline zero (no deliveries encoded and no row held).
    #[inline]
    pub fn is_zero_inline(self) -> bool {
        self.0 == 0
    }

    #[inline]
    fn row(self) -> usize {
        debug_assert!(!self.is_inline());
        ((self.0 >> ROW_SHIFT) & ROW_MASK) as usize
    }

    #[inline]
    fn generation(self) -> u32 {
        ((self.0 >> GEN_SHIFT) as u32) & GEN_MASK
    }
}

impl Default for Bits {
    fn default() -> Self {
        Bits::ZERO
    }
}

impl core::fmt::Debug for Bits {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_inline() {
            write!(f, "Bits::inline({:#b})", self.inline_value())
        } else {
            write!(
                f,
                "Bits::handle(row={}, gen={}, bit0={})",
                self.row(),
                self.generation(),
                self.bit0()
            )
        }
    }
}

/// Fixed-stride slab of bitstring rows. One per network (owned by the
/// sim's `PacketTable`); rows recycle through a free list.
#[derive(Clone, Debug)]
pub struct BitSlab {
    /// Words per row: `ceil(capacity_bits / 64)`.
    stride: usize,
    /// Longest branch this network can plan, in bits.
    capacity_bits: usize,
    /// Row storage, `stride` words per row.
    data: Vec<u64>,
    /// Per-row logical shift offset (bits below it are dead).
    cursor: Vec<u32>,
    /// Per-row generation, bumped on free; mirrored into handles.
    generation: Vec<u32>,
    free: Vec<u32>,
    live: usize,
}

impl BitSlab {
    /// A slab able to hold bitstrings of up to `max_bits` bits.
    ///
    /// `max_bits <= INLINE_BITS` (including 0) yields a zero-stride slab:
    /// every bitstring stays inline and the slab never allocates.
    pub fn new(max_bits: usize) -> BitSlab {
        let stride = if max_bits <= INLINE_BITS { 0 } else { max_bits.div_ceil(64) };
        BitSlab {
            stride,
            capacity_bits: max_bits,
            data: Vec::new(),
            cursor: Vec::new(),
            generation: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    /// A slab for networks that never plan multi-hop bitstrings
    /// (Spidergon, unicast-only RTL harnesses).
    pub fn inline_only() -> BitSlab {
        BitSlab::new(0)
    }

    /// Longest bitstring this slab was sized for.
    #[inline]
    pub fn capacity_bits(&self) -> usize {
        self.capacity_bits
    }

    /// Rows currently checked out (0 in an idle network).
    #[inline]
    pub fn live_rows(&self) -> usize {
        self.live
    }

    fn alloc_row(&mut self) -> u32 {
        self.live += 1;
        if let Some(row) = self.free.pop() {
            let base = row as usize * self.stride;
            self.data[base..base + self.stride].fill(0);
            self.cursor[row as usize] = 0;
            return row;
        }
        let row = self.cursor.len() as u32;
        assert!(u64::from(row) <= ROW_MASK, "bitstring slab row index overflow");
        self.data.extend(std::iter::repeat_n(0u64, self.stride));
        self.cursor.push(0);
        self.generation.push(0);
        row
    }

    #[inline]
    fn check(&self, b: Bits) -> usize {
        let row = b.row();
        debug_assert!(
            self.generation[row] & GEN_MASK == b.generation(),
            "stale bitstring handle: row {row} was released and reused"
        );
        row
    }

    /// Set logical bit `i` (relative to the current cursor), upgrading an
    /// inline value to a slab row when `i` no longer fits inline.
    ///
    /// Planners call this with cursor 0; the upgrade path is the *only*
    /// place a packet acquires a row outside of [`BitSlab::clone_bits`].
    pub fn set_bit(&mut self, b: &mut Bits, i: usize) {
        if b.is_inline() {
            if i < INLINE_BITS {
                *b = Bits(b.0 | (1 << i));
                return;
            }
            assert!(
                i < self.capacity_bits,
                "bit {i} exceeds slab capacity {} — network mis-sized its PacketTable",
                self.capacity_bits
            );
            let inline = b.inline_value();
            let row = self.alloc_row();
            self.data[row as usize * self.stride] = inline;
            *b = Bits::handle(row, self.generation[row as usize], inline & 1 == 1);
        }
        let row = self.check(*b);
        let pos = self.cursor[row] as usize + i;
        assert!(pos < self.stride * 64, "bit {i} exceeds slab row width");
        self.data[row * self.stride + pos / 64] |= 1 << (pos % 64);
        if i == 0 {
            *b = Bits(b.0 | 1);
        }
    }

    /// Clear logical bit `i` (relative to the current cursor). A no-op on
    /// bits that are already clear or past the row width.
    ///
    /// The recovery layer's outstanding-receiver sets shrink bit by bit as
    /// ACKs arrive; rows never downgrade back to inline (the handle stays
    /// valid until [`BitSlab::release`]).
    pub fn clear_bit(&mut self, b: &mut Bits, i: usize) {
        if b.is_inline() {
            if i < INLINE_BITS {
                *b = Bits(b.0 & !(1 << i));
            }
            return;
        }
        let row = self.check(*b);
        let pos = self.cursor[row] as usize + i;
        if pos >= self.stride * 64 {
            return;
        }
        self.data[row * self.stride + pos / 64] &= !(1 << (pos % 64));
        if i == 0 {
            *b = Bits(b.0 & !1);
        }
    }

    /// Logical bit `k` positions above the current cursor. Positions past
    /// the row width read as zero, matching `u128 >> k` semantics.
    #[inline]
    pub fn bit_at(&self, b: Bits, k: usize) -> bool {
        if b.is_inline() {
            return k < 64 && (b.inline_value() >> k) & 1 == 1;
        }
        let row = self.check(b);
        let pos = self.cursor[row] as usize + k;
        if pos >= self.stride * 64 {
            return false;
        }
        (self.data[row * self.stride + pos / 64] >> (pos % 64)) & 1 == 1
    }

    /// Logical right-shift by one — the per-hop header advance. O(1) for
    /// slab rows (cursor bump + cached-bit0 refresh).
    #[inline]
    pub fn shift(&mut self, b: &mut Bits) {
        if b.is_inline() {
            *b = Bits(b.0 >> 1);
            return;
        }
        let row = self.check(*b);
        self.cursor[row] += 1;
        let bit0 = self.bit_at(*b, 0);
        *b = Bits((b.0 & !1) | u64::from(bit0));
    }

    /// Remaining deliveries encoded in the bitstring (bits at or above the
    /// cursor).
    pub fn popcount(&self, b: Bits) -> u32 {
        if b.is_inline() {
            return b.inline_value().count_ones();
        }
        let row = self.check(b);
        let cur = self.cursor[row] as usize;
        let base = row * self.stride;
        let mut total = 0u32;
        for w in cur / 64..self.stride {
            let mut word = self.data[base + w];
            if w == cur / 64 {
                word &= !0u64 << (cur % 64);
            }
            total += word.count_ones();
        }
        total
    }

    /// Deep-copy a bitstring for a forwarded clone. Inline values copy for
    /// free; slab handles get their own row (words + cursor).
    pub fn clone_bits(&mut self, b: Bits) -> Bits {
        if b.is_inline() {
            return b;
        }
        let src_row = self.check(b);
        let row = self.alloc_row() as usize;
        let (src_base, dst_base) = (src_row * self.stride, row * self.stride);
        // Split the borrow: rows are disjoint (alloc never returns src_row
        // because src is still live).
        debug_assert_ne!(src_row, row);
        for w in 0..self.stride {
            self.data[dst_base + w] = self.data[src_base + w];
        }
        self.cursor[row] = self.cursor[src_row];
        Bits::handle(row as u32, self.generation[row], b.bit0())
    }

    /// Return a bitstring's row to the free list. Inline values are a
    /// no-op; callers may pass every retiring packet's bitstring blindly.
    pub fn release(&mut self, b: Bits) {
        if b.is_inline() {
            return;
        }
        let row = self.check(b);
        self.generation[row] = (self.generation[row] + 1) & GEN_MASK;
        self.free.push(row as u32);
        self.live -= 1;
    }

    /// Remaining logical value as a `u128` (test/debug helper; panics if
    /// bits ≥ 128 positions above the cursor are set).
    pub fn to_u128(&self, b: Bits) -> u128 {
        if b.is_inline() {
            return u128::from(b.inline_value());
        }
        let mut v = 0u128;
        for k in 0..self.stride * 64 {
            if self.bit_at(b, k) {
                assert!(k < 128, "bitstring does not fit in u128");
                v |= 1 << k;
            }
        }
        v
    }
}

impl Default for BitSlab {
    fn default() -> Self {
        BitSlab::inline_only()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_set_shift_popcount() {
        let mut slab = BitSlab::new(40);
        let mut b = Bits::ZERO;
        slab.set_bit(&mut b, 0);
        slab.set_bit(&mut b, 3);
        assert!(b.is_inline());
        assert!(b.bit0());
        assert_eq!(slab.popcount(b), 2);
        slab.shift(&mut b);
        assert!(!b.bit0());
        assert!(slab.bit_at(b, 2));
        assert_eq!(slab.to_u128(b), 0b100);
        assert_eq!(slab.live_rows(), 0);
    }

    #[test]
    fn upgrade_to_slab_preserves_low_bits() {
        let mut slab = BitSlab::new(200);
        let mut b = Bits::ZERO;
        slab.set_bit(&mut b, 0);
        slab.set_bit(&mut b, 62);
        assert!(b.is_inline());
        slab.set_bit(&mut b, 130);
        assert!(!b.is_inline());
        assert!(b.bit0());
        assert!(slab.bit_at(b, 62));
        assert!(slab.bit_at(b, 130));
        assert_eq!(slab.popcount(b), 3);
        assert_eq!(slab.live_rows(), 1);
        slab.release(b);
        assert_eq!(slab.live_rows(), 0);
    }

    #[test]
    fn shift_walks_the_row_and_caches_bit0() {
        let mut slab = BitSlab::new(256);
        let mut b = Bits::ZERO;
        slab.set_bit(&mut b, 100);
        slab.set_bit(&mut b, 101);
        assert!(!b.bit0());
        for _ in 0..100 {
            slab.shift(&mut b);
        }
        assert!(b.bit0());
        assert_eq!(slab.popcount(b), 2);
        slab.shift(&mut b);
        assert!(b.bit0());
        assert_eq!(slab.popcount(b), 1);
        slab.shift(&mut b);
        assert!(!b.bit0());
        assert_eq!(slab.popcount(b), 0);
        slab.release(b);
    }

    #[test]
    fn clone_is_independent() {
        let mut slab = BitSlab::new(256);
        let mut b = Bits::ZERO;
        slab.set_bit(&mut b, 70);
        slab.set_bit(&mut b, 71);
        let mut c = slab.clone_bits(b);
        slab.shift(&mut c);
        assert_eq!(slab.popcount(b), 2);
        assert_eq!(slab.popcount(c), 2);
        assert!(slab.bit_at(c, 69));
        assert!(!slab.bit_at(b, 69));
        slab.release(b);
        slab.release(c);
        assert_eq!(slab.live_rows(), 0);
    }

    #[test]
    fn clear_bit_shrinks_both_representations() {
        let mut slab = BitSlab::new(200);
        // Inline: set and clear around bit 0 (the cached hot bit).
        let mut b = Bits::ZERO;
        slab.set_bit(&mut b, 0);
        slab.set_bit(&mut b, 5);
        slab.clear_bit(&mut b, 0);
        assert!(!b.bit0());
        assert_eq!(slab.popcount(b), 1);
        slab.clear_bit(&mut b, 5);
        assert_eq!(slab.popcount(b), 0);
        // Slab row: the cached bit 0 in the handle must track clears too.
        let mut r = Bits::ZERO;
        slab.set_bit(&mut r, 0);
        slab.set_bit(&mut r, 150);
        assert!(!r.is_inline() && r.bit0());
        slab.clear_bit(&mut r, 0);
        assert!(!r.bit0());
        assert_eq!(slab.popcount(r), 1);
        slab.clear_bit(&mut r, 150);
        assert_eq!(slab.popcount(r), 0);
        // Clearing past the row width is a harmless no-op.
        slab.clear_bit(&mut r, 100_000);
        slab.release(r);
        assert_eq!(slab.live_rows(), 0);
    }

    #[test]
    fn rows_recycle_without_growing() {
        let mut slab = BitSlab::new(128);
        for _ in 0..100 {
            let mut b = Bits::ZERO;
            slab.set_bit(&mut b, 90);
            slab.release(b);
        }
        assert_eq!(slab.cursor.len(), 1, "free list must recycle the row");
        assert_eq!(slab.live_rows(), 0);
    }

    #[test]
    fn recycled_row_starts_clean() {
        let mut slab = BitSlab::new(128);
        let mut a = Bits::ZERO;
        slab.set_bit(&mut a, 64);
        slab.set_bit(&mut a, 65);
        slab.shift(&mut a);
        slab.release(a);
        let mut b = Bits::ZERO;
        slab.set_bit(&mut b, 70);
        assert_eq!(slab.popcount(b), 1);
        assert_eq!(slab.to_u128(b), 1u128 << 70);
        slab.release(b);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "stale bitstring handle")]
    fn stale_handle_is_caught() {
        let mut slab = BitSlab::new(128);
        let mut a = Bits::ZERO;
        slab.set_bit(&mut a, 64);
        slab.release(a);
        let mut b = Bits::ZERO;
        slab.set_bit(&mut b, 64); // reuses the row, new generation
        let _ = slab.popcount(a);
    }

    #[test]
    fn inline_only_slab_never_allocates() {
        let mut slab = BitSlab::inline_only();
        let mut b = Bits::ZERO;
        slab.set_bit(&mut b, 5);
        slab.shift(&mut b);
        assert_eq!(slab.to_u128(b), 0b10000);
        assert!(slab.data.is_empty());
    }

    #[test]
    fn zero_handle_roundtrip_via_wire_value() {
        // RTL wire format packs 16-bit inline values.
        let b = Bits::inline(0b1011);
        assert_eq!(b.inline_value(), 0b1011);
        assert!(b.bit0());
        assert!(Bits::ZERO.is_zero_inline());
    }
}
