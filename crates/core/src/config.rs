//! Network configuration shared by the simulator, the RTL model and the
//! benchmark harness.

use crate::topology::TopologyKind;
use std::fmt;

/// Upper bound on virtual channels per physical link, enforced by
/// [`NocConfig::validate`]. Lets the simulators use fixed-size per-VC scratch
/// arrays on the stack instead of per-cycle heap allocation.
pub const MAX_VCS: usize = 4;

/// Upper bound on the node count the behavioural simulator accepts, enforced
/// by [`NocConfig::validate`].
///
/// The paper's 34-bit wire format carries 6-bit addresses (n ≤ 64, §2.6) and
/// the RTL model keeps that limit; the behavioural simulator models the
/// wider-flit variant the paper names ("larger networks would need wider
/// flits or multi-flit headers") so the scaling claims can be measured at
/// n = 256 and far beyond. Multicast bitstrings live in a per-network slab
/// ([`crate::bits::BitSlab`]) sized to the longest branch, so the only
/// remaining bound is the grid planners' 256-wide column scratch: 65,536 is
/// a 256×256 mesh/torus, and a 16,384-deep Quarc quadrant.
pub const MAX_SIM_NODES: usize = 65_536;

/// Output-arbitration policy (the DESIGN.md §6 ablation knob). Lives in the
/// configuration so experiment grids can sweep it and cache keys can include
/// it; only the Quarc model's OPC grant arbiters consult it today.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ArbPolicy {
    /// Rotate the grant pointer past each winner (the paper's timer-based
    /// "equal opportunity" behaviour under sustained load). Default.
    #[default]
    RoundRobin,
    /// Always grant the lowest-index eligible candidate. Cheaper logic, but
    /// biased: low-index feeders (through traffic, in our tables) can starve
    /// local injection under contention.
    FixedPriority,
}

impl fmt::Display for ArbPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ArbPolicy::RoundRobin => "rr",
            ArbPolicy::FixedPriority => "fp",
        };
        write!(f, "{s}")
    }
}

/// A deterministic fault schedule for one simulated network.
///
/// The plan is *declarative*: it names how many components fail and how,
/// not which ones. The concrete selection (which links die, which routers
/// freeze) is expanded by the simulator from a `DetRng` substream seeded
/// only by [`FaultPlan::seed`], so a plan is a pure function of its fields
/// and two runs of the same plan fail identically — fault campaigns cache
/// and replicate exactly like fault-free ones.
///
/// Fault semantics (see `docs/ROBUSTNESS.md`):
///
/// * **dead links** — from [`FaultPlan::onset`], the link stops accepting
///   new packets; a packet routed onto it is dropped whole, with every
///   lost receiver accounted (`fail-stop at packet granularity`: packets
///   whose header was already routed complete normally, so wormhole
///   invariants hold).
/// * **frozen routers** — from `onset`, the router's arbiter grants
///   nothing; traffic through it wedges (the stall watchdog's job).
/// * **lossy links** — each packet routed onto the link is dropped with
///   probability `drop_per_64k / 65536`, decided per packet id.
/// * **transient links** — the link blocks *losslessly* for
///   [`FaultPlan::transient_cycles`] starting at `onset`; credit-based
///   flow control holds traffic back, nothing is lost.
///
/// All fields are plain integers so the plan (and [`NocConfig`]) stays
/// `Copy`, hashable and exactly representable in campaign content keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultPlan {
    /// Seed of the fault-selection substream (which links/routers fail).
    pub seed: u64,
    /// Cycle at which every scheduled fault takes effect.
    pub onset: u64,
    /// Number of links that fail permanently (fail-stop) at `onset`.
    pub dead_links: u16,
    /// Number of routers whose arbitration freezes at `onset`.
    pub frozen_routers: u16,
    /// Number of links that drop packets probabilistically from `onset`.
    pub lossy_links: u16,
    /// Per-packet drop probability on lossy links, in units of 1/65536.
    pub drop_per_64k: u16,
    /// Number of links that block losslessly for a window at `onset`.
    pub transient_links: u16,
    /// Length of the transient blocking window, in cycles.
    pub transient_cycles: u32,
}

impl FaultPlan {
    /// The empty plan: no faults, byte-identical behaviour to a build
    /// without the fault subsystem.
    pub const NONE: FaultPlan = FaultPlan {
        seed: 0,
        onset: 0,
        dead_links: 0,
        frozen_routers: 0,
        lossy_links: 0,
        drop_per_64k: 0,
        transient_links: 0,
        transient_cycles: 0,
    };

    /// Whether this plan schedules no faults at all.
    pub fn is_empty(&self) -> bool {
        self.dead_links == 0
            && self.frozen_routers == 0
            && (self.lossy_links == 0 || self.drop_per_64k == 0)
            && self.transient_links == 0
    }

    /// Check internal consistency (part of [`NocConfig::validate`]).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.transient_links > 0 && self.transient_cycles == 0 {
            return Err(ConfigError::BadParameter {
                name: "fault.transient_cycles",
                requirement: "transient link faults need a window of at least one cycle",
            });
        }
        if self.lossy_links > 0 && self.drop_per_64k == 0 {
            return Err(ConfigError::BadParameter {
                name: "fault.drop_per_64k",
                requirement: "lossy links need a non-zero drop probability",
            });
        }
        Ok(())
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::NONE
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "-");
        }
        write!(
            f,
            "s{}o{}d{}f{}l{}p{}t{}w{}",
            self.seed,
            self.onset,
            self.dead_links,
            self.frozen_routers,
            self.lossy_links,
            self.drop_per_64k,
            self.transient_links,
            self.transient_cycles
        )
    }
}

/// End-to-end reliable-delivery policy: ack/timeout/retransmit recovery
/// layered over the best-effort fabric.
///
/// With a non-zero [`RecoveryPolicy::ack_timeout`] every receiver answers a
/// delivered message with a single-flit ACK packet routed through the same
/// fabric (real contending traffic, not a side channel), and every source
/// keeps the message in an outstanding window until all receivers have
/// acked. On timeout the source retransmits to exactly the still-unserved
/// receiver subset, with exponential backoff and a seeded jitter substream
/// so two runs of the same policy retry identically. After
/// [`RecoveryPolicy::max_retries`] retransmissions the unserved remainder
/// retires as undeliverable, so `quiesced()` still terminates on
/// unreachable-by-topology receivers.
///
/// All fields are plain integers so the policy (and [`NocConfig`]) stays
/// `Copy`, hashable and exactly representable in campaign content keys.
/// [`RecoveryPolicy::NONE`] is bit-for-bit the build without the recovery
/// subsystem (pinned by the equivalence goldens).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecoveryPolicy {
    /// Seed of the retransmission-jitter substream.
    pub seed: u64,
    /// Cycles a source waits for the full ACK set before retransmitting.
    /// `0` disables the recovery layer entirely.
    pub ack_timeout: u32,
    /// Retransmissions per message before the unserved remainder retires
    /// as undeliverable.
    pub max_retries: u32,
    /// Upper bound (exclusive, in cycles) of the uniform jitter added to
    /// each timeout deadline. `0` means no jitter.
    pub jitter: u32,
}

impl RecoveryPolicy {
    /// Recovery off: best-effort delivery, byte-identical behaviour to a
    /// build without the recovery subsystem.
    pub const NONE: RecoveryPolicy =
        RecoveryPolicy { seed: 0, ack_timeout: 0, max_retries: 0, jitter: 0 };

    /// Whether the recovery layer is active.
    pub fn enabled(&self) -> bool {
        self.ack_timeout != 0
    }

    /// Check internal consistency (part of [`NocConfig::validate`]).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.enabled() && (self.max_retries != 0 || self.jitter != 0 || self.seed != 0) {
            return Err(ConfigError::BadParameter {
                name: "recovery.ack_timeout",
                requirement: "a recovery policy with retries/jitter/seed needs a non-zero timeout",
            });
        }
        Ok(())
    }

    /// The deadline delay for retransmission attempt `attempt` (0 = first
    /// transmission): `ack_timeout << min(attempt, 16)`, exponential backoff
    /// with a saturating shift cap.
    pub fn backoff(&self, attempt: u32) -> u64 {
        (self.ack_timeout as u64) << attempt.min(16)
    }
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy::NONE
    }
}

impl fmt::Display for RecoveryPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.enabled() {
            return write!(f, "-");
        }
        write!(f, "t{}r{}j{}s{}", self.ack_timeout, self.max_retries, self.jitter, self.seed)
    }
}

/// Errors raised when validating a [`NocConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// Node count incompatible with the chosen topology.
    BadNodeCount {
        /// The offending count.
        n: usize,
        /// The constraint that was violated.
        requirement: &'static str,
    },
    /// Parameter outside its legal range.
    BadParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable constraint.
        requirement: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::BadNodeCount { n, requirement } => {
                write!(f, "invalid node count {n}: {requirement}")
            }
            ConfigError::BadParameter { name, requirement } => {
                write!(f, "invalid parameter {name}: {requirement}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Structural parameters of one simulated network.
///
/// Defaults follow the paper's hardware: 2 virtual channels per physical link
/// (§2.3.1: "the Quarc switch is capable of supporting two virtual channels"),
/// parameterised buffers (we default to 4 flits per VC lane), single-cycle
/// links.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocConfig {
    /// Topology family.
    pub kind: TopologyKind,
    /// Number of nodes (ring topologies) or of mesh nodes (`cols × rows`
    /// derived as a near-square).
    pub n: usize,
    /// Virtual channels per physical link.
    pub vcs: usize,
    /// Input buffer depth per VC lane, in flits.
    pub buffer_depth: usize,
    /// Link traversal latency in cycles.
    pub link_latency: u64,
    /// Output-arbitration policy (consulted by the Quarc model's OPC grant
    /// arbiters; the other models always round-robin).
    pub arb: ArbPolicy,
    /// Deterministic fault schedule ([`FaultPlan::NONE`] = healthy network).
    pub fault: FaultPlan,
    /// End-to-end reliable-delivery policy ([`RecoveryPolicy::NONE`] =
    /// best-effort delivery, no acks).
    pub recovery: RecoveryPolicy,
}

impl NocConfig {
    /// A Quarc network of `n` nodes with paper defaults.
    pub fn quarc(n: usize) -> Self {
        NocConfig { kind: TopologyKind::Quarc, n, ..Default::default() }
    }

    /// A Spidergon network of `n` nodes with paper defaults.
    pub fn spidergon(n: usize) -> Self {
        NocConfig { kind: TopologyKind::Spidergon, n, ..Default::default() }
    }

    /// A near-square mesh of at least `n` nodes with paper defaults.
    pub fn mesh(n: usize) -> Self {
        NocConfig { kind: TopologyKind::Mesh, n, ..Default::default() }
    }

    /// A near-square torus of at least `n` nodes with paper defaults (the
    /// default 2 VCs are the per-dimension dateline minimum).
    pub fn torus(n: usize) -> Self {
        NocConfig { kind: TopologyKind::Torus, n, ..Default::default() }
    }

    /// Override the buffer depth.
    pub fn with_buffer_depth(mut self, depth: usize) -> Self {
        self.buffer_depth = depth;
        self
    }

    /// Override the output-arbitration policy.
    pub fn with_arb(mut self, arb: ArbPolicy) -> Self {
        self.arb = arb;
        self
    }

    /// Override the fault schedule.
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = fault;
        self
    }

    /// Override the end-to-end recovery policy.
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Check all structural constraints.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self.kind {
            TopologyKind::Quarc => {
                if self.n < 4 || !self.n.is_multiple_of(4) {
                    return Err(ConfigError::BadNodeCount {
                        n: self.n,
                        requirement: "Quarc requires n ≥ 4 and n ≡ 0 (mod 4)",
                    });
                }
            }
            TopologyKind::Spidergon => {
                if self.n < 4 || !self.n.is_multiple_of(2) {
                    return Err(ConfigError::BadNodeCount {
                        n: self.n,
                        requirement: "Spidergon requires even n ≥ 4",
                    });
                }
            }
            TopologyKind::Mesh => {
                if self.n < 1 {
                    return Err(ConfigError::BadNodeCount {
                        n: self.n,
                        requirement: "mesh requires n ≥ 1",
                    });
                }
            }
            TopologyKind::Torus => {
                if self.n < 4 {
                    return Err(ConfigError::BadNodeCount {
                        n: self.n,
                        requirement: "torus requires n ≥ 4 (both dimensions must wrap)",
                    });
                }
            }
        }
        if self.n > MAX_SIM_NODES {
            return Err(ConfigError::BadNodeCount {
                n: self.n,
                requirement: "behavioural simulator caps n at 65536 \
                              (the 34-bit wire RTL stays at 64, paper §2.6)",
            });
        }
        if self.vcs < 1 || self.vcs > MAX_VCS {
            return Err(ConfigError::BadParameter {
                name: "vcs",
                requirement: "1 ≤ vcs ≤ 4 (paper hardware uses 2)",
            });
        }
        if self.kind != TopologyKind::Mesh && self.vcs < 2 {
            return Err(ConfigError::BadParameter {
                name: "vcs",
                requirement: "ring and torus topologies need ≥ 2 VCs for the dateline scheme \
                              (XY on a mesh is the only single-VC-safe discipline)",
            });
        }
        if self.buffer_depth < 1 {
            return Err(ConfigError::BadParameter {
                name: "buffer_depth",
                requirement: "at least one flit of buffering per VC lane",
            });
        }
        if self.link_latency < 1 {
            return Err(ConfigError::BadParameter {
                name: "link_latency",
                requirement: "links take at least one cycle",
            });
        }
        self.fault.validate()?;
        self.recovery.validate()?;
        Ok(())
    }
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            kind: TopologyKind::Quarc,
            n: 16,
            vcs: 2,
            buffer_depth: 4,
            link_latency: 1,
            arb: ArbPolicy::RoundRobin,
            fault: FaultPlan::NONE,
            recovery: RecoveryPolicy::NONE,
        }
    }
}

impl fmt::Display for NocConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} n={} vcs={} buf={} link={} arb={}",
            self.kind, self.n, self.vcs, self.buffer_depth, self.link_latency, self.arb
        )?;
        if !self.fault.is_empty() {
            write!(f, " fault={}", self.fault)?;
        }
        if self.recovery.enabled() {
            write!(f, " rec={}", self.recovery)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_hardware() {
        let c = NocConfig::default();
        assert_eq!(c.vcs, 2);
        assert_eq!(c.link_latency, 1);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn quarc_rejects_non_multiple_of_four() {
        assert!(NocConfig::quarc(16).validate().is_ok());
        assert!(NocConfig::quarc(18).validate().is_err());
        assert!(NocConfig::quarc(2).validate().is_err());
    }

    #[test]
    fn spidergon_accepts_even() {
        assert!(NocConfig::spidergon(6).validate().is_ok());
        assert!(NocConfig::spidergon(7).validate().is_err());
    }

    #[test]
    fn node_count_bounded_by_sim_cap() {
        assert!(NocConfig::quarc(64).validate().is_ok());
        // The behavioural simulator models the paper's wider-flit variant:
        // the large-n scaling axis is a first-class configuration.
        assert!(NocConfig::quarc(256).validate().is_ok());
        assert!(NocConfig::quarc(1024).validate().is_ok());
        assert!(NocConfig::mesh(1024).validate().is_ok());
        assert!(NocConfig::quarc(MAX_SIM_NODES + 4).validate().is_err());
    }

    #[test]
    fn ring_needs_two_vcs() {
        let mut c = NocConfig::quarc(16);
        c.vcs = 1;
        assert!(c.validate().is_err());
        let mut m = NocConfig::mesh(16);
        m.vcs = 1;
        assert!(m.validate().is_ok());
    }

    #[test]
    fn buffer_depth_override() {
        let c = NocConfig::quarc(16).with_buffer_depth(8);
        assert_eq!(c.buffer_depth, 8);
        assert!(c.validate().is_ok());
        assert!(NocConfig::quarc(16).with_buffer_depth(0).validate().is_err());
    }

    #[test]
    fn error_display() {
        let e = NocConfig::quarc(18).validate().unwrap_err();
        assert!(e.to_string().contains("18"));
    }

    #[test]
    fn torus_validates_like_a_ring() {
        assert!(NocConfig::torus(16).validate().is_ok());
        assert!(NocConfig::torus(17).validate().is_ok(), "near-square rounding covers any n ≥ 4");
        assert!(NocConfig::torus(3).validate().is_err());
        // The wrap rings need the dateline pair, exactly like the rim rings.
        let mut t = NocConfig::torus(16);
        t.vcs = 1;
        assert!(t.validate().is_err());
    }

    #[test]
    fn fault_plan_defaults_to_empty_and_validates() {
        let c = NocConfig::quarc(16);
        assert!(c.fault.is_empty());
        assert!(c.validate().is_ok());
        // A plan with faults distinguishes otherwise-equal configs.
        let faulted = c.with_fault(FaultPlan { dead_links: 2, seed: 7, ..FaultPlan::NONE });
        assert!(!faulted.fault.is_empty());
        assert_ne!(c, faulted);
        assert!(faulted.validate().is_ok());
        assert!(faulted.to_string().contains("fault="));
        assert!(!c.to_string().contains("fault="), "empty plans must not change Display");
    }

    #[test]
    fn fault_plan_rejects_inconsistent_schedules() {
        let transient_no_window = FaultPlan { transient_links: 1, ..FaultPlan::NONE };
        assert!(transient_no_window.validate().is_err());
        let lossy_no_prob = FaultPlan { lossy_links: 2, drop_per_64k: 0, ..FaultPlan::NONE };
        assert!(lossy_no_prob.validate().is_err());
        let cfg = NocConfig::quarc(16).with_fault(transient_no_window);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn recovery_policy_defaults_off_and_validates() {
        let c = NocConfig::quarc(16);
        assert!(!c.recovery.enabled());
        assert!(c.validate().is_ok());
        assert!(!c.to_string().contains("rec="), "RecoveryPolicy::NONE must not change Display");
        let rec = RecoveryPolicy { seed: 3, ack_timeout: 400, max_retries: 4, jitter: 16 };
        let reliable = c.with_recovery(rec);
        assert!(reliable.recovery.enabled());
        assert!(reliable.validate().is_ok());
        assert_ne!(c, reliable, "configs differing only in recovery must not compare equal");
        assert!(reliable.to_string().contains("rec=t400r4j16s3"));
        // Retries/jitter without a timeout is an inert, confusing policy.
        let inert = RecoveryPolicy { max_retries: 3, ..RecoveryPolicy::NONE };
        assert!(c.with_recovery(inert).validate().is_err());
    }

    #[test]
    fn recovery_backoff_is_exponential_and_saturating() {
        let rec = RecoveryPolicy { ack_timeout: 100, max_retries: 3, ..RecoveryPolicy::NONE };
        assert_eq!(rec.backoff(0), 100);
        assert_eq!(rec.backoff(1), 200);
        assert_eq!(rec.backoff(3), 800);
        // The shift cap keeps deadlines finite for pathological retry counts.
        assert_eq!(rec.backoff(200), 100u64 << 16);
    }

    #[test]
    fn arb_policy_is_part_of_the_config() {
        let c = NocConfig::quarc(16);
        assert_eq!(c.arb, ArbPolicy::RoundRobin);
        let f = c.with_arb(ArbPolicy::FixedPriority);
        assert_eq!(f.arb, ArbPolicy::FixedPriority);
        assert!(f.validate().is_ok());
        assert_ne!(c, f, "configs differing only in arbitration must not compare equal");
        assert!(f.to_string().contains("arb=fp"));
    }
}
