//! Flits and the 34-bit wire format of the paper's Fig. 7.
//!
//! A wormhole packet is a stream of flits: one *header* that claims resources
//! hop by hop, zero or more *body* flits, and one *tail* that releases them.
//! The paper transmits 34-bit flits: a 32-bit payload plus a 2-bit flit-type
//! field added by the transceiver's write controller (§2.4), with the last
//! three bits of header flits encoding the traffic class (§2.6).
//!
//! The paper does not pin down every field boundary, so this module fixes a
//! concrete layout (documented on [`wire`]) and property-tests that encoding
//! and decoding round-trip. The RTL model (`quarc-rtl`) moves these encoded
//! words over LocalLink; the behavioural simulator moves [`Flit`] structs —
//! small `Copy` handles of a [`PacketRef`] into a per-network [`PacketTable`]
//! holding the interned per-packet bookkeeping ([`PacketMeta`]), which is
//! used only for statistics and invariant checking, never for routing
//! decisions that the hardware could not make. Interning keeps the simulator
//! hot path allocation-free: a flit is 16 bytes moved by value, and the
//! ~56-byte metadata is written once at injection instead of being cloned on
//! every hop, link slot and buffer push.

use crate::bits::{BitSlab, Bits};
use crate::ids::{MessageId, NodeId, PacketId};
use crate::ring::RingDir;
use std::fmt;

/// Position of a flit within its packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlitKind {
    /// First flit: carries addressing and claims the route.
    Header,
    /// Middle flit: pure payload, follows the header's path.
    Body,
    /// Last flit: releases the route behind it.
    Tail,
    /// A whole one-flit packet: header and tail in one word (claims and
    /// releases its route in the same flit). Used by the recovery layer's
    /// ACK packets; takes the wire encoding the original format reserved.
    Single,
}

impl FlitKind {
    /// The 2-bit wire encoding of the flit type (bits `[1:0]`).
    #[inline]
    pub fn wire_bits(self) -> u64 {
        match self {
            FlitKind::Header => 0b00,
            FlitKind::Body => 0b01,
            FlitKind::Tail => 0b10,
            FlitKind::Single => 0b11,
        }
    }

    /// Decode the 2-bit flit-type field.
    pub fn from_wire_bits(bits: u64) -> Option<FlitKind> {
        match bits & 0b11 {
            0b00 => Some(FlitKind::Header),
            0b01 => Some(FlitKind::Body),
            0b10 => Some(FlitKind::Tail),
            _ => Some(FlitKind::Single),
        }
    }
}

impl fmt::Display for FlitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlitKind::Header => write!(f, "H"),
            FlitKind::Body => write!(f, "B"),
            FlitKind::Tail => write!(f, "T"),
            FlitKind::Single => write!(f, "S"),
        }
    }
}

/// Traffic class carried in the 3-bit field of header flits (paper Fig. 7
/// shows unicast, multicast and broadcast; the two *chain* classes encode
/// Spidergon's broadcast-by-unicast replication state, which the paper
/// describes as header rewriting in the Spidergon switch, §2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Point-to-point message.
    Unicast,
    /// Path-based multicast: the header bitstring marks which nodes along the
    /// branch take a copy (bit 0 = next node, shifted every hop).
    Multicast,
    /// True broadcast: every node on the branch absorbs and forwards.
    Broadcast,
    /// Spidergon broadcast-by-unicast rim chain: delivered to `dst`, then the
    /// receiving transceiver rewrites the header and re-injects it to the next
    /// rim neighbour while `bitstring` (the remaining-hop count) is non-zero.
    ChainRim,
    /// Spidergon broadcast-by-unicast cross seed: delivered to the antipode,
    /// which re-injects two `ChainRim` packets, one per rim direction, each
    /// covering `bitstring` further nodes.
    ChainCross,
    /// Single-flit end-to-end acknowledgement emitted by the recovery layer
    /// (see `quarc_core::config::RecoveryPolicy`). Routed as a unicast from
    /// the acking receiver back to the message source; `message` in its
    /// [`PacketMeta`] names the *data* message being acknowledged, so an Ack
    /// is a control packet, never a tracked message of its own.
    Ack,
}

impl TrafficClass {
    /// The 3-bit wire encoding (bits `[33:31]` of header flits).
    #[inline]
    pub fn wire_bits(self) -> u64 {
        match self {
            TrafficClass::Unicast => 0b000,
            TrafficClass::Multicast => 0b001,
            TrafficClass::Broadcast => 0b010,
            TrafficClass::ChainRim => 0b011,
            TrafficClass::ChainCross => 0b100,
            TrafficClass::Ack => 0b101,
        }
    }

    /// Decode the 3-bit traffic-class field.
    pub fn from_wire_bits(bits: u64) -> Option<TrafficClass> {
        match bits & 0b111 {
            0b000 => Some(TrafficClass::Unicast),
            0b001 => Some(TrafficClass::Multicast),
            0b010 => Some(TrafficClass::Broadcast),
            0b011 => Some(TrafficClass::ChainRim),
            0b100 => Some(TrafficClass::ChainCross),
            0b101 => Some(TrafficClass::Ack),
            _ => None,
        }
    }

    /// Number of traffic classes (for fixed-size per-class counter arrays).
    pub const COUNT: usize = 6;

    /// Dense index in `0..COUNT` (for fixed-size per-class counter arrays).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            TrafficClass::Unicast => 0,
            TrafficClass::Multicast => 1,
            TrafficClass::Broadcast => 2,
            TrafficClass::ChainRim => 3,
            TrafficClass::ChainCross => 4,
            TrafficClass::Ack => 5,
        }
    }

    /// True for the two Spidergon replication classes.
    #[inline]
    pub fn is_chain(self) -> bool {
        matches!(self, TrafficClass::ChainRim | TrafficClass::ChainCross)
    }

    /// True if flits of this class are cloned by intermediate Quarc routers.
    #[inline]
    pub fn is_collective(self) -> bool {
        matches!(self, TrafficClass::Multicast | TrafficClass::Broadcast)
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrafficClass::Unicast => "unicast",
            TrafficClass::Multicast => "multicast",
            TrafficClass::Broadcast => "broadcast",
            TrafficClass::ChainRim => "chain-rim",
            TrafficClass::ChainCross => "chain-cross",
            TrafficClass::Ack => "ack",
        };
        write!(f, "{s}")
    }
}

/// Per-packet bookkeeping, interned once per packet in a [`PacketTable`] and
/// referenced from every flit through its [`PacketRef`].
///
/// Only the fields that appear in the wire format (`class`, `src`, `dst`,
/// `bitstring`, `dir`) may influence routing; the rest exists so the ejection
/// side can compute latencies and the test suite can assert conservation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketMeta {
    /// The application-level message this packet belongs to.
    pub message: MessageId,
    /// Unique id of this packet (one per wormhole worm).
    pub packet: PacketId,
    /// Traffic class (wire field).
    pub class: TrafficClass,
    /// Originating node (wire field).
    pub src: NodeId,
    /// Destination: for collectives, the *last* node of the branch (wire field).
    pub dst: NodeId,
    /// Multicast bitstring / chain remaining-count (wire field). A compact
    /// [`Bits`] value: branches whose furthest delivery is within 63 hops
    /// stay inline; longer branches hold a handle into the owning
    /// [`PacketTable`]'s [`BitSlab`], so branch paths may span arbitrarily
    /// many hops (n = 65,536 Quarc quadrants included). The 34-bit wire
    /// format truncates to its 16-bit field, which the RTL model (n ≤ 64,
    /// spans ≤ 16, always inline) never exceeds.
    pub bitstring: Bits,
    /// Rim direction for chain packets (wire field, 1 bit).
    pub dir: RingDir,
    /// Number of flits in this packet (header + bodies + tail).
    pub len: u32,
    /// Cycle at which the *message* was created at the source PE. Source
    /// queueing is therefore included in measured latency, as in the paper.
    pub created_at: u64,
}

/// Handle of one interned packet in a [`PacketTable`].
///
/// Slots are recycled once a packet has fully left the network, so a
/// `PacketRef` is only meaningful against the table of the network that
/// issued it and only while that packet is in flight. It is deliberately a
/// bare `u32`: the steady-state simulation loop indexes the table with it on
/// every routing decision and delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PacketRef(pub u32);

impl PacketRef {
    /// The slot index, for direct table addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PacketRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The per-network intern table of in-flight [`PacketMeta`] records.
///
/// `insert` hands out a [`PacketRef`]; `release` returns the slot to a free
/// list once the packet's tail has been absorbed everywhere. After warmup the
/// slot vector stops growing and the table performs **zero allocations**:
/// recycling pops and pushes within existing capacity. Lookups are a bounds-
/// checked array index.
///
/// The table also owns the network's [`BitSlab`]: a packet whose bitstring
/// spilled out of the inline representation holds a slab row, and `release`
/// frees that row together with the slot, so bitstring storage recycles with
/// the packet lifecycle and needs no separate accounting.
#[derive(Debug, Default, Clone)]
pub struct PacketTable {
    slots: Vec<PacketMeta>,
    free: Vec<u32>,
    live: usize,
    bits: BitSlab,
}

impl PacketTable {
    /// An empty table whose bitstrings must all fit inline (n ≤ 64
    /// networks, Spidergon chains, unicast-only harnesses).
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty table able to hold multicast bitstrings of up to `max_bits`
    /// hops. Networks size this from their longest plannable branch
    /// (Quarc: quarter + 2; grids: diameter + 1).
    pub fn with_bit_capacity(max_bits: usize) -> Self {
        PacketTable { bits: BitSlab::new(max_bits), ..Self::default() }
    }

    /// The network's bitstring slab (bit tests, popcounts).
    #[inline]
    pub fn bits(&self) -> &BitSlab {
        &self.bits
    }

    /// Mutable slab access (planners emitting rows, routers cloning).
    #[inline]
    pub fn bits_mut(&mut self) -> &mut BitSlab {
        &mut self.bits
    }

    /// Per-hop multicast header advance: shift `packet`'s bitstring right by
    /// one (O(1) cursor bump for slab rows). No-op for other classes.
    #[inline]
    pub fn advance_header(&mut self, packet: PacketRef) {
        let meta = &mut self.slots[packet.index()];
        if meta.class == TrafficClass::Multicast {
            self.bits.shift(&mut meta.bitstring);
        }
    }

    /// Intern `meta`, returning the packet's handle.
    #[inline]
    pub fn insert(&mut self, meta: PacketMeta) -> PacketRef {
        match self.free.pop() {
            Some(slot) => {
                self.slots[slot as usize] = meta;
                self.live += 1;
                PacketRef(slot)
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("packet table overflow");
                self.slots.push(meta);
                self.live += 1;
                PacketRef(slot)
            }
        }
    }

    /// The interned metadata of `packet`.
    #[inline]
    pub fn meta(&self, packet: PacketRef) -> &PacketMeta {
        &self.slots[packet.index()]
    }

    /// Mutable access (the routers' per-hop multicast-bitstring shift).
    #[inline]
    pub fn meta_mut(&mut self, packet: PacketRef) -> &mut PacketMeta {
        &mut self.slots[packet.index()]
    }

    /// Return `packet`'s slot to the free list, together with its bitstring
    /// slab row if it held one. The caller must guarantee no flit holding
    /// this ref remains anywhere in the network — in the simulators that
    /// point is the absorption of the tail flit at the last node of the
    /// packet's path.
    #[inline]
    pub fn release(&mut self, packet: PacketRef) {
        debug_assert!(!self.free.contains(&packet.0), "double release of packet slot {packet}");
        let slot = &mut self.slots[packet.index()];
        self.bits.release(slot.bitstring);
        slot.bitstring = Bits::ZERO;
        self.free.push(packet.0);
        self.live -= 1;
    }

    /// Number of packets currently interned.
    #[inline]
    pub fn live(&self) -> usize {
        self.live
    }

    /// High-water mark of simultaneously live packets (slot count).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

/// One flit of a wormhole packet: a 16-byte `Copy` value. Everything
/// per-packet lives in the [`PacketTable`]; the flit itself carries only its
/// packet handle and its position within the worm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Handle of the interned [`PacketMeta`] (see [`PacketTable`]).
    pub packet: PacketRef,
    /// Index of this flit within its packet (`0 == header`).
    pub seq: u32,
    /// Header / body / tail.
    pub kind: FlitKind,
    /// 32-bit payload (body/tail flits only; headers carry addressing).
    pub payload: u32,
}

impl Flit {
    /// Is this the flit that claims the route? (`Single` flits are whole
    /// one-flit packets: header and tail at once.)
    #[inline]
    pub fn is_header(&self) -> bool {
        matches!(self.kind, FlitKind::Header | FlitKind::Single)
    }

    /// Is this the flit that releases the route? (`Single` flits are whole
    /// one-flit packets: header and tail at once.)
    #[inline]
    pub fn is_tail(&self) -> bool {
        matches!(self.kind, FlitKind::Tail | FlitKind::Single)
    }
}

impl fmt::Display for Flit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{} {}]", self.kind, self.seq, self.packet)
    }
}

/// The 34-bit wire format (our concrete realisation of the paper's Fig. 7).
///
/// ```text
/// header:  [33:31] class  [30] dir  [29:14] bitstring  [13:8] src  [7:2] dst  [1:0] = 00
/// body:    [33:2]  payload                                                  [1:0] = 01
/// tail:    [33:2]  payload                                                  [1:0] = 10
/// single:  [33:31] class  [30] dir  [29:14] bitstring  [13:8] src  [7:2] dst  [1:0] = 11
/// ```
///
/// The `single` type (a one-flit packet, header fields with tail semantics)
/// takes the encoding the original format reserved; it exists for the
/// recovery layer's ACK packets.
///
/// Six address bits bound the network at 64 nodes, exactly the scalability
/// limit the paper states in §2.6 ("it is assumed that the network size may be
/// up to 64 nodes"); larger networks would need wider flits or multi-flit
/// headers, which the paper leaves as a variant.
pub mod wire {
    use super::*;

    /// Number of valid bits in an encoded flit word.
    pub const FLIT_BITS: u32 = 34;
    /// Mask of the valid bits.
    pub const FLIT_MASK: u64 = (1u64 << FLIT_BITS) - 1;
    /// Maximum addressable network size with 6-bit addresses.
    pub const MAX_NODES: usize = 64;

    /// A decoded wire flit — exactly the information present on the wire,
    /// with none of the simulator-side bookkeeping.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum WireFlit {
        /// Header flit fields.
        Header {
            /// Traffic class.
            class: TrafficClass,
            /// Rim direction bit (chain classes).
            dir: RingDir,
            /// Multicast bitstring / chain remaining-count.
            bitstring: u16,
            /// Source address (6 bits).
            src: NodeId,
            /// Destination address (6 bits).
            dst: NodeId,
        },
        /// Body flit payload.
        Body(u32),
        /// Tail flit payload.
        Tail(u32),
        /// One-flit packet (recovery ACK): header fields, tail semantics.
        Single {
            /// Traffic class.
            class: TrafficClass,
            /// Rim direction bit.
            dir: RingDir,
            /// Bitstring field (unused by ACKs, kept for symmetry).
            bitstring: u16,
            /// Source address (6 bits).
            src: NodeId,
            /// Destination address (6 bits).
            dst: NodeId,
        },
    }

    /// Encode one flit of packet `meta` into its 34-bit wire word. Body and
    /// tail flits carry `payload`; headers carry the addressing fields.
    ///
    /// Panics (debug) if an address does not fit in 6 bits.
    pub fn encode(meta: &PacketMeta, kind: FlitKind, payload: u32) -> u64 {
        match kind {
            FlitKind::Header | FlitKind::Single => {
                debug_assert!(meta.src.index() < MAX_NODES && meta.dst.index() < MAX_NODES);
                debug_assert!(
                    meta.bitstring.is_inline() && meta.bitstring.inline_value() <= u16::MAX as u64,
                    "wire headers carry 16-bit bitstrings (n ≤ 64 networks never exceed them)"
                );
                let dir_bit = match meta.dir {
                    RingDir::Cw => 0u64,
                    RingDir::Ccw => 1u64,
                };
                (meta.class.wire_bits() << 31)
                    | (dir_bit << 30)
                    | ((meta.bitstring.inline_value() & 0xFFFF) << 14)
                    | ((meta.src.index() as u64) << 8)
                    | ((meta.dst.index() as u64) << 2)
                    | kind.wire_bits()
            }
            FlitKind::Body => ((payload as u64) << 2) | FlitKind::Body.wire_bits(),
            FlitKind::Tail => ((payload as u64) << 2) | FlitKind::Tail.wire_bits(),
        }
    }

    /// Decode a 34-bit wire word.
    ///
    /// Returns `None` for reserved flit-type or traffic-class encodings, or if
    /// bits above [`FLIT_BITS`] are set.
    pub fn decode(word: u64) -> Option<WireFlit> {
        if word & !FLIT_MASK != 0 {
            return None;
        }
        match FlitKind::from_wire_bits(word)? {
            kind @ (FlitKind::Header | FlitKind::Single) => {
                let class = TrafficClass::from_wire_bits(word >> 31)?;
                let dir = if (word >> 30) & 1 == 1 { RingDir::Ccw } else { RingDir::Cw };
                let bitstring = ((word >> 14) & 0xFFFF) as u16;
                let src = NodeId::new(((word >> 8) & 0x3F) as usize);
                let dst = NodeId::new(((word >> 2) & 0x3F) as usize);
                Some(if kind == FlitKind::Header {
                    WireFlit::Header { class, dir, bitstring, src, dst }
                } else {
                    WireFlit::Single { class, dir, bitstring, src, dst }
                })
            }
            FlitKind::Body => Some(WireFlit::Body(((word >> 2) & 0xFFFF_FFFF) as u32)),
            FlitKind::Tail => Some(WireFlit::Tail(((word >> 2) & 0xFFFF_FFFF) as u32)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::wire::*;
    use super::*;

    fn meta(class: TrafficClass, src: u32, dst: u32, bitstring: u64, dir: RingDir) -> PacketMeta {
        PacketMeta {
            message: MessageId(1),
            packet: PacketId(2),
            class,
            src: NodeId(src),
            dst: NodeId(dst),
            bitstring: Bits::inline(bitstring),
            dir,
            len: 8,
            created_at: 0,
        }
    }

    #[test]
    fn header_roundtrip() {
        let m = meta(TrafficClass::Broadcast, 0, 11, 0xBEEF, RingDir::Ccw);
        let w = encode(&m, FlitKind::Header, 0);
        assert!(w <= FLIT_MASK);
        match decode(w).unwrap() {
            WireFlit::Header { class, dir, bitstring, src, dst } => {
                assert_eq!(class, TrafficClass::Broadcast);
                assert_eq!(dir, RingDir::Ccw);
                assert_eq!(bitstring, 0xBEEF);
                assert_eq!(src, NodeId(0));
                assert_eq!(dst, NodeId(11));
            }
            other => panic!("expected header, got {other:?}"),
        }
    }

    #[test]
    fn body_and_tail_roundtrip() {
        let m = meta(TrafficClass::Unicast, 1, 2, 0, RingDir::Cw);
        for (kind, want) in [(FlitKind::Body, 0xDEADBEEFu32), (FlitKind::Tail, 0x12345678)] {
            match (kind, decode(encode(&m, kind, want)).unwrap()) {
                (FlitKind::Body, WireFlit::Body(p)) => assert_eq!(p, want),
                (FlitKind::Tail, WireFlit::Tail(p)) => assert_eq!(p, want),
                other => panic!("mismatch: {other:?}"),
            }
        }
    }

    #[test]
    fn flit_word_is_34_bits() {
        let m = meta(TrafficClass::Multicast, 63, 63, 0xFFFF, RingDir::Ccw);
        assert!(encode(&m, FlitKind::Header, 0) <= FLIT_MASK);
        assert!(encode(&m, FlitKind::Tail, u32::MAX) <= FLIT_MASK);
    }

    #[test]
    fn reserved_encodings_rejected() {
        // class 0b111 is reserved (on both header-carrying flit types)
        let bad = (0b111u64 << 31) | FlitKind::Header.wire_bits();
        assert_eq!(decode(bad), None);
        let bad_single = (0b111u64 << 31) | FlitKind::Single.wire_bits();
        assert_eq!(decode(bad_single), None);
        // classes 0b110 and 0b111 are reserved
        let bad6 = (0b110u64 << 31) | FlitKind::Header.wire_bits();
        assert_eq!(decode(bad6), None);
        // bits above bit 33 must be clear
        assert_eq!(decode(1u64 << 34), None);
    }

    #[test]
    fn single_flit_roundtrip() {
        // Flit type 0b11 was reserved in the original format; it now carries
        // whole one-flit packets (the recovery layer's ACKs).
        let m = meta(TrafficClass::Ack, 9, 3, 0, RingDir::Cw);
        let w = encode(&m, FlitKind::Single, 0);
        assert!(w <= FLIT_MASK);
        match decode(w).unwrap() {
            WireFlit::Single { class, src, dst, .. } => {
                assert_eq!(class, TrafficClass::Ack);
                assert_eq!(src, NodeId(9));
                assert_eq!(dst, NodeId(3));
            }
            other => panic!("expected single, got {other:?}"),
        }
    }

    #[test]
    fn single_flit_is_header_and_tail() {
        let f = Flit { packet: PacketRef(0), seq: 0, kind: FlitKind::Single, payload: 0 };
        assert!(f.is_header() && f.is_tail());
        assert_eq!(f.to_string(), "S[0 #0]");
    }

    #[test]
    fn class_predicates() {
        assert!(TrafficClass::ChainRim.is_chain());
        assert!(TrafficClass::ChainCross.is_chain());
        assert!(!TrafficClass::Broadcast.is_chain());
        assert!(TrafficClass::Broadcast.is_collective());
        assert!(TrafficClass::Multicast.is_collective());
        assert!(!TrafficClass::Unicast.is_collective());
    }

    #[test]
    fn kind_wire_bits_roundtrip() {
        for k in [FlitKind::Header, FlitKind::Body, FlitKind::Tail, FlitKind::Single] {
            assert_eq!(FlitKind::from_wire_bits(k.wire_bits()), Some(k));
        }
    }

    #[test]
    fn class_wire_bits_roundtrip() {
        for c in [
            TrafficClass::Unicast,
            TrafficClass::Multicast,
            TrafficClass::Broadcast,
            TrafficClass::ChainRim,
            TrafficClass::ChainCross,
            TrafficClass::Ack,
        ] {
            assert_eq!(TrafficClass::from_wire_bits(c.wire_bits()), Some(c));
        }
    }

    #[test]
    fn display_formats() {
        let f = Flit { packet: PacketRef(5), seq: 0, kind: FlitKind::Header, payload: 0 };
        assert_eq!(f.to_string(), "H[0 #5]");
    }

    #[test]
    fn class_indices_are_dense_and_unique() {
        let all = [
            TrafficClass::Unicast,
            TrafficClass::Multicast,
            TrafficClass::Broadcast,
            TrafficClass::ChainRim,
            TrafficClass::ChainCross,
            TrafficClass::Ack,
        ];
        let mut seen = [false; TrafficClass::COUNT];
        for c in all {
            assert!(c.index() < TrafficClass::COUNT);
            assert!(!seen[c.index()], "duplicate index for {c}");
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn packet_table_recycles_slots() {
        let mut t = PacketTable::new();
        let a = t.insert(meta(TrafficClass::Unicast, 0, 1, 0, RingDir::Cw));
        let b = t.insert(meta(TrafficClass::Unicast, 2, 3, 0, RingDir::Cw));
        assert_eq!(t.live(), 2);
        assert_eq!(t.meta(a).src, NodeId(0));
        assert_eq!(t.meta(b).src, NodeId(2));
        t.release(a);
        assert_eq!(t.live(), 1);
        // The freed slot is reused; capacity does not grow.
        let c = t.insert(meta(TrafficClass::Broadcast, 4, 5, 0, RingDir::Ccw));
        assert_eq!(c, a);
        assert_eq!(t.capacity(), 2);
        assert_eq!(t.meta(c).class, TrafficClass::Broadcast);
    }

    #[test]
    fn packet_table_meta_mut_edits_in_place() {
        let mut t = PacketTable::new();
        let r = t.insert(meta(TrafficClass::Multicast, 0, 4, 0b101, RingDir::Cw));
        t.advance_header(r);
        assert_eq!(t.meta(r).bitstring, Bits::inline(0b10));
    }

    #[test]
    fn packet_table_release_frees_slab_rows() {
        let mut t = PacketTable::with_bit_capacity(200);
        let r = t.insert(meta(TrafficClass::Multicast, 0, 4, 0, RingDir::Cw));
        let mut b = t.meta(r).bitstring;
        t.bits_mut().set_bit(&mut b, 150);
        t.meta_mut(r).bitstring = b;
        assert_eq!(t.bits().live_rows(), 1);
        t.release(r);
        assert_eq!(t.bits().live_rows(), 0, "release must return the slab row");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "double release")]
    fn packet_table_double_release_panics() {
        let mut t = PacketTable::new();
        let r = t.insert(meta(TrafficClass::Unicast, 0, 1, 0, RingDir::Cw));
        t.release(r);
        t.release(r);
    }
}
