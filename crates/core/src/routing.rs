//! Per-hop routing decisions for Quarc and Spidergon switches, and the
//! Spidergon broadcast-by-unicast replication plan.
//!
//! The Quarc decision (§2.5.1) is deliberately trivial — "packets are either
//! destined for the local port or forwarded to a single possible destination"
//! — because the source transceiver already picked the quadrant. The only
//! state a Quarc switch inspects is: *did the header's destination address
//! match my own?* plus, for collectives, the broadcast tag / multicast
//! bitstring that tells the ingress multiplexer to clone.
//!
//! The Spidergon decision is the classical across-first scheme, and its
//! broadcast is the paper's ref. [9] algorithm: a replication *chain* that
//! costs N−1 link traversals, each one a full store-and-forward through the
//! receiving node's single injection port.

use crate::flit::{PacketMeta, TrafficClass};
use crate::ids::NodeId;
use crate::quadrant::Quadrant;
use crate::ring::{Ring, RingDir};
use crate::topology::{QuarcIn, QuarcOut, SpiOut};

/// What a switch does with an arriving header (and, by wormhole state, with
/// the body and tail flits that follow it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteAction<Out> {
    /// Absorb the packet into the local PE.
    Deliver,
    /// Forward on the given output port.
    Forward(Out),
    /// Clone at the ingress multiplexer: the local PE takes a copy *and* the
    /// flit continues on the given output port (§2.5.2: "the flits of the
    /// packet at the same time are received by the local node and forwarded
    /// along the rim").
    DeliverAndForward(Out),
}

impl<Out: Copy> RouteAction<Out> {
    /// The output port the flit continues on, if any.
    #[inline]
    pub fn forward_port(&self) -> Option<Out> {
        match self {
            RouteAction::Deliver => None,
            RouteAction::Forward(p) | RouteAction::DeliverAndForward(p) => Some(*p),
        }
    }

    /// Whether the local PE receives a copy.
    #[inline]
    pub fn delivers(&self) -> bool {
        matches!(self, RouteAction::Deliver | RouteAction::DeliverAndForward(_))
    }
}

/// The output port a Quarc local ingress (quadrant) queue feeds — the entire
/// "routing" a source-injected flit needs (§2.5.1).
#[inline]
pub fn quarc_injection_out(quad: Quadrant) -> QuarcOut {
    match quad {
        Quadrant::Right => QuarcOut::RimCw,
        Quadrant::CrossRight => QuarcOut::CrossRight,
        Quadrant::CrossLeft => QuarcOut::CrossLeft,
        Quadrant::Left => QuarcOut::RimCcw,
    }
}

/// The Quarc switch decision for a header arriving on `input` at `node`.
///
/// Matches the paper's §2.3.2/§2.5: rim and cross-right inputs may deliver or
/// continue in the *same* direction; the cross-left input is transit-only;
/// local ingress ports go straight to their quadrant's link.
pub fn quarc_route(
    ring: &Ring,
    node: NodeId,
    input: QuarcIn,
    meta: &PacketMeta,
) -> RouteAction<QuarcOut> {
    let continue_out = match input {
        QuarcIn::Local(q) => return RouteAction::Forward(quarc_injection_out(q)),
        QuarcIn::RimCw => QuarcOut::RimCw,
        QuarcIn::RimCcw => QuarcOut::RimCcw,
        QuarcIn::CrossRight => QuarcOut::RimCw,
        QuarcIn::CrossLeft => {
            // Transit-only: the antipode is covered by the cross-right stream.
            debug_assert_ne!(meta.dst, node, "cross-left input never delivers");
            return RouteAction::Forward(QuarcOut::RimCcw);
        }
    };
    debug_assert_eq!(
        ring.len() % 4,
        0,
        "Quarc ring must be a multiple of 4 (checked at topology construction)"
    );
    if meta.dst == node {
        return RouteAction::Deliver;
    }
    match meta.class {
        TrafficClass::Broadcast => RouteAction::DeliverAndForward(continue_out),
        TrafficClass::Multicast => {
            // Free for slab-backed bitstrings too: handles cache bit 0.
            if meta.bitstring.bit0() {
                RouteAction::DeliverAndForward(continue_out)
            } else {
                RouteAction::Forward(continue_out)
            }
        }
        _ => RouteAction::Forward(continue_out),
    }
}

/// Header bookkeeping applied when a Quarc switch forwards a header flit:
/// multicast bitstrings shift one position per hop so that bit 0 always
/// answers "does the *next* node take a copy?" (§2.5.3).
///
/// This free-function form handles only inline bitstrings (the RTL model
/// and tests); the simulators route every shift through
/// [`crate::flit::PacketTable::advance_header`], which also advances
/// slab-backed rows.
#[inline]
pub fn advance_header(meta: &mut PacketMeta) {
    if meta.class == TrafficClass::Multicast {
        debug_assert!(
            meta.bitstring.is_inline(),
            "slab-backed bitstrings must be advanced via PacketTable::advance_header"
        );
        meta.bitstring = crate::bits::Bits::inline(meta.bitstring.inline_value() >> 1);
    }
}

/// The across-first Spidergon routing function (paper §2.1 / ref. [5]).
///
/// `q = ⌊n/4⌋`; CW for `d ∈ [1, q]`, CCW for `d ∈ [n − q, n)`, cross
/// otherwise. The cross link is only ever taken as a first hop, so routes are
/// minimal and at most `1 + q` hops (for `d` just above `q`).
pub fn spidergon_route(ring: &Ring, node: NodeId, dst: NodeId) -> RouteAction<SpiOut> {
    if dst == node {
        return RouteAction::Deliver;
    }
    let n = ring.len();
    let q = n / 4;
    let d = ring.cw_dist(node, dst);
    if d <= q {
        RouteAction::Forward(SpiOut::RimCw)
    } else if d >= n - q {
        RouteAction::Forward(SpiOut::RimCcw)
    } else {
        RouteAction::Forward(SpiOut::Cross)
    }
}

/// Shortest-path hop count under Spidergon routing.
pub fn spidergon_hops(ring: &Ring, src: NodeId, dst: NodeId) -> usize {
    let mut cur = src;
    let mut hops = 0;
    loop {
        match spidergon_route(ring, cur, dst) {
            RouteAction::Deliver => return hops,
            RouteAction::Forward(out) => {
                cur = match out {
                    SpiOut::RimCw => ring.cw(cur),
                    SpiOut::RimCcw => ring.ccw(cur),
                    SpiOut::Cross => ring.antipode(cur),
                    SpiOut::Eject => unreachable!("route never returns Eject as Forward"),
                };
                hops += 1;
                debug_assert!(hops <= ring.len(), "Spidergon route diverged");
            }
            RouteAction::DeliverAndForward(_) => {
                unreachable!("Spidergon unicast routing never clones")
            }
        }
    }
}

/// The full Spidergon walk from `src` to `dst` as `(node, out_port)` pairs,
/// excluding the final ejection. Used by the analytical link-load model.
pub fn spidergon_path(ring: &Ring, src: NodeId, dst: NodeId) -> Vec<(NodeId, SpiOut)> {
    let mut path = Vec::new();
    let mut cur = src;
    loop {
        match spidergon_route(ring, cur, dst) {
            RouteAction::Deliver => return path,
            RouteAction::Forward(out) => {
                path.push((cur, out));
                cur = match out {
                    SpiOut::RimCw => ring.cw(cur),
                    SpiOut::RimCcw => ring.ccw(cur),
                    SpiOut::Cross => ring.antipode(cur),
                    SpiOut::Eject => unreachable!(),
                };
            }
            RouteAction::DeliverAndForward(_) => unreachable!(),
        }
    }
}

/// One step of the Spidergon broadcast-by-unicast plan: a packet to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainSeed {
    /// `ChainRim` (rim replication) or `ChainCross` (antipode seed).
    pub class: TrafficClass,
    /// Destination of this packet (always one routing hop's final target:
    /// the next rim neighbour or the antipode).
    pub dst: NodeId,
    /// Rim direction the chain propagates in (`Cw` placeholder for cross).
    pub dir: RingDir,
    /// Number of nodes the chain must still cover *after* `dst`; carried in
    /// the header's bitstring field and decremented at every re-injection
    /// (this is the paper's "header flit needs to be rewritten").
    pub remaining: u16,
}

/// A fixed-capacity list of [`ChainSeed`]s (at most three: the broadcast
/// plan's two rim chains plus the cross seed). Replication runs inside the
/// simulator's per-cycle loop, so the plan must not heap-allocate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChainSeeds {
    seeds: [Option<ChainSeed>; 3],
    len: usize,
}

impl ChainSeeds {
    fn push(&mut self, seed: ChainSeed) {
        self.seeds[self.len] = Some(seed);
        self.len += 1;
    }

    /// The seeds as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[Option<ChainSeed>] {
        &self.seeds[..self.len]
    }

    /// Number of seeds.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the plan is empty (chain terminated).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate over the seeds.
    pub fn iter(&self) -> impl Iterator<Item = &ChainSeed> + '_ {
        self.seeds[..self.len].iter().map(|s| s.as_ref().expect("dense prefix"))
    }
}

impl IntoIterator for ChainSeeds {
    type Item = ChainSeed;
    type IntoIter = std::iter::Flatten<std::array::IntoIter<Option<ChainSeed>, 3>>;

    fn into_iter(self) -> Self::IntoIter {
        self.seeds.into_iter().flatten()
    }
}

/// The packets a Spidergon source injects to broadcast (ref. [9]'s N−1-hop
/// algorithm): one rim chain per direction covering `q` nodes each, plus a
/// cross seed whose receiver spawns two more rim chains covering `q − 1`
/// nodes each. Total link traversals: `q + q + 1 + (q−1) + (q−1) = n − 1`.
///
/// Requires `n ≡ 0 (mod 4)` (the configuration used in all of the paper's
/// broadcast experiments).
pub fn spidergon_broadcast_seeds(ring: &Ring, src: NodeId) -> ChainSeeds {
    assert!(ring.len().is_multiple_of(4), "broadcast plan requires n ≡ 0 (mod 4)");
    let q = ring.quarter() as u16;
    let mut seeds = ChainSeeds::default();
    seeds.push(ChainSeed {
        class: TrafficClass::ChainRim,
        dst: ring.cw(src),
        dir: RingDir::Cw,
        remaining: q - 1,
    });
    seeds.push(ChainSeed {
        class: TrafficClass::ChainRim,
        dst: ring.ccw(src),
        dir: RingDir::Ccw,
        remaining: q - 1,
    });
    seeds.push(ChainSeed {
        class: TrafficClass::ChainCross,
        dst: ring.antipode(src),
        dir: RingDir::Cw,
        remaining: q - 1,
    });
    seeds
}

/// The packets a Spidergon *transceiver* re-injects when a chain packet is
/// delivered to it (the switch-side replication logic the paper describes in
/// §2.2: "The NoC switches must contain the logic to create the required
/// packets on receipt of a broadcast-by-unicast packet").
pub fn chain_continuations(ring: &Ring, node: NodeId, meta: &PacketMeta) -> ChainSeeds {
    let mut seeds = ChainSeeds::default();
    // Chain counters always fit inline (remaining ≤ q − 1 < 2^16).
    match meta.class {
        TrafficClass::ChainRim if meta.bitstring.inline_value() > 0 => {
            seeds.push(ChainSeed {
                class: TrafficClass::ChainRim,
                dst: ring.step(node, meta.dir),
                dir: meta.dir,
                remaining: (meta.bitstring.inline_value() - 1) as u16,
            });
        }
        TrafficClass::ChainCross if meta.bitstring.inline_value() > 0 => {
            seeds.push(ChainSeed {
                class: TrafficClass::ChainRim,
                dst: ring.cw(node),
                dir: RingDir::Cw,
                remaining: (meta.bitstring.inline_value() - 1) as u16,
            });
            seeds.push(ChainSeed {
                class: TrafficClass::ChainRim,
                dst: ring.ccw(node),
                dir: RingDir::Ccw,
                remaining: (meta.bitstring.inline_value() - 1) as u16,
            });
        }
        _ => {}
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{MessageId, PacketId};
    use std::collections::HashSet;

    fn meta(class: TrafficClass, src: u32, dst: u32, bitstring: u64, dir: RingDir) -> PacketMeta {
        PacketMeta {
            message: MessageId(0),
            packet: PacketId(0),
            class,
            src: NodeId(src),
            dst: NodeId(dst),
            bitstring: crate::bits::Bits::inline(bitstring),
            dir,
            len: 4,
            created_at: 0,
        }
    }

    #[test]
    fn quarc_unicast_forwarding_and_delivery() {
        let ring = Ring::new(16);
        let m = meta(TrafficClass::Unicast, 0, 3, 0, RingDir::Cw);
        // At node 1 and 2 the header keeps moving CW; at 3 it delivers.
        assert_eq!(
            quarc_route(&ring, NodeId(1), QuarcIn::RimCw, &m),
            RouteAction::Forward(QuarcOut::RimCw)
        );
        assert_eq!(quarc_route(&ring, NodeId(3), QuarcIn::RimCw, &m), RouteAction::Deliver);
    }

    #[test]
    fn quarc_broadcast_clones_at_intermediates() {
        let ring = Ring::new(16);
        let m = meta(TrafficClass::Broadcast, 0, 4, 0, RingDir::Cw);
        assert_eq!(
            quarc_route(&ring, NodeId(2), QuarcIn::RimCw, &m),
            RouteAction::DeliverAndForward(QuarcOut::RimCw)
        );
        assert_eq!(quarc_route(&ring, NodeId(4), QuarcIn::RimCw, &m), RouteAction::Deliver);
    }

    #[test]
    fn quarc_cross_right_delivers_at_antipode_for_broadcast() {
        let ring = Ring::new(16);
        // Cross-right broadcast stream from 0: dst 11, first arrival at 8.
        let m = meta(TrafficClass::Broadcast, 0, 11, 0, RingDir::Cw);
        assert_eq!(
            quarc_route(&ring, NodeId(8), QuarcIn::CrossRight, &m),
            RouteAction::DeliverAndForward(QuarcOut::RimCw)
        );
    }

    #[test]
    fn quarc_cross_left_is_transit_only() {
        let ring = Ring::new(16);
        // Cross-left broadcast stream from 0: dst 5, passes node 8 silently.
        let m = meta(TrafficClass::Broadcast, 0, 5, 0, RingDir::Cw);
        assert_eq!(
            quarc_route(&ring, NodeId(8), QuarcIn::CrossLeft, &m),
            RouteAction::Forward(QuarcOut::RimCcw)
        );
    }

    #[test]
    fn quarc_local_ports_map_to_their_links() {
        let ring = Ring::new(16);
        let m = meta(TrafficClass::Unicast, 0, 3, 0, RingDir::Cw);
        for (quad, out) in [
            (Quadrant::Right, QuarcOut::RimCw),
            (Quadrant::Left, QuarcOut::RimCcw),
            (Quadrant::CrossRight, QuarcOut::CrossRight),
            (Quadrant::CrossLeft, QuarcOut::CrossLeft),
        ] {
            assert_eq!(
                quarc_route(&ring, NodeId(0), QuarcIn::Local(quad), &m),
                RouteAction::Forward(out)
            );
        }
    }

    #[test]
    fn multicast_bit0_controls_clone() {
        let ring = Ring::new(16);
        let hit = meta(TrafficClass::Multicast, 0, 4, 0b101, RingDir::Cw);
        let miss = meta(TrafficClass::Multicast, 0, 4, 0b100, RingDir::Cw);
        assert_eq!(
            quarc_route(&ring, NodeId(1), QuarcIn::RimCw, &hit),
            RouteAction::DeliverAndForward(QuarcOut::RimCw)
        );
        assert_eq!(
            quarc_route(&ring, NodeId(1), QuarcIn::RimCw, &miss),
            RouteAction::Forward(QuarcOut::RimCw)
        );
        let mut m = hit;
        advance_header(&mut m);
        assert_eq!(m.bitstring, crate::bits::Bits::inline(0b10));
    }

    #[test]
    fn advance_header_only_touches_multicast() {
        let mut m = meta(TrafficClass::Broadcast, 0, 4, 0xFFFF, RingDir::Cw);
        advance_header(&mut m);
        assert_eq!(m.bitstring, crate::bits::Bits::inline(0xFFFF));
    }

    #[test]
    fn spidergon_route_matches_quadrants() {
        let ring = Ring::new(16);
        let s = NodeId(0);
        for (dst, want) in [
            (1u32, RouteAction::Forward(SpiOut::RimCw)),
            (4, RouteAction::Forward(SpiOut::RimCw)),
            (5, RouteAction::Forward(SpiOut::Cross)),
            (8, RouteAction::Forward(SpiOut::Cross)),
            (11, RouteAction::Forward(SpiOut::Cross)),
            (12, RouteAction::Forward(SpiOut::RimCcw)),
            (15, RouteAction::Forward(SpiOut::RimCcw)),
        ] {
            assert_eq!(spidergon_route(&ring, s, NodeId(dst)), want, "dst {dst}");
        }
        assert_eq!(spidergon_route(&ring, s, s), RouteAction::Deliver);
    }

    #[test]
    fn spidergon_routes_are_minimal_and_terminate() {
        for n in [8usize, 16, 32, 64] {
            let ring = Ring::new(n);
            let q = n / 4;
            for s in ring.nodes() {
                for t in ring.nodes() {
                    let h = spidergon_hops(&ring, s, t);
                    let d = ring.cw_dist(s, t);
                    let expect = if t == s {
                        0
                    } else if d <= q {
                        d
                    } else if d >= n - q {
                        n - d
                    } else {
                        // cross + rim remainder
                        1 + d.abs_diff(n / 2)
                    };
                    assert_eq!(h, expect, "n={n} {s}->{t}");
                    assert!(h <= q + 1);
                }
            }
        }
    }

    #[test]
    fn spidergon_path_crosses_at_most_once() {
        let ring = Ring::new(32);
        for s in ring.nodes() {
            for t in ring.nodes() {
                let crossings = spidergon_path(&ring, s, t)
                    .iter()
                    .filter(|(_, out)| *out == SpiOut::Cross)
                    .count();
                assert!(crossings <= 1, "{s}->{t}");
            }
        }
    }

    #[test]
    fn spidergon_quarc_same_unicast_distance() {
        // The Quarc keeps Spidergon's shortest paths (§2.2 "The Quarc
        // preserves all other features ... deterministic shortest path
        // routing algorithm").
        for n in [8usize, 16, 32, 64] {
            let ring = Ring::new(n);
            for s in ring.nodes() {
                for t in ring.nodes() {
                    assert_eq!(
                        spidergon_hops(&ring, s, t),
                        crate::quadrant::unicast_hops(&ring, s, t),
                        "n={n} {s}->{t}"
                    );
                }
            }
        }
    }

    /// Execute the full broadcast-by-unicast replication and check coverage
    /// and the N−1 total-hop claim.
    #[test]
    fn chain_broadcast_covers_all_nodes_in_n_minus_1_hops() {
        for n in [8usize, 16, 32, 64] {
            let ring = Ring::new(n);
            let src = NodeId(2 % n as u32);
            let mut covered = HashSet::new();
            let mut total_hops = 0usize;
            let mut queue: Vec<ChainSeed> =
                spidergon_broadcast_seeds(&ring, src).into_iter().collect();
            while let Some(seed) = queue.pop() {
                total_hops += spidergon_hops(&ring, seed_prev(&ring, &seed), seed.dst).max(1);
                assert!(covered.insert(seed.dst), "n={n}: {} covered twice", seed.dst);
                let m = meta(seed.class, src.0, seed.dst.0, seed.remaining as u64, seed.dir);
                queue.extend(chain_continuations(&ring, seed.dst, &m));
            }
            assert_eq!(covered.len(), n - 1, "n={n}");
            assert!(!covered.contains(&src));
            assert_eq!(total_hops, n - 1, "n={n}: paper claims N−1 link traversals");
        }
    }

    /// The node a seed was injected from: its rim predecessor (or the
    /// antipode's source for cross seeds). Test helper only.
    fn seed_prev(ring: &Ring, seed: &ChainSeed) -> NodeId {
        match seed.class {
            TrafficClass::ChainRim => ring.step(seed.dst, seed.dir.opposite()),
            TrafficClass::ChainCross => ring.antipode(seed.dst),
            _ => unreachable!(),
        }
    }

    #[test]
    fn chain_continuation_terminates() {
        let ring = Ring::new(16);
        let m = meta(TrafficClass::ChainRim, 0, 4, 0, RingDir::Cw);
        assert!(chain_continuations(&ring, NodeId(4), &m).is_empty());
        let m = meta(TrafficClass::Unicast, 0, 4, 7, RingDir::Cw);
        assert!(chain_continuations(&ring, NodeId(4), &m).is_empty());
    }

    #[test]
    fn route_action_accessors() {
        let a: RouteAction<SpiOut> = RouteAction::Deliver;
        assert!(a.delivers());
        assert_eq!(a.forward_port(), None);
        let b = RouteAction::Forward(SpiOut::RimCw);
        assert!(!b.delivers());
        assert_eq!(b.forward_port(), Some(SpiOut::RimCw));
        let c = RouteAction::DeliverAndForward(SpiOut::RimCw);
        assert!(c.delivers());
        assert_eq!(c.forward_port(), Some(SpiOut::RimCw));
    }
}
