//! 2D torus topology with dimension-ordered routing and per-dimension
//! dateline virtual channels.
//!
//! The paper closes with "Our next objective is to compare the performance
//! of the Quarc against other widely used NoC architectures such as mesh and
//! torus" (§4). The mesh lives in [`crate::topology`]; this module supplies
//! the torus: every row and column is a unidirectional ring pair, so each
//! dimension needs the same dateline VC discipline the Quarc rims use —
//! which lets the torus share the deadlock-freedom machinery of [`crate::vc`].
//!
//! Routing is dimension-ordered (x then y) taking the shorter way around
//! each ring, with ties broken toward increasing coordinates so routes stay
//! deterministic.

use crate::bits::BitSlab;
use crate::ids::{NodeId, VcId};
use crate::ring::{Ring, RingDir};
use crate::topology::{GridBranch, GridBranchAcc, GRID_MC_MAX_SIDE};
use crate::vc::{vc_after_rim_hop, ChannelDepGraph, INJECTION_VC};
use std::fmt;

/// Output ports of a torus router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TorusOut {
    /// +x (wrapping).
    XPlus,
    /// −x (wrapping).
    XMinus,
    /// +y (wrapping).
    YPlus,
    /// −y (wrapping).
    YMinus,
    /// Delivery to the local PE.
    Eject,
}

impl TorusOut {
    /// All five ports.
    pub const ALL: [TorusOut; 5] =
        [TorusOut::XPlus, TorusOut::XMinus, TorusOut::YPlus, TorusOut::YMinus, TorusOut::Eject];

    /// The four network ports.
    pub const NETWORK: [TorusOut; 4] =
        [TorusOut::XPlus, TorusOut::XMinus, TorusOut::YPlus, TorusOut::YMinus];

    /// Stable index (0..5).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            TorusOut::XPlus => 0,
            TorusOut::XMinus => 1,
            TorusOut::YPlus => 2,
            TorusOut::YMinus => 3,
            TorusOut::Eject => 4,
        }
    }
}

impl fmt::Display for TorusOut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TorusOut::XPlus => "x+",
            TorusOut::XMinus => "x-",
            TorusOut::YPlus => "y+",
            TorusOut::YMinus => "y-",
            TorusOut::Eject => "eject",
        };
        write!(f, "{s}")
    }
}

/// A `cols × rows` torus; node `i` sits at `(i % cols, i / cols)`.
#[derive(Debug, Clone, Copy)]
pub struct TorusTopology {
    cols: usize,
    rows: usize,
}

impl TorusTopology {
    /// Build a torus. Both dimensions must be ≥ 2 for the wrap links to be
    /// distinct from the direct ones.
    pub fn new(cols: usize, rows: usize) -> Self {
        assert!(cols >= 2 && rows >= 2, "torus dimensions must be ≥ 2");
        assert!(cols * rows <= u32::MAX as usize);
        TorusTopology { cols, rows }
    }

    /// A near-square torus of at least `n` nodes.
    pub fn square(n: usize) -> Self {
        let side = (n as f64).sqrt().ceil() as usize;
        TorusTopology::new(side.max(2), side.max(2))
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.cols * self.rows
    }

    /// Columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Node coordinates.
    #[inline]
    pub fn coords(&self, node: NodeId) -> (usize, usize) {
        (node.index() % self.cols, node.index() / self.cols)
    }

    /// Node at coordinates (wrapping).
    #[inline]
    pub fn node_at(&self, x: usize, y: usize) -> NodeId {
        NodeId::new((y % self.rows) * self.cols + (x % self.cols))
    }

    /// Where a network output of `node` lands (always `Some` — torus links
    /// wrap).
    pub fn link_target(&self, node: NodeId, out: TorusOut) -> Option<NodeId> {
        let (x, y) = self.coords(node);
        match out {
            TorusOut::XPlus => Some(self.node_at(x + 1, y)),
            TorusOut::XMinus => Some(self.node_at(x + self.cols - 1, y)),
            TorusOut::YPlus => Some(self.node_at(x, y + 1)),
            TorusOut::YMinus => Some(self.node_at(x, y + self.rows - 1)),
            TorusOut::Eject => None,
        }
    }

    /// Shortest signed offset from `a` to `b` on a ring of length `len`:
    /// positive = travel in `+` direction. Ties (exactly half way) go `+`.
    fn signed_offset(a: usize, b: usize, len: usize) -> isize {
        let fwd = (b + len - a) % len;
        if fwd <= len / 2 {
            fwd as isize
        } else {
            fwd as isize - len as isize
        }
    }

    /// Dimension-ordered routing decision: fix x first, then y.
    pub fn route(&self, cur: NodeId, dst: NodeId) -> TorusOut {
        let (cx, cy) = self.coords(cur);
        let (dx, dy) = self.coords(dst);
        let ox = Self::signed_offset(cx, dx, self.cols);
        if ox > 0 {
            return TorusOut::XPlus;
        }
        if ox < 0 {
            return TorusOut::XMinus;
        }
        let oy = Self::signed_offset(cy, dy, self.rows);
        if oy > 0 {
            TorusOut::YPlus
        } else if oy < 0 {
            TorusOut::YMinus
        } else {
            TorusOut::Eject
        }
    }

    /// Shortest-path hop count under this routing.
    pub fn hops(&self, src: NodeId, dst: NodeId) -> usize {
        let (sx, sy) = self.coords(src);
        let (dx, dy) = self.coords(dst);
        (Self::signed_offset(sx, dx, self.cols).unsigned_abs())
            + (Self::signed_offset(sy, dy, self.rows).unsigned_abs())
    }

    /// Torus diameter: `⌊cols/2⌋ + ⌊rows/2⌋`.
    pub fn diameter(&self) -> usize {
        self.cols / 2 + self.rows / 2
    }

    /// The VC for a hop leaving `node` via `out` while holding `vc`,
    /// applying the dateline of the ring the hop travels on (x-rings date
    /// at column `cols−1 → 0`, y-rings at row `rows−1 → 0`).
    pub fn next_vc(&self, node: NodeId, out: TorusOut, vc: VcId) -> VcId {
        let (x, y) = self.coords(node);
        match out {
            TorusOut::XPlus => {
                vc_after_rim_hop(&Ring::new(self.cols), NodeId::new(x), RingDir::Cw, vc)
            }
            TorusOut::XMinus => {
                vc_after_rim_hop(&Ring::new(self.cols), NodeId::new(x), RingDir::Ccw, vc)
            }
            // A packet turning from x to y starts fresh on the y dateline
            // scheme (dimension order makes x- and y-channels disjoint).
            TorusOut::YPlus => {
                vc_after_rim_hop(&Ring::new(self.rows), NodeId::new(y), RingDir::Cw, vc)
            }
            TorusOut::YMinus => {
                vc_after_rim_hop(&Ring::new(self.rows), NodeId::new(y), RingDir::Ccw, vc)
            }
            TorusOut::Eject => vc,
        }
    }

    /// The channel sequence of a route, as `(link id, vc)` pairs for the
    /// deadlock checker. Link ids encode `node * 4 + out`.
    pub fn route_channels(&self, src: NodeId, dst: NodeId) -> Vec<(u64, VcId)> {
        let mut channels = Vec::new();
        let mut cur = src;
        let mut vc = INJECTION_VC;
        let mut turned = false;
        loop {
            let out = self.route(cur, dst);
            match out {
                TorusOut::Eject => return channels,
                _ => {
                    // Reset the VC class when the packet turns into y.
                    let is_y = matches!(out, TorusOut::YPlus | TorusOut::YMinus);
                    if is_y && !turned {
                        vc = INJECTION_VC;
                        turned = true;
                    }
                    vc = self.next_vc(cur, out, vc);
                    channels.push(((cur.index() * 4 + out.index()) as u64, vc));
                    cur = self.link_target(cur, out).expect("network port");
                }
            }
        }
    }

    /// Plan the dimension-ordered multicast tree for `targets` — the torus
    /// analogue of [`crate::topology::MeshTopology::multicast_branches_into`],
    /// with each dimension taking the shorter way around its ring.
    ///
    /// Targets are grouped by destination column and (shortest-way) y
    /// direction; each group becomes one source-routed branch whose path is
    /// this topology's [`Self::route`] walk to the group's furthest target,
    /// branching out of the x run at the turn node. Bit `i` of the branch
    /// bitstring marks the node after `i + 1` hops, the same per-hop shift
    /// semantics the routers apply. `out` is cleared and refilled so a reused
    /// buffer keeps steady-state expansion allocation-free; bitstrings are
    /// emitted into `slab` (branches within 63 hops stay inline).
    pub fn multicast_branches_into(
        &self,
        src: NodeId,
        targets: impl IntoIterator<Item = NodeId>,
        slab: &mut BitSlab,
        out: &mut Vec<GridBranch>,
    ) {
        out.clear();
        assert!(
            self.cols <= GRID_MC_MAX_SIDE,
            "grid multicast planner scratch caps the side at {GRID_MC_MAX_SIDE} (n ≤ 65,536)"
        );
        let (sx, sy) = self.coords(src);
        let mut acc = [[None::<GridBranchAcc>; 2]; GRID_MC_MAX_SIDE];
        for t in targets {
            if t == src {
                continue;
            }
            let (tx, ty) = self.coords(t);
            let dist_x = Self::signed_offset(sx, tx, self.cols).unsigned_abs();
            let oy = Self::signed_offset(sy, ty, self.rows);
            // `oy == 0` targets sit on the x run and ride the `y+` branch.
            let (minus, dy) = if oy >= 0 { (0, oy as usize) } else { (1, oy.unsigned_abs()) };
            acc[tx][minus].get_or_insert_with(GridBranchAcc::default).add(slab, dist_x + dy, dy);
        }
        for (tx, pair) in acc.iter().enumerate() {
            for (minus, a) in pair.iter().enumerate() {
                if let Some(a) = a {
                    let ry = if minus == 0 { sy + a.max_dy } else { sy + self.rows - a.max_dy };
                    out.push(GridBranch { dst: self.node_at(tx, ry), bitstring: a.bits });
                }
            }
        }
    }

    /// Build the full channel dependency graph of all unicast routes and
    /// check it for cycles (used by tests; exposed for the explorer
    /// example).
    pub fn dependency_graph(&self) -> ChannelDepGraph {
        let n = self.num_nodes();
        let mut g = ChannelDepGraph::new();
        for s in 0..n {
            for t in 0..n {
                g.add_route(&self.route_channels(NodeId::new(s), NodeId::new(t)));
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip_and_wrap() {
        let t = TorusTopology::new(4, 4);
        assert_eq!(t.link_target(NodeId(3), TorusOut::XPlus), Some(NodeId(0)));
        assert_eq!(t.link_target(NodeId(0), TorusOut::XMinus), Some(NodeId(3)));
        assert_eq!(t.link_target(NodeId(12), TorusOut::YPlus), Some(NodeId(0)));
        assert_eq!(t.link_target(NodeId(0), TorusOut::YMinus), Some(NodeId(12)));
    }

    #[test]
    fn routes_reach_destination_in_hops() {
        let t = TorusTopology::new(4, 4);
        for s in 0..16usize {
            for d in 0..16usize {
                let (src, dst) = (NodeId::new(s), NodeId::new(d));
                let mut cur = src;
                let mut steps = 0;
                while t.route(cur, dst) != TorusOut::Eject {
                    cur = t.link_target(cur, t.route(cur, dst)).unwrap();
                    steps += 1;
                    assert!(steps <= t.diameter(), "route diverged {s}->{d}");
                }
                assert_eq!(cur, dst);
                assert_eq!(steps, t.hops(src, dst));
            }
        }
    }

    #[test]
    fn torus_shorter_than_mesh() {
        // Wrap links halve the worst-case distance vs the mesh.
        let t = TorusTopology::new(8, 8);
        assert_eq!(t.diameter(), 8);
        let m = crate::topology::MeshTopology::new(8, 8);
        assert_eq!(m.diameter(), 14);
    }

    #[test]
    fn torus_channel_graph_is_acyclic() {
        for (c, r) in [(4usize, 4usize), (5, 3), (8, 8)] {
            let t = TorusTopology::new(c, r);
            assert!(
                !t.dependency_graph().has_cycle(),
                "{c}x{r} torus dependency graph has a cycle"
            );
        }
    }

    #[test]
    fn single_vc_torus_ring_would_cycle() {
        // Sanity: without the dateline the x-rings alone are cyclic. Build
        // routes with a fixed VC0 and check the detector fires.
        let t = TorusTopology::new(4, 4);
        let mut g = ChannelDepGraph::new();
        for y in 0..4usize {
            for x in 0..4usize {
                let a = t.node_at(x, y);
                let b = t.node_at(x + 1, y);
                g.add_dependency(
                    ((a.index() * 4) as u64, VcId::VC0),
                    ((b.index() * 4) as u64, VcId::VC0),
                );
            }
        }
        assert!(g.has_cycle());
    }

    #[test]
    fn tie_breaking_is_deterministic() {
        // Exactly half way around an even ring: the + direction wins.
        let t = TorusTopology::new(4, 4);
        assert_eq!(t.route(NodeId(0), NodeId(2)), TorusOut::XPlus);
        assert_eq!(t.route(NodeId(2), NodeId(0)), TorusOut::XPlus);
    }

    #[test]
    fn square_builder_covers_n() {
        assert!(TorusTopology::square(16).num_nodes() >= 16);
        assert!(TorusTopology::square(17).num_nodes() >= 17);
    }

    /// Decode a branch bitstring by walking the route the router will take.
    fn branch_deliveries(
        t: &TorusTopology,
        src: NodeId,
        b: &crate::topology::GridBranch,
        slab: &BitSlab,
    ) -> Vec<NodeId> {
        let mut deliveries = Vec::new();
        let mut cur = src;
        let mut k = 0usize;
        while cur != b.dst {
            let port = t.route(cur, b.dst);
            assert_ne!(port, TorusOut::Eject);
            cur = t.link_target(cur, port).expect("torus links wrap");
            if slab.bit_at(b.bitstring, k) {
                deliveries.push(cur);
            }
            k += 1;
        }
        assert_eq!(
            slab.popcount(b.bitstring) as usize,
            deliveries.len(),
            "bits past the branch terminal"
        );
        deliveries
    }

    #[test]
    fn torus_broadcast_branches_cover_every_node_exactly_once() {
        for (c, r) in [(4usize, 4usize), (5, 3), (8, 8)] {
            let t = TorusTopology::new(c, r);
            for s in 0..t.num_nodes() {
                let src = NodeId::new(s);
                let mut branches = Vec::new();
                let mut slab = BitSlab::new(t.diameter() + 1);
                t.multicast_branches_into(
                    src,
                    (0..t.num_nodes()).map(NodeId::new),
                    &mut slab,
                    &mut branches,
                );
                let mut seen = std::collections::HashSet::new();
                for b in &branches {
                    for d in branch_deliveries(&t, src, b, &slab) {
                        assert!(seen.insert(d), "{c}x{r} src={src}: {d} covered twice");
                        assert_ne!(d, src);
                    }
                }
                assert_eq!(seen.len(), t.num_nodes() - 1, "{c}x{r} src={src}");
            }
        }
    }

    #[test]
    fn torus_multicast_uses_wrap_shortcuts() {
        // Source (0,0) on 4×4; target (3,3) is one x− and one y− wrap hop
        // away: a 2-hop branch, not the mesh's 6-hop one.
        let t = TorusTopology::new(4, 4);
        let mut branches = Vec::new();
        let mut slab = BitSlab::new(t.diameter() + 1);
        t.multicast_branches_into(NodeId(0), [NodeId(15)], &mut slab, &mut branches);
        assert_eq!(branches.len(), 1);
        assert_eq!(branches[0].dst, NodeId(15));
        assert_eq!(branches[0].bitstring, crate::bits::Bits::inline(0b10));
        assert_eq!(branch_deliveries(&t, NodeId(0), &branches[0], &slab), vec![NodeId(15)]);
    }

    #[test]
    fn torus_multicast_covers_explicit_targets() {
        let t = TorusTopology::new(4, 4);
        let src = NodeId(5);
        let targets = vec![NodeId(0), NodeId(2), NodeId(7), NodeId(8), NodeId(13), NodeId(15)];
        let mut branches = Vec::new();
        let mut slab = BitSlab::new(t.diameter() + 1);
        t.multicast_branches_into(src, targets.iter().copied(), &mut slab, &mut branches);
        let mut delivered: Vec<NodeId> =
            branches.iter().flat_map(|b| branch_deliveries(&t, src, b, &slab)).collect();
        delivered.sort();
        let mut want = targets.clone();
        want.sort();
        assert_eq!(delivered, want);
    }
}
