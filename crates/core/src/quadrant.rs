//! The Quarc quadrant calculator and collective-communication branch planner.
//!
//! The Quarc transceiver (paper §2.4–2.5) decides *at the source* which of the
//! four injection ports a packet uses; after that, no switch ever makes a
//! routing decision ("the surprising observation is that there is no routing
//! required by the switch", §2.5.1). This module is that decision, in pure
//! functions over ring arithmetic:
//!
//! * [`quadrant_of`] — which quadrant (injection port) serves a destination;
//! * [`unicast_hops`] / [`unicast_path`] — shortest-path length and node walk;
//! * [`broadcast_branches`] — the four BRCP streams of §2.5.2, reproducing the
//!   paper's Fig. 6 (source 0, N = 16 → branch destinations {4, 5, 11, 12});
//! * [`multicast_branches`] — the bitstring construction of §2.5.3, of which
//!   broadcast is the all-targets special case.
//!
//! Conventions (fixed in DESIGN.md §3): nodes are numbered clockwise,
//! `d = cw_dist(src, dst)`, quadrant depth `q = n/4`:
//!
//! | `d`            | Quadrant     | route                                   |
//! |----------------|--------------|------------------------------------------|
//! | `[1, q]`       | `Right`      | CW rim, `d` hops                         |
//! | `(q, 2q)`      | `CrossLeft`  | cross, then CCW rim, `1 + (2q − d)` hops |
//! | `2q`           | `CrossRight` | cross only, 1 hop                        |
//! | `(2q, 3q)`     | `CrossRight` | cross, then CW rim, `1 + (d − 2q)` hops  |
//! | `[3q, n)`      | `Left`       | CCW rim, `n − d` hops                    |
//!
//! The cross-left branch *transits* the antipodal node without delivering
//! (that node belongs to the cross-right quadrant); this is exactly why the
//! paper's switch gives one cross input port two possible destinations and the
//! other only one (§2.3.2).

use crate::bits::{BitSlab, Bits};
use crate::ids::NodeId;
use crate::ring::{Ring, RingDir};
use std::fmt;

/// The four Quarc quadrants, i.e. the four local ingress ports of the all-port
/// router (§2.2 change (ii)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Quadrant {
    /// Clockwise rim: destinations at CW distance `[1, q]`.
    Right,
    /// Cross link then clockwise rim: CW distance `[2q, 3q)`.
    CrossRight,
    /// Cross link then counter-clockwise rim: CW distance `(q, 2q)`.
    CrossLeft,
    /// Counter-clockwise rim: CW distance `[3q, n)`.
    Left,
}

impl Quadrant {
    /// All four quadrants, in the order the transceiver scans its queues.
    pub const ALL: [Quadrant; 4] =
        [Quadrant::Right, Quadrant::CrossRight, Quadrant::CrossLeft, Quadrant::Left];

    /// Stable index for per-quadrant arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Quadrant::Right => 0,
            Quadrant::CrossRight => 1,
            Quadrant::CrossLeft => 2,
            Quadrant::Left => 3,
        }
    }

    /// Whether this quadrant's first hop is a cross link.
    #[inline]
    pub fn is_cross(self) -> bool {
        matches!(self, Quadrant::CrossRight | Quadrant::CrossLeft)
    }

    /// The rim direction travelled on this quadrant's rim segment (for the
    /// two cross quadrants, the direction *after* the cross hop).
    #[inline]
    pub fn rim_dir(self) -> RingDir {
        match self {
            Quadrant::Right | Quadrant::CrossRight => RingDir::Cw,
            Quadrant::Left | Quadrant::CrossLeft => RingDir::Ccw,
        }
    }
}

impl fmt::Display for Quadrant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Quadrant::Right => "right",
            Quadrant::CrossRight => "cross-right",
            Quadrant::CrossLeft => "cross-left",
            Quadrant::Left => "left",
        };
        write!(f, "{s}")
    }
}

/// The quadrant serving destination `dst` from source `src`.
///
/// This is the transceiver's quadrant calculator (§2.4). Panics if
/// `src == dst` (a PE never sends a NoC message to itself) or if the ring is
/// not a multiple of four.
pub fn quadrant_of(ring: &Ring, src: NodeId, dst: NodeId) -> Quadrant {
    assert!(ring.len().is_multiple_of(4), "Quarc requires n ≡ 0 (mod 4)");
    assert_ne!(src, dst, "no quadrant for a self-message");
    let d = ring.cw_dist(src, dst);
    let q = ring.quarter();
    if d <= q {
        Quadrant::Right
    } else if d < 2 * q {
        Quadrant::CrossLeft
    } else if d < 3 * q {
        Quadrant::CrossRight
    } else {
        Quadrant::Left
    }
}

/// Shortest-path hop count from `src` to `dst` under Quarc routing.
pub fn unicast_hops(ring: &Ring, src: NodeId, dst: NodeId) -> usize {
    if src == dst {
        return 0;
    }
    let d = ring.cw_dist(src, dst);
    let q = ring.quarter();
    match quadrant_of(ring, src, dst) {
        Quadrant::Right => d,
        Quadrant::CrossLeft => 1 + (2 * q - d),
        Quadrant::CrossRight => 1 + (d - 2 * q),
        Quadrant::Left => ring.len() - d,
    }
}

/// The full node walk of a unicast from `src` to `dst` (excluding `src`,
/// including `dst`), in traversal order.
pub fn unicast_path(ring: &Ring, src: NodeId, dst: NodeId) -> Vec<NodeId> {
    if src == dst {
        return Vec::new();
    }
    let quad = quadrant_of(ring, src, dst);
    let mut path = Vec::with_capacity(unicast_hops(ring, src, dst));
    let mut cur = src;
    if quad.is_cross() {
        cur = ring.antipode(src);
        path.push(cur);
    }
    let dir = quad.rim_dir();
    while cur != dst {
        cur = ring.step(cur, dir);
        path.push(cur);
    }
    path
}

/// One branch of a Quarc collective operation: a single wormhole stream
/// covering (part of) one quadrant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Branch {
    /// The injection port (quadrant) this stream uses.
    pub quadrant: Quadrant,
    /// Destination written in the header: the *last* node the stream visits.
    pub dst: NodeId,
    /// Nodes that take a copy, in visit order (`dst` last). For broadcast this
    /// is every node visited except a cross-left transit of the antipode; for
    /// multicast it is the subset of targets.
    pub deliveries: Vec<NodeId>,
    /// Header bitstring (bit `i` ⇒ the node reached after `i + 1` hops takes a
    /// copy). Inline zero for broadcast, which needs no bitstring; branches
    /// spanning more than 63 hops hold a row in the planner's [`BitSlab`].
    pub bitstring: Bits,
    /// Total hops the stream travels (to `dst`).
    pub hops: usize,
}

/// The four broadcast streams a Quarc transceiver emits (§2.5.2, Fig. 6).
///
/// Branches whose quadrant is empty (cross-left when `n = 4`) are omitted.
/// Every non-source node appears in exactly one branch's `deliveries` — a
/// property-tested invariant.
pub fn broadcast_branches(ring: &Ring, src: NodeId) -> Vec<Branch> {
    assert!(ring.len().is_multiple_of(4), "Quarc requires n ≡ 0 (mod 4)");
    let q = ring.quarter();
    let mut branches = Vec::with_capacity(4);

    // Right rim: d ∈ [1, q].
    let deliveries: Vec<NodeId> = (1..=q).map(|k| ring.step_n(src, RingDir::Cw, k)).collect();
    branches.push(Branch {
        quadrant: Quadrant::Right,
        dst: *deliveries.last().expect("q >= 1"),
        hops: q,
        bitstring: Bits::ZERO,
        deliveries,
    });

    // Cross-right: antipode (d = 2q) then CW to d = 3q − 1.
    let deliveries: Vec<NodeId> =
        (2 * q..3 * q).map(|d| ring.step_n(src, RingDir::Cw, d)).collect();
    branches.push(Branch {
        quadrant: Quadrant::CrossRight,
        dst: *deliveries.last().expect("q >= 1"),
        hops: q, // 1 cross hop + (q − 1) rim hops
        bitstring: Bits::ZERO,
        deliveries,
    });

    // Cross-left: transit the antipode, then CCW from d = 2q − 1 down to q + 1.
    let deliveries: Vec<NodeId> =
        ((q + 1)..2 * q).rev().map(|d| ring.step_n(src, RingDir::Cw, d)).collect();
    if let Some(&dst) = deliveries.last() {
        branches.push(Branch {
            quadrant: Quadrant::CrossLeft,
            dst,
            hops: q, // 1 cross hop + (q − 1) rim hops
            bitstring: Bits::ZERO,
            deliveries,
        });
    }

    // Left rim: d ∈ [3q, n), visited at CCW distances 1..=q.
    let deliveries: Vec<NodeId> = (1..=q).map(|k| ring.step_n(src, RingDir::Ccw, k)).collect();
    branches.push(Branch {
        quadrant: Quadrant::Left,
        dst: *deliveries.last().expect("q >= 1"),
        hops: q,
        bitstring: Bits::ZERO,
        deliveries,
    });

    branches
}

/// The `(quadrant, header destination)` of each broadcast stream, in the
/// emission order of [`broadcast_branches`] (Right, CrossRight, CrossLeft,
/// Left; cross-left is `None` when its quadrant is empty, i.e. `n = 4`).
///
/// This is the allocation-free subset of [`broadcast_branches`] the
/// simulator's injection path needs: routers re-derive the deliveries hop by
/// hop, so only the header destinations ever reach the network.
pub fn broadcast_branch_heads(ring: &Ring, src: NodeId) -> [Option<(Quadrant, NodeId)>; 4] {
    assert!(ring.len().is_multiple_of(4), "Quarc requires n ≡ 0 (mod 4)");
    let q = ring.quarter();
    [
        Some((Quadrant::Right, ring.step_n(src, RingDir::Cw, q))),
        Some((Quadrant::CrossRight, ring.step_n(src, RingDir::Cw, 3 * q - 1))),
        (q > 1).then(|| (Quadrant::CrossLeft, ring.step_n(src, RingDir::Cw, q + 1))),
        Some((Quadrant::Left, ring.step_n(src, RingDir::Ccw, q))),
    ]
}

/// The node walk of a branch, excluding `src`, including the branch `dst`.
pub fn branch_path(ring: &Ring, src: NodeId, branch: &Branch) -> Vec<NodeId> {
    unicast_path_via(ring, src, branch.quadrant, branch.dst)
}

/// Like [`unicast_path`] but forced through a given quadrant (collective
/// branches are not always shortest paths for the individual `dst`).
pub fn unicast_path_via(ring: &Ring, src: NodeId, quad: Quadrant, dst: NodeId) -> Vec<NodeId> {
    let mut path = Vec::new();
    let mut cur = src;
    if quad.is_cross() {
        cur = ring.antipode(src);
        path.push(cur);
    }
    let dir = quad.rim_dir();
    while cur != dst {
        cur = ring.step(cur, dir);
        path.push(cur);
    }
    path
}

/// Build the multicast branches for an explicit target set (§2.5.3).
///
/// Targets are partitioned by quadrant; each non-empty quadrant yields one
/// branch whose `dst` is the furthest target along the branch walk and whose
/// `bitstring` has bit `i` set iff the node reached after `i + 1` hops is a
/// target. Targets equal to `src` are ignored. Broadcast is the special case
/// where every node is a target (see `multicast_covers_broadcast` test).
///
/// Bitstrings are emitted into `slab`: branches spanning ≤ 63 hops stay
/// inline (and never touch it), longer ones acquire a slab row. In the
/// simulators `slab` is the network `PacketTable`'s, so a row's lifetime is
/// the branch packet's; standalone callers (tests, RTL harness) pass a
/// scratch slab sized via [`crate::bits::BitSlab::new`]`(ring.quarter() + 1)`.
pub fn multicast_branches(
    ring: &Ring,
    src: NodeId,
    targets: &[NodeId],
    slab: &mut BitSlab,
) -> Vec<Branch> {
    assert!(ring.len().is_multiple_of(4), "Quarc requires n ≡ 0 (mod 4)");
    let mut by_quadrant: [Vec<NodeId>; 4] = Default::default();
    for &t in targets {
        if t != src {
            by_quadrant[quadrant_of(ring, src, t).index()].push(t);
        }
    }

    let mut branches = Vec::new();
    for quad in Quadrant::ALL {
        let quad_targets = &by_quadrant[quad.index()];
        if quad_targets.is_empty() {
            continue;
        }
        // Furthest target = the one needing the most hops within this quadrant.
        let dst =
            *quad_targets.iter().max_by_key(|&&t| unicast_hops(ring, src, t)).expect("non-empty");
        let walk = unicast_path_via(ring, src, quad, dst);
        let mut bitstring = Bits::ZERO;
        let mut deliveries = Vec::with_capacity(quad_targets.len());
        for (i, node) in walk.iter().enumerate() {
            if quad_targets.contains(node) {
                slab.set_bit(&mut bitstring, i);
                deliveries.push(*node);
            }
        }
        let hops = walk.len();
        branches.push(Branch { quadrant: quad, dst, deliveries, bitstring, hops });
    }
    branches
}

/// Network diameter under Quarc routing (`n/4`, §2.6).
pub fn diameter(ring: &Ring) -> usize {
    ring.quarter().max(1)
}

/// Mean unicast hop count over all ordered source/destination pairs.
pub fn mean_hops(ring: &Ring) -> f64 {
    let n = ring.len();
    let mut total = 0usize;
    for s in ring.nodes() {
        for t in ring.nodes() {
            if s != t {
                total += unicast_hops(ring, s, t);
            }
        }
    }
    total as f64 / (n * (n - 1)) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn r16() -> Ring {
        Ring::new(16)
    }

    fn mc(ring: &Ring, src: NodeId, targets: &[NodeId]) -> Vec<Branch> {
        let mut slab = BitSlab::new(ring.quarter() + 1);
        multicast_branches(ring, src, targets, &mut slab)
    }

    #[test]
    fn fig6_broadcast_destinations() {
        // Paper Fig. 6: node 0 broadcasts in a 16-node Quarc; the four stream
        // destinations are 4 (right rim), 5 (cross-left), 11 (cross-right)
        // and 12 (left rim).
        let branches = broadcast_branches(&r16(), NodeId(0));
        let dsts: HashSet<u32> = branches.iter().map(|b| b.dst.0).collect();
        assert_eq!(dsts, HashSet::from([4, 5, 11, 12]));
    }

    #[test]
    fn branch_heads_agree_with_full_branches() {
        for n in [4usize, 8, 16, 32, 64] {
            let ring = Ring::new(n);
            for src in ring.nodes() {
                let full: Vec<(Quadrant, NodeId)> =
                    broadcast_branches(&ring, src).iter().map(|b| (b.quadrant, b.dst)).collect();
                let heads: Vec<(Quadrant, NodeId)> =
                    broadcast_branch_heads(&ring, src).into_iter().flatten().collect();
                assert_eq!(heads, full, "n={n} src={src}");
            }
        }
    }

    #[test]
    fn fig6_branch_coverage() {
        let branches = broadcast_branches(&r16(), NodeId(0));
        let by_quad = |q: Quadrant| {
            branches
                .iter()
                .find(|b| b.quadrant == q)
                .unwrap()
                .deliveries
                .iter()
                .map(|n| n.0)
                .collect::<Vec<_>>()
        };
        assert_eq!(by_quad(Quadrant::Right), vec![1, 2, 3, 4]);
        assert_eq!(by_quad(Quadrant::Left), vec![15, 14, 13, 12]);
        assert_eq!(by_quad(Quadrant::CrossRight), vec![8, 9, 10, 11]);
        assert_eq!(by_quad(Quadrant::CrossLeft), vec![7, 6, 5]);
    }

    #[test]
    fn broadcast_covers_every_node_exactly_once() {
        for n in [4usize, 8, 16, 32, 64] {
            let ring = Ring::new(n);
            for src in ring.nodes() {
                let mut seen = HashSet::new();
                for b in broadcast_branches(&ring, src) {
                    for d in &b.deliveries {
                        assert!(seen.insert(*d), "n={n} src={src}: {d} covered twice");
                        assert_ne!(*d, src);
                    }
                }
                assert_eq!(seen.len(), n - 1, "n={n} src={src}: incomplete coverage");
            }
        }
    }

    #[test]
    fn broadcast_branch_hops_equal_quarter() {
        let ring = Ring::new(32);
        for b in broadcast_branches(&ring, NodeId(3)) {
            assert_eq!(b.hops, 8);
            let walk = branch_path(&ring, NodeId(3), &b);
            assert_eq!(walk.len(), b.hops);
            assert_eq!(*walk.last().unwrap(), b.dst);
        }
    }

    #[test]
    fn quadrants_for_n16() {
        let ring = r16();
        let s = NodeId(0);
        let expect = [
            (1, Quadrant::Right),
            (4, Quadrant::Right),
            (5, Quadrant::CrossLeft),
            (7, Quadrant::CrossLeft),
            (8, Quadrant::CrossRight),
            (11, Quadrant::CrossRight),
            (12, Quadrant::Left),
            (15, Quadrant::Left),
        ];
        for (dst, quad) in expect {
            assert_eq!(quadrant_of(&ring, s, NodeId(dst)), quad, "dst {dst}");
        }
    }

    #[test]
    fn quadrant_is_translation_invariant() {
        let ring = r16();
        for shift in 0..16usize {
            for d in 1..16usize {
                let a = quadrant_of(&ring, NodeId(0), NodeId::new(d));
                let b = quadrant_of(&ring, NodeId::new(shift), NodeId::new((shift + d) % 16));
                assert_eq!(a, b, "shift {shift} d {d}");
            }
        }
    }

    #[test]
    fn hops_match_path_length() {
        for n in [8usize, 16, 32, 64] {
            let ring = Ring::new(n);
            for s in ring.nodes() {
                for t in ring.nodes() {
                    let path = unicast_path(&ring, s, t);
                    assert_eq!(path.len(), unicast_hops(&ring, s, t), "{s}->{t} n={n}");
                    if s != t {
                        assert_eq!(*path.last().unwrap(), t);
                    }
                }
            }
        }
    }

    #[test]
    fn diameter_is_quarter() {
        for n in [8usize, 16, 32, 64] {
            let ring = Ring::new(n);
            let mut worst = 0;
            for s in ring.nodes() {
                for t in ring.nodes() {
                    worst = worst.max(unicast_hops(&ring, s, t));
                }
            }
            assert_eq!(worst, n / 4, "n={n}");
            assert_eq!(diameter(&ring), n / 4);
        }
    }

    #[test]
    fn antipode_unicast_is_one_hop_cross_right() {
        let ring = r16();
        assert_eq!(quadrant_of(&ring, NodeId(3), NodeId(11)), Quadrant::CrossRight);
        assert_eq!(unicast_hops(&ring, NodeId(3), NodeId(11)), 1);
        assert_eq!(unicast_path(&ring, NodeId(3), NodeId(11)), vec![NodeId(11)]);
    }

    #[test]
    fn cross_left_transits_antipode() {
        let ring = r16();
        // 0 → 6 is cross-left: antipode 8, then CCW 8→7→6.
        let path = unicast_path(&ring, NodeId(0), NodeId(6));
        assert_eq!(path, vec![NodeId(8), NodeId(7), NodeId(6)]);
    }

    #[test]
    fn multicast_covers_broadcast() {
        for n in [8usize, 16, 32] {
            let ring = Ring::new(n);
            let src = NodeId(2);
            let all: Vec<NodeId> = ring.nodes().collect();
            let mc = mc(&ring, src, &all);
            let bc = broadcast_branches(&ring, src);
            let mc_set: HashSet<NodeId> =
                mc.iter().flat_map(|b| b.deliveries.iter().copied()).collect();
            let bc_set: HashSet<NodeId> =
                bc.iter().flat_map(|b| b.deliveries.iter().copied()).collect();
            assert_eq!(mc_set, bc_set, "n={n}");
        }
    }

    #[test]
    fn multicast_bitstring_marks_hop_positions() {
        let ring = r16();
        // Targets 2 and 4 from source 0: right-rim branch, walk 1,2,3,4.
        let branches = mc(&ring, NodeId(0), &[NodeId(2), NodeId(4)]);
        assert_eq!(branches.len(), 1);
        let b = &branches[0];
        assert_eq!(b.quadrant, Quadrant::Right);
        assert_eq!(b.dst, NodeId(4));
        // Hop 2 (bit 1) and hop 4 (bit 3).
        assert_eq!(b.bitstring, Bits::inline(0b1010));
        assert_eq!(b.deliveries, vec![NodeId(2), NodeId(4)]);
    }

    #[test]
    fn multicast_cross_left_bitstring_skips_antipode() {
        let ring = r16();
        // Target 7 from source 0 is cross-left: walk 8 (transit), 7.
        let branches = mc(&ring, NodeId(0), &[NodeId(7)]);
        assert_eq!(branches.len(), 1);
        let b = &branches[0];
        assert_eq!(b.quadrant, Quadrant::CrossLeft);
        // Bit 0 (the antipode, hop 1) clear; bit 1 (node 7, hop 2) set.
        assert_eq!(b.bitstring, Bits::inline(0b10));
    }

    #[test]
    fn multicast_ignores_source() {
        let ring = r16();
        let branches = mc(&ring, NodeId(0), &[NodeId(0), NodeId(1)]);
        assert_eq!(branches.len(), 1);
        assert_eq!(branches[0].deliveries, vec![NodeId(1)]);
    }

    #[test]
    fn n4_has_no_cross_left_branch() {
        let ring = Ring::new(4);
        let branches = broadcast_branches(&ring, NodeId(0));
        assert_eq!(branches.len(), 3);
        let covered: HashSet<u32> =
            branches.iter().flat_map(|b| b.deliveries.iter().map(|n| n.0)).collect();
        assert_eq!(covered, HashSet::from([1, 2, 3]));
    }

    #[test]
    fn mean_hops_reasonable() {
        // For N=16 the mean shortest-path length must lie between 1 and the
        // diameter.
        let m = mean_hops(&r16());
        assert!(m > 1.0 && m < 4.0, "mean hops {m}");
    }
}
