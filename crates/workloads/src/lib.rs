//! # quarc-workloads
//!
//! Traffic generation for the Quarc NoC reproduction. The paper's evaluation
//! workload (Bernoulli injection, uniform destinations, fixed message length
//! `M`, broadcast fraction `β`) is [`synthetic::Synthetic`]; the motivating
//! MPSoC cache-sync scenario is modelled by [`coherence::Coherence`]; stress
//! patterns and trace record/replay round out the suite.
//!
//! All generators implement [`request::Workload`] and are deterministic
//! functions of their seed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod bursty;
pub mod coherence;
pub mod patterns;
pub mod request;
pub mod synthetic;
pub mod trace;

pub use bursty::{Bursty, BurstyConfig};
pub use coherence::{Coherence, CoherenceConfig};
pub use patterns::Pattern;
pub use request::{MessageRequest, Workload};
pub use synthetic::{Synthetic, SyntheticConfig};
pub use trace::{Recorder, TraceRecord, TraceWorkload};
