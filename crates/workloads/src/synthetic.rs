//! The paper's synthetic workload: per-node Bernoulli injection with uniform
//! destinations, a fixed message length `M` and a broadcast fraction `β`.
//!
//! The axes of Figs. 9–11 are exactly this generator's parameters: the
//! horizontal axis is `rate` (messages per node per cycle), the curves are
//! parameterised by `M` (8/16/32 flits), `N` and `β` (0/5/10%).

use crate::patterns::Pattern;
use crate::request::{MessageRequest, Workload};
use quarc_core::ids::NodeId;
use quarc_engine::{Cycle, DetRng};

/// Configuration of the synthetic generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Offered load: messages per node per cycle (Bernoulli per-cycle
    /// probability; arrivals are generated via geometric gaps).
    pub rate: f64,
    /// Message length in flits (header + bodies + tail).
    pub msg_len: usize,
    /// Fraction of messages that are broadcasts (the paper's `β`).
    pub broadcast_frac: f64,
    /// Destination pattern for the unicast share.
    pub pattern: Pattern,
    /// Master seed.
    pub seed: u64,
}

impl SyntheticConfig {
    /// The paper's default shape: uniform unicasts, given `rate`, `M`, `β`.
    pub fn paper(rate: f64, msg_len: usize, broadcast_frac: f64, seed: u64) -> Self {
        SyntheticConfig { rate, msg_len, broadcast_frac, pattern: Pattern::Uniform, seed }
    }
}

/// Per-node generator state.
#[derive(Debug)]
struct NodeState {
    rng: DetRng,
    next_arrival: Cycle,
}

/// The synthetic workload generator.
#[derive(Debug)]
pub struct Synthetic {
    cfg: SyntheticConfig,
    n: usize,
    /// Cached `ln(1 − rate)` — the constant denominator of every geometric
    /// gap draw (the gap itself stays bit-identical to
    /// [`DetRng::geometric_gap`], which recomputes it per draw).
    ln_one_minus_rate: f64,
    nodes: Vec<NodeState>,
}

impl Synthetic {
    /// Build a generator for an `n`-node network.
    pub fn new(n: usize, cfg: SyntheticConfig) -> Self {
        assert!(n >= 2, "need at least two nodes for traffic");
        assert!(cfg.msg_len >= 2, "a packet is at least header + tail");
        assert!((0.0..=1.0).contains(&cfg.broadcast_frac));
        let master = DetRng::new(cfg.seed);
        let nodes = (0..n)
            .map(|i| {
                let mut rng = master.fork(i as u64);
                // First arrival: sample a gap so that sources are desynchronised.
                let next_arrival =
                    if cfg.rate > 0.0 { rng.geometric_gap(cfg.rate) } else { Cycle::MAX };
                NodeState { rng, next_arrival }
            })
            .collect();
        Synthetic { cfg, n, ln_one_minus_rate: (1.0 - cfg.rate).ln(), nodes }
    }

    /// The generator's configuration.
    pub fn config(&self) -> &SyntheticConfig {
        &self.cfg
    }
}

/// [`DetRng::geometric_gap`] with the constant denominator hoisted out of
/// the per-arrival path. Bit-identical: same draw, same arithmetic.
#[inline]
fn gap_with(rng: &mut DetRng, rate: f64, ln_one_minus_rate: f64) -> Cycle {
    if rate >= 1.0 {
        return 1;
    }
    let u: f64 = rng.unit();
    let gap = (1.0 - u).ln() / ln_one_minus_rate;
    (gap.ceil() as u64).max(1)
}

impl Workload for Synthetic {
    fn poll_into(&mut self, node: NodeId, now: Cycle, out: &mut Vec<MessageRequest>) {
        let (rate, ln1mr) = (self.cfg.rate, self.ln_one_minus_rate);
        let st = &mut self.nodes[node.index()];
        if now < st.next_arrival {
            return;
        }
        // Bernoulli arrivals: at most one message per node per cycle.
        st.next_arrival = now + gap_with(&mut st.rng, rate, ln1mr);
        let req = if st.rng.chance(self.cfg.broadcast_frac) {
            MessageRequest::broadcast(node, self.cfg.msg_len)
        } else {
            let dst = self.cfg.pattern.pick(&mut st.rng, node, self.n);
            MessageRequest::unicast(node, dst, self.cfg.msg_len)
        };
        out.push(req);
    }

    fn nominal_rate(&self) -> Option<f64> {
        Some(self.cfg.rate)
    }

    fn next_due(&self, node: NodeId, _now: Cycle) -> Cycle {
        // Polls before the scheduled arrival return without touching the
        // RNG, so skipping them is exact.
        self.nodes[node.index()].next_arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarc_core::flit::TrafficClass;

    fn run(n: usize, cfg: SyntheticConfig, cycles: u64) -> Vec<MessageRequest> {
        let mut w = Synthetic::new(n, cfg);
        let mut out = Vec::new();
        for now in 0..cycles {
            for node in 0..n {
                out.extend(w.poll(NodeId::new(node), now));
            }
        }
        out
    }

    #[test]
    fn rate_is_respected() {
        let cfg = SyntheticConfig::paper(0.02, 8, 0.0, 7);
        let msgs = run(16, cfg, 20_000);
        let per_node_per_cycle = msgs.len() as f64 / (16.0 * 20_000.0);
        assert!((per_node_per_cycle - 0.02).abs() < 0.002, "measured rate {per_node_per_cycle}");
    }

    #[test]
    fn beta_fraction_of_broadcasts() {
        let cfg = SyntheticConfig::paper(0.05, 8, 0.10, 11);
        let msgs = run(16, cfg, 20_000);
        let bc = msgs.iter().filter(|m| m.class == TrafficClass::Broadcast).count();
        let frac = bc as f64 / msgs.len() as f64;
        assert!((0.08..0.12).contains(&frac), "beta {frac}");
    }

    #[test]
    fn zero_rate_generates_nothing() {
        let cfg = SyntheticConfig::paper(0.0, 8, 0.0, 1);
        assert!(run(8, cfg, 1000).is_empty());
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = SyntheticConfig::paper(0.1, 16, 0.05, 99);
        let a = run(16, cfg, 500);
        let b = run(16, cfg, 500);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run(16, SyntheticConfig::paper(0.1, 16, 0.05, 1), 500);
        let b = run(16, SyntheticConfig::paper(0.1, 16, 0.05, 2), 500);
        assert_ne!(a, b);
    }

    #[test]
    fn messages_have_requested_length() {
        let cfg = SyntheticConfig::paper(0.1, 32, 0.5, 3);
        for m in run(8, cfg, 200) {
            assert_eq!(m.len, 32);
        }
    }

    #[test]
    fn nominal_rate_reported() {
        let w = Synthetic::new(8, SyntheticConfig::paper(0.07, 8, 0.0, 1));
        assert_eq!(w.nominal_rate(), Some(0.07));
    }

    #[test]
    fn rate_one_saturates_every_cycle() {
        let cfg = SyntheticConfig::paper(1.0, 2, 0.0, 5);
        let msgs = run(4, cfg, 100);
        // One message per node per cycle (after each node's first arrival at
        // cycle 1).
        assert_eq!(msgs.len(), 4 * 99);
    }
}
