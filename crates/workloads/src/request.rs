//! The interface between traffic generation and the network: a
//! [`MessageRequest`] describes one application-level send; a [`Workload`]
//! produces them cycle by cycle.

use quarc_core::flit::TrafficClass;
use quarc_core::ids::NodeId;
use quarc_engine::Cycle;

/// One application-level message a PE wants to send.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageRequest {
    /// Sending node.
    pub src: NodeId,
    /// Unicast, broadcast or multicast.
    pub class: TrafficClass,
    /// Destination (unicast only).
    pub dst: Option<NodeId>,
    /// Target set (multicast only).
    pub targets: Vec<NodeId>,
    /// Message length in flits (header + bodies + tail), ≥ 2.
    pub len: usize,
}

impl MessageRequest {
    /// A unicast request.
    pub fn unicast(src: NodeId, dst: NodeId, len: usize) -> Self {
        debug_assert_ne!(src, dst);
        MessageRequest {
            src,
            class: TrafficClass::Unicast,
            dst: Some(dst),
            targets: Vec::new(),
            len,
        }
    }

    /// A broadcast request.
    pub fn broadcast(src: NodeId, len: usize) -> Self {
        MessageRequest { src, class: TrafficClass::Broadcast, dst: None, targets: Vec::new(), len }
    }

    /// A multicast request to an explicit target set.
    pub fn multicast(src: NodeId, targets: Vec<NodeId>, len: usize) -> Self {
        MessageRequest { src, class: TrafficClass::Multicast, dst: None, targets, len }
    }
}

/// A source of traffic. The network driver polls every node once per cycle;
/// implementations must be deterministic functions of their seed and the
/// polling sequence.
pub trait Workload {
    /// Append the messages created by `node` at cycle `now` (usually zero or
    /// one) to `out`.
    ///
    /// The driver owns `out` and reuses it across every poll of a run, so
    /// after warmup the per-cycle polling loop performs no heap allocation.
    /// Implementations must only push — never clear or drain — and must not
    /// read what earlier polls left behind (the driver clears between nodes).
    fn poll_into(&mut self, node: NodeId, now: Cycle, out: &mut Vec<MessageRequest>);

    /// Offered load in messages per node per cycle, if the workload knows it
    /// (used for reporting sweep axes; trace replays may not know).
    fn nominal_rate(&self) -> Option<f64> {
        None
    }

    /// Convenience wrapper collecting one poll into a fresh `Vec` (tests and
    /// trace capture; the simulation loop uses [`Workload::poll_into`]).
    fn poll(&mut self, node: NodeId, now: Cycle) -> Vec<MessageRequest>
    where
        Self: Sized,
    {
        let mut out = Vec::new();
        self.poll_into(node, now, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_fields() {
        let u = MessageRequest::unicast(NodeId(1), NodeId(2), 8);
        assert_eq!(u.class, TrafficClass::Unicast);
        assert_eq!(u.dst, Some(NodeId(2)));
        let b = MessageRequest::broadcast(NodeId(1), 16);
        assert_eq!(b.class, TrafficClass::Broadcast);
        assert_eq!(b.dst, None);
        let m = MessageRequest::multicast(NodeId(0), vec![NodeId(1), NodeId(2)], 4);
        assert_eq!(m.targets.len(), 2);
    }
}
