//! The interface between traffic generation and the network: a
//! [`MessageRequest`] describes one application-level send; a [`Workload`]
//! produces them cycle by cycle.

use quarc_core::flit::TrafficClass;
use quarc_core::ids::NodeId;
use quarc_engine::Cycle;

/// One application-level message a PE wants to send.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageRequest {
    /// Sending node.
    pub src: NodeId,
    /// Unicast, broadcast or multicast.
    pub class: TrafficClass,
    /// Destination (unicast only).
    pub dst: Option<NodeId>,
    /// Target set (multicast only).
    pub targets: Vec<NodeId>,
    /// Message length in flits (header + bodies + tail), ≥ 2.
    pub len: usize,
}

impl MessageRequest {
    /// A unicast request.
    pub fn unicast(src: NodeId, dst: NodeId, len: usize) -> Self {
        debug_assert_ne!(src, dst);
        MessageRequest {
            src,
            class: TrafficClass::Unicast,
            dst: Some(dst),
            targets: Vec::new(),
            len,
        }
    }

    /// A broadcast request.
    pub fn broadcast(src: NodeId, len: usize) -> Self {
        MessageRequest { src, class: TrafficClass::Broadcast, dst: None, targets: Vec::new(), len }
    }

    /// A multicast request to an explicit target set.
    pub fn multicast(src: NodeId, targets: Vec<NodeId>, len: usize) -> Self {
        MessageRequest { src, class: TrafficClass::Multicast, dst: None, targets, len }
    }
}

/// A source of traffic. The network driver polls each node when it is *due*
/// (see [`Workload::next_due`]); implementations must be deterministic
/// functions of their seed and the polling sequence.
pub trait Workload {
    /// Append the messages created by `node` at cycle `now` (usually zero or
    /// one) to `out`.
    ///
    /// The driver owns `out` and reuses it across every poll of a run, so
    /// after warmup the per-cycle polling loop performs no heap allocation.
    /// Implementations must only push — never clear or drain — and must not
    /// read what earlier polls left behind (the driver clears between nodes).
    fn poll_into(&mut self, node: NodeId, now: Cycle, out: &mut Vec<MessageRequest>);

    /// A lower bound on the next cycle at which polling `node` could do
    /// anything — produce a message *or* mutate generator state. The network
    /// simulators skip polls strictly before this cycle (their active-set
    /// scheduling makes the per-cycle polling cost proportional to the
    /// number of *due* sources, not to `n`), so the contract is strict: for
    /// every cycle `c` with `now <= c < next_due(node, now)`, `poll_into(node,
    /// c, ..)` must be a pure no-op. Returning `now` (the default) is always
    /// safe and means "poll me every cycle".
    ///
    /// Implementations whose per-node schedule is self-contained
    /// ([`crate::Synthetic`], [`crate::Bursty`], [`crate::TraceWorkload`])
    /// answer exactly; the skip is then bit-identical to polling every
    /// cycle, which the equivalence goldens and the active-set lockstep
    /// proptests pin down. A workload where polling one node can create
    /// *earlier* work at another (e.g. [`crate::Coherence`]'s home-node
    /// responses) must keep the default: the bound it returns now could be
    /// invalidated later.
    fn next_due(&self, _node: NodeId, now: Cycle) -> Cycle {
        now
    }

    /// Offered load in messages per node per cycle, if the workload knows it
    /// (used for reporting sweep axes; trace replays may not know).
    fn nominal_rate(&self) -> Option<f64> {
        None
    }

    /// Convenience wrapper collecting one poll into a fresh `Vec` (tests and
    /// trace capture; the simulation loop uses [`Workload::poll_into`]).
    fn poll(&mut self, node: NodeId, now: Cycle) -> Vec<MessageRequest>
    where
        Self: Sized,
    {
        let mut out = Vec::new();
        self.poll_into(node, now, &mut out);
        out
    }
}

/// Mutable references forward the whole contract, letting generic drivers
/// re-borrow a possibly-unsized workload (e.g. `&mut dyn Workload`) as a
/// sized one.
impl<W: Workload + ?Sized> Workload for &mut W {
    fn poll_into(&mut self, node: NodeId, now: Cycle, out: &mut Vec<MessageRequest>) {
        (**self).poll_into(node, now, out);
    }

    fn nominal_rate(&self) -> Option<f64> {
        (**self).nominal_rate()
    }

    fn next_due(&self, node: NodeId, now: Cycle) -> Cycle {
        (**self).next_due(node, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_fields() {
        let u = MessageRequest::unicast(NodeId(1), NodeId(2), 8);
        assert_eq!(u.class, TrafficClass::Unicast);
        assert_eq!(u.dst, Some(NodeId(2)));
        let b = MessageRequest::broadcast(NodeId(1), 16);
        assert_eq!(b.class, TrafficClass::Broadcast);
        assert_eq!(b.dst, None);
        let m = MessageRequest::multicast(NodeId(0), vec![NodeId(1), NodeId(2)], 4);
        assert_eq!(m.targets.len(), 2);
    }
}
