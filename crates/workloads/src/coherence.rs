//! A synthetic MPSoC cache-coherence workload.
//!
//! The paper motivates the Quarc with cache synchronisation: "Broadcast
//! traffic in NoCs is particularly important in MPSoC as it is the key
//! mechanism for keeping caches in sync" (§1). This workload models a
//! write-invalidate protocol over a NoC without a directory:
//!
//! * each core issues memory requests as a Bernoulli process;
//! * a **write hit on a shared line** broadcasts an *invalidate* to every
//!   other core (the Quarc's true broadcast vs Spidergon's chain is exactly
//!   this message);
//! * a **read miss** unicasts a *fetch* to the line's home node, and the home
//!   node later unicasts the cache-line *data* back (modelled open-loop with
//!   a fixed memory service delay, since the workload layer does not observe
//!   network completions).
//!
//! Line-granular MESI bookkeeping is deliberately not modelled — the point of
//! the workload is the *traffic shape* (a β-like broadcast share coupled to
//! write behaviour, bursty request/response unicasts), not protocol
//! verification.

use crate::request::{MessageRequest, Workload};
use quarc_core::ids::NodeId;
use quarc_engine::{Cycle, DetRng, EventQueue};

/// Parameters of the coherence workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoherenceConfig {
    /// Memory requests per core per cycle.
    pub request_rate: f64,
    /// Fraction of requests that are writes.
    pub write_frac: f64,
    /// Fraction of writes that hit a *shared* line (and must invalidate).
    pub shared_frac: f64,
    /// Fraction of reads that miss locally (and must fetch from home).
    pub miss_frac: f64,
    /// Number of distinct cache lines (homes are `line % n`).
    pub lines: usize,
    /// Cycles the home node takes to produce a data response.
    pub memory_delay: u64,
    /// Control-message length in flits (invalidate / fetch).
    pub ctrl_len: usize,
    /// Data-message length in flits (cache line transfer).
    pub data_len: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for CoherenceConfig {
    fn default() -> Self {
        CoherenceConfig {
            request_rate: 0.02,
            write_frac: 0.3,
            shared_frac: 0.2,
            miss_frac: 0.1,
            lines: 1024,
            memory_delay: 20,
            ctrl_len: 2,
            data_len: 16,
            seed: 0xC0DE,
        }
    }
}

/// The coherence traffic generator.
#[derive(Debug)]
pub struct Coherence {
    cfg: CoherenceConfig,
    n: usize,
    rngs: Vec<DetRng>,
    next_arrival: Vec<Cycle>,
    /// Pending data responses per home node: (due cycle, requester).
    responses: Vec<EventQueue<NodeId>>,
}

impl Coherence {
    /// Build for an `n`-node network.
    pub fn new(n: usize, cfg: CoherenceConfig) -> Self {
        assert!(n >= 2);
        assert!(cfg.lines >= 1);
        assert!(cfg.ctrl_len >= 2 && cfg.data_len >= 2);
        let master = DetRng::new(cfg.seed);
        let mut rngs = Vec::with_capacity(n);
        let mut next_arrival = Vec::with_capacity(n);
        for i in 0..n {
            let mut rng = master.fork(i as u64);
            next_arrival.push(if cfg.request_rate > 0.0 {
                rng.geometric_gap(cfg.request_rate)
            } else {
                Cycle::MAX
            });
            rngs.push(rng);
        }
        Coherence {
            cfg,
            n,
            rngs,
            next_arrival,
            responses: (0..n).map(|_| EventQueue::new()).collect(),
        }
    }

    /// The home node of a cache line.
    fn home_of(&self, line: usize) -> NodeId {
        NodeId::new(line % self.n)
    }
}

impl Workload for Coherence {
    fn poll_into(&mut self, node: NodeId, now: Cycle, out: &mut Vec<MessageRequest>) {
        let i = node.index();

        // First, serve any data responses this node owes as home
        // (`pop_due` rather than `drain_due`: no intermediate Vec).
        while let Some((_, requester)) = self.responses[i].pop_due(now) {
            if requester != node {
                out.push(MessageRequest::unicast(node, requester, self.cfg.data_len));
            }
        }

        if now < self.next_arrival[i] {
            return;
        }
        let rng = &mut self.rngs[i];
        self.next_arrival[i] = now + rng.geometric_gap(self.cfg.request_rate);

        if rng.chance(self.cfg.write_frac) {
            // Write: shared lines require a network-wide invalidate.
            if rng.chance(self.cfg.shared_frac) {
                out.push(MessageRequest::broadcast(node, self.cfg.ctrl_len));
            }
        } else if rng.chance(self.cfg.miss_frac) {
            // Read miss: fetch from the line's home, which responds later.
            let line = rng.below(self.cfg.lines);
            let home = self.home_of(line);
            if home != node {
                out.push(MessageRequest::unicast(node, home, self.cfg.ctrl_len));
                self.responses[home.index()].push(now + self.cfg.memory_delay, node);
            }
        }
    }

    fn nominal_rate(&self) -> Option<f64> {
        Some(self.cfg.request_rate)
    }

    // Deliberately no `next_due` override: polling node A can schedule a
    // data response at another node's home queue, so a per-node lower bound
    // answered *now* can be invalidated by a later poll of a different node
    // — exactly what the skip contract forbids. The default ("poll me every
    // cycle") is the only exact answer for a workload with cross-node
    // coupling; the active-set lockstep test pins this.
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarc_core::flit::TrafficClass;

    fn run(n: usize, cfg: CoherenceConfig, cycles: u64) -> Vec<MessageRequest> {
        let mut w = Coherence::new(n, cfg);
        let mut out = Vec::new();
        for now in 0..cycles {
            for node in 0..n {
                out.extend(w.poll(NodeId::new(node), now));
            }
        }
        out
    }

    #[test]
    fn generates_mixed_traffic() {
        let cfg = CoherenceConfig { request_rate: 0.1, ..Default::default() };
        let msgs = run(16, cfg, 10_000);
        let bc = msgs.iter().filter(|m| m.class == TrafficClass::Broadcast).count();
        let uc = msgs.iter().filter(|m| m.class == TrafficClass::Unicast).count();
        assert!(bc > 0, "no invalidations generated");
        assert!(uc > 0, "no fetch/data traffic generated");
        // Invalidate fraction ≈ write_frac * shared_frac = 6% of requests.
        let frac = bc as f64 / (bc + uc) as f64;
        assert!(frac < 0.5, "broadcasts dominate unexpectedly: {frac}");
    }

    #[test]
    fn responses_follow_requests() {
        let cfg = CoherenceConfig {
            request_rate: 0.2,
            write_frac: 0.0,
            miss_frac: 1.0,
            memory_delay: 5,
            ..Default::default()
        };
        let msgs = run(8, cfg, 4_000);
        // Every fetch (ctrl_len) eventually triggers a data response
        // (data_len). Because the run is long, counts must be within the
        // trailing window of each other.
        let fetches = msgs.iter().filter(|m| m.len == cfg.ctrl_len).count();
        let data = msgs.iter().filter(|m| m.len == cfg.data_len).count();
        assert!(fetches > 100);
        assert!(data > 0);
        assert!(data <= fetches);
        assert!(fetches - data < 32, "fetch {fetches} vs data {data}");
    }

    #[test]
    fn deterministic() {
        let cfg = CoherenceConfig { request_rate: 0.1, ..Default::default() };
        assert_eq!(run(8, cfg, 1000), run(8, cfg, 1000));
    }

    #[test]
    fn never_sends_to_self() {
        let cfg = CoherenceConfig { request_rate: 0.3, miss_frac: 1.0, ..Default::default() };
        for m in run(4, cfg, 2000) {
            if let Some(dst) = m.dst {
                assert_ne!(dst, m.src);
            }
        }
    }
}
