//! Bursty (Markov-modulated on/off) traffic and bimodal message lengths.
//!
//! Real MPSoC traffic is burstier than a Bernoulli process — the paper
//! itself notes that the Spidergon's imbalance "is even exacerbated when the
//! network is under bursty traffic" (§1). This generator supplies that
//! stressor: each node alternates between an *on* state (injecting at
//! `peak_rate`) and an *off* state (silent), with geometrically distributed
//! dwell times; message lengths optionally alternate between short control
//! packets and long data packets, the classic request/response shape.

use crate::patterns::Pattern;
use crate::request::{MessageRequest, Workload};
use quarc_core::ids::NodeId;
use quarc_engine::{Cycle, DetRng};

/// Configuration of the bursty generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstyConfig {
    /// Injection rate while a node is in the *on* state.
    pub peak_rate: f64,
    /// Mean dwell time of the on state, cycles.
    pub mean_on: f64,
    /// Mean dwell time of the off state, cycles.
    pub mean_off: f64,
    /// Fraction of messages that are broadcasts.
    pub broadcast_frac: f64,
    /// Short (control) message length in flits.
    pub short_len: usize,
    /// Long (data) message length in flits.
    pub long_len: usize,
    /// Probability a message is long.
    pub long_frac: f64,
    /// Destination pattern.
    pub pattern: Pattern,
    /// Master seed.
    pub seed: u64,
}

impl Default for BurstyConfig {
    fn default() -> Self {
        BurstyConfig {
            peak_rate: 0.2,
            mean_on: 50.0,
            mean_off: 200.0,
            broadcast_frac: 0.05,
            short_len: 2,
            long_len: 16,
            long_frac: 0.3,
            pattern: Pattern::Uniform,
            seed: 0xB00B5,
        }
    }
}

impl BurstyConfig {
    /// Long-run average offered load (messages per node per cycle).
    pub fn mean_rate(&self) -> f64 {
        self.peak_rate * self.mean_on / (self.mean_on + self.mean_off)
    }
}

#[derive(Debug)]
struct NodeState {
    rng: DetRng,
    on: bool,
    /// Cycle at which the current on/off dwell ends.
    dwell_until: Cycle,
    next_arrival: Cycle,
}

/// The bursty on/off workload.
#[derive(Debug)]
pub struct Bursty {
    cfg: BurstyConfig,
    n: usize,
    nodes: Vec<NodeState>,
}

impl Bursty {
    /// Build for an `n`-node network.
    pub fn new(n: usize, cfg: BurstyConfig) -> Self {
        assert!(n >= 2);
        assert!(cfg.peak_rate > 0.0 && cfg.peak_rate <= 1.0);
        assert!(cfg.mean_on >= 1.0 && cfg.mean_off >= 0.0);
        assert!(cfg.short_len >= 2 && cfg.long_len >= 2);
        let master = DetRng::new(cfg.seed);
        let nodes = (0..n)
            .map(|i| {
                let mut rng = master.fork(i as u64);
                // Desynchronise: start each node in a random phase.
                let on = rng.chance(cfg.mean_on / (cfg.mean_on + cfg.mean_off));
                let dwell = 1 + rng.below(2 * cfg.mean_off.max(cfg.mean_on) as usize + 1) as u64;
                let next_arrival = rng.geometric_gap(cfg.peak_rate);
                NodeState { rng, on, dwell_until: dwell, next_arrival }
            })
            .collect();
        Bursty { cfg, n, nodes }
    }

    fn dwell(rng: &mut DetRng, mean: f64) -> u64 {
        if mean <= 1.0 {
            return 1;
        }
        rng.geometric_gap(1.0 / mean)
    }
}

impl Workload for Bursty {
    fn poll_into(&mut self, node: NodeId, now: Cycle, out: &mut Vec<MessageRequest>) {
        let cfg = self.cfg;
        let st = &mut self.nodes[node.index()];
        // Advance the on/off modulation.
        while now >= st.dwell_until {
            st.on = !st.on;
            let mean = if st.on { cfg.mean_on } else { cfg.mean_off };
            st.dwell_until += Self::dwell(&mut st.rng, mean);
            if st.on {
                // Fresh arrival schedule for the new burst.
                st.next_arrival = st.dwell_until.min(now + st.rng.geometric_gap(cfg.peak_rate));
            }
        }
        if !st.on || now < st.next_arrival {
            return;
        }
        st.next_arrival = now + st.rng.geometric_gap(cfg.peak_rate);
        let len = if st.rng.chance(cfg.long_frac) { cfg.long_len } else { cfg.short_len };
        let req = if st.rng.chance(cfg.broadcast_frac) {
            MessageRequest::broadcast(node, len)
        } else {
            let dst = cfg.pattern.pick(&mut st.rng, node, self.n);
            MessageRequest::unicast(node, dst, len)
        };
        out.push(req);
    }

    fn nominal_rate(&self) -> Option<f64> {
        Some(self.cfg.mean_rate())
    }

    fn next_due(&self, node: NodeId, _now: Cycle) -> Cycle {
        // Until the dwell boundary an off node does nothing, and an on node
        // does nothing before its next arrival; polls in between return
        // without touching the RNG, so skipping them is exact.
        let st = &self.nodes[node.index()];
        if st.on {
            st.dwell_until.min(st.next_arrival)
        } else {
            st.dwell_until
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarc_core::flit::TrafficClass;

    fn run(n: usize, cfg: BurstyConfig, cycles: u64) -> Vec<(Cycle, MessageRequest)> {
        let mut w = Bursty::new(n, cfg);
        let mut out = Vec::new();
        for now in 0..cycles {
            for node in 0..n {
                for m in w.poll(NodeId::new(node), now) {
                    out.push((now, m));
                }
            }
        }
        out
    }

    #[test]
    fn long_run_rate_matches_duty_cycle() {
        let cfg = BurstyConfig {
            peak_rate: 0.2,
            mean_on: 50.0,
            mean_off: 150.0,
            broadcast_frac: 0.0,
            ..Default::default()
        };
        let msgs = run(8, cfg, 100_000);
        let rate = msgs.len() as f64 / (8.0 * 100_000.0);
        let want = cfg.mean_rate(); // 0.2 * 50/200 = 0.05
        assert!(
            (rate - want).abs() / want < 0.15,
            "measured {rate:.4} vs duty-cycle rate {want:.4}"
        );
    }

    #[test]
    fn traffic_is_actually_bursty() {
        // Compare the variance of per-window message counts against a
        // Poisson-like process of the same mean: bursty traffic must be
        // over-dispersed (index of dispersion >> 1).
        let cfg = BurstyConfig {
            peak_rate: 0.5,
            mean_on: 40.0,
            mean_off: 360.0,
            broadcast_frac: 0.0,
            ..Default::default()
        };
        let msgs = run(4, cfg, 200_000);
        let window = 100u64;
        let mut counts = vec![0f64; (200_000 / window) as usize];
        for (t, _) in &msgs {
            counts[(*t / window) as usize] += 1.0;
        }
        let mean = counts.iter().sum::<f64>() / counts.len() as f64;
        let var =
            counts.iter().map(|c| (c - mean) * (c - mean)).sum::<f64>() / (counts.len() - 1) as f64;
        let dispersion = var / mean;
        assert!(dispersion > 2.0, "index of dispersion {dispersion:.2} not bursty");
    }

    #[test]
    fn bimodal_lengths() {
        let cfg = BurstyConfig {
            long_frac: 0.5,
            short_len: 2,
            long_len: 32,
            mean_off: 10.0,
            ..Default::default()
        };
        let msgs = run(8, cfg, 50_000);
        let short = msgs.iter().filter(|(_, m)| m.len == 2).count();
        let long = msgs.iter().filter(|(_, m)| m.len == 32).count();
        assert!(short > 0 && long > 0);
        let frac = long as f64 / (short + long) as f64;
        assert!((0.42..0.58).contains(&frac), "long fraction {frac}");
    }

    #[test]
    fn deterministic() {
        let cfg = BurstyConfig::default();
        assert_eq!(run(8, cfg, 5_000), run(8, cfg, 5_000));
    }

    #[test]
    fn produces_broadcasts_when_asked() {
        let cfg = BurstyConfig { broadcast_frac: 0.5, mean_off: 10.0, ..Default::default() };
        let msgs = run(8, cfg, 20_000);
        assert!(msgs.iter().any(|(_, m)| m.class == TrafficClass::Broadcast));
    }
}
