//! Trace recording and replay.
//!
//! Any workload can be wrapped in a [`Recorder`] to capture the exact message
//! stream of a run; [`TraceWorkload`] replays a captured (or externally
//! produced) trace cycle-accurately. Traces serialise to a simple line-based
//! text format so experiment inputs can be diffed and versioned without a
//! serde dependency.

use crate::request::{MessageRequest, Workload};
use quarc_core::flit::TrafficClass;
use quarc_core::ids::NodeId;
use quarc_engine::Cycle;
use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;

/// One traced message creation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Creation cycle.
    pub cycle: Cycle,
    /// The message.
    pub request: MessageRequest,
}

impl fmt::Display for TraceRecord {
    /// `cycle src class len dst|targets` — e.g. `120 3 u 8 7` or
    /// `130 0 b 16 -` or `140 2 m 8 1,5,9`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = &self.request;
        let class = match r.class {
            TrafficClass::Unicast => "u",
            TrafficClass::Broadcast => "b",
            TrafficClass::Multicast => "m",
            other => panic!("trace format does not carry internal class {other}"),
        };
        write!(f, "{} {} {} {} ", self.cycle, r.src.index(), class, r.len)?;
        match r.class {
            TrafficClass::Unicast => write!(f, "{}", r.dst.expect("unicast has dst").index()),
            TrafficClass::Broadcast => write!(f, "-"),
            _ => {
                let parts: Vec<String> = r.targets.iter().map(|t| t.index().to_string()).collect();
                write!(f, "{}", parts.join(","))
            }
        }
    }
}

/// Errors from parsing a trace line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError(String);

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad trace line: {}", self.0)
    }
}

impl std::error::Error for TraceParseError {}

impl FromStr for TraceRecord {
    type Err = TraceParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || TraceParseError(s.to_string());
        let mut it = s.split_whitespace();
        let cycle: Cycle = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let src: usize = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let class = it.next().ok_or_else(err)?;
        let len: usize = it.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        let rest = it.next().ok_or_else(err)?;
        let src = NodeId::new(src);
        let request = match class {
            "u" => {
                let dst: usize = rest.parse().map_err(|_| err())?;
                MessageRequest::unicast(src, NodeId::new(dst), len)
            }
            "b" => MessageRequest::broadcast(src, len),
            "m" => {
                let targets = rest
                    .split(',')
                    .map(|t| t.parse::<usize>().map(NodeId::new))
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(|_| err())?;
                MessageRequest::multicast(src, targets, len)
            }
            _ => return Err(err()),
        };
        Ok(TraceRecord { cycle, request })
    }
}

/// Wraps a workload, recording everything it generates.
#[derive(Debug)]
pub struct Recorder<W> {
    inner: W,
    trace: Vec<TraceRecord>,
}

impl<W: Workload> Recorder<W> {
    /// Wrap `inner`.
    pub fn new(inner: W) -> Self {
        Recorder { inner, trace: Vec::new() }
    }

    /// The records captured so far.
    pub fn trace(&self) -> &[TraceRecord] {
        &self.trace
    }

    /// Consume the recorder, returning the trace.
    pub fn into_trace(self) -> Vec<TraceRecord> {
        self.trace
    }

    /// Serialise the trace to the line format.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for r in &self.trace {
            s.push_str(&r.to_string());
            s.push('\n');
        }
        s
    }
}

impl<W: Workload> Workload for Recorder<W> {
    fn poll_into(&mut self, node: NodeId, now: Cycle, out: &mut Vec<MessageRequest>) {
        let before = out.len();
        self.inner.poll_into(node, now, out);
        for m in &out[before..] {
            self.trace.push(TraceRecord { cycle: now, request: m.clone() });
        }
    }

    fn nominal_rate(&self) -> Option<f64> {
        self.inner.nominal_rate()
    }

    fn next_due(&self, node: NodeId, now: Cycle) -> Cycle {
        self.inner.next_due(node, now)
    }
}

/// Replays a trace cycle-accurately. Records must be grouped per node in
/// non-decreasing cycle order (the order a [`Recorder`] produces).
#[derive(Debug)]
pub struct TraceWorkload {
    queues: Vec<VecDeque<TraceRecord>>,
}

impl TraceWorkload {
    /// Build a replay for an `n`-node network from records.
    pub fn new(n: usize, records: impl IntoIterator<Item = TraceRecord>) -> Self {
        let mut queues: Vec<VecDeque<TraceRecord>> = (0..n).map(|_| VecDeque::new()).collect();
        for r in records {
            assert!(r.request.src.index() < n, "trace source outside network");
            queues[r.request.src.index()].push_back(r);
        }
        for q in &queues {
            assert!(
                q.iter().zip(q.iter().skip(1)).all(|(a, b)| a.cycle <= b.cycle),
                "per-node trace must be cycle-sorted"
            );
        }
        TraceWorkload { queues }
    }

    /// Parse the line format produced by [`Recorder::to_text`].
    pub fn parse(n: usize, text: &str) -> Result<Self, TraceParseError> {
        let records = text
            .lines()
            .filter(|l| !l.trim().is_empty() && !l.starts_with('#'))
            .map(str::parse)
            .collect::<Result<Vec<TraceRecord>, _>>()?;
        Ok(TraceWorkload::new(n, records))
    }

    /// Number of records still pending.
    pub fn remaining(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }
}

impl Workload for TraceWorkload {
    fn poll_into(&mut self, node: NodeId, now: Cycle, out: &mut Vec<MessageRequest>) {
        let q = &mut self.queues[node.index()];
        while q.front().is_some_and(|r| r.cycle <= now) {
            out.push(q.pop_front().expect("peeked").request);
        }
    }

    fn next_due(&self, node: NodeId, _now: Cycle) -> Cycle {
        // Replay is exact: nothing happens before the next record's cycle.
        self.queues[node.index()].front().map_or(Cycle::MAX, |r| r.cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{Synthetic, SyntheticConfig};

    #[test]
    fn record_then_replay_is_identical() {
        let cfg = SyntheticConfig::paper(0.1, 8, 0.2, 17);
        let mut rec = Recorder::new(Synthetic::new(8, cfg));
        let mut original = Vec::new();
        for now in 0..500 {
            for node in 0..8 {
                for m in rec.poll(NodeId::new(node), now) {
                    original.push((now, m));
                }
            }
        }
        let mut replay = TraceWorkload::new(8, rec.into_trace());
        let mut replayed = Vec::new();
        for now in 0..500 {
            for node in 0..8 {
                for m in replay.poll(NodeId::new(node), now) {
                    replayed.push((now, m));
                }
            }
        }
        assert_eq!(original, replayed);
        assert_eq!(replay.remaining(), 0);
    }

    #[test]
    fn text_roundtrip() {
        let records = vec![
            TraceRecord { cycle: 5, request: MessageRequest::unicast(NodeId(1), NodeId(3), 8) },
            TraceRecord { cycle: 9, request: MessageRequest::broadcast(NodeId(0), 16) },
            TraceRecord {
                cycle: 12,
                request: MessageRequest::multicast(NodeId(2), vec![NodeId(4), NodeId(6)], 4),
            },
        ];
        let text: String = records.iter().map(|r| format!("{r}\n")).collect();
        let parsed: Vec<TraceRecord> = text.lines().map(|l| l.parse().unwrap()).collect();
        assert_eq!(parsed, records);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("not a record".parse::<TraceRecord>().is_err());
        assert!("1 2 z 8 3".parse::<TraceRecord>().is_err());
        assert!("1 2 u 8".parse::<TraceRecord>().is_err());
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let tw = TraceWorkload::parse(4, "# header\n\n3 0 u 8 1\n").unwrap();
        assert_eq!(tw.remaining(), 1);
    }

    #[test]
    fn late_poll_catches_up() {
        // If the driver polls at a later cycle, earlier records still fire.
        let records = vec![TraceRecord {
            cycle: 5,
            request: MessageRequest::unicast(NodeId(0), NodeId(1), 2),
        }];
        let mut tw = TraceWorkload::new(2, records);
        assert!(tw.poll(NodeId(0), 4).is_empty());
        assert_eq!(tw.poll(NodeId(0), 10).len(), 1);
    }
}
