//! Destination selection patterns.
//!
//! The paper's evaluation uses uniformly distributed destinations; the other
//! patterns are standard NoC stressors included for the extension
//! experiments: hotspot concentrates load on one ejection port, complement
//! saturates the cross links, neighbour saturates one rim, and bit-reversal
//! exercises an adversarial permutation.

use quarc_core::ids::NodeId;
use quarc_engine::DetRng;
use std::fmt;

/// How a traffic generator picks unicast destinations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Uniform over all nodes except the source (the paper's workload).
    Uniform,
    /// With probability `frac`, send to `node`; otherwise uniform.
    Hotspot {
        /// The hot node.
        node: NodeId,
        /// Fraction of traffic aimed at it.
        frac: f64,
    },
    /// Always the antipodal node — worst case for the shared Spidergon spoke.
    Complement,
    /// Always the clockwise neighbour — best case, rim-only traffic.
    Neighbour,
    /// Destination = bit-reversed source address (within `ceil(log2 n)` bits);
    /// falls back to uniform when the reversal maps to self or out of range.
    BitReversal,
}

impl Pattern {
    /// Pick a destination for `src` in an `n`-node network. Never returns
    /// `src`.
    pub fn pick(&self, rng: &mut DetRng, src: NodeId, n: usize) -> NodeId {
        debug_assert!(n >= 2);
        match *self {
            Pattern::Uniform => NodeId::new(rng.below_excluding(n, src.index())),
            Pattern::Hotspot { node, frac } => {
                if node != src && rng.chance(frac) {
                    node
                } else {
                    NodeId::new(rng.below_excluding(n, src.index()))
                }
            }
            Pattern::Complement => NodeId::new((src.index() + n / 2) % n),
            Pattern::Neighbour => NodeId::new((src.index() + 1) % n),
            Pattern::BitReversal => {
                let bits = usize::BITS - (n - 1).leading_zeros();
                let rev = src.index().reverse_bits() >> (usize::BITS - bits);
                if rev < n && rev != src.index() {
                    NodeId::new(rev)
                } else {
                    NodeId::new(rng.below_excluding(n, src.index()))
                }
            }
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pattern::Uniform => write!(f, "uniform"),
            Pattern::Hotspot { node, frac } => write!(f, "hotspot({node},{frac})"),
            Pattern::Complement => write!(f, "complement"),
            Pattern::Neighbour => write!(f, "neighbour"),
            Pattern::BitReversal => write!(f, "bit-reversal"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_never_picks_self_and_covers_all() {
        let mut rng = DetRng::new(1);
        let src = NodeId(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let d = Pattern::Uniform.pick(&mut rng, src, 8);
            assert_ne!(d, src);
            seen[d.index()] = true;
        }
        assert_eq!(seen.iter().filter(|&&b| b).count(), 7);
    }

    #[test]
    fn hotspot_concentrates() {
        let mut rng = DetRng::new(2);
        let hot = NodeId(0);
        let mut hits = 0;
        let trials = 10_000;
        for _ in 0..trials {
            if (Pattern::Hotspot { node: hot, frac: 0.5 }).pick(&mut rng, NodeId(3), 16) == hot {
                hits += 1;
            }
        }
        // 0.5 + 0.5/15 ≈ 0.533 expected.
        let frac = hits as f64 / trials as f64;
        assert!((0.48..0.59).contains(&frac), "hotspot fraction {frac}");
    }

    #[test]
    fn hotspot_source_is_hot_node() {
        let mut rng = DetRng::new(3);
        // When the source *is* the hotspot it must fall back to uniform.
        for _ in 0..100 {
            let d = Pattern::Hotspot { node: NodeId(3), frac: 1.0 }.pick(&mut rng, NodeId(3), 8);
            assert_ne!(d, NodeId(3));
        }
    }

    #[test]
    fn complement_is_antipode() {
        let mut rng = DetRng::new(4);
        assert_eq!(Pattern::Complement.pick(&mut rng, NodeId(3), 16), NodeId(11));
        assert_eq!(Pattern::Complement.pick(&mut rng, NodeId(12), 16), NodeId(4));
    }

    #[test]
    fn neighbour_wraps() {
        let mut rng = DetRng::new(5);
        assert_eq!(Pattern::Neighbour.pick(&mut rng, NodeId(15), 16), NodeId(0));
    }

    #[test]
    fn bit_reversal_is_involution_where_defined() {
        let mut rng = DetRng::new(6);
        // For n=16, 4-bit reversal: 1 (0001) -> 8 (1000).
        assert_eq!(Pattern::BitReversal.pick(&mut rng, NodeId(1), 16), NodeId(8));
        assert_eq!(Pattern::BitReversal.pick(&mut rng, NodeId(8), 16), NodeId(1));
        // Palindromic addresses (0, 6, 9, 15) fall back to uniform ≠ self.
        for _ in 0..50 {
            assert_ne!(Pattern::BitReversal.pick(&mut rng, NodeId(6), 16), NodeId(6));
        }
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(Pattern::Uniform.to_string(), "uniform");
        assert_eq!(Pattern::Complement.to_string(), "complement");
    }
}
