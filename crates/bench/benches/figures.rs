//! One scaled-down point of each latency figure, as a Criterion benchmark —
//! a quick regression canary that the full figure binaries stay runnable in
//! reasonable time.

use criterion::{criterion_group, criterion_main, Criterion};
use quarc_core::config::NocConfig;
use quarc_sim::{run, CurveSpec, QuarcNetwork, RunSpec, SpidergonNetwork};
use quarc_workloads::{Synthetic, SyntheticConfig};

fn quick_spec() -> RunSpec {
    RunSpec { warmup: 200, measure: 1_500, drain: 2_000, ..Default::default() }
}

fn bench_points(c: &mut Criterion) {
    let mut g = c.benchmark_group("figure_points");
    g.sample_size(10);

    // A fig. 9-style point: N=16, M=8, beta=5%.
    g.bench_function("fig9_point_quarc", |b| {
        b.iter(|| {
            let mut net = QuarcNetwork::new(NocConfig::quarc(16));
            let mut wl = Synthetic::new(16, SyntheticConfig::paper(0.02, 8, 0.05, 1));
            run(&mut net, &mut wl, &quick_spec()).unicast_mean
        })
    });
    g.bench_function("fig9_point_spidergon", |b| {
        b.iter(|| {
            let mut net = SpidergonNetwork::new(NocConfig::spidergon(16));
            let mut wl = Synthetic::new(16, SyntheticConfig::paper(0.02, 8, 0.05, 1));
            run(&mut net, &mut wl, &quick_spec()).unicast_mean
        })
    });

    // A fig. 11-style point: N=64, M=16, beta=10%.
    g.bench_function("fig11_point_quarc", |b| {
        b.iter(|| {
            let mut net = QuarcNetwork::new(NocConfig::quarc(64));
            let mut wl = Synthetic::new(64, SyntheticConfig::paper(0.005, 16, 0.10, 2));
            run(&mut net, &mut wl, &quick_spec()).unicast_mean
        })
    });

    // Full mini-curve through the sweep helper.
    g.bench_function("mini_curve_quarc", |b| {
        b.iter(|| {
            let spec = CurveSpec { noc: NocConfig::quarc(16), msg_len: 8, beta: 0.05, seed: 3 };
            quarc_sim::latency_curve(&spec, &[0.005, 0.02], &quick_spec()).unwrap().len()
        })
    });

    g.finish();
}

criterion_group!(benches, bench_points);
criterion_main!(benches);
