//! Benchmarks the simulated broadcast operation end to end: wall time to
//! carry one broadcast to quiescence in each architecture and in the
//! signal-level model (the simulated *latency* gap itself is asserted by
//! tests and printed by the figure binaries; this measures the simulators).

use criterion::{criterion_group, criterion_main, Criterion};
use quarc_core::config::NocConfig;
use quarc_core::ids::NodeId;
use quarc_sim::driver::NocSim;
use quarc_sim::{QuarcNetwork, SpidergonNetwork};
use quarc_workloads::{MessageRequest, TraceRecord, TraceWorkload};

fn one_broadcast() -> Vec<TraceRecord> {
    vec![TraceRecord { cycle: 0, request: MessageRequest::broadcast(NodeId(0), 16) }]
}

fn bench_broadcast(c: &mut Criterion) {
    let mut g = c.benchmark_group("broadcast_completion");
    g.sample_size(20);

    for n in [16usize, 64] {
        g.bench_function(format!("quarc_n{n}"), |b| {
            b.iter(|| {
                let mut net = QuarcNetwork::new(NocConfig::quarc(n));
                let mut wl = TraceWorkload::new(n, one_broadcast());
                while !net.quiesced() || net.now() == 0 {
                    net.step(&mut wl);
                }
                net.now()
            })
        });
        g.bench_function(format!("spidergon_n{n}"), |b| {
            b.iter(|| {
                let mut net = SpidergonNetwork::new(NocConfig::spidergon(n));
                let mut wl = TraceWorkload::new(n, one_broadcast());
                while !net.quiesced() || net.now() == 0 {
                    net.step(&mut wl);
                }
                net.now()
            })
        });
    }

    g.bench_function("rtl_quarc_n16", |b| {
        b.iter(|| {
            let mut ring = quarc_rtl::RingRtl::new(16);
            for (quad, frame) in quarc_rtl::xcvr::broadcast_frames(ring.ring(), NodeId(0), 16) {
                ring.inject(NodeId(0), quad, &frame);
            }
            ring.run_until_idle(10_000);
            ring.now()
        })
    });

    g.finish();
}

criterion_group!(benches, bench_broadcast);
criterion_main!(benches);
