//! Micro-benchmarks of the router hot path: the cost of one network `step`
//! for both architectures, idle and under load.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use quarc_core::config::NocConfig;
use quarc_sim::driver::NocSim;
use quarc_sim::{QuarcNetwork, SpidergonNetwork};
use quarc_workloads::{Synthetic, SyntheticConfig};

fn loaded_quarc(n: usize, rate: f64) -> (QuarcNetwork, Synthetic) {
    let mut net = QuarcNetwork::new(NocConfig::quarc(n));
    let mut wl = Synthetic::new(n, SyntheticConfig::paper(rate, 8, 0.05, 7));
    for _ in 0..2_000 {
        net.step(&mut wl);
    }
    (net, wl)
}

fn loaded_spidergon(n: usize, rate: f64) -> (SpidergonNetwork, Synthetic) {
    let mut net = SpidergonNetwork::new(NocConfig::spidergon(n));
    let mut wl = Synthetic::new(n, SyntheticConfig::paper(rate, 8, 0.05, 7));
    for _ in 0..2_000 {
        net.step(&mut wl);
    }
    (net, wl)
}

fn bench_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("router_step");
    g.sample_size(20);

    g.bench_function("quarc_n16_idle", |b| {
        b.iter_batched(
            || loaded_quarc(16, 0.0),
            |(mut net, mut wl)| {
                for _ in 0..100 {
                    net.step(&mut wl);
                }
                net.now()
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("quarc_n16_loaded", |b| {
        b.iter_batched(
            || loaded_quarc(16, 0.05),
            |(mut net, mut wl)| {
                for _ in 0..100 {
                    net.step(&mut wl);
                }
                net.now()
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("spidergon_n16_loaded", |b| {
        b.iter_batched(
            || loaded_spidergon(16, 0.05),
            |(mut net, mut wl)| {
                for _ in 0..100 {
                    net.step(&mut wl);
                }
                net.now()
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("quarc_n64_loaded", |b| {
        b.iter_batched(
            || loaded_quarc(64, 0.01),
            |(mut net, mut wl)| {
                for _ in 0..100 {
                    net.step(&mut wl);
                }
                net.now()
            },
            BatchSize::SmallInput,
        )
    });

    g.finish();
}

criterion_group!(benches, bench_step);
criterion_main!(benches);
