//! Ablation benchmarks: how the simulator's wall-time cost responds to the
//! structural knobs DESIGN.md §6 calls out (buffer depth, link latency,
//! message length). The *simulated-metric* ablations are printed by
//! `cargo run -p quarc-bench --bin ablation`.

use criterion::{criterion_group, criterion_main, Criterion};
use quarc_core::config::NocConfig;
use quarc_sim::driver::NocSim;
use quarc_sim::QuarcNetwork;
use quarc_workloads::{Synthetic, SyntheticConfig};

const CYCLES: u64 = 1_500;

fn run_cfg(cfg: NocConfig, msg_len: usize) -> u64 {
    let n = cfg.n;
    let mut net = QuarcNetwork::new(cfg);
    let mut wl = Synthetic::new(n, SyntheticConfig::paper(0.03, msg_len, 0.05, 5));
    for _ in 0..CYCLES {
        net.step(&mut wl);
    }
    net.metrics().flits_delivered()
}

fn bench_ablations(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);

    for depth in [2usize, 4, 16] {
        g.bench_function(format!("buffer_depth_{depth}"), |b| {
            b.iter(|| run_cfg(NocConfig::quarc(16).with_buffer_depth(depth), 8))
        });
    }

    for lat in [1u64, 4] {
        g.bench_function(format!("link_latency_{lat}"), |b| {
            b.iter(|| {
                let mut cfg = NocConfig::quarc(16);
                cfg.link_latency = lat;
                run_cfg(cfg, 8)
            })
        });
    }

    for m in [2usize, 8, 32] {
        g.bench_function(format!("msg_len_{m}"), |b| b.iter(|| run_cfg(NocConfig::quarc(16), m)));
    }

    g.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
