//! End-to-end simulator throughput: simulated cycles per wall second for the
//! configurations the figures sweep. This is what bounds how long the figure
//! binaries take.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use quarc_core::config::NocConfig;
use quarc_sim::driver::NocSim;
use quarc_sim::{QuarcNetwork, SpidergonNetwork};
use quarc_workloads::{Synthetic, SyntheticConfig};

const CYCLES: u64 = 2_000;

fn bench_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("network_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(CYCLES));

    for n in [16usize, 64] {
        g.bench_function(format!("quarc_n{n}"), |b| {
            b.iter(|| {
                let mut net = QuarcNetwork::new(NocConfig::quarc(n));
                let mut wl = Synthetic::new(n, SyntheticConfig::paper(0.02, 16, 0.05, 1));
                for _ in 0..CYCLES {
                    net.step(&mut wl);
                }
                net.metrics().flits_delivered()
            })
        });
        g.bench_function(format!("spidergon_n{n}"), |b| {
            b.iter(|| {
                let mut net = SpidergonNetwork::new(NocConfig::spidergon(n));
                let mut wl = Synthetic::new(n, SyntheticConfig::paper(0.02, 16, 0.05, 1));
                for _ in 0..CYCLES {
                    net.step(&mut wl);
                }
                net.metrics().flits_delivered()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
