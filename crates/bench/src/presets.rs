//! Named campaign presets reproducing the paper's evaluation grids.
//!
//! Each preset is one [`CampaignSpec`]; the `campaign` binary (and the
//! `fig9`/`fig10`/`fig11`/`ablation` binaries, which are thin wrappers over
//! these) runs them through `quarc_campaign::run_campaign`. Base seeds are
//! arbitrary but fixed so every invocation reproduces the same numbers.

use quarc_campaign::{CampaignSpec, CiTarget, Convergence, RateAxis};
use quarc_core::config::{ArbPolicy, FaultPlan, RecoveryPolicy};
use quarc_core::topology::TopologyKind;

/// The topology axis of the figure presets: the paper's two ring networks
/// plus the §4 "next objective" grids. Every family carries every traffic
/// class, so all four run the full β axis of each figure.
fn figure_topologies() -> Vec<TopologyKind> {
    vec![TopologyKind::Quarc, TopologyKind::Spidergon, TopologyKind::Mesh, TopologyKind::Torus]
}

/// The rate axis the paper's figures use: ten geometric steps up to 1.1× the
/// analytic Quarc saturation bound for each curve's `(n, M)`.
fn figure_rates() -> RateAxis {
    RateAxis::AutoGeometric { span: 1.1, lo_div: 40.0, steps: 10 }
}

/// The figure presets' replication protocol: convergence-controlled, every
/// tracked metric's 95% CI half-width within 5% of its mean (capped at 64
/// replications — points past the knee saturate and never tighten, which
/// the artifact reports as `converged: false` rather than burning the cap
/// on every curve's tail).
fn figure_convergence() -> Option<Convergence> {
    Some(Convergence { target: CiTarget::Rel(0.05), max_reps: 64 })
}

/// **Fig. 9**: latency vs rate, N = 16, β = 5%, M ∈ {8, 16, 32}.
pub fn fig9() -> CampaignSpec {
    let mut spec = CampaignSpec::new("fig9");
    spec.topologies = figure_topologies();
    spec.sizes = vec![16];
    spec.msg_lens = vec![8, 16, 32];
    spec.betas = vec![0.05];
    spec.rates = figure_rates();
    spec.convergence = figure_convergence();
    spec.base_seed = 9;
    spec
}

/// **Fig. 10**: latency vs rate, M = 16, β = 10%, N ∈ {16, 32, 64}.
pub fn fig10() -> CampaignSpec {
    let mut spec = CampaignSpec::new("fig10");
    spec.topologies = figure_topologies();
    spec.sizes = vec![16, 32, 64];
    spec.msg_lens = vec![16];
    spec.betas = vec![0.10];
    spec.rates = figure_rates();
    spec.convergence = figure_convergence();
    spec.base_seed = 10;
    spec
}

/// **Fig. 11**: latency vs rate, N = 64, M = 16, β ∈ {0%, 5%, 10%}.
pub fn fig11() -> CampaignSpec {
    let mut spec = CampaignSpec::new("fig11");
    spec.topologies = figure_topologies();
    spec.sizes = vec![64];
    spec.msg_lens = vec![16];
    spec.betas = vec![0.0, 0.05, 0.10];
    spec.rates = figure_rates();
    spec.convergence = figure_convergence();
    spec.base_seed = 11;
    spec
}

/// Ablation: input-buffer depth at a fixed operating point.
pub fn ablation_buffer() -> CampaignSpec {
    let mut spec = CampaignSpec::new("ablation-buffer");
    spec.topologies = vec![TopologyKind::Quarc, TopologyKind::Spidergon];
    spec.sizes = vec![16];
    spec.msg_lens = vec![16];
    spec.betas = vec![0.05];
    spec.buffer_depths = vec![2, 4, 8, 16];
    spec.rates = RateAxis::Explicit(vec![0.02]);
    spec.base_seed = 21;
    spec
}

/// Ablation: link latency (Quarc only, depth 4).
pub fn ablation_link() -> CampaignSpec {
    let mut spec = CampaignSpec::new("ablation-link");
    spec.topologies = vec![TopologyKind::Quarc];
    spec.sizes = vec![16];
    spec.msg_lens = vec![16];
    spec.betas = vec![0.05];
    spec.link_latencies = vec![1, 2, 4];
    spec.rates = RateAxis::Explicit(vec![0.02]);
    spec.base_seed = 22;
    spec
}

/// Ablation: broadcast mechanism at growing β, below the Quarc knee so the
/// degradation is attributable to β alone.
pub fn ablation_beta() -> CampaignSpec {
    let mut spec = CampaignSpec::new("ablation-beta");
    spec.topologies = vec![TopologyKind::Quarc, TopologyKind::Spidergon];
    spec.sizes = vec![16];
    spec.msg_lens = vec![16];
    spec.betas = vec![0.0, 0.02, 0.05, 0.10, 0.20];
    spec.rates = RateAxis::Explicit(vec![0.008]);
    spec.base_seed = 23;
    spec
}

/// Ablation: output-arbitration policy (Quarc only) — round-robin vs fixed
/// priority at a fixed operating point, as a campaign axis so the results
/// ride the content-hashed cache like every other grid.
pub fn ablation_arb() -> CampaignSpec {
    let mut spec = CampaignSpec::new("ablation-arb");
    spec.topologies = vec![TopologyKind::Quarc];
    spec.sizes = vec![16];
    spec.msg_lens = vec![16];
    spec.betas = vec![0.05];
    spec.arbs = vec![ArbPolicy::RoundRobin, ArbPolicy::FixedPriority];
    spec.rates = RateAxis::Explicit(vec![0.008, 0.02]);
    spec.base_seed = 24;
    spec
}

/// The large-n scaling grid: all four topologies at n ∈ {256 … 16384} under
/// trickle loads (rate ≪ saturation) — the regime where the simulator's
/// active-set scheduling makes per-cycle cost track live traffic instead of
/// n. The top two sizes put every multicast bitstring on the slab (the
/// inline word stops at 63 positions), so this preset also tracks the
/// slab-row hot path at scale.
pub fn scale() -> CampaignSpec {
    let mut spec = CampaignSpec::new("scale");
    spec.topologies = figure_topologies();
    spec.sizes = vec![256, 1024, 4096, 16384];
    spec.msg_lens = vec![8];
    spec.betas = vec![0.05];
    spec.rates = RateAxis::Explicit(vec![0.0005, 0.001, 0.002]);
    spec.replications = 2;
    spec.base_seed = 41;
    spec
}

/// Adaptive saturation frontier across sizes: where each topology's knee
/// sits, found by bisection instead of a fixed sweep.
pub fn frontier() -> CampaignSpec {
    let mut spec = CampaignSpec::new("frontier");
    spec.topologies = vec![TopologyKind::Quarc, TopologyKind::Spidergon];
    spec.sizes = vec![16, 32, 64];
    spec.msg_lens = vec![16];
    spec.betas = vec![0.05];
    spec.rates = RateAxis::Saturation { rel_tol: 0.05, max_probes: 24 };
    spec.replications = 1;
    spec.base_seed = 31;
    spec
}

/// Robustness grid: fault rate × recovery × topology. Every family runs
/// healthy, with one then two permanent link failures, and with lossy links
/// dropping ~1.5% of packets — all below the healthy knee so any
/// delivered-fraction loss is attributable to the faults, not congestion —
/// each crossed with recovery off and on, so every curve has its reliable
/// twin (the off/on delta is the price of reliability; the on-plan
/// delivered fraction is its payoff). Frozen-router plans are deliberately
/// absent: they wedge the network by design and belong in the fail-soft
/// tests, not a preset meant to produce curves.
pub fn robustness() -> CampaignSpec {
    let mut spec = CampaignSpec::new("robustness");
    spec.topologies = figure_topologies();
    spec.sizes = vec![16];
    spec.msg_lens = vec![16];
    spec.betas = vec![0.05];
    spec.rates = RateAxis::Explicit(vec![0.004, 0.008]);
    spec.faults = vec![
        FaultPlan::NONE,
        FaultPlan { seed: 7, onset: 500, dead_links: 1, ..FaultPlan::NONE },
        FaultPlan { seed: 7, onset: 500, dead_links: 2, ..FaultPlan::NONE },
        FaultPlan { seed: 7, onset: 500, lossy_links: 2, drop_per_64k: 1000, ..FaultPlan::NONE },
    ];
    spec.recoveries = vec![
        RecoveryPolicy::NONE,
        RecoveryPolicy { seed: 13, ack_timeout: 600, max_retries: 8, jitter: 64 },
    ];
    spec.replications = 2;
    spec.base_seed = 51;
    spec
}

/// Look a preset up by name.
pub fn by_name(name: &str) -> Option<CampaignSpec> {
    match name {
        "fig9" => Some(fig9()),
        "fig10" => Some(fig10()),
        "fig11" => Some(fig11()),
        "ablation-buffer" => Some(ablation_buffer()),
        "ablation-link" => Some(ablation_link()),
        "ablation-beta" => Some(ablation_beta()),
        "ablation-arb" => Some(ablation_arb()),
        "scale" => Some(scale()),
        "frontier" => Some(frontier()),
        "robustness" => Some(robustness()),
        _ => None,
    }
}

/// The presets `--preset paper` runs: the full Fig. 9–11 grid.
pub fn paper() -> Vec<CampaignSpec> {
    vec![fig9(), fig10(), fig11()]
}

/// Every preset name, for `--help` and error messages.
pub const PRESET_NAMES: &[&str] = &[
    "fig9",
    "fig10",
    "fig11",
    "ablation-buffer",
    "ablation-link",
    "ablation-beta",
    "ablation-arb",
    "scale",
    "frontier",
    "robustness",
    "paper",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_expands() {
        for name in PRESET_NAMES.iter().filter(|&&n| n != "paper") {
            let spec = by_name(name).unwrap();
            let exp = spec.expand().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(!exp.points.is_empty(), "{name}");
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn paper_grid_matches_figure_shapes() {
        // All four topologies on every figure since the mesh/torus multicast
        // tree landed. Fig. 9: 4 topologies × 3 M × 10 rates; Fig. 10:
        // 4 × 3 N × 10; Fig. 11: 4 × 3 β × 10 — and nothing skipped.
        let expansions: Vec<_> = paper().iter().map(|s| s.expand().unwrap()).collect();
        let sizes: Vec<usize> = expansions.iter().map(|e| e.points.len()).collect();
        assert_eq!(sizes, vec![120, 120, 120]);
        assert!(expansions.iter().all(|e| e.skipped.is_empty()));
    }

    #[test]
    fn paper_presets_are_convergence_controlled() {
        // The Fig. 9–11 error bars are the paper's evidence; the presets pin
        // them to a 5% relative half-width instead of a fixed rep count.
        for spec in paper() {
            assert_eq!(
                spec.convergence,
                Some(Convergence { target: CiTarget::Rel(0.05), max_reps: 64 }),
                "{}",
                spec.name
            );
        }
        // Ablations stay fixed-replication (single-point operating modes).
        assert_eq!(ablation_arb().convergence, None);
    }

    #[test]
    fn scale_preset_covers_the_large_n_axis() {
        let exp = scale().expand().unwrap();
        assert_eq!(exp.points.len(), 4 * 4 * 3); // topologies x sizes x rates
        assert!(exp.skipped.is_empty());
        let sizes: std::collections::HashSet<_> = exp.points.iter().map(|p| p.curve.n).collect();
        assert_eq!(sizes, std::collections::HashSet::from([256, 1024, 4096, 16384]));
    }

    #[test]
    fn robustness_preset_sweeps_fault_rate_by_topology() {
        let spec = robustness();
        let exp = spec.expand().unwrap();
        // 4 topologies × 4 fault plans × 2 recovery policies × 2 rates,
        // nothing skipped.
        assert_eq!(exp.points.len(), 4 * 4 * 2 * 2);
        assert!(exp.skipped.is_empty());
        // Healthy and faulted points coexist, and labels tell them apart.
        let faulted = exp.points.iter().filter(|p| !p.curve.fault.is_empty()).count();
        assert_eq!(faulted, 4 * 3 * 2 * 2);
        assert!(exp.points.iter().any(|p| !p.curve.to_string().contains("-F")));
        assert!(exp.points.iter().any(|p| p.curve.to_string().contains("-Fs7o500d1")));
        // Every curve has its reliable twin: the recovery axis splits the
        // grid exactly in half, and labels tell the halves apart.
        let recovered = exp.points.iter().filter(|p| p.curve.recovery.enabled()).count();
        assert_eq!(recovered * 2, exp.points.len());
        assert!(exp.points.iter().any(|p| p.curve.to_string().contains("-Rt600r8j64s13")));
        // The watchdog is armed: a preset full of fault plans must never
        // hang a campaign silently.
        assert!(spec.run.stall_window > 0);
    }

    #[test]
    fn arb_ablation_sweeps_both_policies() {
        let exp = ablation_arb().expand().unwrap();
        assert_eq!(exp.points.len(), 2 * 2); // 2 policies × 2 rates
        let policies: std::collections::HashSet<_> =
            exp.points.iter().map(|p| p.curve.arb).collect();
        assert_eq!(policies.len(), 2);
    }
}
