//! # quarc-bench
//!
//! The figure-regeneration harness: one binary per table/figure of the
//! paper's evaluation (§3), plus Criterion micro-benchmarks of the simulator
//! itself. The binaries print CSV to stdout and a human-readable summary as
//! `#`-prefixed comment lines, so their output can be piped straight into a
//! plotting tool or diffed against `EXPERIMENTS.md`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod figures;
pub mod presets;

pub use figures::{run_figure, FigureCurve, FigureResult};
