//! Shared machinery for the per-figure binaries.
//!
//! Each of the paper's latency figures is a family of latency-vs-load
//! curves; a [`FigureCurve`] names one curve (topology × parameters) and
//! [`run_figure`] measures the whole family in parallel (one OS thread per
//! curve — the simulators are single-threaded and independent).

use quarc_core::config::NocConfig;
use quarc_core::topology::TopologyKind;
use quarc_sim::{latency_curve, CurvePoint, CurveSpec, RunSpec};

/// One curve of a figure.
#[derive(Debug, Clone)]
pub struct FigureCurve {
    /// Label used in the CSV (`quarc`, `spidergon`, …).
    pub label: String,
    /// Sweep parameters.
    pub spec: CurveSpec,
    /// Offered rates to visit (messages/node/cycle).
    pub rates: Vec<f64>,
}

impl FigureCurve {
    /// A curve with the paper's default workload shape.
    pub fn new(
        kind: TopologyKind,
        n: usize,
        msg_len: usize,
        beta: f64,
        rates: Vec<f64>,
        seed: u64,
    ) -> Self {
        let noc = match kind {
            TopologyKind::Quarc => NocConfig::quarc(n),
            TopologyKind::Spidergon => NocConfig::spidergon(n),
            TopologyKind::Mesh => NocConfig::mesh(n),
            TopologyKind::Torus => NocConfig::torus(n),
        };
        FigureCurve {
            label: format!("{kind}-n{n}-m{msg_len}-b{}", (beta * 100.0).round() as u32),
            spec: CurveSpec { noc, msg_len, beta, seed },
            rates,
        }
    }
}

/// A measured curve.
#[derive(Debug)]
pub struct FigureResult {
    /// The curve's label.
    pub label: String,
    /// Sweep parameters.
    pub spec: CurveSpec,
    /// The measured points (sweep stops after sustained saturation).
    pub points: Vec<CurvePoint>,
}

impl FigureResult {
    /// The highest offered rate this curve sustained without saturating.
    pub fn sustainable_rate(&self) -> Option<f64> {
        self.points.iter().rev().find(|p| !p.result.saturated).map(|p| p.rate)
    }

    /// The unicast latency of the lowest-rate (zero-load-ish) point.
    pub fn base_unicast_latency(&self) -> Option<f64> {
        self.points.first().map(|p| p.result.unicast_mean)
    }

    /// The broadcast completion latency of the lowest-rate point.
    pub fn base_broadcast_latency(&self) -> Option<f64> {
        self.points.first().map(|p| p.result.bcast_completion_mean)
    }
}

/// Measure every curve, each on its own thread.
pub fn run_figure(curves: Vec<FigureCurve>, run_spec: &RunSpec) -> Vec<FigureResult> {
    let mut results: Vec<Option<FigureResult>> = Vec::new();
    results.resize_with(curves.len(), || None);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, curve) in curves.iter().enumerate() {
            let rs = *run_spec;
            handles.push((
                i,
                scope.spawn(move || {
                    // Figure curves are built from the validated constructors
                    // above, so a config error here is a programming error.
                    let points = latency_curve(&curve.spec, &curve.rates, &rs)
                        .expect("figure curves use validated configurations");
                    FigureResult { label: curve.label.clone(), spec: curve.spec, points }
                }),
            ));
        }
        for (i, h) in handles {
            results[i] = Some(h.join().expect("curve thread panicked"));
        }
    });
    results.into_iter().map(|r| r.expect("filled")).collect()
}

/// Print a figure's CSV (stdout) with `#` summary lines.
pub fn print_figure(title: &str, results: &[FigureResult]) {
    println!("# {title}");
    println!(
        "curve,rate,unicast_mean,bcast_reception_mean,bcast_completion_mean,throughput,saturated"
    );
    for r in results {
        for p in &r.points {
            println!(
                "{},{:.5},{:.2},{:.2},{:.2},{:.5},{}",
                r.label,
                p.rate,
                p.result.unicast_mean,
                p.result.bcast_reception_mean,
                p.result.bcast_completion_mean,
                p.result.throughput,
                p.result.saturated
            );
        }
    }
    println!("#");
    println!("# summary (per curve): zero-load unicast / zero-load broadcast completion / max sustainable rate");
    for r in results {
        println!(
            "#   {:<28} {:>8.1} / {:>8.1} / {}",
            r.label,
            r.base_unicast_latency().unwrap_or(f64::NAN),
            r.base_broadcast_latency().unwrap_or(f64::NAN),
            r.sustainable_rate()
                .map_or_else(|| "saturated everywhere".into(), |v| format!("{v:.4}")),
        );
    }
}

/// Geometrically spaced rates re-exported for the binaries.
pub fn rates(lo: f64, hi: f64, steps: usize) -> Vec<f64> {
    quarc_sim::geometric_rates(lo, hi, steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_runs_in_parallel_and_orders_results() {
        let curves = vec![
            FigureCurve::new(TopologyKind::Quarc, 8, 4, 0.0, vec![0.005, 0.01], 1),
            FigureCurve::new(TopologyKind::Spidergon, 8, 4, 0.0, vec![0.005, 0.01], 1),
        ];
        let rs = RunSpec { warmup: 100, measure: 1_000, drain: 2_000, ..Default::default() };
        let results = run_figure(curves, &rs);
        assert_eq!(results.len(), 2);
        assert!(results[0].label.starts_with("quarc"));
        assert!(results[1].label.starts_with("spidergon"));
        assert!(results[0].points.len() == 2);
        assert!(results[0].base_unicast_latency().unwrap() > 0.0);
    }

    #[test]
    fn sustainable_rate_reflects_saturation() {
        let curves =
            vec![FigureCurve::new(TopologyKind::Quarc, 8, 8, 0.0, vec![0.005, 0.6, 0.7], 2)];
        let rs = RunSpec { warmup: 100, measure: 1_000, drain: 1_000, ..Default::default() };
        let results = run_figure(curves, &rs);
        let sus = results[0].sustainable_rate().unwrap();
        assert!(sus < 0.1, "sustainable {sus}");
    }
}
