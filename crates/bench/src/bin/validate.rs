//! Simulator validation against the analytical models, mirroring the paper's
//! §3.2 ("The simulator has been verified extensively against analytical
//! models for the Spidergon and mesh topologies employing wormhole
//! routing"). We validate against Spidergon, Quarc *and* mesh models at
//! 10/20/30% of the analytic link-capacity bound — the regime where the
//! M/G/1 independence assumptions hold. (The bound itself is a capacity
//! *ceiling*: a physical router that moves one flit per input port per cycle
//! saturates at roughly 35–45% of raw wire capacity, so higher fractions sit
//! past the simulator's knee by design.)
//!
//! ```text
//! cargo run -p quarc-bench --bin validate --release
//! ```

use quarc_analytical as ana;
use quarc_core::config::NocConfig;
use quarc_core::topology::MeshTopology;
use quarc_sim::{run, RunSpec};

fn main() {
    println!("# Simulator-vs-analytical validation (uniform unicast traffic)");
    println!("topology,n,m,rate,sim_latency,model_latency,rel_err");
    let spec = RunSpec { warmup: 3_000, measure: 30_000, drain: 40_000, ..Default::default() };

    for (n, m) in [(16usize, 8usize), (16, 16), (32, 16)] {
        let sat = ana::spidergon_saturation_rate(n, m);
        for frac in [0.1, 0.2, 0.3] {
            let rate = sat * frac;

            // Quarc.
            let mut net = quarc_sim::QuarcNetwork::new(NocConfig::quarc(n));
            let mut wl = quarc_workloads::Synthetic::new(
                n,
                quarc_workloads::SyntheticConfig::paper(rate, m, 0.0, 11),
            );
            let res = run(&mut net, &mut wl, &spec);
            let model = ana::quarc_unicast_latency(n, m, rate).unwrap_or(f64::NAN);
            print_row("quarc", n, m, rate, res.unicast_mean, model);

            // Spidergon.
            let mut net = quarc_sim::SpidergonNetwork::new(NocConfig::spidergon(n));
            let mut wl = quarc_workloads::Synthetic::new(
                n,
                quarc_workloads::SyntheticConfig::paper(rate, m, 0.0, 12),
            );
            let res = run(&mut net, &mut wl, &spec);
            let model = ana::spidergon_unicast_latency(n, m, rate).unwrap_or(f64::NAN);
            print_row("spidergon", n, m, rate, res.unicast_mean, model);
        }
    }

    // Mesh validation (XY routing).
    for (n, m) in [(16usize, 8usize), (16, 16)] {
        for rate in [0.005, 0.01, 0.02] {
            let mut cfg = NocConfig::mesh(n);
            cfg.vcs = 1;
            let mut net = quarc_sim::mesh_net::MeshNetwork::new(cfg);
            let mut wl = quarc_workloads::Synthetic::new(
                n,
                quarc_workloads::SyntheticConfig::paper(rate, m, 0.0, 13),
            );
            let res = run(&mut net, &mut wl, &spec);
            let topo = MeshTopology::square(n);
            let model = ana::mesh_unicast_latency(&topo, m, rate).unwrap_or(f64::NAN);
            print_row("mesh", n, m, rate, res.unicast_mean, model);
        }
    }

    println!("#");
    println!("# zero-load broadcast formulas vs paper shape:");
    for (n, m) in [(16usize, 8usize), (64, 16)] {
        let q = ana::quarc_broadcast_zero_load(n, m);
        let s = ana::spidergon_broadcast_zero_load(n, m);
        println!("# n={n} m={m}: quarc {q:.0}, spidergon {s:.0}, ratio {:.1}x", s / q);
    }
}

fn print_row(topo: &str, n: usize, m: usize, rate: f64, sim: f64, model: f64) {
    let rel = if model.is_finite() && model > 0.0 { (sim - model).abs() / model } else { f64::NAN };
    println!("{topo},{n},{m},{rate:.5},{sim:.2},{model:.2},{rel:.3}");
}
