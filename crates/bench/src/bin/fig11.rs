//! Regenerates **Fig. 11**: average latency vs message rate for N = 64,
//! M = 16, broadcast rate β ∈ {0%, 5%, 10%}, Quarc vs Spidergon.
//!
//! ```text
//! cargo run -p quarc-bench --bin fig11 --release
//! ```

use quarc_bench::figures::{print_figure, rates, run_figure, FigureCurve};
use quarc_core::topology::TopologyKind;
use quarc_sim::RunSpec;

fn main() {
    let n = 64;
    let m = 16;
    let hi = quarc_analytical::quarc_saturation_rate(n, m) * 1.1;
    let r = rates(hi / 40.0, hi, 10);
    let mut curves = Vec::new();
    for beta in [0.0, 0.05, 0.10] {
        for kind in [TopologyKind::Quarc, TopologyKind::Spidergon] {
            curves.push(FigureCurve::new(
                kind,
                n,
                m,
                beta,
                r.clone(),
                50 + (beta * 100.0) as u64,
            ));
        }
    }
    let results = run_figure(curves, &RunSpec::default());
    print_figure("Fig. 11: N=64, M=16, beta in {0,5,10}%", &results);
}
