//! Regenerates **Fig. 11**: average latency vs message rate for N = 64,
//! M = 16, broadcast rate β ∈ {0%, 5%, 10%}, Quarc vs Spidergon.
//!
//! A thin wrapper over the `fig11` campaign preset: points run in parallel
//! with replication confidence intervals, and the CSV goes to stdout (use
//! the `campaign` binary for caching and JSON artifacts).
//!
//! ```text
//! cargo run -p quarc-bench --bin fig11 --release
//! ```

use quarc_bench::presets;
use quarc_campaign::{run_campaign, CampaignOptions};

fn main() {
    let spec = presets::fig11();
    let report = run_campaign(&spec, &CampaignOptions { quiet: true, ..Default::default() })
        .expect("fig11 campaign");
    println!("# Fig. 11: N=64, M=16, beta in {{0,5,10}}% ({} workers)", report.workers);
    print!("{}", report.csv());
}
