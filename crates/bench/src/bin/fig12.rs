//! Regenerates **Fig. 12**: slice-count comparison of the Quarc and
//! Spidergon switches at 16/32/64-bit datapath widths.
//!
//! ```text
//! cargo run -p quarc-bench --bin fig12 --release
//! ```

use quarc_area::fig12_series;

fn main() {
    println!("# Fig. 12: cost comparison between Quarc and Spidergon switches");
    println!("width_bits,quarc_slices,spidergon_slices,quarc_over_spidergon");
    for (w, q, s) in fig12_series() {
        println!("{w},{q:.0},{s:.0},{:.3}", q / s);
    }
    println!("#");
    println!("# shape check: Quarc < Spidergon at every width; both grow sub-linearly in width");
    let series = fig12_series();
    let ok = series.iter().all(|(_, q, s)| q < s);
    println!("# quarc_smaller_everywhere = {ok}");
}
