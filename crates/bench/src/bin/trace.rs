//! `trace` — capture a flit-event trace and emit Chrome trace-event JSON.
//!
//! Runs one (topology, n, rate, β) point with the [`SimProbe`] flit tracer
//! on and writes the ring's contents in the Chrome trace-event object form,
//! loadable directly in `chrome://tracing` or Perfetto: one instant event
//! per inject / hop / clone-at-branch / deliver, `ts` = cycle, `tid` = node,
//! per-message detail in `args`. The ring is bounded — at capacity the
//! oldest events are overwritten (and counted), so a long run yields the
//! *last* `capacity` events, which is what a "why is it still saturated"
//! investigation wants.
//!
//! ```text
//! trace [--topology T] [--n N] [--rate R] [--beta B] [--cycles C]
//!       [--capacity CAP] [--out PATH]
//! trace --validate PATH
//! ```
//!
//! `--validate` parses an existing trace artifact and checks the shape the
//! CI smoke job relies on — valid JSON, a `traceEvents` array with a
//! `process_name` metadata record first and at least one instant event, and
//! `ph`/`ts`/`pid`/`tid` on every event — exiting non-zero on any problem.

use quarc_campaign::Json;
use quarc_core::config::NocConfig;
use quarc_core::topology::TopologyKind;
use quarc_sim::{build_any, MonoStep, NocSim, ProbeConfig};
use quarc_workloads::{Synthetic, SyntheticConfig};

const USAGE: &str = "usage: trace [--topology quarc|spidergon|mesh|torus] [--n N] [--rate R] \
     [--beta B] [--cycles C] [--capacity CAP] [--out PATH] | trace --validate PATH";

/// Check the Chrome trace-event shape. Returns (metadata records, instant
/// events) or a description of the first problem found.
fn validate(text: &str) -> Result<(usize, usize), String> {
    let doc = Json::parse(text).map_err(|e| format!("not valid JSON: {e:?}"))?;
    if doc.get("displayTimeUnit").and_then(Json::as_str).is_none() {
        return Err("missing `displayTimeUnit`".into());
    }
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing `traceEvents` array".to_string())?;
    if events.is_empty() {
        return Err("`traceEvents` is empty".into());
    }
    let mut meta = 0usize;
    let mut instants = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let ph =
            ev.get("ph").and_then(Json::as_str).ok_or_else(|| format!("event {i} lacks `ph`"))?;
        for key in ["ts", "pid", "tid"] {
            if ev.get(key).and_then(Json::as_u64).is_none() {
                return Err(format!("event {i} lacks numeric `{key}`"));
            }
        }
        if ev.get("name").and_then(Json::as_str).is_none() {
            return Err(format!("event {i} lacks `name`"));
        }
        match ph {
            "M" => meta += 1,
            "i" => instants += 1,
            other => return Err(format!("event {i} has unexpected phase `{other}`")),
        }
    }
    if meta == 0 {
        return Err("no process_name metadata record".into());
    }
    if instants == 0 {
        return Err("no flit events captured (all records are metadata)".into());
    }
    Ok((meta, instants))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut topology = TopologyKind::Quarc;
    let mut n: usize = 16;
    let mut rate: f64 = 0.05;
    let mut beta: f64 = 0.05;
    let mut cycles: u64 = 2_000;
    let mut capacity: usize = 1 << 16;
    let mut out = String::from("trace.json");
    let mut validate_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut next = |flag: &str| it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match a.as_str() {
            "--topology" => {
                topology = match next("--topology").as_str() {
                    "quarc" => TopologyKind::Quarc,
                    "spidergon" => TopologyKind::Spidergon,
                    "mesh" => TopologyKind::Mesh,
                    "torus" => TopologyKind::Torus,
                    other => panic!("unknown topology {other}"),
                }
            }
            "--n" => n = next("--n").parse().expect("--n must be an integer"),
            "--rate" => rate = next("--rate").parse().expect("--rate must be a number"),
            "--beta" => beta = next("--beta").parse().expect("--beta must be a number"),
            "--cycles" => cycles = next("--cycles").parse().expect("--cycles must be an integer"),
            "--capacity" => {
                capacity = next("--capacity").parse().expect("--capacity must be an integer")
            }
            "--out" => out = next("--out").clone(),
            "--validate" => validate_path = Some(next("--validate").clone()),
            other => {
                eprintln!("unknown argument {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = validate_path {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        match validate(&text) {
            Ok((meta, instants)) => {
                println!("# {path}: OK ({meta} metadata record(s), {instants} flit events)")
            }
            Err(why) => {
                eprintln!("{path}: MALFORMED: {why}");
                std::process::exit(1);
            }
        }
        return;
    }

    assert!(capacity > 0, "--capacity must be positive (0 disables tracing)");
    let mut net = build_any(NocConfig { kind: topology, n, ..Default::default() });
    let nodes = net.num_nodes();
    net.probe_mut().configure(ProbeConfig { trace_capacity: capacity, ..ProbeConfig::off() });
    let mut wl = Synthetic::new(nodes, SyntheticConfig::paper(rate, 8, beta, 0xBE7C));
    for _ in 0..cycles {
        net.step_mono(&mut wl);
    }
    let probe = net.probe();
    let captured = probe.events().count();
    let label = format!("{topology} n={nodes} rate={rate} beta={beta}");
    std::fs::write(&out, probe.chrome_trace_json(&label))
        .unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!(
        "# {out}: {captured} events over {cycles} cycles ({} overwritten at capacity {capacity})",
        probe.events_dropped()
    );
    println!("# load in chrome://tracing or https://ui.perfetto.dev");
}
