//! A command-line front end for one-off simulations: pick a topology, size,
//! workload and load, get the run summary as CSV.
//!
//! ```text
//! cargo run -p quarc-bench --bin simulate --release -- \
//!     --topology quarc --nodes 32 --rate 0.01 --msg-len 16 --beta 0.05 \
//!     --warmup 2000 --measure 20000 --seed 7
//! ```
//!
//! Flags (all optional): `--topology quarc|spidergon|mesh|torus`,
//! `--nodes N`, `--rate R`, `--msg-len M`, `--beta B`, `--pattern
//! uniform|complement|neighbour|bit-reversal`, `--buffer-depth D`,
//! `--warmup C`, `--measure C`, `--seed S`.

use quarc_core::config::NocConfig;
use quarc_sim::driver::NocSim;
use quarc_sim::mesh_net::MeshNetwork;
use quarc_sim::torus_net::TorusNetwork;
use quarc_sim::{run, QuarcNetwork, RunResult, RunSpec, SpidergonNetwork};
use quarc_workloads::{Pattern, Synthetic, SyntheticConfig};

#[derive(Debug)]
struct Args {
    topology: String,
    nodes: usize,
    rate: f64,
    msg_len: usize,
    beta: f64,
    pattern: Pattern,
    buffer_depth: usize,
    warmup: u64,
    measure: u64,
    seed: u64,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            topology: "quarc".into(),
            nodes: 16,
            rate: 0.01,
            msg_len: 8,
            beta: 0.0,
            pattern: Pattern::Uniform,
            buffer_depth: 4,
            warmup: 2_000,
            measure: 20_000,
            seed: 1,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: simulate [--topology quarc|spidergon|mesh|torus] [--nodes N] \
         [--rate R] [--msg-len M] [--beta B] [--pattern P] [--buffer-depth D] \
         [--warmup C] [--measure C] [--seed S]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let Some(value) = it.next() else { usage() };
        let ok = match flag.as_str() {
            "--topology" => {
                args.topology = value;
                true
            }
            "--nodes" => value.parse().map(|v| args.nodes = v).is_ok(),
            "--rate" => value.parse().map(|v| args.rate = v).is_ok(),
            "--msg-len" => value.parse().map(|v| args.msg_len = v).is_ok(),
            "--beta" => value.parse().map(|v| args.beta = v).is_ok(),
            "--buffer-depth" => value.parse().map(|v| args.buffer_depth = v).is_ok(),
            "--warmup" => value.parse().map(|v| args.warmup = v).is_ok(),
            "--measure" => value.parse().map(|v| args.measure = v).is_ok(),
            "--seed" => value.parse().map(|v| args.seed = v).is_ok(),
            "--pattern" => {
                args.pattern = match value.as_str() {
                    "uniform" => Pattern::Uniform,
                    "complement" => Pattern::Complement,
                    "neighbour" | "neighbor" => Pattern::Neighbour,
                    "bit-reversal" => Pattern::BitReversal,
                    _ => usage(),
                };
                true
            }
            _ => usage(),
        };
        if !ok {
            usage()
        }
    }
    args
}

fn main() {
    let a = parse_args();
    let spec = RunSpec {
        warmup: a.warmup,
        measure: a.measure,
        drain: 2 * a.measure,
        ..Default::default()
    };
    let wl_cfg = SyntheticConfig {
        rate: a.rate,
        msg_len: a.msg_len,
        broadcast_frac: a.beta,
        pattern: a.pattern,
        seed: a.seed,
    };

    let result: RunResult = match a.topology.as_str() {
        "quarc" => {
            let cfg = NocConfig::quarc(a.nodes).with_buffer_depth(a.buffer_depth);
            let mut net = QuarcNetwork::new(cfg);
            let mut wl = Synthetic::new(a.nodes, wl_cfg);
            run(&mut net, &mut wl, &spec)
        }
        "spidergon" => {
            let cfg = NocConfig::spidergon(a.nodes).with_buffer_depth(a.buffer_depth);
            let mut net = SpidergonNetwork::new(cfg);
            let mut wl = Synthetic::new(a.nodes, wl_cfg);
            run(&mut net, &mut wl, &spec)
        }
        "mesh" => {
            let mut cfg = NocConfig::mesh(a.nodes).with_buffer_depth(a.buffer_depth);
            cfg.vcs = 1;
            let mut net = MeshNetwork::new(cfg);
            let mut wl = Synthetic::new(net.num_nodes(), wl_cfg);
            run(&mut net, &mut wl, &spec)
        }
        "torus" => {
            let cfg = NocConfig::torus(a.nodes).with_buffer_depth(a.buffer_depth);
            let mut net = TorusNetwork::new(cfg);
            let mut wl = Synthetic::new(net.num_nodes(), wl_cfg);
            run(&mut net, &mut wl, &spec)
        }
        _ => usage(),
    };

    println!("{}", RunResult::csv_header());
    println!("{}", result.csv_row());
}
