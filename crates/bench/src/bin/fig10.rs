//! Regenerates **Fig. 10**: average latency vs message rate for M = 16,
//! β = 10%, network size N ∈ {16, 32, 64}, Quarc vs Spidergon.
//!
//! A thin wrapper over the `fig10` campaign preset: points run in parallel
//! with replication confidence intervals, and the CSV goes to stdout (use
//! the `campaign` binary for caching and JSON artifacts).
//!
//! ```text
//! cargo run -p quarc-bench --bin fig10 --release
//! ```

use quarc_bench::presets;
use quarc_campaign::{run_campaign, CampaignOptions};

fn main() {
    let spec = presets::fig10();
    let report = run_campaign(&spec, &CampaignOptions { quiet: true, ..Default::default() })
        .expect("fig10 campaign");
    println!("# Fig. 10: M=16, beta=10%, N in {{16,32,64}} ({} workers)", report.workers);
    print!("{}", report.csv());
}
