//! Regenerates **Fig. 10**: average latency vs message rate for M = 16,
//! β = 10%, network size N ∈ {16, 32, 64}, Quarc vs Spidergon.
//!
//! ```text
//! cargo run -p quarc-bench --bin fig10 --release
//! ```

use quarc_bench::figures::{print_figure, rates, run_figure, FigureCurve};
use quarc_core::topology::TopologyKind;
use quarc_sim::RunSpec;

fn main() {
    let m = 16;
    let beta = 0.10;
    let mut curves = Vec::new();
    for n in [16usize, 32, 64] {
        let hi = quarc_analytical::quarc_saturation_rate(n, m) * 1.1;
        let r = rates(hi / 40.0, hi, 10);
        for kind in [TopologyKind::Quarc, TopologyKind::Spidergon] {
            curves.push(FigureCurve::new(kind, n, m, beta, r.clone(), 70 + n as u64));
        }
    }
    let results = run_figure(curves, &RunSpec::default());
    print_figure("Fig. 10: M=16, beta=10%, N in {16,32,64}", &results);
}
