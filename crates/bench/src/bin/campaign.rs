//! The campaign CLI: run whole experiment grids — the paper's Figs. 9–11 in
//! one command — in parallel, with replication confidence intervals, an
//! on-disk result cache and JSON/CSV artifacts.
//!
//! ```text
//! # the paper's full figure grid, all cores, cached under ./campaign-out
//! cargo run --release -p quarc-bench --bin campaign -- --preset paper
//!
//! # a custom grid
//! cargo run --release -p quarc-bench --bin campaign -- \
//!     --topologies quarc,spidergon --sizes 16,32 --msg-lens 16 \
//!     --betas 0,0.05 --rates geom:0.002:0.05:8 --replications 3
//!
//! # adaptive saturation search instead of a fixed rate grid
//! cargo run --release -p quarc-bench --bin campaign -- \
//!     --topologies quarc,spidergon --sizes 64 --rates sat:0.05:24
//! ```

use quarc_bench::presets;
use quarc_campaign::{
    run_campaign, CampaignOptions, CampaignSpec, CiTarget, Converged, Convergence,
    PointOutcomeKind, RateAxis,
};
use quarc_core::config::{ArbPolicy, FaultPlan, RecoveryPolicy};
use quarc_core::topology::TopologyKind;
use quarc_sim::RunSpec;
use std::path::PathBuf;
use std::process::exit;
use std::time::Duration;

const USAGE: &str = "\
campaign — parallel, deterministic experiment campaigns for the Quarc NoC

USAGE:
    campaign [--preset NAME | AXIS FLAGS...] [OPTIONS]

PRESETS (repeatable; `paper` = fig9 + fig10 + fig11):
    --preset NAME             one of: fig9, fig10, fig11, ablation-buffer,
                              ablation-link, ablation-beta, ablation-arb,
                              scale, frontier, robustness, paper

AXIS FLAGS (build a custom grid; ignored when --preset is given):
    --name NAME               campaign/artifact name        [default: custom]
    --topologies LIST         quarc,spidergon,mesh,torus    [default: quarc,spidergon]
    --sizes LIST              node counts                   [default: 16]
    --msg-lens LIST           message lengths M in flits    [default: 16]
    --betas LIST              broadcast fractions           [default: 0.05]
    --buffer-depths LIST      flits per VC lane             [default: 4]
    --link-latencies LIST     cycles per link               [default: 1]
    --arbs LIST               rr,fp (output arbitration)    [default: rr]
    --rates SPEC              rate axis:
                                list:R1,R2,...              explicit rates
                                geom:LO:HI:STEPS            geometric sweep
                                auto:SPAN:LODIV:STEPS       geometric sweep anchored
                                                            to the analytic bound
                                sat:RELTOL:MAXPROBES        adaptive saturation search
                              [default: auto:1.1:40:10]
    --replications K          seeds merged per point        [default: 2]
                              (the starting count under --converge)
    --converge SPEC           convergence control: grow replications until
                              every metric's 95% CI half-width meets the
                              target, then stop:
                                rel:R                       half-width <= R x mean
                                abs:W                       half-width <= W
    --max-reps N              replication cap under --converge [default: 64]
    --fault SPEC              fault-plan axis entry (repeatable; any --fault
                              replaces the default healthy plan, so include
                              `none` for a healthy baseline):
                                none                        the empty plan
                                k=v,k=v,...                 with keys:
                                  seed=S onset=C dead=N frozen=N
                                  lossy=N p64k=P (drop prob in 1/65536)
                                  transient=N window=C
    --recovery SPEC           recovery-policy axis entry (repeatable; any
                              --recovery replaces the default best-effort
                              policy, so include `none` for an off baseline):
                                none                        best-effort delivery
                                k=v,k=v,...                 with keys:
                                  timeout=C (ack timeout, cycles; required)
                                  retries=N jitter=C seed=S
    --seed S                  master seed                   [default: 2009]
    --warmup C / --measure C / --drain C
                              run protocol                  [default: 2000/20000/30000]
    --stall-window C          watchdog: cut a run off after C cycles with
                              pending traffic and no progress (0 disarms)
                              [default: 10000]
    --quick                   short protocol (500/4000/8000) for smoke runs

OPTIONS:
    --workers N               worker threads (0 = all cores) [default: 0]
    --batch-reps K            replications simulated per convergence batch
                              (execution knob; cannot change results) [default: 4]
    --out DIR                 artifact directory             [default: campaign-out]
    --cache DIR               result-cache directory         [default: <out>/cache]
    --no-cache                disable the result cache
    --point-timeout SECS      fail-soft wall-clock budget per point: a point
                              over budget is quarantined as `failed` and the
                              campaign carries on (execution knob; a budget
                              every point fits inside cannot change results)
    --force                   re-simulate even on cache hits (results cannot change)
    --quiet                   no per-point progress on stderr
    --help                    this text

Results are a pure function of the grid definition: worker count, caching,
batch size and scheduling cannot change a single number (see quarc-campaign
docs). Cached replication series are upgradeable: a later run that needs
more replications (higher --replications, or --converge with a still-too-
wide CI) resumes the stored series and simulates only the missing tail.
";

fn usage_error(msg: &str) -> ! {
    eprintln!("campaign: {msg}\n\n{USAGE}");
    exit(2)
}

fn parse_list<T: std::str::FromStr>(flag: &str, value: &str) -> Vec<T> {
    value
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.trim().parse().unwrap_or_else(|_| usage_error(&format!("bad value {s:?} in {flag}")))
        })
        .collect()
}

fn parse_topologies(value: &str) -> Vec<TopologyKind> {
    value
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| match s.trim() {
            "quarc" => TopologyKind::Quarc,
            "spidergon" => TopologyKind::Spidergon,
            "mesh" => TopologyKind::Mesh,
            "torus" => TopologyKind::Torus,
            other => usage_error(&format!("unknown topology {other:?}")),
        })
        .collect()
}

fn parse_arbs(value: &str) -> Vec<ArbPolicy> {
    value
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| match s.trim() {
            "rr" | "round-robin" => ArbPolicy::RoundRobin,
            "fp" | "fixed-priority" => ArbPolicy::FixedPriority,
            other => usage_error(&format!("unknown arbitration policy {other:?}")),
        })
        .collect()
}

fn parse_converge(value: &str) -> CiTarget {
    fn bad(value: &str) -> ! {
        usage_error(&format!("bad --converge spec {value:?} (want rel:R or abs:W)"))
    }
    match value.split_once(':') {
        Some(("rel", r)) => CiTarget::Rel(r.parse().unwrap_or_else(|_| bad(value))),
        Some(("abs", w)) => CiTarget::Abs(w.parse().unwrap_or_else(|_| bad(value))),
        _ => bad(value),
    }
}

fn parse_rates(value: &str) -> RateAxis {
    let parts: Vec<&str> = value.split(':').collect();
    fn num(value: &str, s: &str) -> f64 {
        s.parse().unwrap_or_else(|_| usage_error(&format!("bad --rates spec {value:?}")))
    }
    fn int(value: &str, s: &str) -> usize {
        s.parse().unwrap_or_else(|_| usage_error(&format!("bad --rates spec {value:?}")))
    }
    match parts.as_slice() {
        ["list", rates] => RateAxis::Explicit(parse_list("--rates", rates)),
        ["geom", lo, hi, steps] => {
            RateAxis::Geometric { lo: num(value, lo), hi: num(value, hi), steps: int(value, steps) }
        }
        ["auto", span, lo_div, steps] => RateAxis::AutoGeometric {
            span: num(value, span),
            lo_div: num(value, lo_div),
            steps: int(value, steps),
        },
        ["sat", rel_tol, max_probes] => RateAxis::Saturation {
            rel_tol: num(value, rel_tol),
            max_probes: int(value, max_probes) as u32,
        },
        _ => usage_error(&format!("bad --rates spec {value:?}")),
    }
}

fn parse_fault(value: &str) -> FaultPlan {
    if value == "none" {
        return FaultPlan::NONE;
    }
    let mut plan = FaultPlan::NONE;
    for pair in value.split(',').filter(|s| !s.is_empty()) {
        let Some((key, v)) = pair.split_once('=') else {
            usage_error(&format!("bad --fault entry {pair:?} (want key=value)"));
        };
        fn num<T: std::str::FromStr>(pair: &str, v: &str) -> T {
            v.parse().unwrap_or_else(|_| usage_error(&format!("bad --fault value in {pair:?}")))
        }
        match key.trim() {
            "seed" => plan.seed = num(pair, v),
            "onset" => plan.onset = num(pair, v),
            "dead" => plan.dead_links = num(pair, v),
            "frozen" => plan.frozen_routers = num(pair, v),
            "lossy" => plan.lossy_links = num(pair, v),
            "p64k" => plan.drop_per_64k = num(pair, v),
            "transient" => plan.transient_links = num(pair, v),
            "window" => plan.transient_cycles = num(pair, v),
            other => usage_error(&format!("unknown --fault key {other:?}")),
        }
    }
    if let Err(e) = plan.validate() {
        usage_error(&format!("bad --fault spec {value:?}: {e}"));
    }
    plan
}

fn parse_recovery(value: &str) -> RecoveryPolicy {
    if value == "none" {
        return RecoveryPolicy::NONE;
    }
    let mut policy = RecoveryPolicy::NONE;
    for pair in value.split(',').filter(|s| !s.is_empty()) {
        let Some((key, v)) = pair.split_once('=') else {
            usage_error(&format!("bad --recovery entry {pair:?} (want key=value)"));
        };
        fn num<T: std::str::FromStr>(pair: &str, v: &str) -> T {
            v.parse().unwrap_or_else(|_| usage_error(&format!("bad --recovery value in {pair:?}")))
        }
        match key.trim() {
            "seed" => policy.seed = num(pair, v),
            "timeout" => policy.ack_timeout = num(pair, v),
            "retries" => policy.max_retries = num(pair, v),
            "jitter" => policy.jitter = num(pair, v),
            other => usage_error(&format!("unknown --recovery key {other:?}")),
        }
    }
    if let Err(e) = policy.validate() {
        usage_error(&format!("bad --recovery spec {value:?}: {e}"));
    }
    policy
}

struct Cli {
    specs: Vec<CampaignSpec>,
    opts: CampaignOptions,
    out_dir: PathBuf,
    no_cache: bool,
    cache_dir: Option<PathBuf>,
}

fn parse_cli() -> Cli {
    let mut presets_requested: Vec<String> = Vec::new();
    let mut custom = CampaignSpec::new("custom");
    custom.msg_lens = vec![16];
    let mut custom_touched = false;
    let mut opts = CampaignOptions::default();
    let mut out_dir = PathBuf::from("campaign-out");
    let mut cache_dir: Option<PathBuf> = None;
    let mut no_cache = false;
    let mut quick = false;
    let mut run_overrides: Vec<(&'static str, u64)> = Vec::new();
    let mut converge_target: Option<CiTarget> = None;
    let mut max_reps: Option<u32> = None;
    let mut fault_axis: Vec<FaultPlan> = Vec::new();
    let mut recovery_axis: Vec<RecoveryPolicy> = Vec::new();

    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            println!("{USAGE}");
            exit(0);
        }
        if flag == "--quick" {
            quick = true;
            continue;
        }
        if flag == "--force" {
            opts.force = true;
            continue;
        }
        if flag == "--quiet" {
            opts.quiet = true;
            continue;
        }
        if flag == "--no-cache" {
            no_cache = true;
            continue;
        }
        let Some(value) = it.next() else {
            usage_error(&format!("flag {flag} needs a value"));
        };
        match flag.as_str() {
            "--preset" => presets_requested.push(value),
            "--name" => {
                custom.name = value;
                custom_touched = true;
            }
            "--topologies" => {
                custom.topologies = parse_topologies(&value);
                custom_touched = true;
            }
            "--sizes" => {
                custom.sizes = parse_list("--sizes", &value);
                custom_touched = true;
            }
            "--msg-lens" => {
                custom.msg_lens = parse_list("--msg-lens", &value);
                custom_touched = true;
            }
            "--betas" => {
                custom.betas = parse_list("--betas", &value);
                custom_touched = true;
            }
            "--buffer-depths" => {
                custom.buffer_depths = parse_list("--buffer-depths", &value);
                custom_touched = true;
            }
            "--link-latencies" => {
                custom.link_latencies = parse_list("--link-latencies", &value);
                custom_touched = true;
            }
            "--arbs" => {
                custom.arbs = parse_arbs(&value);
                custom_touched = true;
            }
            "--rates" => {
                custom.rates = parse_rates(&value);
                custom_touched = true;
            }
            "--fault" => {
                fault_axis.push(parse_fault(&value));
                custom_touched = true;
            }
            "--recovery" => {
                recovery_axis.push(parse_recovery(&value));
                custom_touched = true;
            }
            "--replications" => {
                custom.replications =
                    value.parse().unwrap_or_else(|_| usage_error("bad --replications"));
                custom_touched = true;
            }
            "--converge" => {
                converge_target = Some(parse_converge(&value));
                custom_touched = true;
            }
            "--max-reps" => {
                max_reps = Some(value.parse().unwrap_or_else(|_| usage_error("bad --max-reps")));
                custom_touched = true;
            }
            "--batch-reps" => {
                opts.batch_reps = value.parse().unwrap_or_else(|_| usage_error("bad --batch-reps"));
            }
            "--seed" => {
                custom.base_seed = value.parse().unwrap_or_else(|_| usage_error("bad --seed"));
                custom_touched = true;
            }
            "--warmup" | "--measure" | "--drain" | "--stall-window" => {
                let cycles = value.parse().unwrap_or_else(|_| usage_error(&format!("bad {flag}")));
                run_overrides.push((
                    match flag.as_str() {
                        "--warmup" => "warmup",
                        "--measure" => "measure",
                        "--stall-window" => "stall_window",
                        _ => "drain",
                    },
                    cycles,
                ));
            }
            "--point-timeout" => {
                let secs: f64 =
                    value.parse().unwrap_or_else(|_| usage_error("bad --point-timeout"));
                if !secs.is_finite() || secs <= 0.0 {
                    usage_error("bad --point-timeout");
                }
                opts.point_timeout = Some(Duration::from_secs_f64(secs));
            }
            "--workers" => {
                opts.workers = value.parse().unwrap_or_else(|_| usage_error("bad --workers"));
            }
            "--out" => out_dir = PathBuf::from(value),
            "--cache" => cache_dir = Some(PathBuf::from(value)),
            other => usage_error(&format!("unknown flag {other}")),
        }
    }

    if !fault_axis.is_empty() {
        custom.faults = fault_axis;
    }
    if !recovery_axis.is_empty() {
        custom.recoveries = recovery_axis;
    }

    match (converge_target, max_reps) {
        (Some(target), max) => {
            custom.convergence = Some(Convergence { target, max_reps: max.unwrap_or(64) });
        }
        (None, Some(_)) => usage_error("--max-reps requires --converge"),
        (None, None) => {}
    }

    let mut specs: Vec<CampaignSpec> = Vec::new();
    if presets_requested.is_empty() {
        specs.push(custom);
    } else {
        if custom_touched {
            usage_error("--preset cannot be combined with custom axis flags");
        }
        for name in &presets_requested {
            if name == "paper" {
                specs.extend(presets::paper());
            } else {
                match presets::by_name(name) {
                    Some(spec) => specs.push(spec),
                    None => usage_error(&format!(
                        "unknown preset {name:?} (expected one of {})",
                        presets::PRESET_NAMES.join(", ")
                    )),
                }
            }
        }
    }

    for spec in &mut specs {
        if quick {
            spec.run = RunSpec::quick();
        }
        for &(field, cycles) in &run_overrides {
            match field {
                "warmup" => spec.run.warmup = cycles,
                "measure" => spec.run.measure = cycles,
                "stall_window" => spec.run.stall_window = cycles,
                _ => spec.run.drain = cycles,
            }
        }
    }

    Cli { specs, opts, out_dir, no_cache, cache_dir }
}

fn main() {
    let cli = parse_cli();
    let cache_dir = if cli.no_cache {
        None
    } else {
        Some(cli.cache_dir.clone().unwrap_or_else(|| cli.out_dir.join("cache")))
    };

    let mut grand_executed = 0;
    let mut grand_cached = 0;
    let mut grand_quarantined = 0;
    for spec in &cli.specs {
        let opts = CampaignOptions {
            cache_dir: cache_dir.clone(),
            out_dir: Some(cli.out_dir.clone()),
            ..cli.opts.clone()
        };
        let report = match run_campaign(spec, &opts) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("campaign {:?}: {e}", spec.name);
                exit(1);
            }
        };
        grand_executed += report.executed;
        grand_cached += report.from_cache;

        println!(
            "# campaign {}: {} points ({} simulated, {} from cache; {} reps run, {} cached reps reused) on {} workers in {:.1}s",
            spec.name,
            report.results.len(),
            report.executed,
            report.from_cache,
            report.reps_simulated,
            report.reps_cached,
            report.workers,
            report.wall.as_secs_f64(),
        );
        // Execution telemetry: cache traffic and pool utilization. The same
        // numbers land in <name>.telemetry.json (never in the pure
        // campaign artifacts).
        let topups = report.topups();
        println!(
            "#   cache: {} hit(s), {} miss(es), {} top-up(s)",
            report.from_cache,
            report.executed - topups,
            topups,
        );
        for (w, s) in report.worker_stats.iter().enumerate() {
            println!(
                "#   worker {w}: {:>3.0}% busy, {} step(s), {} stolen",
                s.busy_fraction() * 100.0,
                s.steps,
                s.steals,
            );
        }
        if let Some(slowest) = report.point_telemetry.iter().max_by(|a, b| a.wall.cmp(&b.wall)) {
            println!(
                "#   slowest point: {} ({:.2}s, {} rep(s) simulated)",
                slowest.label,
                slowest.wall.as_secs_f64(),
                slowest.simulated_reps,
            );
        }
        for s in &report.skipped {
            println!("#   skipped: {s}");
        }
        for path in &report.artifacts {
            println!("#   wrote {}", path.display());
        }
        // Fail-soft summary: quarantined points are structured artifact
        // entries, not fatal errors — the campaign still exits 0, every
        // healthy point completed, and the failures are enumerated here.
        if report.quarantined() > 0 {
            grand_quarantined += report.quarantined();
            println!(
                "#   quarantined: {} point(s) ({} stalled, {} failed)",
                report.quarantined(),
                report.stalled(),
                report.failed(),
            );
            for r in &report.results {
                match &r.outcome {
                    PointOutcomeKind::Stalled { rep, cycle, .. } => println!(
                        "#   STALLED {:<36} rep {rep} @ cycle {cycle} (diagnostics in the JSON artifact)",
                        r.label,
                    ),
                    PointOutcomeKind::Failed { reason } => {
                        println!("#   FAILED  {:<36} {reason}", r.label);
                    }
                    _ => {}
                }
            }
        }
        // Delivered-fraction summary: under fault plans the headline is how
        // much traffic still arrived, not just latency.
        if spec.faults.iter().any(|f| !f.is_empty()) {
            let worst = report
                .results
                .iter()
                .filter_map(|r| match &r.outcome {
                    PointOutcomeKind::Rate { merged, .. } => {
                        Some((merged.delivered_fraction.mean, merged.undeliverable, &r.label))
                    }
                    _ => None,
                })
                .min_by(|a, b| a.0.total_cmp(&b.0));
            if let Some((df, undeliverable, label)) = worst {
                println!(
                    "#   delivered fraction: worst {df:.4} ({undeliverable} undeliverable) at {label}"
                );
            }
        }
        // Recovery summary: how hard the ack/retransmit layer worked.
        if spec.recoveries.iter().any(|r| r.enabled()) {
            let (mut retransmissions, mut recovered) = (0u64, 0u64);
            for r in &report.results {
                if let PointOutcomeKind::Rate { merged, .. } = &r.outcome {
                    retransmissions += merged.retransmissions;
                    recovered += merged.recovered_receivers;
                }
            }
            println!(
                "#   recovery: {retransmissions} retransmission(s), \
                 {recovered} receiver(s) served by a retry"
            );
        }
        // Convergence summary: how many points proved their CIs tight.
        if spec.convergence.is_some() {
            let (mut converged, mut capped, mut abandoned) = (0usize, 0usize, 0usize);
            for r in &report.results {
                if let PointOutcomeKind::Rate { merged, .. } = &r.outcome {
                    match merged.converged {
                        Converged::Yes => converged += 1,
                        Converged::AbandonedSaturated => abandoned += 1,
                        Converged::No => {
                            capped += 1;
                            println!(
                                "#   NOT CONVERGED {:<36} n={} unicast ci95={:.3}",
                                r.label, merged.reps, merged.unicast_mean.ci95
                            );
                        }
                    }
                }
            }
            println!(
                "#   converged: {converged}, capped: {capped}, abandoned saturated: {abandoned}"
            );
        }
        // Per-curve knee summary for quick reading.
        for r in &report.results {
            if let PointOutcomeKind::Saturation(s) = &r.outcome {
                println!(
                    "#   {:<36} sustains {:.5}{}",
                    r.label,
                    s.sustained,
                    s.collapsed.map_or_else(String::new, |c| format!(", collapses by {c:.5}")),
                );
            }
        }
    }
    println!("# total: {grand_executed} points simulated, {grand_cached} served from cache");
    if grand_quarantined > 0 {
        // Deliberately exit 0: a fail-soft campaign that completed every
        // healthy point and *recorded* its failures succeeded at its job.
        println!("# total: {grand_quarantined} point(s) quarantined (see artifacts)");
    }
}
