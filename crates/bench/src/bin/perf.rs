//! `perf` — the steady-state simulator-throughput harness.
//!
//! Every figure in the paper is produced by stepping the flit-level
//! simulators millions of cycles, so cycles/second of [`NocSim::step`] is the
//! system's dominant cost. This harness measures it the same way every time
//! so the number can be tracked across PRs:
//!
//! * a grid of (topology × network size × offered load) points,
//! * each point: build network + the paper's synthetic workload, warm up,
//!   then time a fixed number of simulated cycles with a wall clock,
//! * report **cycles/s** (simulator speed) and **Mflit-hops/s** (useful work:
//!   millions of link traversals per second, derived from
//!   [`NocSim::flit_hops`] deltas),
//! * write everything to `BENCH_sim.json` (deterministic field order; only
//!   the timings vary run to run).
//!
//! ```text
//! perf [--quick] [--repeat K] [--phases] [--out PATH] [--validate PATH]
//! perf --gate NEW BASELINE [--min-ratio R]
//! ```
//!
//! `--quick` runs a reduced grid with fewer cycles (CI smoke); `--repeat K`
//! (default 3) measures every grid cell `K` times and keeps the best — the
//! documented best-of-3 noise discipline for this class of container, built
//! into the harness instead of the operator; `--validate` parses an existing
//! artifact and checks its shape instead of running, exiting non-zero on
//! malformed output.
//!
//! `--phases` adds a per-cell phase breakdown: after the timed (probe-off)
//! passes, every cell gets one extra pass with the [`SimProbe`] phase
//! profiler at full cadence, and the arrivals/polls/gather/commit split is
//! printed and written into the point's `phases` object. The timed
//! `cycles_per_sec` rows are never measured with probes on.
//!
//! Every artifact carries a `meta` block — host CPU model, core count, git
//! commit, and whether probes were enabled during measurement — so a
//! baseline records the machine and instrumentation state it was written
//! under.
//!
//! The grid spans three load regimes — `trickle` (rate ≪ saturation, where
//! active-set scheduling keeps per-cycle cost proportional to live traffic),
//! `low` and `sat` — and two size classes: the classic 16/32/64 plus the
//! large-n scaling axis (256 and 1024, trickle only: their saturated runs
//! measure the workload's backlog arithmetic more than the network).
//!
//! `--gate` is the CI perf-regression check: compare a freshly measured
//! artifact (`NEW`, typically a `--quick` run) against a committed baseline
//! (`BASELINE`, typically the full-grid `BENCH_sim.json` tracked in the
//! repo), print the headline and per-point deltas (markdown, suitable for a
//! job summary), and exit non-zero if the headline throughput fell below
//! `min-ratio` × baseline. The default floor of 0.5× is deliberately
//! generous: CI machines are noisy and differ from the machine that wrote
//! the baseline, so the gate only catches real collapses while the printed
//! trajectory makes slow drift visible per push. The headline is matched by
//! its grid coordinates, so a quick run (headline `quarc_n16_sat`) gates
//! against the same (topology, n, rate) cell of a full baseline. Cells
//! present on only one side (a grid that grew or shrank between artifacts)
//! are *warnings*, never failures — adding rows must not break the gate.

use quarc_campaign::Json;
use quarc_core::config::NocConfig;
use quarc_core::topology::TopologyKind;
use quarc_sim::{build_any, MonoStep, NocSim, Phase, ProbeConfig};
use quarc_workloads::{Synthetic, SyntheticConfig};
use std::time::Instant;

/// One cell of the measurement grid.
struct GridPoint {
    topology: TopologyKind,
    n: usize,
    /// Offered load, messages/node/cycle (the paper's rate axis).
    rate: f64,
    /// Broadcast fraction β.
    beta: f64,
    /// Short label for the load regime ("low" / "sat").
    regime: &'static str,
}

/// Fixed workload shape for all points (paper defaults: M = 8 flits).
const MSG_LEN: usize = 8;
const SEED: u64 = 0xBE7C;

/// The four topology families, in grid order.
const TOPOLOGIES: [TopologyKind; 4] =
    [TopologyKind::Quarc, TopologyKind::Spidergon, TopologyKind::Mesh, TopologyKind::Torus];

/// The trickle regime: rate ≪ saturation, the regime most of a Fig. 9–11
/// campaign's grid points live in and where the active-set scheduling win is
/// largest.
const TRICKLE: (f64, &str) = (0.002, "trickle");

fn grid(quick: bool) -> Vec<GridPoint> {
    let mut points = Vec::new();
    let sizes: &[usize] = if quick { &[16] } else { &[16, 32, 64] };
    for &n in sizes {
        let regimes: &[(f64, &'static str)] = if quick {
            &[(0.02, "low"), (0.10, "sat")]
        } else {
            &[TRICKLE, (0.02, "low"), (0.10, "sat")]
        };
        for &(rate, regime) in regimes {
            // Every topology family carries the full traffic mix (mesh and
            // torus via the dimension-ordered multicast tree), so the perf
            // grid runs the same β = 5% workload on all four.
            for topology in TOPOLOGIES {
                points.push(GridPoint { topology, n, rate, beta: 0.05, regime });
            }
        }
    }
    // The large-n scaling axis: per-cycle cost must track live traffic, not
    // n, so trickle-load rows up to 16384 nodes (slab-backed multicast
    // bitstrings beyond 4096) are first-class tracked cells (quick runs
    // carry two as the CI smoke, one on each side of the inline/slab
    // boundary).
    if quick {
        let (rate, regime) = TRICKLE;
        points.push(GridPoint { topology: TopologyKind::Quarc, n: 256, rate, beta: 0.05, regime });
        points.push(GridPoint { topology: TopologyKind::Quarc, n: 4096, rate, beta: 0.05, regime });
    } else {
        for n in [256usize, 1024, 4096, 16384] {
            let (rate, regime) = TRICKLE;
            for topology in TOPOLOGIES {
                points.push(GridPoint { topology, n, rate, beta: 0.05, regime });
            }
        }
    }
    points
}

/// Measurement of one point.
struct Measured {
    warmup: u64,
    cycles: u64,
    wall_s: f64,
    cycles_per_sec: f64,
    mflit_hops_per_sec: f64,
    flit_hops: u64,
    flits_delivered: u64,
}

fn measure_once(p: &GridPoint, warmup: u64, cycles: u64) -> Measured {
    // The monomorphized road: enum dispatch on the network, static dispatch
    // into Synthetic — the same inner loop `run_point` (and therefore every
    // campaign) executes.
    let mut net = build_any(NocConfig { kind: p.topology, n: p.n, ..Default::default() });
    let n = net.num_nodes();
    let mut wl = Synthetic::new(n, SyntheticConfig::paper(p.rate, MSG_LEN, p.beta, SEED));
    for _ in 0..warmup {
        net.step_mono(&mut wl);
    }
    let hops0 = net.flit_hops();
    let delivered0 = net.metrics().flits_delivered();
    let t0 = Instant::now();
    for _ in 0..cycles {
        net.step_mono(&mut wl);
    }
    let wall_s = t0.elapsed().as_secs_f64().max(1e-9);
    let flit_hops = net.flit_hops() - hops0;
    Measured {
        warmup,
        cycles,
        wall_s,
        cycles_per_sec: cycles as f64 / wall_s,
        mflit_hops_per_sec: flit_hops as f64 / wall_s / 1e6,
        flit_hops,
        flits_delivered: net.metrics().flits_delivered() - delivered0,
    }
}

/// Measure `p` `repeat` times and keep the fastest run: wall-clock noise on
/// a shared container only ever makes a run *slower*, so best-of-K is the
/// least-biased estimator of the simulator's actual speed.
fn measure(p: &GridPoint, warmup: u64, cycles: u64, repeat: u32) -> Measured {
    let mut best = measure_once(p, warmup, cycles);
    for _ in 1..repeat.max(1) {
        let m = measure_once(p, warmup, cycles);
        if m.cycles_per_sec > best.cycles_per_sec {
            best = m;
        }
    }
    best
}

fn point_json(p: &GridPoint, m: &Measured, phases: Option<Json>) -> Json {
    let mut fields = vec![
        ("topology", Json::Str(p.topology.to_string())),
        ("n", Json::UInt(p.n as u64)),
        ("rate", Json::Num(p.rate)),
        ("beta", Json::Num(p.beta)),
        ("msg_len", Json::UInt(MSG_LEN as u64)),
        ("regime", Json::Str(p.regime.to_string())),
        ("warmup_cycles", Json::UInt(m.warmup)),
        ("measured_cycles", Json::UInt(m.cycles)),
        ("wall_s", Json::Num(m.wall_s)),
        ("cycles_per_sec", Json::Num(m.cycles_per_sec)),
        ("mflit_hops_per_sec", Json::Num(m.mflit_hops_per_sec)),
        ("flit_hops", Json::UInt(m.flit_hops)),
        ("flits_delivered", Json::UInt(m.flits_delivered)),
    ];
    if let Some(ph) = phases {
        fields.push(("phases", ph));
    }
    Json::obj(fields)
}

/// One extra pass over the cell with the phase profiler at full cadence.
/// Runs on a fresh network so the timed rows stay probe-free; returns the
/// per-phase breakdown as JSON and prints a one-line summary.
fn profile_point(p: &GridPoint, warmup: u64, cycles: u64) -> Json {
    let mut net = build_any(NocConfig { kind: p.topology, n: p.n, ..Default::default() });
    let n = net.num_nodes();
    let mut wl = Synthetic::new(n, SyntheticConfig::paper(p.rate, MSG_LEN, p.beta, SEED));
    for _ in 0..warmup {
        net.step_mono(&mut wl);
    }
    net.probe_mut().configure(ProbeConfig { profile_every: 1, ..ProbeConfig::off() });
    for _ in 0..cycles {
        net.step_mono(&mut wl);
    }
    let probe = net.probe();
    let profiled = probe.profiled_cycles().max(1) as f64;
    let total_ns: u64 = Phase::ALL.iter().map(|&ph| probe.phase_nanos(ph)).sum();
    let mut fields = Vec::with_capacity(Phase::ALL.len());
    let mut line = String::new();
    for ph in Phase::ALL {
        let ns = probe.phase_nanos(ph);
        let share = ns as f64 / total_ns.max(1) as f64;
        let items = probe.phase_items(ph) as f64 / profiled;
        line.push_str(&format!("{} {:.0}% ({items:.2} items/cyc)  ", ph.name(), share * 100.0));
        fields.push((
            ph.name(),
            Json::obj(vec![
                ("ns", Json::UInt(ns)),
                ("items", Json::UInt(probe.phase_items(ph))),
                ("ns_per_cycle", Json::Num(ns as f64 / profiled)),
                ("share", Json::Num(share)),
            ]),
        ));
    }
    println!("#   phases {},{},{:.3},{}: {}", p.topology, p.n, p.rate, p.regime, line.trim_end());
    Json::obj(fields)
}

/// The `meta` block: what machine and instrumentation state the artifact was
/// measured under. Best-effort on every field — a missing `/proc/cpuinfo` or
/// absent git binary degrades to `"unknown"`, never a failure.
fn host_meta(probes: &str) -> Json {
    let cpu_model = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1).map(|v| v.trim().to_string()))
        })
        .unwrap_or_else(|| "unknown".into());
    let cores = std::thread::available_parallelism().map(|c| c.get() as u64).unwrap_or(0);
    let git_commit = std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".into());
    Json::obj(vec![
        ("cpu_model", Json::Str(cpu_model)),
        ("cores", Json::UInt(cores)),
        ("git_commit", Json::Str(git_commit)),
        ("probes", Json::Str(probes.into())),
    ])
}

/// Check the artifact shape the CI smoke job relies on. Returns a
/// description of the first problem found.
fn validate(text: &str) -> Result<usize, String> {
    let doc = Json::parse(text).map_err(|e| format!("not valid JSON: {e:?}"))?;
    if doc.get("bench").and_then(Json::as_str) != Some("sim_hotpath") {
        return Err("missing or wrong `bench` tag".into());
    }
    let points = doc
        .get("points")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing `points` array".to_string())?;
    if points.is_empty() {
        return Err("`points` is empty".into());
    }
    for (i, p) in points.iter().enumerate() {
        for key in ["topology", "n", "rate", "cycles_per_sec", "mflit_hops_per_sec"] {
            if p.get(key).is_none() {
                return Err(format!("point {i} lacks `{key}`"));
            }
        }
        let speed = p.get("cycles_per_sec").and_then(Json::as_f64).unwrap_or(-1.0);
        if !(speed.is_finite() && speed > 0.0) {
            return Err(format!("point {i} has non-positive cycles_per_sec"));
        }
    }
    if doc.get("headline").and_then(|h| h.get("mflit_hops_per_sec")).is_none() {
        return Err("missing `headline.mflit_hops_per_sec`".into());
    }
    Ok(points.len())
}

/// The grid coordinates that identify a measured point across artifacts —
/// including the workload mix (β, M), so cells measured under different
/// traffic are never compared as if they were the same experiment.
fn point_coords(p: &Json) -> Option<(String, u64, String, String, String, u64)> {
    Some((
        p.get("topology")?.as_str()?.to_string(),
        p.get("n")?.as_u64()?,
        // Rates and betas compare textually: both sides were written by the
        // same shortest-round-trip formatter.
        format!("{}", p.get("rate")?.as_f64()?),
        p.get("regime")?.as_str()?.to_string(),
        format!("{}", p.get("beta")?.as_f64()?),
        p.get("msg_len")?.as_u64()?,
    ))
}

/// Compare a fresh artifact against the committed baseline. Returns the
/// markdown report and whether the gate passed.
fn gate(new_text: &str, base_text: &str, min_ratio: f64) -> Result<(String, bool), String> {
    let new = Json::parse(new_text).map_err(|e| format!("NEW is not valid JSON: {e:?}"))?;
    let base = Json::parse(base_text).map_err(|e| format!("BASELINE is not valid JSON: {e:?}"))?;
    let new_points = new.get("points").and_then(Json::as_arr).ok_or("NEW lacks `points`")?;
    let base_points = base.get("points").and_then(Json::as_arr).ok_or("BASELINE lacks `points`")?;

    let headline = new.get("headline").ok_or("NEW lacks `headline`")?;
    let headline_name =
        headline.get("name").and_then(Json::as_str).ok_or("NEW headline lacks `name`")?;
    let headline_speed = headline
        .get("cycles_per_sec")
        .and_then(Json::as_f64)
        .ok_or("NEW headline lacks `cycles_per_sec`")?;
    // The headline's grid cell in NEW (quick and full grids pick different
    // headline sizes, so match by coordinates, not by name).
    let headline_coords = new_points
        .iter()
        .find(|p| {
            p.get("cycles_per_sec").and_then(Json::as_f64) == Some(headline_speed)
                && p.get("regime").and_then(Json::as_str) == Some("sat")
        })
        .and_then(point_coords)
        .ok_or("NEW headline does not match any of its own points")?;
    let baseline_speed = base_points
        .iter()
        .find(|p| point_coords(p).as_ref() == Some(&headline_coords))
        .and_then(|p| p.get("cycles_per_sec").and_then(Json::as_f64))
        .ok_or_else(|| format!("BASELINE has no point at the headline cell {headline_coords:?}"))?;

    let ratio = headline_speed / baseline_speed;
    let pass = ratio >= min_ratio;
    let mut report = String::new();
    report.push_str("### Simulator perf gate\n\n");
    report.push_str(&format!(
        "headline `{headline_name}`: **{headline_speed:.0} cycles/s** vs baseline {baseline_speed:.0} → **{ratio:.2}×** (floor {min_ratio}×): {}\n\n",
        if pass { "PASS" } else { "FAIL" },
    ));
    // When both artifacts record their instrumentation state, the headline
    // ratio doubles as the probes-disabled overhead bound: a NEW measured
    // with probes compiled but off against a pre-probe (or probe-off)
    // baseline shows exactly what the dormant instrumentation costs.
    let probe_state = |doc: &Json| {
        doc.get("meta")
            .and_then(|m| m.get("probes"))
            .and_then(Json::as_str)
            .unwrap_or("unrecorded")
            .to_string()
    };
    report.push_str(&format!(
        "probes: NEW measured with probes `{}`, BASELINE with `{}` — at these settings the \
         headline ratio above is the probes-disabled overhead bound.\n\n",
        probe_state(&new),
        probe_state(&base),
    ));
    report.push_str("| topology | n | rate | regime | new cycles/s | baseline | ratio |\n");
    report.push_str("|---|---|---|---|---|---|---|\n");
    // Grids are allowed to differ between artifacts (new sizes/regimes get
    // added, quick grids are subsets): one-sided cells are warned about
    // below, and only the headline ratio can fail the gate.
    let mut unmatched_new = Vec::new();
    for p in new_points {
        let Some(coords) = point_coords(p) else { continue };
        let Some(new_speed) = p.get("cycles_per_sec").and_then(Json::as_f64) else { continue };
        let base_speed = base_points
            .iter()
            .find(|b| point_coords(b).as_ref() == Some(&coords))
            .and_then(|b| b.get("cycles_per_sec").and_then(Json::as_f64));
        let (topo, n, rate, regime, ..) = &coords;
        match base_speed {
            Some(b) => report.push_str(&format!(
                "| {topo} | {n} | {rate} | {regime} | {new_speed:.0} | {b:.0} | {:.2}× |\n",
                new_speed / b
            )),
            None => {
                report.push_str(&format!(
                    "| {topo} | {n} | {rate} | {regime} | {new_speed:.0} | — | — |\n"
                ));
                unmatched_new.push(format!("{topo}/n{n}/r{rate}/{regime}"));
            }
        }
    }
    let unmatched_base: Vec<String> = base_points
        .iter()
        .filter_map(point_coords)
        .filter(|c| !new_points.iter().any(|p| point_coords(p).as_ref() == Some(c)))
        .map(|(topo, n, rate, regime, ..)| format!("{topo}/n{n}/r{rate}/{regime}"))
        .collect();
    if !unmatched_new.is_empty() {
        report.push_str(&format!(
            "\n⚠ {} NEW cell(s) have no baseline (new grid rows?): {}\n",
            unmatched_new.len(),
            unmatched_new.join(", ")
        ));
    }
    if !unmatched_base.is_empty() {
        report.push_str(&format!(
            "\n⚠ {} BASELINE cell(s) were not measured by NEW (quick grid / removed rows?): {}\n",
            unmatched_base.len(),
            unmatched_base.join(", ")
        ));
    }
    Ok((report, pass))
}

const USAGE: &str =
    "usage: perf [--quick] [--repeat K] [--phases] [--out PATH] [--validate PATH] | \
     perf --gate NEW BASELINE [--min-ratio R]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut repeat: u32 = 3;
    let mut phases = false;
    let mut out = String::from("BENCH_sim.json");
    let mut validate_path: Option<String> = None;
    let mut gate_paths: Option<(String, String)> = None;
    let mut min_ratio = 0.5;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--phases" => phases = true,
            "--repeat" => {
                repeat = it
                    .next()
                    .expect("--repeat needs a count")
                    .parse()
                    .expect("--repeat must be a positive integer");
                assert!(repeat >= 1, "--repeat must be at least 1");
            }
            "--out" => out = it.next().expect("--out needs a path").clone(),
            "--validate" => {
                validate_path = Some(it.next().expect("--validate needs a path").clone())
            }
            "--gate" => {
                let new = it.next().expect("--gate needs NEW and BASELINE paths").clone();
                let base = it.next().expect("--gate needs NEW and BASELINE paths").clone();
                gate_paths = Some((new, base));
            }
            "--min-ratio" => {
                min_ratio = it
                    .next()
                    .expect("--min-ratio needs a value")
                    .parse()
                    .expect("--min-ratio must be a number");
            }
            other => {
                eprintln!("unknown argument {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }

    if let Some((new_path, base_path)) = gate_paths {
        let read = |path: &str| {
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
        };
        match gate(&read(&new_path), &read(&base_path), min_ratio) {
            Ok((report, pass)) => {
                println!("{report}");
                if !pass {
                    eprintln!(
                        "{new_path}: headline throughput fell below {min_ratio}x the committed baseline {base_path}"
                    );
                    std::process::exit(1);
                }
            }
            Err(why) => {
                eprintln!("perf gate: {why}");
                std::process::exit(1);
            }
        }
        return;
    }

    if let Some(path) = validate_path {
        let text =
            std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
        match validate(&text) {
            Ok(n) => println!("# {path}: OK ({n} points)"),
            Err(why) => {
                eprintln!("{path}: MALFORMED: {why}");
                std::process::exit(1);
            }
        }
        return;
    }

    let (warmup, cycles) = if quick { (500, 4_000) } else { (1_000, 20_000) };
    let points = grid(quick);
    let mut rows = Vec::with_capacity(points.len());
    let mut headline: Option<Json> = None;
    println!("# perf: {} points, {} measured cycles each, best of {repeat}", points.len(), cycles);
    println!("topology,n,rate,regime,cycles_per_sec,mflit_hops_per_sec");
    for p in &points {
        let m = measure(p, warmup, cycles, repeat);
        println!(
            "{},{},{:.3},{},{:.0},{:.3}",
            p.topology, p.n, p.rate, p.regime, m.cycles_per_sec, m.mflit_hops_per_sec
        );
        // The headline number PRs are judged on: the largest Quarc network
        // near saturation (the dominant cost of the paper-grid campaign).
        let is_headline = p.topology == TopologyKind::Quarc
            && p.regime == "sat"
            && p.n == if quick { 16 } else { 64 };
        if is_headline {
            headline = Some(Json::obj(vec![
                ("name", Json::Str(format!("quarc_n{}_sat", p.n))),
                ("cycles_per_sec", Json::Num(m.cycles_per_sec)),
                ("mflit_hops_per_sec", Json::Num(m.mflit_hops_per_sec)),
            ]));
        }
        let phase_breakdown = phases.then(|| profile_point(p, warmup, cycles));
        rows.push(point_json(p, &m, phase_breakdown));
    }

    let doc = Json::obj(vec![
        ("bench", Json::Str("sim_hotpath".into())),
        ("unit", Json::Str("Mflit-hops/s".into())),
        ("msg_len", Json::UInt(MSG_LEN as u64)),
        ("seed", Json::UInt(SEED)),
        ("quick", Json::Bool(quick)),
        ("meta", host_meta(if phases { "profiled" } else { "disabled" })),
        ("points", Json::Arr(rows)),
        ("headline", headline.expect("grid always contains the headline point")),
    ]);
    std::fs::write(&out, doc.to_pretty()).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("# wrote {out}");
}
