//! Regenerates **Fig. 9**: average latency vs message rate for N = 16,
//! β = 5%, message length M ∈ {8, 16, 32}, Quarc vs Spidergon.
//!
//! A thin wrapper over the `fig9` campaign preset: points run in parallel
//! with replication confidence intervals, and the CSV goes to stdout (use
//! the `campaign` binary for caching and JSON artifacts).
//!
//! ```text
//! cargo run -p quarc-bench --bin fig9 --release
//! ```

use quarc_bench::presets;
use quarc_campaign::{run_campaign, CampaignOptions};

fn main() {
    let spec = presets::fig9();
    let report = run_campaign(&spec, &CampaignOptions { quiet: true, ..Default::default() })
        .expect("fig9 campaign");
    println!("# Fig. 9: N=16, beta=5%, M in {{8,16,32}} ({} workers)", report.workers);
    print!("{}", report.csv());
}
