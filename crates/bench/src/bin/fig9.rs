//! Regenerates **Fig. 9**: average latency vs message rate for N = 16,
//! β = 5%, message length M ∈ {8, 16, 32}, Quarc vs Spidergon.
//!
//! ```text
//! cargo run -p quarc-bench --bin fig9 --release
//! ```

use quarc_bench::figures::{print_figure, rates, run_figure, FigureCurve};
use quarc_core::topology::TopologyKind;
use quarc_sim::RunSpec;

fn main() {
    let n = 16;
    let beta = 0.05;
    let mut curves = Vec::new();
    for m in [8usize, 16, 32] {
        // Sweep up to just past the analytic link-saturation bound.
        let hi = quarc_analytical::quarc_saturation_rate(n, m) * 1.1;
        let r = rates(hi / 40.0, hi, 10);
        for kind in [TopologyKind::Quarc, TopologyKind::Spidergon] {
            curves.push(FigureCurve::new(kind, n, m, beta, r.clone(), 90 + m as u64));
        }
    }
    let results = run_figure(curves, &RunSpec::default());
    print_figure("Fig. 9: N=16, beta=5%, M in {8,16,32}", &results);
}
