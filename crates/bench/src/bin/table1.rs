//! Regenerates **Table 1**: module-wise slice cost of the 32-bit Quarc
//! switch, plus the Spidergon counterpart and both transceivers.
//!
//! ```text
//! cargo run -p quarc-bench --bin table1 --release
//! ```

use quarc_area::{
    quarc_switch, quarc_transceiver, spidergon_switch, spidergon_transceiver, SwitchParams,
};

fn main() {
    let p = SwitchParams::with_width(32);

    println!(
        "# Table 1: module-wise cost analysis of a 32-bit Quarc switch (Virtex-II Pro slices)"
    );
    println!("design,module,slices");
    for b in
        [quarc_switch(&p), spidergon_switch(&p), quarc_transceiver(&p), spidergon_transceiver(&p)]
    {
        for m in &b.modules {
            println!("{},{},{:.0}", b.design, m.name, m.slices);
        }
        println!("{},TOTAL,{:.0}", b.design, b.total());
    }

    println!("#");
    println!("# paper anchors: Quarc switch total 1453 (735/7/186/30/64/431); Spidergon switch total 1700");
    println!(
        "# model totals:  Quarc switch {:.0}; Spidergon switch {:.0}",
        quarc_switch(&p).total(),
        spidergon_switch(&p).total()
    );
}
