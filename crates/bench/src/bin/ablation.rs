//! Ablation study over the simulator's design parameters (DESIGN.md §6):
//! input-buffer depth, link latency and the broadcast mechanism itself
//! (Quarc true broadcast vs Spidergon chains on otherwise-identical rings).
//!
//! ```text
//! cargo run -p quarc-bench --bin ablation --release
//! ```

use quarc_core::config::NocConfig;
use quarc_sim::{run, ArbPolicy, QuarcNetwork, RunSpec, SpidergonNetwork};
use quarc_workloads::{Synthetic, SyntheticConfig};

fn main() {
    let spec = RunSpec { warmup: 2_000, measure: 15_000, drain: 20_000, ..Default::default() };
    let (n, m, beta, rate) = (16usize, 16usize, 0.05, 0.02);

    println!("# Ablation: buffer depth (n={n}, M={m}, beta={beta}, rate={rate})");
    println!("topology,buffer_depth,unicast_mean,bcast_completion_mean,throughput,saturated");
    for depth in [2usize, 4, 8, 16] {
        let mut net = QuarcNetwork::new(NocConfig::quarc(n).with_buffer_depth(depth));
        let mut wl = Synthetic::new(n, SyntheticConfig::paper(rate, m, beta, 21));
        let r = run(&mut net, &mut wl, &spec);
        println!(
            "quarc,{depth},{:.2},{:.2},{:.5},{}",
            r.unicast_mean, r.bcast_completion_mean, r.throughput, r.saturated
        );
        let mut net = SpidergonNetwork::new(NocConfig::spidergon(n).with_buffer_depth(depth));
        let mut wl = Synthetic::new(n, SyntheticConfig::paper(rate, m, beta, 21));
        let r = run(&mut net, &mut wl, &spec);
        println!(
            "spidergon,{depth},{:.2},{:.2},{:.5},{}",
            r.unicast_mean, r.bcast_completion_mean, r.throughput, r.saturated
        );
    }

    println!("#");
    println!("# Ablation: link latency (depth=4)");
    println!("topology,link_latency,unicast_mean,bcast_completion_mean,saturated");
    for lat in [1u64, 2, 4] {
        let mut cfg = NocConfig::quarc(n);
        cfg.link_latency = lat;
        let mut net = QuarcNetwork::new(cfg);
        let mut wl = Synthetic::new(n, SyntheticConfig::paper(rate, m, beta, 22));
        let r = run(&mut net, &mut wl, &spec);
        println!("quarc,{lat},{:.2},{:.2},{}", r.unicast_mean, r.bcast_completion_mean, r.saturated);
    }

    println!("#");
    println!("# Ablation: output-arbitration policy (round-robin vs fixed priority)");
    println!("policy,unicast_mean,unicast_p95,bcast_completion_mean,saturated");
    for policy in [ArbPolicy::RoundRobin, ArbPolicy::FixedPriority] {
        let mut net = QuarcNetwork::with_arb_policy(NocConfig::quarc(n), policy);
        let mut wl = Synthetic::new(n, SyntheticConfig::paper(rate, m, beta, 24));
        let r = run(&mut net, &mut wl, &spec);
        println!(
            "{policy:?},{:.2},{},{:.2},{}",
            r.unicast_mean,
            r.unicast_p95.map_or_else(|| "-".into(), |p| p.to_string()),
            r.bcast_completion_mean,
            r.saturated
        );
    }

    println!("#");
    println!("# Ablation: broadcast mechanism at growing beta (rate 0.008 — below the");
    println!("# Quarc knee throughout, so the degradation is attributable to beta alone)");
    println!("topology,beta,unicast_mean,bcast_completion_mean,saturated");
    let beta_rate = 0.008;
    for beta in [0.0, 0.02, 0.05, 0.10, 0.20] {
        let mut net = QuarcNetwork::new(NocConfig::quarc(n));
        let mut wl = Synthetic::new(n, SyntheticConfig::paper(beta_rate, m, beta, 23));
        let r = run(&mut net, &mut wl, &spec);
        println!(
            "quarc,{beta},{:.2},{:.2},{}",
            r.unicast_mean, r.bcast_completion_mean, r.saturated
        );
        let mut net = SpidergonNetwork::new(NocConfig::spidergon(n));
        let mut wl = Synthetic::new(n, SyntheticConfig::paper(beta_rate, m, beta, 23));
        let r = run(&mut net, &mut wl, &spec);
        println!(
            "spidergon,{beta},{:.2},{:.2},{}",
            r.unicast_mean, r.bcast_completion_mean, r.saturated
        );
    }
}
