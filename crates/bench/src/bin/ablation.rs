//! Ablation study over the simulator's design parameters (DESIGN.md §6):
//! input-buffer depth, link latency and the broadcast mechanism itself
//! (Quarc true broadcast vs Spidergon chains on otherwise-identical rings).
//!
//! The grid sections (buffer depth, link latency, β) run as campaign
//! presets — in parallel, with replication confidence intervals. The
//! arbitration-policy section stays a direct run: `ArbPolicy` is a
//! constructor argument the campaign grid deliberately does not expose.
//!
//! ```text
//! cargo run -p quarc-bench --bin ablation --release
//! ```

use quarc_bench::presets;
use quarc_campaign::{run_campaign, CampaignOptions, CampaignSpec};
use quarc_core::config::NocConfig;
use quarc_sim::{run, ArbPolicy, QuarcNetwork, RunSpec};
use quarc_workloads::{Synthetic, SyntheticConfig};

fn run_preset(title: &str, spec: &CampaignSpec) {
    let report = run_campaign(spec, &CampaignOptions { quiet: true, ..Default::default() })
        .expect("ablation campaign");
    println!("# {title}");
    print!("{}", report.csv());
    println!("#");
}

fn main() {
    run_preset(
        "Ablation: buffer depth (n=16, M=16, beta=5%, rate=0.02)",
        &presets::ablation_buffer(),
    );
    run_preset("Ablation: link latency (quarc, depth=4)", &presets::ablation_link());
    run_preset(
        "Ablation: broadcast mechanism at growing beta (rate 0.008 — below the \
         Quarc knee throughout, so the degradation is attributable to beta alone)",
        &presets::ablation_beta(),
    );

    println!("# Ablation: output-arbitration policy (round-robin vs fixed priority)");
    println!("policy,unicast_mean,unicast_p95,bcast_completion_mean,saturated");
    let spec = RunSpec { warmup: 2_000, measure: 15_000, drain: 20_000, ..Default::default() };
    let (n, m, beta, rate) = (16usize, 16usize, 0.05, 0.02);
    for policy in [ArbPolicy::RoundRobin, ArbPolicy::FixedPriority] {
        let mut net = QuarcNetwork::with_arb_policy(NocConfig::quarc(n), policy);
        let mut wl = Synthetic::new(n, SyntheticConfig::paper(rate, m, beta, 24));
        let r = run(&mut net, &mut wl, &spec);
        println!(
            "{policy:?},{:.2},{},{:.2},{}",
            r.unicast_mean,
            r.unicast_p95.map_or_else(|| "-".into(), |p| p.to_string()),
            r.bcast_completion_mean,
            r.saturated
        );
    }
}
