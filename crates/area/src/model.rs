//! The structural area model and its calibration.
//!
//! The paper reports Virtex-II Pro slice counts from ISE synthesis. We cannot
//! run ISE, so this model counts the same structural primitives a synthesiser
//! would map — FF bits for registers, LUT4s for muxes/comparators, lane
//! control — converts them to slices (a Virtex-II Pro slice packs 2 LUT4s and
//! 2 FFs) and applies per-module calibration factors chosen once so that the
//! **32-bit Quarc switch reproduces Table 1 exactly**. Width scaling then
//! follows from structure, which is what Fig. 12 plots.
//!
//! Calibration anchors (paper Table 1, 32-bit Quarc switch):
//!
//! | module            | slices |
//! |-------------------|--------|
//! | Input Buffers     | 735    |
//! | Write Controller  | 7      |
//! | Crossbar & Mux    | 186    |
//! | VC Arbiter        | 30     |
//! | Flow Control Unit | 64     |
//! | OPC               | 431    |
//! | **total**         | 1453   |
//!
//! and the 32-bit Spidergon switch total of 1700 slices (§3.1), which fixes
//! the two Spidergon-only modules (per-input routing logic and the
//! broadcast-by-unicast header-rewrite unit).

/// Hardware parameters of one switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchParams {
    /// Datapath width in bits (the paper evaluates 16, 32, 64).
    pub width: usize,
    /// Virtual channels per link (paper: 2).
    pub vcs: usize,
    /// Buffer depth per VC lane in flits (calibrated at 4).
    pub buffer_depth: usize,
}

impl SwitchParams {
    /// Paper-default parameters at a given datapath width.
    pub fn with_width(width: usize) -> Self {
        SwitchParams { width, vcs: 2, buffer_depth: 4 }
    }

    /// Flit bits on the wire: payload width plus the 2-bit flit-type field
    /// the write controller prepends (§2.4: "if a flit is of 32-bits after
    /// write controller adds its type, it becomes 34-bits").
    pub fn flit_bits(&self) -> f64 {
        (self.width + 2) as f64
    }
}

/// LUT4s needed for an `inputs`-to-1 mux of one bit.
pub fn mux_luts_per_bit(inputs: usize) -> f64 {
    match inputs {
        0 | 1 => 0.0,
        2 => 1.0,
        3..=4 => 2.0,
        5..=8 => 4.0,
        _ => (inputs as f64 / 2.0).ceil(),
    }
}

/// One VC lane of input buffering: FF storage, read mux, lane control.
///
/// `CAL_BUFFER` absorbs the synthesiser's packing of control into storage
/// slices; it is the single constant fitted to the 735-slice anchor.
pub fn buffer_lane_slices(p: &SwitchParams) -> f64 {
    let fb = p.flit_bits();
    let storage_ff = p.buffer_depth as f64 * fb; // FF bits
    let read_mux_luts = fb * mux_luts_per_bit(p.buffer_depth);
    let control = 6.0; // pointers + full/empty flags
    CAL_BUFFER * (storage_ff / 2.0 + read_mux_luts / 2.0 + control)
}

/// Input buffering for `ports` buffered input ports.
pub fn input_buffers_slices(p: &SwitchParams, ports: usize) -> f64 {
    buffer_lane_slices(p) * (ports * p.vcs) as f64
}

/// The write controller FSM (width-independent; Table 1 says 7 slices).
pub fn write_controller_slices(_p: &SwitchParams) -> f64 {
    7.0
}

/// Crossbar and output data muxes. `extra_inputs` is Σ over outputs of
/// (feeders − 1): the number of 2:1 mux stages per bit the datapath needs.
/// Both switches have 6 (the Quarc feeder tables are deliberately sparse;
/// the Spidergon compensates its missing cross link with a busier eject
/// mux) — the area parity the paper reports.
pub fn crossbar_slices(p: &SwitchParams, extra_inputs: usize) -> f64 {
    let decode = 12.0; // select decode + grant registers
    decode + CAL_XBAR * extra_inputs as f64 * p.flit_bits() / 2.0
}

/// The VC arbiter FSMs (idle/grant_0/grant_1 + fairness timer), one per
/// buffered input port. Width-independent.
pub fn vc_arbiter_slices(_p: &SwitchParams, ports: usize) -> f64 {
    7.5 * ports as f64
}

/// The flow-control unit: request generation, switching table, per-packet
/// state. Mostly control, with a small header-field datapath term.
pub fn fcu_slices(p: &SwitchParams) -> f64 {
    55.5 + 0.25 * p.flit_bits()
}

/// One output port controller: master + slave FSMs, VC allocation table and
/// the per-VC status/handshake datapath.
pub fn opc_slices_each(p: &SwitchParams) -> f64 {
    43.1 + CAL_OPC * p.flit_bits()
}

/// Spidergon-only: per-input routing logic (modular distance comparator on
/// the destination address — the logic §2.5.1 brags the Quarc does not
/// need).
pub fn routing_logic_slices(p: &SwitchParams, inputs: usize) -> f64 {
    (18.0 + 0.1 * p.flit_bits()) * inputs as f64
}

/// Spidergon-only: the broadcast-by-unicast header-rewrite unit (§2.2: "the
/// ingress packet is not simply cloned but the header flit needs to be
/// rewritten"), a full-width header register plus rewrite datapath.
pub fn rewrite_unit_slices(p: &SwitchParams) -> f64 {
    59.0 + 3.0 * p.flit_bits()
}

// --- calibration constants (fitted once, see module docs) ---

/// Input-buffer packing factor: fits the 735-slice anchor.
/// `735 = CAL_BUFFER · 8 lanes · (68 + 34 + 6)` at 32-bit.
pub const CAL_BUFFER: f64 = 735.0 / 864.0;

/// Crossbar datapath factor: fits the 186-slice anchor.
/// `186 = 12 + CAL_XBAR · 6 · 17` at 32-bit.
pub const CAL_XBAR: f64 = 174.0 / 102.0;

/// OPC width coefficient: 60% of the per-OPC anchor (431/4) scales with
/// width.
pub const CAL_OPC: f64 = 64.65 / 34.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_bits_adds_type_field() {
        assert_eq!(SwitchParams::with_width(32).flit_bits(), 34.0);
        assert_eq!(SwitchParams::with_width(16).flit_bits(), 18.0);
    }

    #[test]
    fn mux_sizes() {
        assert_eq!(mux_luts_per_bit(1), 0.0);
        assert_eq!(mux_luts_per_bit(2), 1.0);
        assert_eq!(mux_luts_per_bit(4), 2.0);
        assert_eq!(mux_luts_per_bit(8), 4.0);
    }

    #[test]
    fn buffer_anchor_reproduced() {
        let p = SwitchParams::with_width(32);
        let total = input_buffers_slices(&p, 4);
        assert!((total - 735.0).abs() < 0.5, "{total}");
    }

    #[test]
    fn crossbar_anchor_reproduced() {
        let p = SwitchParams::with_width(32);
        assert!((crossbar_slices(&p, 6) - 186.0).abs() < 0.5);
    }

    #[test]
    fn fcu_and_opc_anchors() {
        let p = SwitchParams::with_width(32);
        assert!((fcu_slices(&p) - 64.0).abs() < 0.5);
        assert!((4.0 * opc_slices_each(&p) - 431.0).abs() < 1.0);
    }

    #[test]
    fn all_modules_grow_with_width() {
        let w16 = SwitchParams::with_width(16);
        let w64 = SwitchParams::with_width(64);
        assert!(input_buffers_slices(&w64, 4) > input_buffers_slices(&w16, 4));
        assert!(crossbar_slices(&w64, 6) > crossbar_slices(&w16, 6));
        assert!(opc_slices_each(&w64) > opc_slices_each(&w16));
        assert!(rewrite_unit_slices(&w64) > rewrite_unit_slices(&w16));
    }

    #[test]
    fn deeper_buffers_cost_more() {
        let shallow = SwitchParams { width: 32, vcs: 2, buffer_depth: 4 };
        let deep = SwitchParams { width: 32, vcs: 2, buffer_depth: 8 };
        assert!(buffer_lane_slices(&deep) > buffer_lane_slices(&shallow));
    }
}
