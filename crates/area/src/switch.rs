//! Switch- and transceiver-level area composition for both architectures.

use crate::model::{
    buffer_lane_slices, crossbar_slices, fcu_slices, input_buffers_slices, opc_slices_each,
    rewrite_unit_slices, routing_logic_slices, vc_arbiter_slices, write_controller_slices,
    SwitchParams,
};
use quarc_core::topology::{QuarcOut, QuarcTopology, SpiOut, SpidergonTopology};
use std::fmt;

/// One named module's slice estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct ModuleArea {
    /// Module name (Table 1 vocabulary).
    pub name: &'static str,
    /// Estimated Virtex-II Pro slices.
    pub slices: f64,
}

/// A full per-module area breakdown.
#[derive(Debug, Clone)]
pub struct AreaBreakdown {
    /// Which design this is ("quarc-switch", …).
    pub design: &'static str,
    /// Datapath width in bits.
    pub width: usize,
    /// Per-module estimates.
    pub modules: Vec<ModuleArea>,
}

impl AreaBreakdown {
    /// Total slices.
    pub fn total(&self) -> f64 {
        self.modules.iter().map(|m| m.slices).sum()
    }

    /// Slice count of a named module (0 if absent).
    pub fn module(&self, name: &str) -> f64 {
        self.modules.iter().find(|m| m.name == name).map_or(0.0, |m| m.slices)
    }
}

impl fmt::Display for AreaBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} @ {}-bit", self.design, self.width)?;
        for m in &self.modules {
            writeln!(f, "  {:<24} {:>7.0}", m.name, m.slices)?;
        }
        write!(f, "  {:<24} {:>7.0}", "TOTAL", self.total())
    }
}

/// Σ over outputs of (feeders − 1): the 2:1 mux stages the crossbar needs,
/// taken from the topology's static feeder tables.
fn quarc_extra_inputs() -> usize {
    QuarcOut::ALL.iter().map(|&o| QuarcTopology::feeders(o).len().saturating_sub(1)).sum()
}

fn spidergon_extra_inputs() -> usize {
    SpiOut::ALL.iter().map(|&o| SpidergonTopology::feeders(o).len().saturating_sub(1)).sum()
}

/// Area of one Quarc switch (Table 1's rows at `width = 32`).
///
/// Buffered ports: the four *network* inputs (the quadrant queues live in
/// the transceiver, §2.4). The crossbar term is derived from the Quarc
/// feeder tables — this is where "no routing logic" and "very small
/// crossbar" (§2.3.2) become numbers.
pub fn quarc_switch(p: &SwitchParams) -> AreaBreakdown {
    AreaBreakdown {
        design: "quarc-switch",
        width: p.width,
        modules: vec![
            ModuleArea { name: "Input Buffers", slices: input_buffers_slices(p, 4) },
            ModuleArea { name: "Write Controller", slices: write_controller_slices(p) },
            ModuleArea { name: "Crossbar & Mux", slices: crossbar_slices(p, quarc_extra_inputs()) },
            ModuleArea { name: "VC Arbiter", slices: vc_arbiter_slices(p, 4) },
            ModuleArea { name: "Flow Control Unit (FCU)", slices: fcu_slices(p) },
            ModuleArea { name: "Output Port Controller (OPC)", slices: 4.0 * opc_slices_each(p) },
        ],
    }
}

/// Area of one Spidergon switch.
///
/// Same skeleton with four buffered ports (three network + the single local
/// injection channel), plus the two modules the Quarc eliminates: per-input
/// routing logic and the broadcast-by-unicast header-rewrite unit. The
/// rewrite unit is calibrated so the 32-bit total lands on the paper's 1700
/// slices.
pub fn spidergon_switch(p: &SwitchParams) -> AreaBreakdown {
    AreaBreakdown {
        design: "spidergon-switch",
        width: p.width,
        modules: vec![
            ModuleArea { name: "Input Buffers", slices: input_buffers_slices(p, 4) },
            ModuleArea { name: "Write Controller", slices: write_controller_slices(p) },
            ModuleArea {
                name: "Crossbar & Mux",
                slices: crossbar_slices(p, spidergon_extra_inputs()),
            },
            ModuleArea { name: "VC Arbiter", slices: vc_arbiter_slices(p, 4) },
            ModuleArea { name: "Flow Control Unit (FCU)", slices: fcu_slices(p) },
            ModuleArea { name: "Output Port Controller (OPC)", slices: 4.0 * opc_slices_each(p) },
            ModuleArea { name: "Routing Logic", slices: routing_logic_slices(p, 4) },
            ModuleArea { name: "Header Rewrite Unit", slices: rewrite_unit_slices(p) },
        ],
    }
}

/// A shallow (2-flit) staging lane in a transceiver: packets live in PE RAM
/// (§3.1 — only *addresses* queue deeply), so each injection path needs just
/// enough flit-width buffering to stream into the switch.
fn staging_lane(p: &SwitchParams) -> f64 {
    buffer_lane_slices(&SwitchParams { buffer_depth: 2, ..*p })
}

/// A narrow address FIFO (6-bit entries) of the given depth.
fn address_queue(depth: usize) -> f64 {
    // 6 FF bits per entry plus pointer/flag control, slice-packed.
    (depth as f64 * 6.0) / 2.0 + 4.0
}

/// Area of the Quarc transceiver (network adapter, §2.4): write controller,
/// quadrant calculator, buffer selector, FCU, four shallow quadrant staging
/// buffers and four address queues.
pub fn quarc_transceiver(p: &SwitchParams) -> AreaBreakdown {
    AreaBreakdown {
        design: "quarc-transceiver",
        width: p.width,
        modules: vec![
            ModuleArea { name: "Quadrant Staging Buffers", slices: 4.0 * staging_lane(p) },
            ModuleArea { name: "Address Queues", slices: 4.0 * address_queue(p.buffer_depth) },
            ModuleArea { name: "Write Controller", slices: write_controller_slices(p) },
            ModuleArea { name: "Quadrant Calculator", slices: 22.0 },
            ModuleArea { name: "Buffer Selector", slices: 9.0 },
            ModuleArea { name: "Flow Control Unit (FCU)", slices: fcu_slices(p) },
        ],
    }
}

/// Area of the Spidergon transceiver: a single staging lane and a single
/// address FIFO — but twice as deep, per §3.1's queue-occupancy variance
/// argument (σ vs σ/√4) — plus the replication control that re-creates
/// broadcast-by-unicast packets.
pub fn spidergon_transceiver(p: &SwitchParams) -> AreaBreakdown {
    AreaBreakdown {
        design: "spidergon-transceiver",
        width: p.width,
        modules: vec![
            ModuleArea { name: "Injection Staging Buffer", slices: staging_lane(p) },
            ModuleArea { name: "Address Queue", slices: address_queue(2 * p.buffer_depth) },
            ModuleArea { name: "Write Controller", slices: write_controller_slices(p) },
            ModuleArea { name: "Replication Control", slices: 26.0 },
            ModuleArea { name: "Flow Control Unit (FCU)", slices: fcu_slices(p) },
        ],
    }
}

/// The Fig. 12 series: `(width, quarc total, spidergon total)` for the three
/// datapath widths the paper synthesised.
pub fn fig12_series() -> Vec<(usize, f64, f64)> {
    [16usize, 32, 64]
        .into_iter()
        .map(|w| {
            let p = SwitchParams::with_width(w);
            (w, quarc_switch(&p).total(), spidergon_switch(&p).total())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduced_exactly() {
        let b = quarc_switch(&SwitchParams::with_width(32));
        let anchors = [
            ("Input Buffers", 735.0),
            ("Write Controller", 7.0),
            ("Crossbar & Mux", 186.0),
            ("VC Arbiter", 30.0),
            ("Flow Control Unit (FCU)", 64.0),
            ("Output Port Controller (OPC)", 431.0),
        ];
        for (name, want) in anchors {
            let got = b.module(name);
            assert!((got - want).abs() < 1.0, "{name}: {got} vs {want}");
        }
        assert!((b.total() - 1453.0).abs() < 2.0, "total {}", b.total());
    }

    #[test]
    fn spidergon_32bit_total_is_1700() {
        let b = spidergon_switch(&SwitchParams::with_width(32));
        assert!((b.total() - 1700.0).abs() < 5.0, "total {}", b.total());
    }

    #[test]
    fn quarc_smaller_at_every_width() {
        for (w, q, s) in fig12_series() {
            assert!(q < s, "width {w}: quarc {q} ≥ spidergon {s}");
        }
    }

    #[test]
    fn totals_grow_with_width() {
        let series = fig12_series();
        assert!(series.windows(2).all(|w| w[0].1 < w[1].1 && w[0].2 < w[1].2));
    }

    #[test]
    fn width_scaling_is_subquadratic() {
        // Doubling the width should less-than-double the area (the control
        // plane is width-independent).
        let series = fig12_series();
        let (q16, q32, q64) = (series[0].1, series[1].1, series[2].1);
        assert!(q32 / q16 < 2.0 && q64 / q32 < 2.0);
        assert!(q32 / q16 > 1.3 && q64 / q32 > 1.3);
    }

    #[test]
    fn both_crossbars_equally_sparse() {
        // The deterministic-routing feeder tables give both switches six 2:1
        // mux stages — the structural form of the paper's "no additional
        // hardware cost" claim.
        assert_eq!(quarc_extra_inputs(), 6);
        assert_eq!(spidergon_extra_inputs(), 6);
    }

    #[test]
    fn transceiver_overhead_is_small() {
        // §3.1: "The difference in resource utilization at the PE between
        // the Quarc and the Spidergon NoCs is very small" — at the *node*
        // level: the Quarc transceiver's extra quadrant queues are a few
        // percent of a node, absorbed by the smaller switch.
        let p = SwitchParams::with_width(32);
        let q_node = quarc_switch(&p).total() + quarc_transceiver(&p).total();
        let s_node = spidergon_switch(&p).total() + spidergon_transceiver(&p).total();
        let rel = (q_node - s_node).abs() / s_node;
        assert!(rel < 0.15, "node-level difference {rel} (q={q_node}, s={s_node})");
    }

    #[test]
    fn node_level_cost_parity() {
        // Switch + transceiver per node: the Quarc node must not exceed the
        // Spidergon node (the headline "no additional hardware cost").
        for w in [16usize, 32, 64] {
            let p = SwitchParams::with_width(w);
            let quarc = quarc_switch(&p).total() + quarc_transceiver(&p).total();
            let spider = spidergon_switch(&p).total() + spidergon_transceiver(&p).total();
            assert!(quarc < spider, "width {w}: {quarc} ≥ {spider}");
        }
    }

    #[test]
    fn display_formats_breakdown() {
        let b = quarc_switch(&SwitchParams::with_width(32));
        let s = b.to_string();
        assert!(s.contains("Input Buffers"));
        assert!(s.contains("TOTAL"));
    }
}
