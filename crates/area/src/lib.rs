//! # quarc-area
//!
//! A structural Virtex-II Pro area model for the Quarc and Spidergon
//! switches and transceivers, standing in for the paper's ISE synthesis runs
//! (§3.1). The model counts FF/LUT primitives per module, packs them into
//! slices and is calibrated once against the paper's Table 1 (32-bit Quarc
//! switch, 1453 slices) and the 1700-slice 32-bit Spidergon total; the
//! 16/32/64-bit series of Fig. 12 then follows from structure.
//!
//! See `DESIGN.md` for why this substitution preserves the paper's claims:
//! the comparison is *structural* (sparser feeder tables, no routing logic,
//! no header-rewrite unit), and those structures are taken directly from
//! `quarc-core`'s topology tables.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod model;
pub mod switch;

pub use model::SwitchParams;
pub use switch::{
    fig12_series, quarc_switch, quarc_transceiver, spidergon_switch, spidergon_transceiver,
    AreaBreakdown, ModuleArea,
};
