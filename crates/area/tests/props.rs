//! Property tests for the area model: monotonicity and sanity over the full
//! legal parameter space, not just the paper's three widths.

use proptest::prelude::*;
use quarc_area::{quarc_switch, quarc_transceiver, spidergon_switch, SwitchParams};

fn params() -> impl Strategy<Value = SwitchParams> {
    (8usize..=128, 2usize..=2, 2usize..=16).prop_map(|(width, vcs, buffer_depth)| SwitchParams {
        width,
        vcs,
        buffer_depth,
    })
}

proptest! {
    /// Area grows monotonically with width for every module composition.
    #[test]
    fn monotone_in_width(p in params()) {
        let wider = SwitchParams { width: p.width + 8, ..p };
        prop_assert!(quarc_switch(&wider).total() > quarc_switch(&p).total());
        prop_assert!(spidergon_switch(&wider).total() > spidergon_switch(&p).total());
        prop_assert!(quarc_transceiver(&wider).total() > quarc_transceiver(&p).total());
    }

    /// Area grows monotonically with buffer depth.
    #[test]
    fn monotone_in_depth(p in params()) {
        let deeper = SwitchParams { buffer_depth: p.buffer_depth + 2, ..p };
        prop_assert!(quarc_switch(&deeper).total() > quarc_switch(&p).total());
    }

    /// The Quarc switch is smaller than the Spidergon switch across the
    /// whole parameter space, not just the paper's widths (§3.1's claim is
    /// structural, so it must hold structurally).
    #[test]
    fn quarc_always_smaller(p in params()) {
        prop_assert!(quarc_switch(&p).total() < spidergon_switch(&p).total());
    }

    /// Module estimates are positive and finite, and the total is their sum.
    #[test]
    fn breakdown_is_consistent(p in params()) {
        for b in [quarc_switch(&p), spidergon_switch(&p)] {
            let sum: f64 = b.modules.iter().map(|m| m.slices).sum();
            prop_assert!((b.total() - sum).abs() < 1e-9);
            for m in &b.modules {
                prop_assert!(m.slices.is_finite() && m.slices > 0.0, "{}", m.name);
            }
        }
    }

    /// Doubling the width never doubles the area (width-independent control
    /// plane) but always adds at least the pure datapath share.
    #[test]
    fn width_scaling_bounds(p in params()) {
        let double = SwitchParams { width: p.width * 2, ..p };
        let ratio = quarc_switch(&double).total() / quarc_switch(&p).total();
        prop_assert!(ratio < 2.0, "ratio {ratio}");
        prop_assert!(ratio > 1.2, "ratio {ratio}");
    }
}
