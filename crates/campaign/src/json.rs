//! A minimal JSON value, writer and parser.
//!
//! The campaign layer serialises every artifact and cache entry itself (the
//! build container has no crates.io access, so serde is unavailable). The
//! representation is chosen for *determinism*: object keys keep insertion
//! order, `u64` values round-trip exactly through [`Json::UInt`], and floats
//! are written with Rust's shortest-round-trip `Display`, so serialising the
//! same result twice yields byte-identical text — which is what the
//! campaign determinism guarantee and the cache round-trip tests assert.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer that fits `u64` (seeds, hashes, counts).
    UInt(u64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered (no sorting, no deduplication).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// This value as `f64` ([`Json::UInt`] converts).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::UInt(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// This value as `u64` (exact only).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// This value as `&str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// This value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// This value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    // JSON has no NaN/Inf; encode as null, never produced by
                    // well-formed campaign results.
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Returns the value and rejects trailing junk.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(ParseError::at(pos, "trailing characters"));
        }
        Ok(value)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl ParseError {
    fn at(offset: usize, message: &'static str) -> Self {
        ParseError { offset, message }
    }
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), ParseError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(ParseError::at(*pos, "unexpected character"))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(ParseError::at(*pos, "unexpected end of input")),
        Some(b'n') => parse_lit(bytes, pos, b"null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, b"true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, b"false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(ParseError::at(*pos, "expected ',' or ']'")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(ParseError::at(*pos, "expected ',' or '}'")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &[u8], value: Json) -> Result<Json, ParseError> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(ParseError::at(*pos, "invalid literal"))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(ParseError::at(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or(ParseError::at(*pos, "short \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| ParseError::at(*pos, "bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| ParseError::at(*pos, "bad \\u escape"))?;
                        // Surrogate pairs are not needed for campaign data;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(ParseError::at(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so this is
                // always well-formed).
                let rest = &bytes[*pos..];
                let s = unsafe { std::str::from_utf8_unchecked(rest) };
                let c = s.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| ParseError::at(start, "bad number"))?;
    if text.is_empty() || text == "-" {
        return Err(ParseError::at(start, "bad number"));
    }
    if !is_float && !text.starts_with('-') {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::UInt(v));
        }
    }
    text.parse::<f64>().map(Json::Num).map_err(|_| ParseError::at(start, "bad number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = Json::obj(vec![
            ("name", Json::Str("fig9 \"grid\"\n".into())),
            ("seed", Json::UInt(u64::MAX)),
            ("rate", Json::Num(0.00125)),
            ("neg", Json::Num(-3.5)),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            ("xs", Json::Arr(vec![Json::UInt(1), Json::Num(2.5), Json::Str("x".into())])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        for text in [v.to_compact(), v.to_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn u64_is_exact() {
        let v = Json::UInt(9_007_199_254_740_993); // 2^53 + 1: not an f64
        let parsed = Json::parse(&v.to_compact()).unwrap();
        assert_eq!(parsed.as_u64(), Some(9_007_199_254_740_993));
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for x in [0.1, 1e-7, 123456.789012345, f64::MIN_POSITIVE, 1e300] {
            let text = Json::Num(x).to_compact();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back, x, "{text}");
        }
    }

    #[test]
    fn serialisation_is_deterministic() {
        let build = || {
            Json::obj(vec![
                ("b", Json::UInt(2)),
                ("a", Json::UInt(1)),
                ("nested", Json::Arr(vec![Json::Num(0.25); 3])),
            ])
        };
        assert_eq!(build().to_pretty(), build().to_pretty());
        // Insertion order is preserved, not sorted.
        assert!(build().to_compact().starts_with("{\"b\""));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("\"abc").is_err());
    }

    #[test]
    fn non_finite_becomes_null() {
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn getters() {
        let v = Json::parse(r#"{"a": 3, "b": [1, 2], "c": "x", "d": false}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("b").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
        assert_eq!(v.get("c").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("d").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("missing"), None);
    }
}
