//! Campaign results: per-point outcomes and their JSON forms.

use crate::json::Json;
use crate::replicate::MergedRun;
use crate::saturation::{Probe, SaturationResult};
use crate::spec::{CampaignPoint, PointWork};

/// What one executed point produced.
#[derive(Debug, Clone, PartialEq)]
pub enum PointOutcomeKind {
    /// A fixed-rate point: the rate plus replication-merged statistics.
    Rate {
        /// Offered load (messages/node/cycle).
        rate: f64,
        /// Replication-merged statistics.
        merged: MergedRun,
    },
    /// A saturation-search point.
    Saturation(SaturationResult),
}

impl PointOutcomeKind {
    /// JSON form (stable field order).
    pub fn to_json(&self) -> Json {
        match self {
            PointOutcomeKind::Rate { rate, merged } => Json::obj(vec![
                ("kind", Json::Str("rate".into())),
                ("rate", Json::Num(*rate)),
                ("merged", merged.to_json()),
            ]),
            PointOutcomeKind::Saturation(s) => Json::obj(vec![
                ("kind", Json::Str("saturation".into())),
                ("sustained", Json::Num(s.sustained)),
                ("collapsed", s.collapsed.map_or(Json::Null, Json::Num)),
                (
                    "probes",
                    Json::Arr(
                        s.probes
                            .iter()
                            .map(|p| {
                                Json::obj(vec![
                                    ("rate", Json::Num(p.rate)),
                                    ("saturated", Json::Bool(p.saturated)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        }
    }

    /// Parse the JSON form.
    pub fn from_json(v: &Json) -> Option<PointOutcomeKind> {
        match v.get("kind")?.as_str()? {
            "rate" => Some(PointOutcomeKind::Rate {
                rate: v.get("rate")?.as_f64()?,
                merged: MergedRun::from_json(v.get("merged")?)?,
            }),
            "saturation" => {
                let probes = v
                    .get("probes")?
                    .as_arr()?
                    .iter()
                    .map(|p| {
                        Some(Probe {
                            rate: p.get("rate")?.as_f64()?,
                            saturated: p.get("saturated")?.as_bool()?,
                        })
                    })
                    .collect::<Option<Vec<_>>>()?;
                Some(PointOutcomeKind::Saturation(SaturationResult {
                    sustained: v.get("sustained")?.as_f64()?,
                    collapsed: match v.get("collapsed")? {
                        Json::Null => None,
                        other => Some(other.as_f64()?),
                    },
                    probes,
                }))
            }
            _ => None,
        }
    }
}

/// One point's full record in the campaign artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct PointResult {
    /// Expansion-order id (artifact ordering).
    pub id: usize,
    /// Human-readable curve label.
    pub label: String,
    /// The expanded point (grid coordinates + work).
    pub point: CampaignPoint,
    /// Content hash (cache key / RNG substream).
    pub content_hash: u64,
    /// Whether this record was served from the result cache.
    pub from_cache: bool,
    /// The measured outcome.
    pub outcome: PointOutcomeKind,
}

impl PointResult {
    /// JSON form for the campaign artifact.
    ///
    /// Deliberately excludes `from_cache` (and any timing): the artifact's
    /// bytes are a pure function of the campaign spec, so cached and
    /// freshly-simulated runs — and runs with different worker counts —
    /// produce identical files.
    pub fn to_json(&self) -> Json {
        let c = &self.point.curve;
        Json::obj(vec![
            ("id", Json::UInt(self.id as u64)),
            ("label", Json::Str(self.label.clone())),
            ("topology", Json::Str(c.topology.to_string())),
            ("n", Json::UInt(c.n as u64)),
            ("msg_len", Json::UInt(c.msg_len as u64)),
            ("beta", Json::Num(c.beta)),
            ("buffer_depth", Json::UInt(c.buffer_depth as u64)),
            ("link_latency", Json::UInt(c.link_latency)),
            ("arb", Json::Str(c.arb.to_string())),
            ("content_hash", Json::Str(format!("{:016x}", self.content_hash))),
            ("outcome", self.outcome.to_json()),
        ])
    }

    /// One CSV row per rate outcome (saturation points summarise the
    /// search). Matches [`csv_header`].
    pub fn csv_row(&self) -> String {
        let c = &self.point.curve;
        let prefix = format!(
            "{},{},{},{},{},{},{},{}",
            self.id, c.topology, c.n, c.msg_len, c.beta, c.buffer_depth, c.link_latency, c.arb
        );
        match &self.outcome {
            PointOutcomeKind::Rate { rate, merged } => format!(
                "{prefix},rate,{rate},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                merged.reps,
                merged.unicast_mean.mean,
                merged.unicast_mean.ci95,
                merged.unicast_p95.map_or_else(|| "-".into(), |p| p.to_string()),
                merged.unicast_samples,
                merged.bcast_reception_mean.mean,
                merged.bcast_completion_mean.mean,
                merged.bcast_completion_mean.ci95,
                merged.bcast_completion_p95.map_or_else(|| "-".into(), |p| p.to_string()),
                merged.bcast_samples,
                merged.throughput.mean,
                merged.saturated,
                merged.converged,
            ),
            PointOutcomeKind::Saturation(s) => format!(
                "{prefix},saturation,{},-,-,-,-,-,-,-,-,-,-,{},{},-\n",
                s.sustained,
                s.probes.len(),
                s.collapsed.map_or_else(|| "-".into(), |v| v.to_string()),
            ),
        }
    }

    /// The CSV header matching [`Self::csv_row`].
    pub fn csv_header() -> &'static str {
        "id,topology,n,msg_len,beta,buffer_depth,link_latency,arb,kind,rate,reps,\
         unicast_mean,unicast_ci95,unicast_p95,unicast_samples,bcast_reception_mean,\
         bcast_completion_mean,bcast_completion_ci95,bcast_completion_p95,bcast_samples,\
         throughput,saturated,converged"
    }

    /// The display label for a point.
    pub fn label_for(point: &CampaignPoint) -> String {
        match point.work {
            PointWork::Rate(rate) => format!("{}-r{rate:.5}", point.curve),
            PointWork::Saturation { .. } => format!("{}-sat", point.curve),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replicate::{Converged, MeanCi};

    fn merged() -> MergedRun {
        MergedRun {
            reps: 2,
            unicast_mean: MeanCi { mean: 20.5, ci95: 1.25, n: 2 },
            bcast_reception_mean: MeanCi { mean: 30.0, ci95: 0.5, n: 2 },
            bcast_completion_mean: MeanCi { mean: 45.0, ci95: 2.0, n: 2 },
            throughput: MeanCi { mean: 0.08, ci95: 0.001, n: 2 },
            unicast_p95: Some(63),
            bcast_completion_p95: Some(127),
            unicast_samples: 1234,
            bcast_samples: 56,
            saturated_reps: 0,
            saturated: false,
            converged: Converged::Yes,
        }
    }

    #[test]
    fn rate_outcome_roundtrips() {
        let outcome = PointOutcomeKind::Rate { rate: 0.0125, merged: merged() };
        let text = outcome.to_json().to_pretty();
        assert_eq!(PointOutcomeKind::from_json(&Json::parse(&text).unwrap()).unwrap(), outcome);
    }

    #[test]
    fn saturation_outcome_roundtrips() {
        let outcome = PointOutcomeKind::Saturation(SaturationResult {
            sustained: 0.021,
            collapsed: None,
            probes: vec![
                Probe { rate: 0.01, saturated: false },
                Probe { rate: 0.04, saturated: true },
            ],
        });
        let text = outcome.to_json().to_compact();
        assert_eq!(PointOutcomeKind::from_json(&Json::parse(&text).unwrap()).unwrap(), outcome);
    }

    #[test]
    fn csv_row_matches_header_width() {
        use crate::spec::{CampaignSpec, RateAxis};
        let mut spec = CampaignSpec::new("csv");
        spec.rates = RateAxis::Explicit(vec![0.01]);
        let point = spec.expand().unwrap().points[0];
        let result = PointResult {
            id: 0,
            label: PointResult::label_for(&point),
            point,
            content_hash: 7,
            from_cache: false,
            outcome: PointOutcomeKind::Rate { rate: 0.01, merged: merged() },
        };
        let header_cols = PointResult::csv_header().split(',').count();
        let row = result.csv_row();
        assert_eq!(row.trim_end().split(',').count(), header_cols);

        let sat = PointResult {
            outcome: PointOutcomeKind::Saturation(SaturationResult {
                sustained: 0.02,
                collapsed: Some(0.022),
                probes: vec![],
            }),
            ..result
        };
        // Saturation rows reuse the last two columns for probe count and
        // collapse rate, keeping the column count identical.
        assert_eq!(sat.csv_row().trim_end().split(',').count(), header_cols);
    }
}
