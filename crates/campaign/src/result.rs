//! Campaign results: per-point outcomes and their JSON forms.

use crate::json::Json;
use crate::replicate::MergedRun;
use crate::saturation::{Probe, SaturationResult};
use crate::spec::{CampaignPoint, PointWork};

/// What one executed point produced.
#[derive(Debug, Clone, PartialEq)]
pub enum PointOutcomeKind {
    /// A fixed-rate point: the rate plus replication-merged statistics.
    Rate {
        /// Offered load (messages/node/cycle).
        rate: f64,
        /// Replication-merged statistics.
        merged: MergedRun,
    },
    /// A saturation-search point.
    Saturation(SaturationResult),
    /// Quarantined: the stall watchdog cut the point off — traffic was
    /// pending but nothing moved for a full window (the expected fate of a
    /// frozen-router fault plan). A structured artifact entry, never a
    /// cache entry: the replications completed *before* the stall stay
    /// cached, the stall itself is re-diagnosed on every run.
    Stalled {
        /// Offered load (messages/node/cycle) of the wedged run.
        rate: f64,
        /// Replication index that stalled.
        rep: u32,
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Where the traffic was wedged (rendered
        /// [`quarc_sim::StallDiagnostics`]).
        diagnostics: String,
    },
    /// Quarantined: the point panicked or exceeded its wall-clock budget.
    /// The rest of the campaign completes around it.
    Failed {
        /// The panic payload or budget report.
        reason: String,
    },
}

impl PointOutcomeKind {
    /// Whether this outcome is a quarantine record rather than a
    /// measurement.
    pub fn is_quarantined(&self) -> bool {
        matches!(self, PointOutcomeKind::Stalled { .. } | PointOutcomeKind::Failed { .. })
    }
}

impl PointOutcomeKind {
    /// JSON form (stable field order).
    pub fn to_json(&self) -> Json {
        match self {
            PointOutcomeKind::Stalled { rate, rep, cycle, diagnostics } => Json::obj(vec![
                ("kind", Json::Str("stalled".into())),
                ("rate", Json::Num(*rate)),
                ("rep", Json::UInt(*rep as u64)),
                ("cycle", Json::UInt(*cycle)),
                ("diagnostics", Json::Str(diagnostics.clone())),
            ]),
            PointOutcomeKind::Failed { reason } => Json::obj(vec![
                ("kind", Json::Str("failed".into())),
                ("reason", Json::Str(reason.clone())),
            ]),
            PointOutcomeKind::Rate { rate, merged } => Json::obj(vec![
                ("kind", Json::Str("rate".into())),
                ("rate", Json::Num(*rate)),
                ("merged", merged.to_json()),
            ]),
            PointOutcomeKind::Saturation(s) => Json::obj(vec![
                ("kind", Json::Str("saturation".into())),
                ("sustained", Json::Num(s.sustained)),
                ("collapsed", s.collapsed.map_or(Json::Null, Json::Num)),
                (
                    "probes",
                    Json::Arr(
                        s.probes
                            .iter()
                            .map(|p| {
                                Json::obj(vec![
                                    ("rate", Json::Num(p.rate)),
                                    ("saturated", Json::Bool(p.saturated)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        }
    }

    /// Parse the JSON form.
    pub fn from_json(v: &Json) -> Option<PointOutcomeKind> {
        match v.get("kind")?.as_str()? {
            "rate" => Some(PointOutcomeKind::Rate {
                rate: v.get("rate")?.as_f64()?,
                merged: MergedRun::from_json(v.get("merged")?)?,
            }),
            "stalled" => Some(PointOutcomeKind::Stalled {
                rate: v.get("rate")?.as_f64()?,
                rep: v.get("rep")?.as_u64()? as u32,
                cycle: v.get("cycle")?.as_u64()?,
                diagnostics: v.get("diagnostics")?.as_str()?.to_string(),
            }),
            "failed" => {
                Some(PointOutcomeKind::Failed { reason: v.get("reason")?.as_str()?.to_string() })
            }
            "saturation" => {
                let probes = v
                    .get("probes")?
                    .as_arr()?
                    .iter()
                    .map(|p| {
                        Some(Probe {
                            rate: p.get("rate")?.as_f64()?,
                            saturated: p.get("saturated")?.as_bool()?,
                        })
                    })
                    .collect::<Option<Vec<_>>>()?;
                Some(PointOutcomeKind::Saturation(SaturationResult {
                    sustained: v.get("sustained")?.as_f64()?,
                    collapsed: match v.get("collapsed")? {
                        Json::Null => None,
                        other => Some(other.as_f64()?),
                    },
                    probes,
                }))
            }
            _ => None,
        }
    }
}

/// One point's full record in the campaign artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct PointResult {
    /// Expansion-order id (artifact ordering).
    pub id: usize,
    /// Human-readable curve label.
    pub label: String,
    /// The expanded point (grid coordinates + work).
    pub point: CampaignPoint,
    /// Content hash (cache key / RNG substream).
    pub content_hash: u64,
    /// Whether this record was served from the result cache.
    pub from_cache: bool,
    /// The measured outcome.
    pub outcome: PointOutcomeKind,
}

impl PointResult {
    /// JSON form for the campaign artifact.
    ///
    /// Deliberately excludes `from_cache` (and any timing): the artifact's
    /// bytes are a pure function of the campaign spec, so cached and
    /// freshly-simulated runs — and runs with different worker counts —
    /// produce identical files.
    pub fn to_json(&self) -> Json {
        let c = &self.point.curve;
        Json::obj(vec![
            ("id", Json::UInt(self.id as u64)),
            ("label", Json::Str(self.label.clone())),
            ("topology", Json::Str(c.topology.to_string())),
            ("n", Json::UInt(c.n as u64)),
            ("msg_len", Json::UInt(c.msg_len as u64)),
            ("beta", Json::Num(c.beta)),
            ("buffer_depth", Json::UInt(c.buffer_depth as u64)),
            ("link_latency", Json::UInt(c.link_latency)),
            ("arb", Json::Str(c.arb.to_string())),
            ("fault", Json::Str(c.fault.to_string())),
            ("recovery", Json::Str(c.recovery.to_string())),
            ("content_hash", Json::Str(format!("{:016x}", self.content_hash))),
            ("outcome", self.outcome.to_json()),
        ])
    }

    /// One CSV row per rate outcome (saturation points summarise the
    /// search). Matches [`csv_header`].
    pub fn csv_row(&self) -> String {
        let c = &self.point.curve;
        let prefix = format!(
            "{},{},{},{},{},{},{},{}",
            self.id, c.topology, c.n, c.msg_len, c.beta, c.buffer_depth, c.link_latency, c.arb
        );
        match &self.outcome {
            PointOutcomeKind::Rate { rate, merged } => format!(
                "{prefix},rate,{rate},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                merged.reps,
                merged.unicast_mean.mean,
                merged.unicast_mean.ci95,
                merged.unicast_p95.map_or_else(|| "-".into(), |p| p.to_string()),
                merged.unicast_samples,
                merged.bcast_reception_mean.mean,
                merged.bcast_completion_mean.mean,
                merged.bcast_completion_mean.ci95,
                merged.bcast_completion_p95.map_or_else(|| "-".into(), |p| p.to_string()),
                merged.bcast_samples,
                merged.throughput.mean,
                merged.delivered_fraction.mean,
                merged.undeliverable,
                merged.retransmissions,
                merged.recovered_receivers,
                merged.saturated,
                merged.converged,
            ),
            PointOutcomeKind::Saturation(s) => format!(
                "{prefix},saturation,{},-,-,-,-,-,-,-,-,-,-,-,-,-,-,{},{},-\n",
                s.sustained,
                s.probes.len(),
                s.collapsed.map_or_else(|| "-".into(), |v| v.to_string()),
            ),
            PointOutcomeKind::Stalled { rate, rep, cycle, .. } => format!(
                // The rep/cycle coordinates land in the reps/saturated
                // columns; the full diagnostics live in the JSON artifact.
                "{prefix},stalled,{rate},{rep},-,-,-,-,-,-,-,-,-,-,-,-,-,-,cycle={cycle},-\n",
            ),
            PointOutcomeKind::Failed { .. } => {
                let blanks = ["-"; 18].join(",");
                format!("{prefix},failed,{blanks}\n")
            }
        }
    }

    /// The CSV header matching [`Self::csv_row`].
    pub fn csv_header() -> &'static str {
        "id,topology,n,msg_len,beta,buffer_depth,link_latency,arb,kind,rate,reps,\
         unicast_mean,unicast_ci95,unicast_p95,unicast_samples,bcast_reception_mean,\
         bcast_completion_mean,bcast_completion_ci95,bcast_completion_p95,bcast_samples,\
         throughput,delivered_fraction,undeliverable,retransmissions,recovered_receivers,\
         saturated,converged"
    }

    /// The display label for a point.
    pub fn label_for(point: &CampaignPoint) -> String {
        match point.work {
            PointWork::Rate(rate) => format!("{}-r{rate:.5}", point.curve),
            PointWork::Saturation { .. } => format!("{}-sat", point.curve),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replicate::{Converged, MeanCi};

    fn merged() -> MergedRun {
        MergedRun {
            reps: 2,
            unicast_mean: MeanCi { mean: 20.5, ci95: 1.25, n: 2 },
            bcast_reception_mean: MeanCi { mean: 30.0, ci95: 0.5, n: 2 },
            bcast_completion_mean: MeanCi { mean: 45.0, ci95: 2.0, n: 2 },
            throughput: MeanCi { mean: 0.08, ci95: 0.001, n: 2 },
            unicast_p95: Some(63),
            bcast_completion_p95: Some(127),
            unicast_samples: 1234,
            bcast_samples: 56,
            saturated_reps: 0,
            saturated: false,
            delivered_fraction: MeanCi { mean: 0.97, ci95: 0.01, n: 2 },
            undeliverable: 12,
            retransmissions: 9,
            recovered_receivers: 5,
            converged: Converged::Yes,
        }
    }

    #[test]
    fn rate_outcome_roundtrips() {
        let outcome = PointOutcomeKind::Rate { rate: 0.0125, merged: merged() };
        let text = outcome.to_json().to_pretty();
        assert_eq!(PointOutcomeKind::from_json(&Json::parse(&text).unwrap()).unwrap(), outcome);
    }

    #[test]
    fn saturation_outcome_roundtrips() {
        let outcome = PointOutcomeKind::Saturation(SaturationResult {
            sustained: 0.021,
            collapsed: None,
            probes: vec![
                Probe { rate: 0.01, saturated: false },
                Probe { rate: 0.04, saturated: true },
            ],
        });
        let text = outcome.to_json().to_compact();
        assert_eq!(PointOutcomeKind::from_json(&Json::parse(&text).unwrap()).unwrap(), outcome);
    }

    #[test]
    fn csv_row_matches_header_width() {
        use crate::spec::{CampaignSpec, RateAxis};
        let mut spec = CampaignSpec::new("csv");
        spec.rates = RateAxis::Explicit(vec![0.01]);
        let point = spec.expand().unwrap().points[0];
        let result = PointResult {
            id: 0,
            label: PointResult::label_for(&point),
            point,
            content_hash: 7,
            from_cache: false,
            outcome: PointOutcomeKind::Rate { rate: 0.01, merged: merged() },
        };
        let header_cols = PointResult::csv_header().split(',').count();
        let row = result.csv_row();
        assert_eq!(row.trim_end().split(',').count(), header_cols);

        let sat = PointResult {
            outcome: PointOutcomeKind::Saturation(SaturationResult {
                sustained: 0.02,
                collapsed: Some(0.022),
                probes: vec![],
            }),
            ..result.clone()
        };
        // Saturation rows reuse the last two columns for probe count and
        // collapse rate, keeping the column count identical.
        assert_eq!(sat.csv_row().trim_end().split(',').count(), header_cols);

        // Quarantine rows keep the table rectangular too.
        let stalled = PointResult {
            outcome: PointOutcomeKind::Stalled {
                rate: 0.01,
                rep: 1,
                cycle: 42_000,
                diagnostics: "backlog=3 buffered=9".into(),
            },
            ..result.clone()
        };
        assert_eq!(stalled.csv_row().trim_end().split(',').count(), header_cols);
        let failed =
            PointResult { outcome: PointOutcomeKind::Failed { reason: "boom".into() }, ..result };
        assert_eq!(failed.csv_row().trim_end().split(',').count(), header_cols);
    }

    #[test]
    fn quarantine_outcomes_roundtrip() {
        for outcome in [
            PointOutcomeKind::Stalled {
                rate: 0.02,
                rep: 3,
                cycle: 77_000,
                diagnostics: "backlog=12 buffered=40 busiest=[5:12]".into(),
            },
            PointOutcomeKind::Failed { reason: "panicked: chaos".into() },
        ] {
            let text = outcome.to_json().to_pretty();
            assert!(outcome.is_quarantined());
            assert_eq!(PointOutcomeKind::from_json(&Json::parse(&text).unwrap()).unwrap(), outcome);
        }
    }
}
