//! A work-stealing thread-pool executor over plain `std` threads.
//!
//! Campaign points vary wildly in cost — a saturated 64-node point simulates
//! an order of magnitude slower than an idle 16-node one — so static
//! sharding alone leaves workers idle. Each worker owns a deque seeded
//! round-robin; it pops its own work from the front and, when empty, steals
//! from the *back* of the longest victim deque (classic Arora-Blumofe-Plaxton
//! shape, coarse Mutex deques instead of lock-free CAS — point execution
//! dominates by orders of magnitude, so queue contention is irrelevant).
//!
//! Tasks may be **re-enqueueable**: [`run_work_stealing_tasks`] lets a task
//! return [`Step::Yield`] to park its state and go back on the queue instead
//! of running to completion. Convergence-controlled campaign points use this
//! to execute one replication batch at a time, so a point that needs 40
//! replications interleaves with the rest of the grid instead of pinning a
//! worker; idle workers wait for re-enqueued work rather than exiting while
//! any task is unfinished.
//!
//! Determinism: the step function receives the item, its index and its own
//! state, and must be a pure function of them; results land in a slot vector
//! by index, so the output is independent of worker count, stealing order
//! and timing.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// What one execution step of a re-enqueueable task produced.
#[derive(Debug)]
pub enum Step<S, R> {
    /// Not finished: park this state and re-enqueue the task.
    Yield(S),
    /// Finished with this result.
    Done(R),
}

/// Per-worker execution accounting from one pool run. Pure telemetry —
/// results never depend on it, and the cost is two `Instant` reads per task
/// step (point execution dominates by orders of magnitude).
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Task steps this worker executed.
    pub steps: u64,
    /// Steps whose task came off another worker's deque.
    pub steals: u64,
    /// Wall time spent inside `step` calls.
    pub busy: Duration,
    /// The worker thread's total lifetime.
    pub wall: Duration,
}

impl WorkerStats {
    /// Fraction of the worker's lifetime spent executing task steps (the
    /// rest is queue checks and idle waits).
    pub fn busy_fraction(&self) -> f64 {
        let wall = self.wall.as_secs_f64();
        if wall <= 0.0 {
            0.0
        } else {
            (self.busy.as_secs_f64() / wall).min(1.0)
        }
    }
}

/// Run re-enqueueable tasks over every item on `workers` threads; results in
/// item order.
///
/// Each task starts from `init(idx, item)`; `step(idx, item, state)` is then
/// called — possibly repeatedly, possibly on different workers — until it
/// returns [`Step::Done`]. A yielded task goes to the back of the executing
/// worker's own deque, so its next batch queues behind work the worker
/// already owns and behind anything a thief grabs first.
///
/// Panics in `init`/`step` are propagated: a panicking worker raises a
/// poison flag on its way out so the idle-wait loops exit instead of
/// waiting forever for a task that will never finish, and the scope join
/// then rethrows the panic.
pub fn run_work_stealing_tasks<T, S, R, I, F>(
    items: &[T],
    workers: usize,
    init: I,
    step: F,
) -> Vec<R>
where
    T: Sync,
    S: Send,
    R: Send,
    I: Fn(usize, &T) -> S + Sync,
    F: Fn(usize, &T, S) -> Step<S, R> + Sync,
{
    run_work_stealing_tasks_with_stats(items, workers, init, step).0
}

/// [`run_work_stealing_tasks`] plus per-worker [`WorkerStats`] (one entry
/// per pool thread actually spawned).
pub fn run_work_stealing_tasks_with_stats<T, S, R, I, F>(
    items: &[T],
    workers: usize,
    init: I,
    step: F,
) -> (Vec<R>, Vec<WorkerStats>)
where
    T: Sync,
    S: Send,
    R: Send,
    I: Fn(usize, &T) -> S + Sync,
    F: Fn(usize, &T, S) -> Step<S, R> + Sync,
{
    assert!(workers >= 1, "need at least one worker");
    let workers = workers.min(items.len()).max(1);

    // Round-robin initial shards: worker w owns items w, w+W, w+2W, …
    let deques: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|w| Mutex::new((w..items.len()).step_by(workers).collect())).collect();
    let states: Vec<Mutex<Option<S>>> =
        items.iter().enumerate().map(|(i, item)| Mutex::new(Some(init(i, item)))).collect();
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    let stats: Vec<Mutex<WorkerStats>> =
        (0..workers).map(|_| Mutex::new(WorkerStats::default())).collect();
    // Tasks not yet Done. Workers must outlive every *yielding* task, not
    // just the initial queue — an idle worker waits on this counter instead
    // of exiting, so a re-enqueued batch can still be stolen.
    let remaining = AtomicUsize::new(items.len());
    // Raised when any worker panics: its task will never reach Done, so
    // idle workers must stop waiting on `remaining` or the scope join (and
    // therefore the panic propagation) would deadlock.
    let poisoned = AtomicBool::new(false);

    /// Sets the poison flag if the owning worker unwinds.
    struct PoisonOnPanic<'a>(&'a AtomicBool);
    impl Drop for PoisonOnPanic<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                self.0.store(true, Ordering::Release);
            }
        }
    }

    std::thread::scope(|scope| {
        for w in 0..workers {
            let deques = &deques;
            let states = &states;
            let slots = &slots;
            let stats = &stats;
            let remaining = &remaining;
            let poisoned = &poisoned;
            let step = &step;
            scope.spawn(move || {
                let _guard = PoisonOnPanic(poisoned);
                let born = Instant::now();
                let mut local = WorkerStats::default();
                loop {
                    if remaining.load(Ordering::Acquire) == 0 || poisoned.load(Ordering::Acquire) {
                        break;
                    }
                    // Own work first (front: preserves shard locality) …
                    let next = deques[w].lock().expect("deque poisoned").pop_front();
                    let idx = match next {
                        Some(idx) => idx,
                        // … then steal from the back of the fullest victim.
                        None => match steal(deques, w) {
                            Some(idx) => {
                                local.steals += 1;
                                idx
                            }
                            None => {
                                // Nothing queued, but unfinished tasks may
                                // yield more batches: wait instead of
                                // exiting. Point execution runs milliseconds
                                // to minutes, so a sub-millisecond nap costs
                                // nothing.
                                std::thread::sleep(Duration::from_micros(200));
                                continue;
                            }
                        },
                    };
                    let state = states[idx]
                        .lock()
                        .expect("state poisoned")
                        .take()
                        .expect("a queued task always has parked state");
                    let t0 = Instant::now();
                    let outcome = step(idx, &items[idx], state);
                    local.busy += t0.elapsed();
                    local.steps += 1;
                    match outcome {
                        Step::Yield(state) => {
                            *states[idx].lock().expect("state poisoned") = Some(state);
                            deques[w].lock().expect("deque poisoned").push_back(idx);
                        }
                        Step::Done(result) => {
                            *slots[idx].lock().expect("slot poisoned") = Some(result);
                            remaining.fetch_sub(1, Ordering::Release);
                        }
                    }
                }
                local.wall = born.elapsed();
                *stats[w].lock().expect("stats poisoned") = local;
            });
        }
    });

    let results = slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("slot poisoned").expect("every item was executed"))
        .collect();
    let stats = stats.into_iter().map(|s| s.into_inner().expect("stats poisoned")).collect();
    (results, stats)
}

/// Run `f` over every item on `workers` threads; results in item order.
///
/// The single-step special case of [`run_work_stealing_tasks`].
pub fn run_work_stealing<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    run_work_stealing_tasks(items, workers, |_, _| (), |idx, item, ()| Step::Done(f(idx, item)))
}

fn steal(deques: &[Mutex<VecDeque<usize>>], thief: usize) -> Option<usize> {
    // Pick the victim with the most queued work (snapshot; racy but only
    // affects efficiency, never correctness).
    let mut best: Option<(usize, usize)> = None;
    for (v, deque) in deques.iter().enumerate() {
        if v == thief {
            continue;
        }
        let len = deque.lock().expect("deque poisoned").len();
        if len > 0 && best.is_none_or(|(_, blen)| len > blen) {
            best = Some((v, len));
        }
    }
    let (victim, _) = best?;
    deques[victim].lock().expect("deque poisoned").pop_back()
}

/// The default worker count: the machine's available parallelism.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_item_order() {
        let items: Vec<usize> = (0..97).collect();
        let results = run_work_stealing(&items, 8, |idx, &item| {
            assert_eq!(idx, item);
            item * 3
        });
        assert_eq!(results, (0..97).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        run_work_stealing(&(0..50).collect::<Vec<_>>(), 4, |idx, _| {
            counts[idx].fetch_add(1, Ordering::SeqCst);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn uneven_work_is_stolen() {
        // One pathological item 100× the cost of the rest: with 4 workers
        // the other shards must drain via stealing long before it finishes.
        let items: Vec<u64> = (0..40).map(|i| if i == 0 { 2_000_000 } else { 20_000 }).collect();
        let results = run_work_stealing(&items, 4, |_, &spins| {
            let mut acc = 0u64;
            for i in 0..spins {
                acc = acc.wrapping_add(i).rotate_left(7);
            }
            std::hint::black_box(acc);
            spins
        });
        assert_eq!(results, items);
    }

    #[test]
    fn single_worker_and_oversubscription_work() {
        let items = vec![1, 2, 3];
        assert_eq!(run_work_stealing(&items, 1, |_, &x| x), items);
        assert_eq!(run_work_stealing(&items, 64, |_, &x| x), items);
    }

    #[test]
    fn empty_input_is_fine() {
        let results: Vec<u32> = run_work_stealing(&[] as &[u32], 4, |_, &x| x);
        assert!(results.is_empty());
    }

    #[test]
    fn yielding_tasks_run_to_completion() {
        // Item k yields k times before finishing; the result counts the
        // steps actually executed. Every worker count must agree.
        let items: Vec<u32> = (0..23).collect();
        for workers in [1, 4, 16] {
            let results = run_work_stealing_tasks(
                &items,
                workers,
                |_, &k| k, // state: yields left
                |_, &k, left| {
                    if left == 0 {
                        Step::Done(k + 1) // k yields + 1 finishing step
                    } else {
                        Step::Yield(left - 1)
                    }
                },
            );
            assert_eq!(results, (0..23).map(|k| k + 1).collect::<Vec<_>>(), "{workers} workers");
        }
    }

    #[test]
    #[should_panic(expected = "a scoped thread panicked")]
    fn panicking_task_propagates_instead_of_deadlocking() {
        // A panicked task never reaches Done, so `remaining` never hits
        // zero — without the poison flag the other workers would wait for
        // it forever and the panic would never surface.
        let items: Vec<u32> = (0..8).collect();
        run_work_stealing_tasks(
            &items,
            4,
            |_, _| (),
            |idx, _, ()| {
                if idx == 3 {
                    panic!("task 3 exploded");
                }
                Step::Done(idx)
            },
        );
    }

    #[test]
    fn workers_outlive_late_yields() {
        // One long-running multi-step task and many trivial ones: the
        // trivial ones drain instantly, then the long task keeps yielding.
        // Idle workers must wait (not exit) so the tail batches can still be
        // picked up — the run completing at all under a 4-worker pool with
        // sleeps between yields exercises exactly that window.
        let items: Vec<u64> = (0..12).map(|i| u64::from(i == 0) * 6).collect();
        let results = run_work_stealing_tasks(
            &items,
            4,
            |_, _| 0u64,
            |_, &yields, done| {
                if done >= yields {
                    Step::Done(done)
                } else {
                    std::thread::sleep(Duration::from_millis(2));
                    Step::Yield(done + 1)
                }
            },
        );
        assert_eq!(results[0], 6);
        assert!(results[1..].iter().all(|&r| r == 0));
    }
}
