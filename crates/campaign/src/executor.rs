//! A work-stealing thread-pool executor over plain `std` threads.
//!
//! Campaign points vary wildly in cost — a saturated 64-node point simulates
//! an order of magnitude slower than an idle 16-node one — so static
//! sharding alone leaves workers idle. Each worker owns a deque seeded
//! round-robin; it pops its own work from the front and, when empty, steals
//! from the *back* of the longest victim deque (classic Arora-Blumofe-Plaxton
//! shape, coarse Mutex deques instead of lock-free CAS — point execution
//! dominates by orders of magnitude, so queue contention is irrelevant).
//!
//! Determinism: `f` receives the item and its index and must be a pure
//! function of them; results land in a slot vector by index, so the output
//! is independent of worker count, stealing order and timing.

use std::collections::VecDeque;
use std::sync::Mutex;

/// Run `f` over every item on `workers` threads; results in item order.
///
/// Panics in `f` are propagated (the scope joins all workers first).
pub fn run_work_stealing<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    assert!(workers >= 1, "need at least one worker");
    let workers = workers.min(items.len()).max(1);

    // Round-robin initial shards: worker w owns items w, w+W, w+2W, …
    let deques: Vec<Mutex<VecDeque<usize>>> =
        (0..workers).map(|w| Mutex::new((w..items.len()).step_by(workers).collect())).collect();
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for w in 0..workers {
            let deques = &deques;
            let slots = &slots;
            let f = &f;
            scope.spawn(move || loop {
                // Own work first (front: preserves shard locality) …
                let next = deques[w].lock().expect("deque poisoned").pop_front();
                let idx = match next {
                    Some(idx) => idx,
                    // … then steal from the back of the fullest victim.
                    None => match steal(deques, w) {
                        Some(idx) => idx,
                        None => return,
                    },
                };
                let result = f(idx, &items[idx]);
                *slots[idx].lock().expect("slot poisoned") = Some(result);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("slot poisoned").expect("every item was executed"))
        .collect()
}

fn steal(deques: &[Mutex<VecDeque<usize>>], thief: usize) -> Option<usize> {
    // Pick the victim with the most queued work (snapshot; racy but only
    // affects efficiency, never correctness).
    let mut best: Option<(usize, usize)> = None;
    for (v, deque) in deques.iter().enumerate() {
        if v == thief {
            continue;
        }
        let len = deque.lock().expect("deque poisoned").len();
        if len > 0 && best.map_or(true, |(_, blen)| len > blen) {
            best = Some((v, len));
        }
    }
    let (victim, _) = best?;
    deques[victim].lock().expect("deque poisoned").pop_back()
}

/// The default worker count: the machine's available parallelism.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_are_in_item_order() {
        let items: Vec<usize> = (0..97).collect();
        let results = run_work_stealing(&items, 8, |idx, &item| {
            assert_eq!(idx, item);
            item * 3
        });
        assert_eq!(results, (0..97).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let counts: Vec<AtomicUsize> = (0..50).map(|_| AtomicUsize::new(0)).collect();
        run_work_stealing(&(0..50).collect::<Vec<_>>(), 4, |idx, _| {
            counts[idx].fetch_add(1, Ordering::SeqCst);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn uneven_work_is_stolen() {
        // One pathological item 100× the cost of the rest: with 4 workers
        // the other shards must drain via stealing long before it finishes.
        let items: Vec<u64> = (0..40).map(|i| if i == 0 { 2_000_000 } else { 20_000 }).collect();
        let results = run_work_stealing(&items, 4, |_, &spins| {
            let mut acc = 0u64;
            for i in 0..spins {
                acc = acc.wrapping_add(i).rotate_left(7);
            }
            std::hint::black_box(acc);
            spins
        });
        assert_eq!(results, items);
    }

    #[test]
    fn single_worker_and_oversubscription_work() {
        let items = vec![1, 2, 3];
        assert_eq!(run_work_stealing(&items, 1, |_, &x| x), items);
        assert_eq!(run_work_stealing(&items, 64, |_, &x| x), items);
    }

    #[test]
    fn empty_input_is_fine() {
        let results: Vec<u32> = run_work_stealing(&[] as &[u32], 4, |_, &x| x);
        assert!(results.is_empty());
    }
}
