//! Campaign orchestration: expand → consult cache → execute in parallel →
//! persist → render artifacts.

use crate::artifact;
use crate::cache::ResultCache;
use crate::executor::{default_workers, run_work_stealing_tasks_with_stats, Step, WorkerStats};
use crate::json::Json;
use crate::replicate::{
    decide, extend_series_checked, merge_series, replication_seed, Converged, Decision,
    RepInterrupt, RepOutcome,
};
use crate::result::{PointOutcomeKind, PointResult};
use crate::saturation::find_saturation;
use crate::spec::{CampaignPoint, CampaignSpec, PointWork, SpecError};
use quarc_sim::{run_point, PointSpec};
use std::fmt;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// How many replications a convergence-controlled point simulates per trip
/// through the work-stealing pool when the caller leaves
/// [`CampaignOptions::batch_reps`] at 0.
pub const DEFAULT_BATCH_REPS: u32 = 4;

/// Execution options orthogonal to the experiment definition. None of them
/// may change any measured number — only where results come from, where they
/// go, and how many threads produce them.
#[derive(Debug, Clone, Default)]
pub struct CampaignOptions {
    /// Worker threads; `0` means the machine's available parallelism.
    pub workers: usize,
    /// Result-cache directory (no caching when `None`).
    pub cache_dir: Option<PathBuf>,
    /// Artifact output directory (no files written when `None`).
    pub out_dir: Option<PathBuf>,
    /// Ignore cache *reads* (entries are still written back).
    pub force: bool,
    /// Suppress per-point progress on stderr.
    pub quiet: bool,
    /// Replications a convergence-controlled point simulates per trip
    /// through the pool (`0` = [`DEFAULT_BATCH_REPS`]). An execution knob:
    /// the canonical stopping rule makes reported numbers independent of it.
    pub batch_reps: u32,
    /// Per-point wall-clock budget: a point that has already burned this
    /// much simulation time without finishing is quarantined as
    /// [`PointOutcomeKind::Failed`] instead of pinning a worker. Checked at
    /// batch boundaries *and* cooperatively inside each replication (at the
    /// stall watchdog's cadence), so a single runaway replication yields
    /// mid-run. `None` = unbounded. Never caches and never alters a
    /// completed point's numbers — a budget generous enough for every point
    /// to finish reproduces the unbudgeted campaign byte for byte.
    pub point_timeout: Option<Duration>,
    /// Test-only chaos hook: points whose expansion id is listed here panic
    /// on their first execution step, exercising the fail-soft path. Hidden
    /// because campaigns must never use it; the fail-soft tests must.
    #[doc(hidden)]
    pub chaos_panic_ids: Vec<usize>,
}

/// What a campaign run produced.
#[derive(Debug)]
pub struct CampaignReport {
    /// Per-point results in expansion order.
    pub results: Vec<PointResult>,
    /// Grid combinations dropped at expansion (always recorded; empty today).
    pub skipped: Vec<String>,
    /// Points that simulated at least one replication (or probe) this run —
    /// including cached points that only needed a top-up.
    pub executed: usize,
    /// Points served entirely from the result cache.
    pub from_cache: usize,
    /// Replications simulated this run, across all points.
    pub reps_simulated: usize,
    /// Cached replications reused in reported merges this run.
    pub reps_cached: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Artifact files written (empty without an output directory).
    pub artifacts: Vec<PathBuf>,
    /// Wall-clock duration of the execution phase.
    pub wall: Duration,
    /// Per-worker pool accounting (busy fraction, steps, steals).
    pub worker_stats: Vec<WorkerStats>,
    /// Per-point execution accounting, in expansion order.
    pub point_telemetry: Vec<PointTelemetry>,
}

/// How one point was executed: where its replications came from and how
/// long the simulation work took. Pure telemetry — kept out of the campaign
/// JSON/CSV artifacts so those stay pure functions of the spec.
#[derive(Debug, Clone)]
pub struct PointTelemetry {
    /// Expansion-order id (matches [`PointResult::id`]).
    pub id: usize,
    /// The point's display label.
    pub label: String,
    /// Wall time spent simulating this point across all its batches
    /// (zero-ish for a pure cache hit).
    pub wall: Duration,
    /// Replications simulated this run.
    pub simulated_reps: usize,
    /// Cached replications reused in the reported merge.
    pub reps_cached: usize,
    /// Served entirely from the result cache.
    pub from_cache: bool,
    /// Quarantined by the per-point wall-clock budget
    /// ([`CampaignOptions::point_timeout`]).
    pub timed_out: bool,
}

impl PointTelemetry {
    /// Whether this point was a convergence/replication top-up: cached work
    /// was reused but the tail still had to be simulated.
    pub fn is_topup(&self) -> bool {
        self.simulated_reps > 0 && self.reps_cached > 0
    }
}

impl CampaignReport {
    /// The JSON artifact document (pure function of spec + results).
    pub fn to_json(&self, spec: &CampaignSpec) -> crate::json::Json {
        artifact::campaign_json(spec, &self.results, &self.skipped)
    }

    /// The CSV artifact table.
    pub fn csv(&self) -> String {
        artifact::campaign_csv(&self.results)
    }

    /// Points that reused cached replications but still simulated a tail.
    pub fn topups(&self) -> usize {
        self.point_telemetry.iter().filter(|p| p.is_topup()).count()
    }

    /// Points quarantined this run (stalled + failed). A fail-soft campaign
    /// still exits 0 with quarantined points — callers that want to gate on
    /// them read this.
    pub fn quarantined(&self) -> usize {
        self.results.iter().filter(|r| r.outcome.is_quarantined()).count()
    }

    /// Points whose stall watchdog fired.
    pub fn stalled(&self) -> usize {
        self.results
            .iter()
            .filter(|r| matches!(r.outcome, PointOutcomeKind::Stalled { .. }))
            .count()
    }

    /// Points that panicked or blew their wall-clock budget.
    pub fn failed(&self) -> usize {
        self.results.iter().filter(|r| matches!(r.outcome, PointOutcomeKind::Failed { .. })).count()
    }

    /// The execution-telemetry document. Deliberately a *separate* artifact
    /// from [`CampaignReport::to_json`]: it records timing, cache traffic
    /// and scheduling — everything the pure campaign artifact must exclude.
    pub fn telemetry_json(&self, spec: &CampaignSpec) -> Json {
        Json::obj(vec![
            ("campaign", Json::Str(spec.name.clone())),
            ("kind", Json::Str("execution-telemetry".into())),
            ("wall_s", Json::Num(self.wall.as_secs_f64())),
            ("workers", Json::UInt(self.workers as u64)),
            (
                "quarantine",
                Json::obj(vec![
                    ("stalled", Json::UInt(self.stalled() as u64)),
                    ("failed", Json::UInt(self.failed() as u64)),
                    (
                        "timed_out",
                        Json::UInt(
                            self.point_telemetry.iter().filter(|p| p.timed_out).count() as u64
                        ),
                    ),
                ]),
            ),
            (
                "cache",
                Json::obj(vec![
                    ("hits", Json::UInt(self.from_cache as u64)),
                    ("misses", Json::UInt((self.executed - self.topups()) as u64)),
                    ("topups", Json::UInt(self.topups() as u64)),
                    ("reps_simulated", Json::UInt(self.reps_simulated as u64)),
                    ("reps_cached", Json::UInt(self.reps_cached as u64)),
                ]),
            ),
            (
                "worker_stats",
                Json::Arr(
                    self.worker_stats
                        .iter()
                        .enumerate()
                        .map(|(w, s)| {
                            Json::obj(vec![
                                ("worker", Json::UInt(w as u64)),
                                ("steps", Json::UInt(s.steps)),
                                ("steals", Json::UInt(s.steals)),
                                ("busy_s", Json::Num(s.busy.as_secs_f64())),
                                ("wall_s", Json::Num(s.wall.as_secs_f64())),
                                ("busy_fraction", Json::Num(s.busy_fraction())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "points",
                Json::Arr(
                    self.point_telemetry
                        .iter()
                        .map(|p| {
                            let how = if p.from_cache {
                                "cache"
                            } else if p.is_topup() {
                                "top-up"
                            } else {
                                "ran"
                            };
                            Json::obj(vec![
                                ("id", Json::UInt(p.id as u64)),
                                ("label", Json::Str(p.label.clone())),
                                ("how", Json::Str(how.into())),
                                ("wall_s", Json::Num(p.wall.as_secs_f64())),
                                ("reps_simulated", Json::UInt(p.simulated_reps as u64)),
                                ("reps_cached", Json::UInt(p.reps_cached as u64)),
                                ("timed_out", Json::Bool(p.timed_out)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// A campaign failure.
#[derive(Debug)]
pub enum CampaignError {
    /// The spec failed validation/expansion.
    Spec(SpecError),
    /// Cache or artifact I/O failed.
    Io(io::Error),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Spec(e) => write!(f, "{e}"),
            CampaignError::Io(e) => write!(f, "campaign I/O error: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<SpecError> for CampaignError {
    fn from(e: SpecError) -> Self {
        CampaignError::Spec(e)
    }
}

impl From<io::Error> for CampaignError {
    fn from(e: io::Error) -> Self {
        CampaignError::Io(e)
    }
}

/// Simulate one point to completion (no cache involvement). Pure function
/// of `(point, spec)` — see the determinism notes on [`run_campaign`].
pub fn execute_point(point: &CampaignPoint, spec: &CampaignSpec) -> PointOutcomeKind {
    let mut task = PointTask::new(*point);
    let ctx = PointContext {
        spec,
        cache: None,
        force: false,
        batch: u32::MAX, // no cache to interleave with: run every batch at once
        quiet: true,
        point_timeout: None,
        chaos_panic_ids: &[],
    };
    loop {
        match task.step(&ctx) {
            Step::Yield(next) => task = next,
            Step::Done(done) => return done.outcome,
        }
    }
}

/// Everything a point task needs besides its own state.
struct PointContext<'a> {
    spec: &'a CampaignSpec,
    cache: Option<&'a ResultCache>,
    force: bool,
    batch: u32,
    quiet: bool,
    point_timeout: Option<Duration>,
    chaos_panic_ids: &'a [usize],
}

/// The parked state of one point between trips through the pool.
struct PointTask {
    point: CampaignPoint,
    /// Replication series so far (cache prefix + simulated tail).
    series: Vec<RepOutcome>,
    /// Whether the cache has been consulted yet (first step only).
    consulted_cache: bool,
    /// Replications loaded from the cache.
    cached_reps: usize,
    /// Replications simulated by this run.
    simulated_reps: usize,
    /// Wall time across this point's batches so far.
    busy: Duration,
}

/// A completed point plus its execution accounting.
struct PointDone {
    outcome: PointOutcomeKind,
    /// Replications simulated by this run (0 for a full cache hit).
    simulated_reps: usize,
    /// Cached replications that entered the reported merge.
    reps_cached_used: usize,
    /// Served entirely from the cache.
    from_cache: bool,
    /// Wall time across all of this point's batches.
    wall: Duration,
    /// Quarantined by the per-point wall-clock budget.
    timed_out: bool,
}

/// Best-effort human rendering of a panic payload.
fn panic_reason(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl PointTask {
    fn new(point: CampaignPoint) -> PointTask {
        PointTask {
            point,
            series: Vec::new(),
            consulted_cache: false,
            cached_reps: 0,
            simulated_reps: 0,
            busy: Duration::ZERO,
        }
    }

    /// Run one batch of this point, fail-soft. A panic anywhere inside the
    /// batch — a simulator bug, a poisoned cache entry, the chaos hook — is
    /// caught here and turned into a structured [`PointOutcomeKind::Failed`]
    /// so the rest of the campaign keeps running; the per-point wall-clock
    /// budget is enforced at the same boundary. Nothing quarantined is ever
    /// cached.
    fn step(self, ctx: &PointContext<'_>) -> Step<PointTask, PointDone> {
        let busy = self.busy;
        if ctx.chaos_panic_ids.contains(&self.point.id) {
            let caught = catch_unwind(AssertUnwindSafe(|| {
                panic!("chaos hook: point {} configured to panic", self.point.id)
            }));
            let payload = caught.expect_err("the chaos closure always panics");
            return Step::Done(PointDone {
                outcome: PointOutcomeKind::Failed {
                    reason: format!("panicked: {}", panic_reason(payload)),
                },
                simulated_reps: self.simulated_reps,
                reps_cached_used: 0,
                from_cache: false,
                wall: busy,
                timed_out: false,
            });
        }
        if let Some(budget) = ctx.point_timeout {
            if self.busy >= budget {
                return Step::Done(PointDone {
                    outcome: PointOutcomeKind::Failed {
                        reason: format!(
                            "wall-clock budget exhausted: {:.1}s spent of {:.1}s allowed",
                            self.busy.as_secs_f64(),
                            budget.as_secs_f64(),
                        ),
                    },
                    simulated_reps: self.simulated_reps,
                    reps_cached_used: 0,
                    from_cache: false,
                    wall: busy,
                    timed_out: true,
                });
            }
        }
        let simulated_so_far = self.simulated_reps;
        match catch_unwind(AssertUnwindSafe(move || self.step_inner(ctx))) {
            Ok(step) => step,
            Err(payload) => Step::Done(PointDone {
                outcome: PointOutcomeKind::Failed {
                    reason: format!("panicked: {}", panic_reason(payload)),
                },
                simulated_reps: simulated_so_far,
                reps_cached_used: 0,
                from_cache: false,
                wall: busy,
                timed_out: false,
            }),
        }
    }

    /// Run one batch of this point. Rate points consult the cache once,
    /// then alternate `decide` → simulate-batch → persist, yielding between
    /// batches so convergence top-ups interleave with the rest of the grid.
    fn step_inner(mut self, ctx: &PointContext<'_>) -> Step<PointTask, PointDone> {
        let t0 = Instant::now();
        let merge_key = self.point.merge_key(ctx.spec);
        let merge_hash = self.point.merge_hash(ctx.spec);
        match self.point.work {
            PointWork::Saturation { lo, hi, rel_tol, max_probes } => {
                // Searches are a single sequential bisection: no batching.
                if !ctx.force {
                    if let Some(hit) =
                        ctx.cache.and_then(|c| c.load_saturation(merge_hash, &merge_key))
                    {
                        return Step::Done(PointDone {
                            outcome: PointOutcomeKind::Saturation(hit),
                            simulated_reps: 0,
                            reps_cached_used: 0,
                            from_cache: true,
                            wall: self.busy + t0.elapsed(),
                            timed_out: false,
                        });
                    }
                }
                let noc = self.point.curve.noc();
                // Common random numbers across probes: one seed (replication
                // 0) for the whole search keeps the frontier estimate
                // monotone.
                let seed = replication_seed(ctx.spec.base_seed, merge_hash, 0);
                let result = find_saturation(
                    |rate| {
                        let probe = PointSpec {
                            noc,
                            msg_len: self.point.curve.msg_len,
                            beta: self.point.curve.beta,
                            seed,
                            rate,
                        };
                        run_point(&probe, &ctx.spec.run)
                            .expect("expansion validated this configuration")
                            .result
                            .saturated
                    },
                    lo,
                    hi,
                    rel_tol,
                    max_probes,
                );
                let probes = result.probes.len();
                if let Some(c) = ctx.cache {
                    if let Err(e) = c.store_saturation(merge_hash, &merge_key, &result) {
                        if !ctx.quiet {
                            eprintln!("campaign: failed to cache {merge_key}: {e}");
                        }
                    }
                }
                Step::Done(PointDone {
                    outcome: PointOutcomeKind::Saturation(result),
                    simulated_reps: probes,
                    reps_cached_used: 0,
                    from_cache: false,
                    wall: self.busy + t0.elapsed(),
                    timed_out: false,
                })
            }
            PointWork::Rate(rate) => {
                if !self.consulted_cache {
                    self.consulted_cache = true;
                    if !ctx.force {
                        if let Some(series) =
                            ctx.cache.and_then(|c| c.load_series(merge_hash, &merge_key))
                        {
                            self.cached_reps = series.len();
                            self.series = series;
                        }
                    }
                }
                match decide(&ctx.spec.policy(), &self.series, ctx.batch) {
                    Decision::Ready { n, converged } => {
                        let merged = merge_series(&self.series, n, converged);
                        Step::Done(PointDone {
                            outcome: PointOutcomeKind::Rate { rate, merged },
                            simulated_reps: self.simulated_reps,
                            reps_cached_used: self.cached_reps.min(n as usize),
                            from_cache: self.simulated_reps == 0 && self.cached_reps > 0,
                            wall: self.busy + t0.elapsed(),
                            timed_out: false,
                        })
                    }
                    Decision::NeedMore { upto } => {
                        let template = PointSpec {
                            noc: self.point.curve.noc(),
                            msg_len: self.point.curve.msg_len,
                            beta: self.point.curve.beta,
                            seed: 0, // overwritten per replication
                            rate,
                        };
                        let before = self.series.len();
                        // The remaining wall-clock budget, as an absolute
                        // deadline the replication loop checks cooperatively
                        // (step() already quarantined the point if the
                        // budget was spent before this batch).
                        let deadline =
                            ctx.point_timeout.map(|budget| t0 + budget.saturating_sub(self.busy));
                        let interrupted = extend_series_checked(
                            &mut self.series,
                            &template,
                            &ctx.spec.run,
                            ctx.spec.base_seed,
                            merge_hash,
                            upto,
                            deadline,
                        );
                        self.simulated_reps += self.series.len() - before;
                        // Persist after every batch: an interrupted campaign
                        // resumes from its last batch, not from scratch. The
                        // replications completed *before* a stall are valid
                        // outcomes and persist too — only the stall itself is
                        // quarantined (never cached), so a wedged point
                        // re-diagnoses on every run until the config is fixed.
                        if !self.series.is_empty() {
                            if let Some(c) = ctx.cache {
                                if let Err(e) = c.store_series(merge_hash, &merge_key, &self.series)
                                {
                                    if !ctx.quiet {
                                        eprintln!("campaign: failed to cache {merge_key}: {e}");
                                    }
                                }
                            }
                        }
                        match interrupted {
                            Ok(()) => {}
                            Err(RepInterrupt::Stall(stall)) => {
                                return Step::Done(PointDone {
                                    outcome: PointOutcomeKind::Stalled {
                                        rate,
                                        rep: stall.rep,
                                        cycle: stall.cycle,
                                        diagnostics: stall.diagnostics,
                                    },
                                    simulated_reps: self.simulated_reps,
                                    reps_cached_used: 0,
                                    from_cache: false,
                                    wall: self.busy + t0.elapsed(),
                                    timed_out: false,
                                });
                            }
                            Err(RepInterrupt::Deadline { rep, cycle }) => {
                                let budget = ctx
                                    .point_timeout
                                    .expect("deadline interrupts only occur with a budget");
                                return Step::Done(PointDone {
                                    outcome: PointOutcomeKind::Failed {
                                        reason: format!(
                                            "wall-clock budget exhausted mid-replication: \
                                             rep {rep} cut off at cycle {cycle} \
                                             ({:.1}s allowed)",
                                            budget.as_secs_f64(),
                                        ),
                                    },
                                    simulated_reps: self.simulated_reps,
                                    reps_cached_used: 0,
                                    from_cache: false,
                                    wall: self.busy + t0.elapsed(),
                                    timed_out: true,
                                });
                            }
                        }
                        self.busy += t0.elapsed();
                        Step::Yield(self)
                    }
                }
            }
        }
    }
}

/// Run a campaign: expand the grid, resume known points from the cache,
/// shard the rest across a work-stealing pool (convergence-controlled
/// points one replication batch at a time), persist new outcomes, write
/// artifacts.
///
/// Determinism guarantee: `results` (and therefore both artifacts) are a
/// pure function of `spec`. Worker count, stealing order, batch size, cache
/// hits and `force` can change only the execution accounting
/// (`executed`/`from_cache`/`reps_*`/`wall`) — never a number. The per-point
/// tests and `tests/determinism.rs`/`tests/convergence.rs` hold this to
/// bit-equality.
pub fn run_campaign(
    spec: &CampaignSpec,
    opts: &CampaignOptions,
) -> Result<CampaignReport, CampaignError> {
    let expansion = spec.expand()?;
    let cache = match &opts.cache_dir {
        Some(dir) => Some(ResultCache::open(dir)?),
        None => None,
    };
    let workers = if opts.workers == 0 { default_workers() } else { opts.workers };
    let ctx = PointContext {
        spec,
        cache: cache.as_ref(),
        force: opts.force,
        batch: if opts.batch_reps == 0 { DEFAULT_BATCH_REPS } else { opts.batch_reps },
        quiet: opts.quiet,
        point_timeout: opts.point_timeout,
        chaos_panic_ids: &opts.chaos_panic_ids,
    };

    let total = expansion.points.len();
    let done = AtomicUsize::new(0);
    let executed = AtomicUsize::new(0);
    let hits = AtomicUsize::new(0);
    let reps_simulated = AtomicUsize::new(0);
    let reps_cached = AtomicUsize::new(0);
    let telemetry: Vec<std::sync::Mutex<Option<PointTelemetry>>> =
        expansion.points.iter().map(|_| std::sync::Mutex::new(None)).collect();
    let start = Instant::now();

    let (results, worker_stats) = run_work_stealing_tasks_with_stats(
        &expansion.points,
        workers,
        |_, point| PointTask::new(*point),
        |idx, point, task| match task.step(&ctx) {
            Step::Yield(task) => Step::Yield(task),
            Step::Done(out) => {
                if out.from_cache {
                    hits.fetch_add(1, Ordering::Relaxed);
                } else {
                    executed.fetch_add(1, Ordering::Relaxed);
                }
                reps_simulated.fetch_add(out.simulated_reps, Ordering::Relaxed);
                reps_cached.fetch_add(out.reps_cached_used, Ordering::Relaxed);
                let label = PointResult::label_for(point);
                *telemetry[idx].lock().expect("telemetry poisoned") = Some(PointTelemetry {
                    id: point.id,
                    label: label.clone(),
                    wall: out.wall,
                    simulated_reps: out.simulated_reps,
                    reps_cached: out.reps_cached_used,
                    from_cache: out.from_cache,
                    timed_out: out.timed_out,
                });
                if !opts.quiet {
                    let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                    let how = if out.from_cache {
                        "cache".to_string()
                    } else if out.reps_cached_used > 0 {
                        format!("top-up +{}", out.simulated_reps)
                    } else {
                        "ran".to_string()
                    };
                    let verdict = match &out.outcome {
                        PointOutcomeKind::Rate { merged, .. } => {
                            format!(
                                " n={}{}",
                                merged.reps,
                                match merged.converged {
                                    Converged::Yes => "",
                                    Converged::No => " !conv",
                                    Converged::AbandonedSaturated => " sat-abandoned",
                                }
                            )
                        }
                        PointOutcomeKind::Saturation(_) => String::new(),
                        PointOutcomeKind::Stalled { rep, cycle, .. } => {
                            format!(" STALLED rep {rep} @ cycle {cycle}")
                        }
                        PointOutcomeKind::Failed { reason } => format!(" FAILED: {reason}"),
                    };
                    eprintln!("campaign [{n:>4}/{total}] {label:<40} ({how}{verdict})");
                }
                Step::Done(PointResult {
                    id: point.id,
                    label,
                    point: *point,
                    content_hash: point.content_hash(spec),
                    from_cache: out.from_cache,
                    outcome: out.outcome,
                })
            }
        },
    );
    let wall = start.elapsed();
    let point_telemetry: Vec<PointTelemetry> = telemetry
        .into_iter()
        .map(|slot| {
            slot.into_inner().expect("telemetry poisoned").expect("every point was executed")
        })
        .collect();

    let mut report = CampaignReport {
        results,
        skipped: expansion.skipped,
        executed: executed.into_inner(),
        from_cache: hits.into_inner(),
        reps_simulated: reps_simulated.into_inner(),
        reps_cached: reps_cached.into_inner(),
        workers,
        artifacts: Vec::new(),
        wall,
        worker_stats,
        point_telemetry,
    };
    if let Some(dir) = &opts.out_dir {
        report.artifacts = artifact::write_artifacts(dir, spec, &report.results, &report.skipped)?;
        // Telemetry is its own file: the main JSON/CSV artifacts stay pure
        // functions of the spec, this one records how the run actually went.
        let path = dir.join(format!("{}.telemetry.json", spec.name));
        std::fs::write(&path, report.telemetry_json(spec).to_pretty())?;
        report.artifacts.push(path);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CiTarget, Convergence, RateAxis};
    use quarc_sim::RunSpec;

    fn tiny_spec(name: &str) -> CampaignSpec {
        let mut spec = CampaignSpec::new(name);
        spec.sizes = vec![8];
        spec.msg_lens = vec![4];
        spec.betas = vec![0.0];
        spec.rates = RateAxis::Explicit(vec![0.005, 0.01]);
        spec.replications = 2;
        spec.run = RunSpec { warmup: 100, measure: 800, drain: 1_600, ..Default::default() };
        spec
    }

    fn unique_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("quarc-campaign-runner-{tag}-{}", std::process::id()))
    }

    #[test]
    fn campaign_runs_and_reports() {
        let spec = tiny_spec("runner-basic");
        let report =
            run_campaign(&spec, &CampaignOptions { workers: 2, quiet: true, ..Default::default() })
                .unwrap();
        assert_eq!(report.results.len(), 4); // 2 topologies × 2 rates
        assert_eq!(report.executed, 4);
        assert_eq!(report.from_cache, 0);
        assert_eq!(report.reps_simulated, 8);
        assert_eq!(report.reps_cached, 0);
        for (i, r) in report.results.iter().enumerate() {
            assert_eq!(r.id, i);
            match &r.outcome {
                PointOutcomeKind::Rate { merged, .. } => {
                    assert_eq!(merged.reps, 2);
                    assert!(merged.unicast_mean.mean > 0.0);
                    assert_eq!(
                        merged.converged,
                        Converged::Yes,
                        "fixed protocols are vacuously converged"
                    );
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn second_run_is_fully_cached_and_identical() {
        let dir = unique_dir("cached");
        let _ = std::fs::remove_dir_all(&dir);
        let spec = tiny_spec("runner-cache");
        let opts = CampaignOptions {
            workers: 2,
            cache_dir: Some(dir.clone()),
            quiet: true,
            ..Default::default()
        };
        let first = run_campaign(&spec, &opts).unwrap();
        assert_eq!(first.executed, 4);
        let second = run_campaign(&spec, &opts).unwrap();
        assert_eq!(second.executed, 0);
        assert_eq!(second.from_cache, 4);
        assert_eq!(second.reps_simulated, 0);
        assert_eq!(second.reps_cached, 8);
        assert_eq!(
            first.to_json(&spec).to_pretty(),
            second.to_json(&spec).to_pretty(),
            "cached artifact must be byte-identical to the simulated one"
        );
        // force re-simulates but numbers cannot move.
        let forced = run_campaign(&spec, &CampaignOptions { force: true, ..opts.clone() }).unwrap();
        assert_eq!(forced.executed, 4);
        assert_eq!(first.to_json(&spec).to_pretty(), forced.to_json(&spec).to_pretty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spec_change_invalidates_only_affected_points() {
        let dir = unique_dir("invalidate");
        let _ = std::fs::remove_dir_all(&dir);
        let mut spec = tiny_spec("runner-grow");
        let opts = CampaignOptions {
            workers: 2,
            cache_dir: Some(dir.clone()),
            quiet: true,
            ..Default::default()
        };
        run_campaign(&spec, &opts).unwrap();
        // Add one rate: old points hit, new points run.
        if let RateAxis::Explicit(rates) = &mut spec.rates {
            rates.push(0.02);
        }
        let grown = run_campaign(&spec, &opts).unwrap();
        assert_eq!(grown.from_cache, 4);
        assert_eq!(grown.executed, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replication_growth_tops_up_instead_of_rerunning() {
        // The v3 upgrade story at the fixed-protocol level: raising
        // --replications reuses every cached replication and simulates only
        // the missing tail; lowering it is a pure cache hit on a prefix.
        let dir = unique_dir("topup");
        let _ = std::fs::remove_dir_all(&dir);
        let mut spec = tiny_spec("runner-topup");
        let opts = CampaignOptions {
            workers: 2,
            cache_dir: Some(dir.clone()),
            quiet: true,
            ..Default::default()
        };
        run_campaign(&spec, &opts).unwrap();
        spec.replications = 5;
        let grown = run_campaign(&spec, &opts).unwrap();
        assert_eq!(grown.executed, 4, "every point needed a top-up");
        assert_eq!(grown.from_cache, 0);
        assert_eq!(grown.reps_simulated, 4 * 3, "only the 3 missing replications per point");
        assert_eq!(grown.reps_cached, 4 * 2);
        // And the topped-up artifact equals a from-scratch 5-replication run.
        let fresh =
            run_campaign(&spec, &CampaignOptions { workers: 2, quiet: true, ..Default::default() })
                .unwrap();
        assert_eq!(grown.to_json(&spec).to_pretty(), fresh.to_json(&spec).to_pretty());

        spec.replications = 3;
        let shrunk = run_campaign(&spec, &opts).unwrap();
        assert_eq!(shrunk.from_cache, 4, "a prefix of a cached series is a pure hit");
        assert_eq!(shrunk.reps_simulated, 0);
        assert_eq!(shrunk.reps_cached, 4 * 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn convergent_campaign_reports_reached_targets() {
        let mut spec = tiny_spec("runner-conv");
        spec.convergence = Some(Convergence { target: CiTarget::Rel(0.25), max_reps: 12 });
        let report =
            run_campaign(&spec, &CampaignOptions { workers: 2, quiet: true, ..Default::default() })
                .unwrap();
        for r in &report.results {
            match &r.outcome {
                PointOutcomeKind::Rate { merged, .. } => {
                    assert!(merged.reps >= 2 && merged.reps <= 12);
                    if merged.converged == Converged::Yes {
                        for m in [
                            &merged.unicast_mean,
                            &merged.bcast_reception_mean,
                            &merged.bcast_completion_mean,
                            &merged.throughput,
                        ] {
                            assert!(m.meets(CiTarget::Rel(0.25)), "{:?} too wide in {r:?}", m);
                        }
                    } else if merged.converged == Converged::No {
                        assert_eq!(merged.reps, 12, "unconverged points stop at the cap");
                    } else {
                        assert!(
                            merged.saturated,
                            "early abandon only ever fires on saturated points"
                        );
                    }
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn saturation_campaign_finds_a_frontier() {
        let mut spec = tiny_spec("runner-sat");
        spec.topologies = vec![quarc_core::topology::TopologyKind::Quarc];
        spec.rates = RateAxis::Saturation { rel_tol: 0.25, max_probes: 12 };
        let report =
            run_campaign(&spec, &CampaignOptions { workers: 2, quiet: true, ..Default::default() })
                .unwrap();
        assert_eq!(report.results.len(), 1);
        match &report.results[0].outcome {
            PointOutcomeKind::Saturation(s) => {
                assert!(s.sustained > 0.0, "{s:?}");
                assert!(s.collapsed.is_some(), "{s:?}");
                assert!((s.probes.len() as u32) <= 12);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn artifacts_are_written() {
        let dir = unique_dir("artifacts");
        let _ = std::fs::remove_dir_all(&dir);
        let spec = tiny_spec("runner-artifacts");
        let report = run_campaign(
            &spec,
            &CampaignOptions {
                workers: 1,
                out_dir: Some(dir.clone()),
                quiet: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.artifacts.len(), 3);
        let json_text = std::fs::read_to_string(&report.artifacts[0]).unwrap();
        let parsed = crate::json::Json::parse(&json_text).unwrap();
        assert_eq!(
            parsed
                .get("points")
                .and_then(crate::json::Json::as_arr)
                .map(<[crate::json::Json]>::len),
            Some(4)
        );
        let csv_text = std::fs::read_to_string(&report.artifacts[1]).unwrap();
        assert_eq!(csv_text.lines().count(), 1 + 4);
        let telemetry_text = std::fs::read_to_string(&report.artifacts[2]).unwrap();
        let telemetry = crate::json::Json::parse(&telemetry_text).unwrap();
        assert_eq!(
            telemetry.get("kind").and_then(crate::json::Json::as_str),
            Some("execution-telemetry")
        );
        assert_eq!(
            telemetry
                .get("points")
                .and_then(crate::json::Json::as_arr)
                .map(<[crate::json::Json]>::len),
            Some(4)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn telemetry_accounts_for_every_point_without_touching_results() {
        let dir = unique_dir("telemetry");
        let _ = std::fs::remove_dir_all(&dir);
        let spec = tiny_spec("runner-telemetry");
        let opts = CampaignOptions {
            workers: 2,
            cache_dir: Some(dir.clone()),
            quiet: true,
            ..Default::default()
        };
        let first = run_campaign(&spec, &opts).unwrap();
        assert_eq!(first.point_telemetry.len(), 4);
        assert!(first.point_telemetry.iter().all(|p| !p.from_cache && p.simulated_reps == 2));
        assert_eq!(first.topups(), 0);
        assert!(!first.worker_stats.is_empty());
        // Each point takes at least one pool step (fixed-replication points
        // take two: simulate-batch, then merge).
        assert!(first.worker_stats.iter().map(|w| w.steps).sum::<u64>() >= 4);

        // A fully-cached rerun flips the telemetry but not one artifact byte.
        let second = run_campaign(&spec, &opts).unwrap();
        assert!(second.point_telemetry.iter().all(|p| p.from_cache && p.simulated_reps == 0));
        assert_eq!(first.to_json(&spec).to_pretty(), second.to_json(&spec).to_pretty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
