//! Campaign orchestration: expand → consult cache → execute in parallel →
//! persist → render artifacts.

use crate::artifact;
use crate::cache::ResultCache;
use crate::executor::{default_workers, run_work_stealing};
use crate::replicate::{replication_seed, run_replicated};
use crate::result::{PointOutcomeKind, PointResult};
use crate::saturation::find_saturation;
use crate::spec::{CampaignPoint, CampaignSpec, PointWork, SpecError};
use quarc_sim::{run_point, PointSpec};
use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Execution options orthogonal to the experiment definition. None of them
/// may change any measured number — only where results come from, where they
/// go, and how many threads produce them.
#[derive(Debug, Clone, Default)]
pub struct CampaignOptions {
    /// Worker threads; `0` means the machine's available parallelism.
    pub workers: usize,
    /// Result-cache directory (no caching when `None`).
    pub cache_dir: Option<PathBuf>,
    /// Artifact output directory (no files written when `None`).
    pub out_dir: Option<PathBuf>,
    /// Ignore cache *reads* (entries are still written back).
    pub force: bool,
    /// Suppress per-point progress on stderr.
    pub quiet: bool,
}

/// What a campaign run produced.
#[derive(Debug)]
pub struct CampaignReport {
    /// Per-point results in expansion order.
    pub results: Vec<PointResult>,
    /// Grid combinations dropped at expansion (e.g. mesh × β > 0).
    pub skipped: Vec<String>,
    /// Points actually simulated this run.
    pub executed: usize,
    /// Points served from the result cache.
    pub from_cache: usize,
    /// Worker threads used.
    pub workers: usize,
    /// Artifact files written (empty without an output directory).
    pub artifacts: Vec<PathBuf>,
    /// Wall-clock duration of the execution phase.
    pub wall: Duration,
}

impl CampaignReport {
    /// The JSON artifact document (pure function of spec + results).
    pub fn to_json(&self, spec: &CampaignSpec) -> crate::json::Json {
        artifact::campaign_json(spec, &self.results, &self.skipped)
    }

    /// The CSV artifact table.
    pub fn csv(&self) -> String {
        artifact::campaign_csv(&self.results)
    }
}

/// A campaign failure.
#[derive(Debug)]
pub enum CampaignError {
    /// The spec failed validation/expansion.
    Spec(SpecError),
    /// Cache or artifact I/O failed.
    Io(io::Error),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Spec(e) => write!(f, "{e}"),
            CampaignError::Io(e) => write!(f, "campaign I/O error: {e}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<SpecError> for CampaignError {
    fn from(e: SpecError) -> Self {
        CampaignError::Spec(e)
    }
}

impl From<io::Error> for CampaignError {
    fn from(e: io::Error) -> Self {
        CampaignError::Io(e)
    }
}

/// Simulate one point (no cache involvement). Pure function of
/// `(point, spec)` — see the determinism notes on [`run_campaign`].
pub fn execute_point(point: &CampaignPoint, spec: &CampaignSpec) -> PointOutcomeKind {
    let stream = point.content_hash(spec);
    let noc = point.curve.noc();
    match point.work {
        PointWork::Rate(rate) => {
            let template = PointSpec {
                noc,
                msg_len: point.curve.msg_len,
                beta: point.curve.beta,
                seed: 0, // overwritten per replication
                rate,
            };
            let merged =
                run_replicated(&template, &spec.run, spec.base_seed, stream, spec.replications);
            PointOutcomeKind::Rate { rate, merged }
        }
        PointWork::Saturation { lo, hi, rel_tol, max_probes } => {
            // Common random numbers across probes: one seed (replication 0)
            // for the whole search keeps the frontier estimate monotone.
            let seed = replication_seed(spec.base_seed, stream, 0);
            let result = find_saturation(
                |rate| {
                    let probe = PointSpec {
                        noc,
                        msg_len: point.curve.msg_len,
                        beta: point.curve.beta,
                        seed,
                        rate,
                    };
                    run_point(&probe, &spec.run)
                        .expect("expansion validated this configuration")
                        .result
                        .saturated
                },
                lo,
                hi,
                rel_tol,
                max_probes,
            );
            PointOutcomeKind::Saturation(result)
        }
    }
}

/// Run a campaign: expand the grid, serve known points from the cache,
/// shard the rest across a work-stealing pool, persist new outcomes, write
/// artifacts.
///
/// Determinism guarantee: `results` (and therefore both artifacts) are a
/// pure function of `spec`. Worker count, stealing order, cache hits and
/// `force` can change only `executed`/`from_cache`/`wall` — never a number.
/// The per-point tests and `tests/determinism.rs` hold this to bit-equality.
pub fn run_campaign(
    spec: &CampaignSpec,
    opts: &CampaignOptions,
) -> Result<CampaignReport, CampaignError> {
    let expansion = spec.expand()?;
    let cache = match &opts.cache_dir {
        Some(dir) => Some(ResultCache::open(dir)?),
        None => None,
    };
    let workers = if opts.workers == 0 { default_workers() } else { opts.workers };

    let total = expansion.points.len();
    let done = AtomicUsize::new(0);
    let executed = AtomicUsize::new(0);
    let hits = AtomicUsize::new(0);
    let start = Instant::now();

    let results = run_work_stealing(&expansion.points, workers, |_, point| {
        let key = point.content_key(spec);
        let hash = point.content_hash(spec);
        let cached =
            if opts.force { None } else { cache.as_ref().and_then(|c| c.load(hash, &key)) };
        let (outcome, from_cache) = match cached {
            Some(outcome) => {
                hits.fetch_add(1, Ordering::Relaxed);
                (outcome, true)
            }
            None => {
                let outcome = execute_point(point, spec);
                executed.fetch_add(1, Ordering::Relaxed);
                if let Some(c) = &cache {
                    if let Err(e) = c.store(hash, &key, &outcome) {
                        if !opts.quiet {
                            eprintln!("campaign: failed to cache {key}: {e}");
                        }
                    }
                }
                (outcome, false)
            }
        };
        let label = PointResult::label_for(point);
        if !opts.quiet {
            let n = done.fetch_add(1, Ordering::Relaxed) + 1;
            let how = if from_cache { "cache" } else { "ran" };
            eprintln!("campaign [{n:>4}/{total}] {label:<40} ({how})");
        }
        PointResult { id: point.id, label, point: *point, content_hash: hash, from_cache, outcome }
    });
    let wall = start.elapsed();

    let mut report = CampaignReport {
        results,
        skipped: expansion.skipped,
        executed: executed.into_inner(),
        from_cache: hits.into_inner(),
        workers,
        artifacts: Vec::new(),
        wall,
    };
    if let Some(dir) = &opts.out_dir {
        report.artifacts = artifact::write_artifacts(dir, spec, &report.results, &report.skipped)?;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::RateAxis;
    use quarc_sim::RunSpec;

    fn tiny_spec(name: &str) -> CampaignSpec {
        let mut spec = CampaignSpec::new(name);
        spec.sizes = vec![8];
        spec.msg_lens = vec![4];
        spec.betas = vec![0.0];
        spec.rates = RateAxis::Explicit(vec![0.005, 0.01]);
        spec.replications = 2;
        spec.run = RunSpec { warmup: 100, measure: 800, drain: 1_600, ..Default::default() };
        spec
    }

    fn unique_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("quarc-campaign-runner-{tag}-{}", std::process::id()))
    }

    #[test]
    fn campaign_runs_and_reports() {
        let spec = tiny_spec("runner-basic");
        let report =
            run_campaign(&spec, &CampaignOptions { workers: 2, quiet: true, ..Default::default() })
                .unwrap();
        assert_eq!(report.results.len(), 4); // 2 topologies × 2 rates
        assert_eq!(report.executed, 4);
        assert_eq!(report.from_cache, 0);
        for (i, r) in report.results.iter().enumerate() {
            assert_eq!(r.id, i);
            match &r.outcome {
                PointOutcomeKind::Rate { merged, .. } => {
                    assert_eq!(merged.reps, 2);
                    assert!(merged.unicast_mean.mean > 0.0);
                }
                other => panic!("unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn second_run_is_fully_cached_and_identical() {
        let dir = unique_dir("cached");
        let _ = std::fs::remove_dir_all(&dir);
        let spec = tiny_spec("runner-cache");
        let opts = CampaignOptions {
            workers: 2,
            cache_dir: Some(dir.clone()),
            quiet: true,
            ..Default::default()
        };
        let first = run_campaign(&spec, &opts).unwrap();
        assert_eq!(first.executed, 4);
        let second = run_campaign(&spec, &opts).unwrap();
        assert_eq!(second.executed, 0);
        assert_eq!(second.from_cache, 4);
        assert_eq!(
            first.to_json(&spec).to_pretty(),
            second.to_json(&spec).to_pretty(),
            "cached artifact must be byte-identical to the simulated one"
        );
        // force re-simulates but numbers cannot move.
        let forced = run_campaign(&spec, &CampaignOptions { force: true, ..opts.clone() }).unwrap();
        assert_eq!(forced.executed, 4);
        assert_eq!(first.to_json(&spec).to_pretty(), forced.to_json(&spec).to_pretty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn spec_change_invalidates_only_affected_points() {
        let dir = unique_dir("invalidate");
        let _ = std::fs::remove_dir_all(&dir);
        let mut spec = tiny_spec("runner-grow");
        let opts = CampaignOptions {
            workers: 2,
            cache_dir: Some(dir.clone()),
            quiet: true,
            ..Default::default()
        };
        run_campaign(&spec, &opts).unwrap();
        // Add one rate: old points hit, new points run.
        if let RateAxis::Explicit(rates) = &mut spec.rates {
            rates.push(0.02);
        }
        let grown = run_campaign(&spec, &opts).unwrap();
        assert_eq!(grown.from_cache, 4);
        assert_eq!(grown.executed, 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn saturation_campaign_finds_a_frontier() {
        let mut spec = tiny_spec("runner-sat");
        spec.topologies = vec![quarc_core::topology::TopologyKind::Quarc];
        spec.rates = RateAxis::Saturation { rel_tol: 0.25, max_probes: 12 };
        let report =
            run_campaign(&spec, &CampaignOptions { workers: 2, quiet: true, ..Default::default() })
                .unwrap();
        assert_eq!(report.results.len(), 1);
        match &report.results[0].outcome {
            PointOutcomeKind::Saturation(s) => {
                assert!(s.sustained > 0.0, "{s:?}");
                assert!(s.collapsed.is_some(), "{s:?}");
                assert!((s.probes.len() as u32) <= 12);
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn artifacts_are_written() {
        let dir = unique_dir("artifacts");
        let _ = std::fs::remove_dir_all(&dir);
        let spec = tiny_spec("runner-artifacts");
        let report = run_campaign(
            &spec,
            &CampaignOptions {
                workers: 1,
                out_dir: Some(dir.clone()),
                quiet: true,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.artifacts.len(), 2);
        let json_text = std::fs::read_to_string(&report.artifacts[0]).unwrap();
        let parsed = crate::json::Json::parse(&json_text).unwrap();
        assert_eq!(
            parsed
                .get("points")
                .and_then(crate::json::Json::as_arr)
                .map(<[crate::json::Json]>::len),
            Some(4)
        );
        let csv_text = std::fs::read_to_string(&report.artifacts[1]).unwrap();
        assert_eq!(csv_text.lines().count(), 1 + 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
