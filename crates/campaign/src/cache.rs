//! The on-disk result cache.
//!
//! Every point's work is stored in `<dir>/<hash16>.json`, keyed by the
//! FNV-1a hash of the point's canonical *merge key* (which deliberately
//! excludes the replication protocol — see `CampaignPoint::merge_key`). The
//! full key is echoed inside the entry and verified on load, so a
//! (vanishingly unlikely) hash collision or a stale file from an
//! incompatible format version degrades to a cache miss, never to wrong
//! numbers.
//!
//! Fixed-rate points store their **replication series** — one
//! [`RepOutcome`] per seed, in replication-index order — rather than a
//! merged summary. That makes entries *upgradeable*: a campaign that needs
//! more replications (a convergence policy with a still-too-wide CI, or a
//! larger fixed count) resumes the stored series and simulates only the
//! missing tail, and one that needs fewer merges a prefix. Either way the
//! cache can change how much is simulated, never a reported number.
//! Saturation searches store their result whole, as before.

use crate::json::Json;
use crate::replicate::RepOutcome;
use crate::result::PointOutcomeKind;
use crate::saturation::SaturationResult;
use std::io;
use std::path::{Path, PathBuf};

/// A directory of cached point outcomes.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Open (creating if needed) a cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ResultCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ResultCache { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, hash: u64) -> PathBuf {
        self.dir.join(format!("{hash:016x}.json"))
    }

    fn load_entry(&self, hash: u64, merge_key: &str, kind: &str) -> Option<Json> {
        let text = std::fs::read_to_string(self.path_for(hash)).ok()?;
        let mut entry = Json::parse(&text).ok()?;
        if entry.get("key")?.as_str()? != merge_key || entry.get("kind")?.as_str()? != kind {
            return None;
        }
        // Move the payload out instead of cloning it.
        match &mut entry {
            Json::Obj(pairs) => {
                let idx = pairs.iter().position(|(k, _)| k == "payload")?;
                Some(pairs.swap_remove(idx).1)
            }
            _ => None,
        }
    }

    fn store_entry(&self, hash: u64, merge_key: &str, kind: &str, payload: Json) -> io::Result<()> {
        let entry = Json::obj(vec![
            ("key", Json::Str(merge_key.to_string())),
            ("kind", Json::Str(kind.to_string())),
            ("payload", payload),
        ]);
        // Write via a temp file + rename so a crashed or concurrent
        // campaign never leaves a torn entry.
        let final_path = self.path_for(hash);
        let tmp_path = self.dir.join(format!(".{hash:016x}.{}.tmp", std::process::id()));
        std::fs::write(&tmp_path, entry.to_pretty())?;
        std::fs::rename(&tmp_path, &final_path)
    }

    /// Look up the replication series for `(hash, merge_key)`. Any malformed
    /// entry, key mismatch or entry of the wrong kind is treated as a miss.
    pub fn load_series(&self, hash: u64, merge_key: &str) -> Option<Vec<RepOutcome>> {
        let payload = self.load_entry(hash, merge_key, "reps")?;
        payload.as_arr()?.iter().map(RepOutcome::from_json).collect()
    }

    /// Store a replication series (replaces any previous entry whole — the
    /// series only ever grows, so the newest version is always the
    /// superset).
    pub fn store_series(
        &self,
        hash: u64,
        merge_key: &str,
        series: &[RepOutcome],
    ) -> io::Result<()> {
        let payload = Json::Arr(series.iter().map(RepOutcome::to_json).collect());
        self.store_entry(hash, merge_key, "reps", payload)
    }

    /// Look up a saturation-search result.
    pub fn load_saturation(&self, hash: u64, merge_key: &str) -> Option<SaturationResult> {
        let payload = self.load_entry(hash, merge_key, "saturation")?;
        match PointOutcomeKind::from_json(&payload)? {
            PointOutcomeKind::Saturation(s) => Some(s),
            // Anything else under a "saturation" kind is a malformed entry:
            // quarantine outcomes in particular are never cached.
            _ => None,
        }
    }

    /// Store a saturation-search result.
    pub fn store_saturation(
        &self,
        hash: u64,
        merge_key: &str,
        result: &SaturationResult,
    ) -> io::Result<()> {
        let payload = PointOutcomeKind::Saturation(result.clone()).to_json();
        self.store_entry(hash, merge_key, "saturation", payload)
    }

    /// Number of entries currently on disk (diagnostics).
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replicate::extend_series;
    use crate::saturation::Probe;
    use quarc_core::config::NocConfig;
    use quarc_sim::{PointSpec, RunSpec};

    fn unique_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("quarc-campaign-cache-{tag}-{}", std::process::id()))
    }

    fn sample_series(reps: u32) -> Vec<RepOutcome> {
        let template =
            PointSpec { noc: NocConfig::quarc(8), msg_len: 4, beta: 0.05, seed: 0, rate: 0.01 };
        let run = RunSpec { warmup: 100, measure: 600, drain: 1_200, ..Default::default() };
        let mut series = Vec::new();
        extend_series(&mut series, &template, &run, 7, 11, reps);
        series
    }

    #[test]
    fn series_store_then_load_roundtrips_bit_exactly() {
        let dir = unique_dir("roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        assert!(cache.is_empty());
        let series = sample_series(3);
        cache.store_series(42, "key-a", &series).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.load_series(42, "key-a"), Some(series));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn growing_series_replaces_the_entry() {
        let dir = unique_dir("grow");
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        let series = sample_series(4);
        cache.store_series(42, "key-a", &series[..2]).unwrap();
        assert_eq!(cache.load_series(42, "key-a").unwrap().len(), 2);
        // A top-up stores the full series; the old entry is superseded.
        cache.store_series(42, "key-a", &series).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.load_series(42, "key-a"), Some(series));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn saturation_store_then_load_roundtrips() {
        let dir = unique_dir("sat");
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        let result = SaturationResult {
            sustained: 0.021,
            collapsed: Some(0.023),
            probes: vec![
                Probe { rate: 0.01, saturated: false },
                Probe { rate: 0.04, saturated: true },
            ],
        };
        cache.store_saturation(9, "sat-key", &result).unwrap();
        assert_eq!(cache.load_saturation(9, "sat-key"), Some(result));
        // A saturation entry never serves a series lookup, and vice versa.
        assert_eq!(cache.load_series(9, "sat-key"), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn key_mismatch_is_a_miss() {
        let dir = unique_dir("mismatch");
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        cache.store_series(7, "the-real-key", &sample_series(1)).unwrap();
        assert_eq!(cache.load_series(7, "a-colliding-key"), None);
        assert_eq!(cache.load_series(8, "the-real-key"), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_entry_is_a_miss() {
        let dir = unique_dir("corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        std::fs::write(dir.join(format!("{:016x}.json", 9u64)), "{ not json").unwrap();
        assert_eq!(cache.load_series(9, "k"), None);
        assert_eq!(cache.load_saturation(9, "k"), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
