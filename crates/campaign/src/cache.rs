//! The on-disk result cache.
//!
//! Every point's outcome is stored in `<dir>/<hash16>.json`, keyed by the
//! FNV-1a hash of the point's canonical content key. The full key is echoed
//! inside the entry and verified on load, so a (vanishingly unlikely) hash
//! collision or a stale file from an incompatible format version degrades to
//! a cache miss, never to wrong numbers. Re-running a campaign therefore
//! simulates only points it has never seen.

use crate::json::Json;
use crate::result::PointOutcomeKind;
use std::io;
use std::path::{Path, PathBuf};

/// A directory of cached point outcomes.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
}

impl ResultCache {
    /// Open (creating if needed) a cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<ResultCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(ResultCache { dir })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_for(&self, hash: u64) -> PathBuf {
        self.dir.join(format!("{hash:016x}.json"))
    }

    /// Look up the outcome for `(hash, content_key)`. Any malformed entry or
    /// key mismatch is treated as a miss.
    pub fn load(&self, hash: u64, content_key: &str) -> Option<PointOutcomeKind> {
        let text = std::fs::read_to_string(self.path_for(hash)).ok()?;
        let entry = Json::parse(&text).ok()?;
        if entry.get("key")?.as_str()? != content_key {
            return None;
        }
        PointOutcomeKind::from_json(entry.get("outcome")?)
    }

    /// Store an outcome. Writes via a temp file + rename so a crashed or
    /// concurrent campaign never leaves a torn entry.
    pub fn store(
        &self,
        hash: u64,
        content_key: &str,
        outcome: &PointOutcomeKind,
    ) -> io::Result<()> {
        let entry = Json::obj(vec![
            ("key", Json::Str(content_key.to_string())),
            ("outcome", outcome.to_json()),
        ]);
        let final_path = self.path_for(hash);
        let tmp_path = self.dir.join(format!(".{hash:016x}.{}.tmp", std::process::id()));
        std::fs::write(&tmp_path, entry.to_pretty())?;
        std::fs::rename(&tmp_path, &final_path)
    }

    /// Number of entries currently on disk (diagnostics).
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .filter_map(Result::ok)
                    .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replicate::{MeanCi, MergedRun};

    fn unique_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("quarc-campaign-cache-{tag}-{}", std::process::id()))
    }

    fn sample_outcome() -> PointOutcomeKind {
        let ci = MeanCi { mean: 10.0, ci95: 0.5, n: 2 };
        PointOutcomeKind::Rate {
            rate: 0.01,
            merged: MergedRun {
                reps: 2,
                unicast_mean: ci,
                bcast_reception_mean: ci,
                bcast_completion_mean: ci,
                throughput: ci,
                unicast_p95: None,
                bcast_completion_p95: None,
                unicast_samples: 10,
                bcast_samples: 0,
                saturated_reps: 0,
                saturated: false,
            },
        }
    }

    #[test]
    fn store_then_load_roundtrips() {
        let dir = unique_dir("roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        assert!(cache.is_empty());
        let outcome = sample_outcome();
        cache.store(42, "key-a", &outcome).unwrap();
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.load(42, "key-a"), Some(outcome));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn key_mismatch_is_a_miss() {
        let dir = unique_dir("mismatch");
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        cache.store(7, "the-real-key", &sample_outcome()).unwrap();
        assert_eq!(cache.load(7, "a-colliding-key"), None);
        assert_eq!(cache.load(8, "the-real-key"), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_entry_is_a_miss() {
        let dir = unique_dir("corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let cache = ResultCache::open(&dir).unwrap();
        std::fs::write(dir.join(format!("{:016x}.json", 9u64)), "{ not json").unwrap();
        assert_eq!(cache.load(9, "k"), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
