//! Adaptive saturation search: bisect the injection-rate axis for the
//! saturation frontier instead of walking a fixed grid.
//!
//! A fixed sweep wastes most of its simulation budget on deeply saturated
//! points (which are also the slowest to simulate — nothing drains). The
//! paper's own plots only need the knee; bisection finds it in
//! `O(log(1/tol))` probes. The search is deterministic: probes depend only
//! on the bracket and the probe outcomes, never on timing or threads.

/// One probe of the search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Probe {
    /// Offered rate probed.
    pub rate: f64,
    /// Whether the run saturated.
    pub saturated: bool,
}

/// The search outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SaturationResult {
    /// Highest rate observed unsaturated (the frontier's lower edge).
    pub sustained: f64,
    /// Lowest rate observed saturated (`None` if the budget ran out while
    /// everything probed was unsaturated).
    pub collapsed: Option<f64>,
    /// Every probe, in execution order.
    pub probes: Vec<Probe>,
}

/// Bisect `[lo, hi]` for the saturation frontier of `saturated_at`.
///
/// `lo` must be expected-unsaturated; if its probe saturates, the search
/// reports it and stops (the bracket is hopeless). `hi` is expected
/// saturated; if not, the bracket is grown geometrically up to the probe
/// budget. Stops when `(hi − lo) / lo ≤ rel_tol` or after `max_probes`
/// simulated probes.
pub fn find_saturation(
    mut probe_fn: impl FnMut(f64) -> bool,
    lo: f64,
    hi: f64,
    rel_tol: f64,
    max_probes: u32,
) -> SaturationResult {
    assert!(lo > 0.0 && hi > lo && rel_tol > 0.0 && max_probes >= 2);
    let mut probes = Vec::new();
    let mut probe = |rate: f64, probes: &mut Vec<Probe>| {
        let saturated = probe_fn(rate);
        probes.push(Probe { rate, saturated });
        saturated
    };

    // Anchor the bracket.
    if probe(lo, &mut probes) {
        // Even the floor saturates: report the floor as collapsed.
        return SaturationResult { sustained: 0.0, collapsed: Some(lo), probes };
    }
    let mut lo = lo;
    let mut hi = hi;
    // Grow until the ceiling actually saturates (or the budget runs out).
    loop {
        if probes.len() as u32 >= max_probes {
            return SaturationResult { sustained: lo, collapsed: None, probes };
        }
        if probe(hi, &mut probes) {
            break;
        }
        lo = hi;
        hi *= 2.0;
    }
    // Bisect.
    while (hi - lo) / lo > rel_tol && (probes.len() as u32) < max_probes {
        let mid = (lo * hi).sqrt(); // geometric midpoint suits a log axis
        if probe(mid, &mut probes) {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    SaturationResult { sustained: lo, collapsed: Some(hi), probes }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_to_a_known_frontier() {
        let frontier = 0.037;
        let mut calls = 0;
        let result = find_saturation(
            |r| {
                calls += 1;
                r > frontier
            },
            0.001,
            0.1,
            0.05,
            32,
        );
        assert_eq!(result.probes.len(), calls);
        assert!(result.sustained <= frontier && frontier <= result.collapsed.unwrap());
        let width = (result.collapsed.unwrap() - result.sustained) / result.sustained;
        assert!(width <= 0.05, "bracket width {width}");
        // Far fewer probes than a 40-point fixed grid.
        assert!(calls <= 16, "{calls} probes");
    }

    #[test]
    fn grows_bracket_when_ceiling_is_unsaturated() {
        let result = find_saturation(|r| r > 0.5, 0.01, 0.05, 0.1, 32);
        assert!(result.collapsed.unwrap() > 0.5);
        assert!(result.sustained <= 0.5);
    }

    #[test]
    fn saturated_floor_short_circuits() {
        let result = find_saturation(|_| true, 0.01, 0.1, 0.1, 32);
        assert_eq!(result.sustained, 0.0);
        assert_eq!(result.collapsed, Some(0.01));
        assert_eq!(result.probes.len(), 1);
    }

    #[test]
    fn respects_probe_budget() {
        let result = find_saturation(|r| r > 0.03, 0.001, 0.1, 1e-6, 7);
        assert!(result.probes.len() <= 7);
    }

    #[test]
    fn unreachable_frontier_reports_no_collapse() {
        let result = find_saturation(|_| false, 0.01, 0.02, 0.1, 4);
        assert!(result.collapsed.is_none());
        assert!(result.sustained >= 0.02);
    }

    #[test]
    fn deterministic_probe_sequence() {
        let run = || {
            find_saturation(|r| r > 0.02, 0.001, 0.05, 0.02, 32)
                .probes
                .iter()
                .map(|p| p.rate)
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
