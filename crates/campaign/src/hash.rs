//! Stable content hashing for cache keys and RNG substream selection.
//!
//! `std::hash` is deliberately not used: `DefaultHasher` is documented as
//! unstable across releases, and a cache key must survive toolchain bumps.
//! FNV-1a is tiny, stable forever, and 64 bits is ample for the few thousand
//! points a campaign expands to.

/// 64-bit FNV-1a over `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn distinct_keys_differ() {
        assert_ne!(fnv1a64(b"quarc n=16"), fnv1a64(b"quarc n=32"));
    }
}
