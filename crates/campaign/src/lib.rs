//! # quarc-campaign
//!
//! Parallel, deterministic, resumable experiment campaigns over the Quarc
//! NoC simulator — the paper's whole Figs. 9–11 / Table 1 evaluation grid
//! (topology × size × `M` × `β` × buffer depth × link latency × arbitration
//! policy × injection rate × replications) as one declarative object instead
//! of a pile of hand-rolled loops. All four topology families — Quarc,
//! Spidergon, mesh, torus — are grid axes, and every one carries every
//! traffic class, so expansion is always the exact cartesian product.
//!
//! The pipeline:
//!
//! 1. a [`spec::CampaignSpec`] expands its parameter grid into
//!    [`spec::CampaignPoint`]s (`expand`);
//! 2. a work-stealing thread pool ([`executor`]) shards points across cores;
//! 3. each point runs its replications with seeds forked from the point's
//!    *merge hash* ([`replicate`]), merging `OnlineStats` /
//!    `LatencyHistogram` across seeds into means + 95% confidence intervals
//!    — either a fixed count, or under **convergence control**
//!    ([`spec::Convergence`]): replications grow in batches, re-enqueued
//!    through the pool, until every tracked metric's 95% CI half-width
//!    meets an absolute or relative target (or a cap);
//! 4. saturation-axis campaigns bisect the rate axis ([`saturation`])
//!    instead of walking a fixed grid;
//! 5. per-replication outcomes land in a content-addressed on-disk cache
//!    ([`cache`]) as *upgradeable series* — a later campaign needing more
//!    replications (higher fixed count or a tighter CI target) resumes the
//!    stored series and simulates only the missing tail — and merged
//!    results land in JSON/CSV artifacts ([`artifact`]) recording per point
//!    the final `n`, every achieved half-width and a `converged` verdict,
//!    all rendered with the in-tree [`json`] module.
//!
//! **Determinism contract.** Results are a pure function of the spec. Worker
//! count, scheduling order, replication batch size, cache state and
//! `--force` can change how long a campaign takes, never what it measures —
//! `tests/determinism.rs` and `tests/convergence.rs` assert byte-identical
//! artifacts between 1-worker and N-worker runs and across batch schedules.
//! The ingredients: per-point seeds derive from merge hashes (not grid
//! position, replication protocol or timing), every simulation is
//! `quarc_sim::run_point` (a pure function), the convergence stopping rule
//! picks the smallest satisfying series *prefix* (so over-simulation cannot
//! leak into results), and results are collected by point id, not
//! completion order.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod artifact;
pub mod cache;
pub mod executor;
pub mod hash;
pub mod json;
pub mod replicate;
pub mod result;
pub mod runner;
pub mod saturation;
pub mod spec;

pub use cache::ResultCache;
pub use executor::{
    default_workers, run_work_stealing, run_work_stealing_tasks,
    run_work_stealing_tasks_with_stats, Step, WorkerStats,
};
pub use json::Json;
pub use replicate::{
    decide, extend_series, extend_series_checked, merge_series, replication_seed, run_replicated,
    Converged, Decision, MeanCi, MergedRun, RepInterrupt, RepOutcome, RepStall,
};
pub use result::{PointOutcomeKind, PointResult};
pub use runner::{
    execute_point, run_campaign, CampaignError, CampaignOptions, CampaignReport, PointTelemetry,
    DEFAULT_BATCH_REPS,
};
pub use saturation::{find_saturation, Probe, SaturationResult};
pub use spec::{
    CampaignPoint, CampaignSpec, CiTarget, Convergence, CurveParams, Expansion, PointWork,
    RateAxis, ReplicationPolicy, SpecError,
};
