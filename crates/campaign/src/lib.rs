//! # quarc-campaign
//!
//! Parallel, deterministic, resumable experiment campaigns over the Quarc
//! NoC simulator — the paper's whole Figs. 9–11 / Table 1 evaluation grid
//! (topology × size × `M` × `β` × buffer depth × link latency × arbitration
//! policy × injection rate × replications) as one declarative object instead
//! of a pile of hand-rolled loops. All four topology families — Quarc,
//! Spidergon, mesh, torus — are grid axes, and every one carries every
//! traffic class, so expansion is always the exact cartesian product.
//!
//! The pipeline:
//!
//! 1. a [`spec::CampaignSpec`] expands its parameter grid into
//!    [`spec::CampaignPoint`]s (`expand`);
//! 2. a work-stealing thread pool ([`executor`]) shards points across cores;
//! 3. each point runs its replications with seeds forked from the point's
//!    *content hash* ([`replicate`]), merging `OnlineStats` /
//!    `LatencyHistogram` across seeds into means + 95% confidence intervals;
//! 4. saturation-axis campaigns bisect the rate axis ([`saturation`])
//!    instead of walking a fixed grid;
//! 5. outcomes land in a content-addressed on-disk cache ([`cache`]) and in
//!    JSON/CSV artifacts ([`artifact`]), both rendered with the in-tree
//!    [`json`] module.
//!
//! **Determinism contract.** Results are a pure function of the spec. Worker
//! count, scheduling order, cache state and `--force` can change how long a
//! campaign takes, never what it measures — `tests/determinism.rs` asserts
//! byte-identical artifacts between 1-worker and N-worker runs. The
//! ingredients: per-point seeds derive from content hashes (not grid
//! position or timing), every simulation is `quarc_sim::run_point` (a pure
//! function), and results are collected by point id, not completion order.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod artifact;
pub mod cache;
pub mod executor;
pub mod hash;
pub mod json;
pub mod replicate;
pub mod result;
pub mod runner;
pub mod saturation;
pub mod spec;

pub use cache::ResultCache;
pub use executor::{default_workers, run_work_stealing};
pub use json::Json;
pub use replicate::{replication_seed, run_replicated, MeanCi, MergedRun};
pub use result::{PointOutcomeKind, PointResult};
pub use runner::{execute_point, run_campaign, CampaignError, CampaignOptions, CampaignReport};
pub use saturation::{find_saturation, Probe, SaturationResult};
pub use spec::{
    CampaignPoint, CampaignSpec, CurveParams, Expansion, PointWork, RateAxis, SpecError,
};
