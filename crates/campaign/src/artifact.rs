//! Artifact rendering: the `<name>.json` and `<name>.csv` files a campaign
//! leaves behind.
//!
//! Both artifacts are pure functions of the campaign spec and its results —
//! no timestamps, hostnames or timing — so re-running a campaign (from cache
//! or from scratch, serial or parallel) reproduces them byte for byte.

use crate::json::Json;
use crate::result::PointResult;
use crate::spec::{CampaignSpec, CiTarget, RateAxis};
use quarc_core::topology::TopologyKind;
use std::io;
use std::path::{Path, PathBuf};

fn rate_axis_json(rates: &RateAxis) -> Json {
    match rates {
        RateAxis::Explicit(rs) => Json::obj(vec![
            ("kind", Json::Str("explicit".into())),
            ("rates", Json::Arr(rs.iter().map(|&r| Json::Num(r)).collect())),
        ]),
        RateAxis::Geometric { lo, hi, steps } => Json::obj(vec![
            ("kind", Json::Str("geometric".into())),
            ("lo", Json::Num(*lo)),
            ("hi", Json::Num(*hi)),
            ("steps", Json::UInt(*steps as u64)),
        ]),
        RateAxis::AutoGeometric { span, lo_div, steps } => Json::obj(vec![
            ("kind", Json::Str("auto-geometric".into())),
            ("span", Json::Num(*span)),
            ("lo_div", Json::Num(*lo_div)),
            ("steps", Json::UInt(*steps as u64)),
        ]),
        RateAxis::Saturation { rel_tol, max_probes } => Json::obj(vec![
            ("kind", Json::Str("saturation".into())),
            ("rel_tol", Json::Num(*rel_tol)),
            ("max_probes", Json::UInt(*max_probes as u64)),
        ]),
    }
}

fn spec_json(spec: &CampaignSpec) -> Json {
    Json::obj(vec![
        (
            "topologies",
            Json::Arr(
                spec.topologies.iter().map(|t: &TopologyKind| Json::Str(t.to_string())).collect(),
            ),
        ),
        ("sizes", Json::Arr(spec.sizes.iter().map(|&n| Json::UInt(n as u64)).collect())),
        ("msg_lens", Json::Arr(spec.msg_lens.iter().map(|&m| Json::UInt(m as u64)).collect())),
        ("betas", Json::Arr(spec.betas.iter().map(|&b| Json::Num(b)).collect())),
        (
            "buffer_depths",
            Json::Arr(spec.buffer_depths.iter().map(|&d| Json::UInt(d as u64)).collect()),
        ),
        ("link_latencies", Json::Arr(spec.link_latencies.iter().map(|&l| Json::UInt(l)).collect())),
        ("arbs", Json::Arr(spec.arbs.iter().map(|a| Json::Str(a.to_string())).collect())),
        ("faults", Json::Arr(spec.faults.iter().map(|f| Json::Str(f.to_string())).collect())),
        (
            "recoveries",
            Json::Arr(spec.recoveries.iter().map(|r| Json::Str(r.to_string())).collect()),
        ),
        ("rates", rate_axis_json(&spec.rates)),
        ("replications", Json::UInt(spec.replications as u64)),
        (
            "convergence",
            match &spec.convergence {
                None => Json::Null,
                Some(conv) => {
                    let (kind, width) = match conv.target {
                        CiTarget::Abs(w) => ("abs", w),
                        CiTarget::Rel(w) => ("rel", w),
                    };
                    Json::obj(vec![
                        ("target", Json::Str(kind.into())),
                        ("width", Json::Num(width)),
                        ("max_reps", Json::UInt(conv.max_reps as u64)),
                    ])
                }
            },
        ),
        ("base_seed", Json::UInt(spec.base_seed)),
        (
            "run",
            Json::obj(vec![
                ("warmup", Json::UInt(spec.run.warmup)),
                ("measure", Json::UInt(spec.run.measure)),
                ("drain", Json::UInt(spec.run.drain)),
                ("latency_cap", Json::Num(spec.run.latency_cap)),
                ("backlog_cap", Json::Num(spec.run.backlog_cap)),
                ("stall_window", Json::UInt(spec.run.stall_window)),
            ]),
        ),
    ])
}

/// The full campaign document.
pub fn campaign_json(spec: &CampaignSpec, results: &[PointResult], skipped: &[String]) -> Json {
    Json::obj(vec![
        ("campaign", Json::Str(spec.name.clone())),
        ("format", Json::Str("quarc-campaign v2".into())),
        ("spec", spec_json(spec)),
        ("skipped", Json::Arr(skipped.iter().map(|s| Json::Str(s.clone())).collect())),
        ("points", Json::Arr(results.iter().map(PointResult::to_json).collect())),
    ])
}

/// The flat CSV table (one row per point).
pub fn campaign_csv(results: &[PointResult]) -> String {
    let mut out = String::with_capacity(64 * (results.len() + 1));
    out.push_str(PointResult::csv_header());
    out.push('\n');
    for r in results {
        out.push_str(&r.csv_row());
    }
    out
}

/// Write both artifacts into `dir` as `<name>.json` / `<name>.csv`; returns
/// the written paths.
pub fn write_artifacts(
    dir: &Path,
    spec: &CampaignSpec,
    results: &[PointResult],
    skipped: &[String],
) -> io::Result<Vec<PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let json_path = dir.join(format!("{}.json", spec.name));
    let csv_path = dir.join(format!("{}.csv", spec.name));
    std::fs::write(&json_path, campaign_json(spec, results, skipped).to_pretty())?;
    std::fs::write(&csv_path, campaign_csv(results))?;
    Ok(vec![json_path, csv_path])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::RateAxis;

    #[test]
    fn document_shape_is_stable() {
        let mut spec = CampaignSpec::new("shape");
        spec.rates = RateAxis::Explicit(vec![0.01]);
        let doc = campaign_json(&spec, &[], &["dropped".into()]);
        let text = doc.to_pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.get("campaign").and_then(Json::as_str), Some("shape"));
        assert_eq!(
            parsed.get("spec").and_then(|s| s.get("replications")).and_then(Json::as_u64),
            Some(2)
        );
        assert_eq!(parsed.get("skipped").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        assert_eq!(parsed.get("points").and_then(Json::as_arr).map(<[Json]>::len), Some(0));
        // Byte-determinism of the rendering itself.
        assert_eq!(text, campaign_json(&spec, &[], &["dropped".into()]).to_pretty());
    }

    #[test]
    fn every_rate_axis_serialises() {
        for rates in [
            RateAxis::Explicit(vec![0.01, 0.02]),
            RateAxis::Geometric { lo: 0.001, hi: 0.1, steps: 5 },
            RateAxis::AutoGeometric { span: 1.1, lo_div: 40.0, steps: 10 },
            RateAxis::Saturation { rel_tol: 0.05, max_probes: 20 },
        ] {
            let json = rate_axis_json(&rates);
            assert!(json.get("kind").is_some());
            Json::parse(&json.to_compact()).unwrap();
        }
    }

    #[test]
    fn csv_has_header_plus_rows() {
        assert_eq!(campaign_csv(&[]).lines().count(), 1);
    }
}
