//! Declarative campaign specifications and their expansion into work points.
//!
//! A [`CampaignSpec`] names a full experiment grid — the cartesian product of
//! topology × node count × message length `M` × broadcast fraction `β` ×
//! buffer depth × link latency × arbitration policy, crossed with a rate
//! axis — exactly the shape of the paper's Figs. 9–11 evaluation plus the §4
//! mesh/torus comparison. [`CampaignSpec::expand`] flattens the grid into
//! [`CampaignPoint`]s, the unit the executor shards across worker threads;
//! the expansion is always the exact product (nothing is silently dropped).
//!
//! Every point carries a canonical *content key*; its FNV-1a hash is both the
//! on-disk cache key and the RNG substream selector, so a point's identity —
//! and therefore its random stream and its cached result — depends only on
//! its own parameters, never on grid position, worker count or execution
//! order.

use crate::hash::fnv1a64;
use quarc_core::config::{ArbPolicy, FaultPlan, NocConfig, RecoveryPolicy};
use quarc_core::topology::TopologyKind;
use quarc_sim::RunSpec;
use std::fmt;

/// How the injection-rate axis of the grid is generated.
#[derive(Debug, Clone, PartialEq)]
pub enum RateAxis {
    /// Visit exactly these rates (messages/node/cycle).
    Explicit(Vec<f64>),
    /// `steps` geometrically spaced rates in `[lo, hi]`.
    Geometric {
        /// Lowest rate.
        lo: f64,
        /// Highest rate.
        hi: f64,
        /// Number of points (≥ 2).
        steps: usize,
    },
    /// Per-curve geometric axis anchored to the analytic Quarc saturation
    /// bound for that curve's `(n, M)`: `hi = bound × span`, `lo = hi /
    /// lo_div`. This is how the paper's figure binaries pick their sweeps.
    AutoGeometric {
        /// Multiple of the analytic bound used as the top rate.
        span: f64,
        /// `hi / lo` ratio.
        lo_div: f64,
        /// Number of points (≥ 2).
        steps: usize,
    },
    /// Adaptive saturation search: instead of walking a fixed grid, bisect
    /// the injection-rate axis for the saturation frontier, bracketed by the
    /// analytic bound. One point per curve.
    Saturation {
        /// Stop when the bracket width is below `rel_tol × frontier`.
        rel_tol: f64,
        /// Hard cap on simulated probes per curve.
        max_probes: u32,
    },
}

/// A 95% confidence-interval half-width target, the unit of the campaign's
/// convergence control.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CiTarget {
    /// Converged when every tracked metric's half-width is at most this many
    /// of its own units (cycles for latencies, flits/node/cycle for
    /// throughput).
    Abs(f64),
    /// Converged when every tracked metric's half-width is at most this
    /// fraction of the metric's own mean (scale-free; the paper-grid
    /// default).
    Rel(f64),
}

impl fmt::Display for CiTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CiTarget::Abs(v) => write!(f, "abs:{v}"),
            CiTarget::Rel(v) => write!(f, "rel:{v}"),
        }
    }
}

/// Per-point convergence control: grow replications until every tracked
/// metric's 95% CI half-width meets `target`, up to `max_reps`.
///
/// The stopping rule is *canonical*, not schedule-dependent: the final
/// replication count is the smallest `n` in `[min_reps, max_reps]` whose
/// prefix merge (replications `0..n`, in index order) satisfies the target —
/// a pure function of the per-replication outcomes. Execution batch size,
/// worker count and cache state decide only how much gets simulated, never
/// which prefix is reported, which is what keeps convergent campaigns
/// bit-identical under any batch schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Convergence {
    /// The half-width target every tracked metric must meet.
    pub target: CiTarget,
    /// Hard cap on replications; a point still too wide at the cap is
    /// reported with `converged: false` (saturated points routinely are).
    pub max_reps: u32,
}

impl fmt::Display for Convergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conv={} max={}", self.target, self.max_reps)
    }
}

/// How many replications a point merges: the campaign's replication axis
/// resolved into the rule [`crate::replicate::decide`] executes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplicationPolicy {
    /// Merge exactly this many replications.
    Fixed(u32),
    /// Grow from `min_reps` until `target` is met or `max_reps` is reached.
    Converge {
        /// Smallest prefix considered (at least 2: one replication has no
        /// variance estimate).
        min_reps: u32,
        /// The half-width target.
        target: CiTarget,
        /// Hard replication cap.
        max_reps: u32,
    },
}

impl fmt::Display for ReplicationPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplicationPolicy::Fixed(reps) => write!(f, "reps={reps}"),
            ReplicationPolicy::Converge { min_reps, target, max_reps } => {
                write!(f, "conv={target} min={min_reps} max={max_reps}")
            }
        }
    }
}

/// A declarative experiment campaign: the full grid plus run protocol.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name (artifact file stem).
    pub name: String,
    /// Topology axis.
    pub topologies: Vec<TopologyKind>,
    /// Node-count axis.
    pub sizes: Vec<usize>,
    /// Message-length axis (the paper's `M`).
    pub msg_lens: Vec<usize>,
    /// Broadcast-fraction axis (the paper's `β`).
    pub betas: Vec<f64>,
    /// Input-buffer-depth axis (flits per VC lane).
    pub buffer_depths: Vec<usize>,
    /// Link-latency axis (cycles).
    pub link_latencies: Vec<u64>,
    /// Output-arbitration-policy axis (the DESIGN.md §6 ablation; consulted
    /// by the Quarc model only, but part of every point's identity so the
    /// cache can never serve a round-robin result for a fixed-priority run).
    pub arbs: Vec<ArbPolicy>,
    /// Fault-schedule axis ([`FaultPlan::NONE`] = healthy network). Fault
    /// plans are deterministic, so faulted points cache and replicate
    /// exactly like healthy ones; the plan is part of every point's
    /// identity.
    pub faults: Vec<FaultPlan>,
    /// End-to-end recovery axis ([`RecoveryPolicy::NONE`] = best-effort
    /// delivery). Recovery retries are deterministic (seeded jitter
    /// substream), so recovered points cache and replicate exactly like
    /// best-effort ones; the policy is part of every point's identity.
    pub recoveries: Vec<RecoveryPolicy>,
    /// The injection-rate axis.
    pub rates: RateAxis,
    /// Independent replications per point (distinct workload seeds). With a
    /// [`Convergence`] policy this is the *starting* count (clamped to ≥ 2);
    /// without one it is exact.
    pub replications: u32,
    /// Optional convergence control: grow replications per point until every
    /// tracked metric's 95% CI half-width meets the target.
    pub convergence: Option<Convergence>,
    /// Master seed; every replication seed is forked from this.
    pub base_seed: u64,
    /// Warmup/measure/drain protocol for every run.
    pub run: RunSpec,
}

impl CampaignSpec {
    /// A campaign with the paper's default axes: one value per axis, the
    /// default run protocol, two replications.
    pub fn new(name: impl Into<String>) -> Self {
        CampaignSpec {
            name: name.into(),
            topologies: vec![TopologyKind::Quarc, TopologyKind::Spidergon],
            sizes: vec![16],
            msg_lens: vec![16],
            betas: vec![0.05],
            buffer_depths: vec![4],
            link_latencies: vec![1],
            arbs: vec![ArbPolicy::RoundRobin],
            faults: vec![FaultPlan::NONE],
            recoveries: vec![RecoveryPolicy::NONE],
            rates: RateAxis::AutoGeometric { span: 1.1, lo_div: 40.0, steps: 10 },
            replications: 2,
            convergence: None,
            base_seed: 2009, // the paper's year; any constant works
            run: RunSpec::default(),
        }
    }

    /// Expand the grid into executable points.
    ///
    /// Every topology carries every traffic class, so the expansion is the
    /// exact cartesian product of the axes — nothing is dropped. Invalid
    /// node counts and empty axes are errors. Should a future axis introduce
    /// a genuinely unsupported combination, it must be reported through
    /// [`Expansion::skipped`] (which the artifact records) — never silently
    /// removed from the grid.
    pub fn expand(&self) -> Result<Expansion, SpecError> {
        if self.name.is_empty() || !self.name.chars().all(valid_name_char) {
            return Err(SpecError::new("name must be non-empty and use only [a-zA-Z0-9._-]"));
        }
        for (axis, empty) in [
            ("topologies", self.topologies.is_empty()),
            ("sizes", self.sizes.is_empty()),
            ("msg_lens", self.msg_lens.is_empty()),
            ("betas", self.betas.is_empty()),
            ("buffer_depths", self.buffer_depths.is_empty()),
            ("link_latencies", self.link_latencies.is_empty()),
            ("arbs", self.arbs.is_empty()),
            ("faults", self.faults.is_empty()),
            ("recoveries", self.recoveries.is_empty()),
        ] {
            if empty {
                return Err(SpecError::new_owned(format!("axis {axis} is empty")));
            }
        }
        if self.replications == 0 {
            return Err(SpecError::new("replications must be at least 1"));
        }
        if let Some(conv) = &self.convergence {
            let width = match conv.target {
                CiTarget::Abs(w) | CiTarget::Rel(w) => w,
            };
            if !(width > 0.0 && width.is_finite()) {
                return Err(SpecError::new("convergence target must be positive and finite"));
            }
            if conv.max_reps < self.replications.max(2) {
                return Err(SpecError::new(
                    "convergence max_reps must be at least max(replications, 2)",
                ));
            }
        }
        match &self.rates {
            RateAxis::Explicit(rates) => {
                if rates.is_empty() || rates.iter().any(|r| *r <= 0.0 || r.is_nan()) {
                    return Err(SpecError::new("explicit rates must be positive"));
                }
            }
            RateAxis::Geometric { lo, hi, steps } => {
                if !(*lo > 0.0 && hi > lo && *steps >= 2) {
                    return Err(SpecError::new("geometric axis needs 0 < lo < hi, steps >= 2"));
                }
            }
            RateAxis::AutoGeometric { span, lo_div, steps } => {
                if !(*span > 0.0 && *lo_div > 1.0 && *steps >= 2) {
                    return Err(SpecError::new(
                        "auto-geometric axis needs span > 0, lo_div > 1, steps >= 2",
                    ));
                }
            }
            RateAxis::Saturation { rel_tol, max_probes } => {
                if !(*rel_tol > 0.0 && *rel_tol < 1.0 && *max_probes >= 4) {
                    return Err(SpecError::new(
                        "saturation axis needs 0 < rel_tol < 1, max_probes >= 4",
                    ));
                }
            }
        }

        let mut points = Vec::new();
        let skipped = Vec::new();
        for &topology in &self.topologies {
            for &n in &self.sizes {
                for &msg_len in &self.msg_lens {
                    if msg_len < 2 {
                        return Err(SpecError::new("msg_len must be at least 2 flits"));
                    }
                    for &beta in &self.betas {
                        if !(0.0..=1.0).contains(&beta) {
                            return Err(SpecError::new("beta must be in [0, 1]"));
                        }
                        for &buffer_depth in &self.buffer_depths {
                            for &link_latency in &self.link_latencies {
                                for &arb in &self.arbs {
                                    for &fault in &self.faults {
                                        for &recovery in &self.recoveries {
                                            let curve = CurveParams {
                                                topology,
                                                n,
                                                msg_len,
                                                beta,
                                                buffer_depth,
                                                link_latency,
                                                arb,
                                                fault,
                                                recovery,
                                            };
                                            curve.noc().validate().map_err(|e| {
                                                SpecError::new_owned(format!("{curve}: {e}"))
                                            })?;
                                            self.push_curve_points(curve, &mut points);
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        if points.is_empty() {
            return Err(SpecError::new("the grid expanded to zero points"));
        }
        Ok(Expansion { points, skipped })
    }

    fn push_curve_points(&self, curve: CurveParams, points: &mut Vec<CampaignPoint>) {
        // The analytical bound costs an O(n²·hops) all-pairs link-load walk
        // — prohibitive at the slab-era sizes (n = 16384) — so only the
        // axes that actually anchor on it pay for it.
        let bound = || quarc_analytical::quarc_saturation_rate(curve.n, curve.msg_len);
        match &self.rates {
            RateAxis::Explicit(rates) => {
                for &rate in rates {
                    points.push(self.point(curve, PointWork::Rate(rate), points.len()));
                }
            }
            RateAxis::Geometric { lo, hi, steps } => {
                for rate in quarc_sim::geometric_rates(*lo, *hi, *steps) {
                    points.push(self.point(curve, PointWork::Rate(rate), points.len()));
                }
            }
            RateAxis::AutoGeometric { span, lo_div, steps } => {
                let hi = bound() * span;
                for rate in quarc_sim::geometric_rates(hi / lo_div, hi, *steps) {
                    points.push(self.point(curve, PointWork::Rate(rate), points.len()));
                }
            }
            RateAxis::Saturation { rel_tol, max_probes } => {
                let b = bound();
                let work = PointWork::Saturation {
                    lo: b * 0.02,
                    hi: b * 2.0,
                    rel_tol: *rel_tol,
                    max_probes: *max_probes,
                };
                points.push(self.point(curve, work, points.len()));
            }
        }
    }

    fn point(&self, curve: CurveParams, work: PointWork, id: usize) -> CampaignPoint {
        CampaignPoint { id, curve, work }
    }

    /// The replication rule fixed-rate points execute: `replications` exact
    /// runs, or — with a [`Convergence`] policy — growth from
    /// `max(replications, 2)` until the CI target or `max_reps`.
    pub fn policy(&self) -> ReplicationPolicy {
        match self.convergence {
            None => ReplicationPolicy::Fixed(self.replications),
            Some(Convergence { target, max_reps }) => {
                ReplicationPolicy::Converge { min_reps: self.replications.max(2), target, max_reps }
            }
        }
    }
}

fn valid_name_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-')
}

fn beta_pct(beta: f64) -> u32 {
    (beta * 100.0).round() as u32
}

/// The non-rate coordinates of a grid point (one latency curve).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurveParams {
    /// Topology family.
    pub topology: TopologyKind,
    /// Node count.
    pub n: usize,
    /// Message length in flits.
    pub msg_len: usize,
    /// Broadcast fraction.
    pub beta: f64,
    /// Input buffer depth (flits per VC lane).
    pub buffer_depth: usize,
    /// Link latency (cycles).
    pub link_latency: u64,
    /// Output-arbitration policy.
    pub arb: ArbPolicy,
    /// Deterministic fault schedule ([`FaultPlan::NONE`] = healthy).
    pub fault: FaultPlan,
    /// End-to-end recovery policy ([`RecoveryPolicy::NONE`] = best-effort).
    pub recovery: RecoveryPolicy,
}

impl CurveParams {
    /// The network configuration for this curve.
    pub fn noc(&self) -> NocConfig {
        let mut cfg = match self.topology {
            TopologyKind::Quarc => NocConfig::quarc(self.n),
            TopologyKind::Spidergon => NocConfig::spidergon(self.n),
            TopologyKind::Mesh => {
                let mut cfg = NocConfig::mesh(self.n);
                // XY on a mesh needs no dateline VC.
                cfg.vcs = 1;
                cfg
            }
            TopologyKind::Torus => NocConfig::torus(self.n),
        };
        cfg.buffer_depth = self.buffer_depth;
        cfg.link_latency = self.link_latency;
        cfg.arb = self.arb;
        cfg.fault = self.fault;
        cfg.recovery = self.recovery;
        cfg
    }
}

impl fmt::Display for CurveParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}-n{}-m{}-b{}-d{}-l{}-a{}",
            self.topology,
            self.n,
            self.msg_len,
            beta_pct(self.beta),
            self.buffer_depth,
            self.link_latency,
            self.arb
        )?;
        // Healthy best-effort curves keep their historical labels; fault
        // plans and recovery policies get compact suffixes (each one's own
        // Display form).
        if !self.fault.is_empty() {
            write!(f, "-F{}", self.fault)?;
        }
        if self.recovery.enabled() {
            write!(f, "-R{}", self.recovery)?;
        }
        Ok(())
    }
}

/// What a point simulates along the rate axis.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PointWork {
    /// One fixed-rate run (times `replications`).
    Rate(f64),
    /// Bisect `[lo, hi]` for the saturation frontier.
    Saturation {
        /// Bracket low end (must be comfortably unsaturated).
        lo: f64,
        /// Bracket high end (expected saturated; grown if not).
        hi: f64,
        /// Relative bracket-width stop.
        rel_tol: f64,
        /// Probe budget.
        max_probes: u32,
    },
}

/// One executable unit of a campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignPoint {
    /// Position in expansion order; fixes output ordering only (never
    /// seeding or caching).
    pub id: usize,
    /// Grid coordinates.
    pub curve: CurveParams,
    /// Rate-axis work.
    pub work: PointWork,
}

impl CampaignPoint {
    /// The *merge key*: every parameter that influences an individual
    /// replication's numbers — but **not** the replication protocol (fixed
    /// count or convergence policy). Its hash is both the result-cache key
    /// and the RNG substream selector, so replication `i` of a point runs
    /// under the same seed no matter how many replications any campaign
    /// asks for. That invariant is what makes cached replication series
    /// *upgradeable*: a convergence campaign tops a fixed-`replications`
    /// entry up from where it stopped, and a smaller fixed request is a
    /// prefix of a larger cached series — bit-identical either way.
    ///
    /// Bump the version token when any result-affecting behaviour changes
    /// (RNG algorithm, run protocol, merge rules) — it invalidates every
    /// existing cache entry. `v3` split the replication protocol out of the
    /// key (it previously re-keyed — and re-seeded — every point). `v4`
    /// added the fault-plan axis and the stall-watchdog window to every
    /// point's identity (and [`crate::replicate::RepOutcome`] grew
    /// delivered-fraction accounting, so pre-fault series must not be
    /// served). `v5` added the recovery-policy axis (and `RepOutcome` grew
    /// retransmission accounting, so pre-recovery series must not be
    /// served either).
    pub fn merge_key(&self, spec: &CampaignSpec) -> String {
        let c = &self.curve;
        let work = match self.work {
            PointWork::Rate(rate) => format!("rate={rate}"),
            PointWork::Saturation { lo, hi, rel_tol, max_probes } => {
                format!("sat lo={lo} hi={hi} tol={rel_tol} probes={max_probes}")
            }
        };
        format!(
            "quarc-campaign v5|{}|n={} m={} beta={} depth={} link={} arb={} fault={} rec={}|{}|seed={}|run w={} m={} d={} lat={} bk={} sw={}",
            c.topology,
            c.n,
            c.msg_len,
            c.beta,
            c.buffer_depth,
            c.link_latency,
            c.arb,
            c.fault,
            c.recovery,
            work,
            spec.base_seed,
            spec.run.warmup,
            spec.run.measure,
            spec.run.drain,
            spec.run.latency_cap,
            spec.run.backlog_cap,
            spec.run.stall_window,
        )
    }

    /// FNV-1a hash of the merge key: the cache key and RNG substream id.
    pub fn merge_hash(&self, spec: &CampaignSpec) -> u64 {
        fnv1a64(self.merge_key(spec).as_bytes())
    }

    /// The canonical content key: the merge key plus the replication
    /// protocol — the point's full *result* identity, recorded (hashed) in
    /// the artifact. Two campaigns that share every axis but differ in
    /// `replications` or convergence policy share cache entries (via
    /// [`Self::merge_key`]) yet report distinct content hashes, because
    /// their merged numbers legitimately differ.
    ///
    /// Saturation searches probe with replication 0's seed only, so neither
    /// `spec.replications` nor the convergence policy can affect their
    /// outcome — their protocol component stays pinned to `reps=1`, or
    /// changing `--replications` would spuriously re-key every cached
    /// frontier point.
    pub fn content_key(&self, spec: &CampaignSpec) -> String {
        let protocol = match self.work {
            PointWork::Rate(_) => spec.policy().to_string(),
            PointWork::Saturation { .. } => "reps=1".to_string(),
        };
        format!("{}|{}", self.merge_key(spec), protocol)
    }

    /// FNV-1a hash of the content key: the point's result identity in the
    /// campaign artifact.
    pub fn content_hash(&self, spec: &CampaignSpec) -> u64 {
        fnv1a64(self.content_key(spec).as_bytes())
    }
}

/// The result of expanding a grid.
#[derive(Debug, Clone)]
pub struct Expansion {
    /// Executable points, in deterministic grid order.
    pub points: Vec<CampaignPoint>,
    /// Human-readable descriptions of dropped combinations. Always recorded
    /// in the campaign artifact so a shrunken grid leaves a trace; currently
    /// always empty — every topology supports every traffic class, so the
    /// expansion is the exact cartesian product of the axes.
    pub skipped: Vec<String>,
}

/// A malformed campaign specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(String);

impl SpecError {
    fn new(msg: &str) -> Self {
        SpecError(msg.to_string())
    }

    fn new_owned(msg: String) -> Self {
        SpecError(msg)
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid campaign spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CampaignSpec {
        let mut spec = CampaignSpec::new("unit");
        spec.sizes = vec![8, 16];
        spec.msg_lens = vec![4];
        spec.betas = vec![0.0];
        spec.rates = RateAxis::Explicit(vec![0.005, 0.01]);
        spec
    }

    #[test]
    fn grid_expands_to_product() {
        let exp = small().expand().unwrap();
        // 2 topologies × 2 sizes × 1 M × 1 β × 1 depth × 1 link × 2 rates.
        assert_eq!(exp.points.len(), 8);
        assert!(exp.skipped.is_empty());
        for (i, p) in exp.points.iter().enumerate() {
            assert_eq!(p.id, i);
        }
    }

    #[test]
    fn expansion_is_the_exact_grid_product_for_every_topology() {
        // Regression for the silent mesh × β > 0 point drop: the expansion
        // must equal the axis product — no combination may vanish without a
        // trace — and the only sanctioned escape hatch is `skipped`, which
        // the artifact records and which must stay empty today.
        let mut spec = small();
        spec.topologies = vec![
            TopologyKind::Quarc,
            TopologyKind::Spidergon,
            TopologyKind::Mesh,
            TopologyKind::Torus,
        ];
        spec.betas = vec![0.0, 0.05, 0.1];
        spec.arbs = vec![ArbPolicy::RoundRobin, ArbPolicy::FixedPriority];
        let exp = spec.expand().unwrap();
        let product = spec.topologies.len()
            * spec.sizes.len()
            * spec.msg_lens.len()
            * spec.betas.len()
            * spec.buffer_depths.len()
            * spec.link_latencies.len()
            * spec.arbs.len()
            * spec.faults.len()
            * 2; // explicit rates
        assert_eq!(exp.points.len(), product);
        assert!(exp.skipped.is_empty(), "{:?}", exp.skipped);
    }

    #[test]
    fn mesh_points_get_single_vc_configs() {
        let mut spec = small();
        spec.topologies = vec![TopologyKind::Mesh];
        let exp = spec.expand().unwrap();
        assert!(exp.points.iter().all(|p| p.curve.noc().vcs == 1));
    }

    #[test]
    fn torus_points_get_dateline_vc_configs() {
        let mut spec = small();
        spec.topologies = vec![TopologyKind::Torus];
        spec.betas = vec![0.05]; // collectives are first-class on the torus
        let exp = spec.expand().unwrap();
        assert!(exp.skipped.is_empty());
        for p in &exp.points {
            let noc = p.curve.noc();
            assert_eq!(noc.kind, TopologyKind::Torus);
            assert!(noc.vcs >= 2, "wrap rings need the dateline pair");
            noc.validate().unwrap();
        }
    }

    #[test]
    fn content_hash_separates_topologies_and_arb_policies() {
        // Stale cache hits are silent wrong results: any two points that can
        // produce different numbers must have different keys. Topology and
        // arbitration policy are the two axes this PR added.
        let mut spec = small();
        spec.sizes = vec![16];
        let mut torus = spec.clone();
        torus.topologies = vec![TopologyKind::Torus];
        let mut mesh = spec.clone();
        mesh.topologies = vec![TopologyKind::Mesh];
        let ht = torus.expand().unwrap().points[0].content_hash(&torus);
        let hm = mesh.expand().unwrap().points[0].content_hash(&mesh);
        assert_ne!(ht, hm, "mesh and torus points must never share a cache entry");

        let mut rr = spec.clone();
        rr.topologies = vec![TopologyKind::Quarc];
        let mut fp = rr.clone();
        fp.arbs = vec![ArbPolicy::FixedPriority];
        let hr = rr.expand().unwrap().points[0].content_hash(&rr);
        let hf = fp.expand().unwrap().points[0].content_hash(&fp);
        assert_ne!(hr, hf, "arbitration policy must be part of the cache key");
    }

    #[test]
    fn every_config_field_reaches_the_content_key() {
        // The key must echo each behaviour-affecting curve coordinate
        // verbatim (an audit that a future field cannot silently miss it).
        let spec = small();
        let p = spec.expand().unwrap().points[0];
        let key = p.content_key(&spec);
        for needle in [
            "quarc",
            "n=8",
            "m=4",
            "beta=0",
            "depth=4",
            "link=1",
            "arb=rr",
            "fault=-",
            "rec=-",
            "seed=2009",
            "sw=10000",
        ] {
            assert!(key.contains(needle), "key {key:?} lacks {needle:?}");
        }
    }

    #[test]
    fn fault_axis_expands_and_separates_cache_keys() {
        // A faulted run and a healthy run can never share numbers, so they
        // must never share a cache entry — and the fault axis multiplies the
        // grid like any other.
        let mut spec = small();
        spec.sizes = vec![16];
        spec.faults = vec![
            FaultPlan::NONE,
            FaultPlan { dead_links: 1, seed: 7, onset: 1_000, ..FaultPlan::NONE },
            FaultPlan { dead_links: 2, seed: 7, onset: 1_000, ..FaultPlan::NONE },
        ];
        let exp = spec.expand().unwrap();
        assert_eq!(exp.points.len(), 2 * 3 * 2); // topologies × faults × rates
        assert!(exp.skipped.is_empty());
        let hashes: std::collections::HashSet<u64> =
            exp.points.iter().map(|p| p.content_hash(&spec)).collect();
        assert_eq!(hashes.len(), exp.points.len(), "fault plans must re-key every point");
        // Healthy points keep their historical labels; faulted ones say so.
        let labels: Vec<String> =
            exp.points.iter().map(crate::result::PointResult::label_for).collect();
        assert!(labels.iter().any(|l| !l.contains("-F")));
        assert!(labels.iter().any(|l| l.contains("-Fs7o1000d1")));
    }

    #[test]
    fn recovery_axis_expands_and_separates_cache_keys() {
        // A recovered run and a best-effort run over the same fault plan
        // produce different numbers, so they must never share a cache entry
        // — and the recovery axis multiplies the grid like any other.
        let mut spec = small();
        spec.sizes = vec![16];
        spec.faults =
            vec![FaultPlan { lossy_links: 2, drop_per_64k: 500, seed: 3, ..FaultPlan::NONE }];
        spec.recoveries = vec![
            RecoveryPolicy::NONE,
            RecoveryPolicy { seed: 1, ack_timeout: 500, max_retries: 8, jitter: 32 },
        ];
        let exp = spec.expand().unwrap();
        assert_eq!(exp.points.len(), 2 * 2 * 2); // topologies × recoveries × rates
        assert!(exp.skipped.is_empty());
        let hashes: std::collections::HashSet<u64> =
            exp.points.iter().map(|p| p.content_hash(&spec)).collect();
        assert_eq!(hashes.len(), exp.points.len(), "recovery policies must re-key every point");
        // And the policy reaches the network configuration and the label.
        let labels: Vec<String> =
            exp.points.iter().map(crate::result::PointResult::label_for).collect();
        assert!(labels.iter().any(|l| l.contains("-Rt500r8j32s1")));
        assert!(labels.iter().any(|l| !l.contains("-R")));
        assert!(exp.points.iter().any(|p| p.curve.noc().recovery.enabled()));
        assert!(exp.points.iter().any(|p| !p.curve.noc().recovery.enabled()));
    }

    #[test]
    fn empty_recovery_axis_is_rejected() {
        let mut bad = small();
        bad.recoveries = vec![];
        assert!(bad.expand().is_err());
        // And an internally inconsistent policy fails config validation.
        let mut bad = small();
        bad.recoveries = vec![RecoveryPolicy { max_retries: 3, ..RecoveryPolicy::NONE }];
        assert!(bad.expand().is_err());
    }

    #[test]
    fn stall_window_reaches_the_merge_key() {
        // Under faults the watchdog window decides when a wedged run is cut
        // off, which moves partial statistics — so it is result identity.
        let spec = small();
        let p = spec.expand().unwrap().points[0];
        let mut rewound = spec.clone();
        rewound.run.stall_window = 500;
        assert_ne!(p.merge_key(&spec), p.merge_key(&rewound));
    }

    #[test]
    fn empty_fault_axis_is_rejected() {
        let mut bad = small();
        bad.faults = vec![];
        assert!(bad.expand().is_err());
        // And an internally inconsistent plan fails config validation.
        let mut bad = small();
        bad.faults = vec![FaultPlan { transient_links: 1, transient_cycles: 0, ..FaultPlan::NONE }];
        assert!(bad.expand().is_err());
    }

    #[test]
    fn content_hash_ignores_grid_position() {
        let spec_a = small();
        let mut spec_b = small();
        // Reversing an axis permutes ids but must not change any hash.
        spec_b.sizes.reverse();
        let a = spec_a.expand().unwrap();
        let b = spec_b.expand().unwrap();
        let mut ha: Vec<u64> = a.points.iter().map(|p| p.content_hash(&spec_a)).collect();
        let mut hb: Vec<u64> = b.points.iter().map(|p| p.content_hash(&spec_b)).collect();
        assert_ne!(ha, hb, "order should differ before sorting");
        ha.sort_unstable();
        hb.sort_unstable();
        assert_eq!(ha, hb);
    }

    #[test]
    fn content_hash_depends_on_run_protocol_and_seed() {
        let spec = small();
        let exp = spec.expand().unwrap();
        let h0 = exp.points[0].content_hash(&spec);
        let mut longer = spec.clone();
        longer.run.measure += 1;
        assert_ne!(h0, exp.points[0].content_hash(&longer));
        let mut reseeded = spec.clone();
        reseeded.base_seed += 1;
        assert_ne!(h0, exp.points[0].content_hash(&reseeded));
    }

    #[test]
    fn bad_specs_are_rejected() {
        let mut bad = small();
        bad.sizes = vec![];
        assert!(bad.expand().is_err());

        let mut bad = small();
        bad.replications = 0;
        assert!(bad.expand().is_err());

        let mut bad = small();
        bad.rates = RateAxis::Explicit(vec![]);
        assert!(bad.expand().is_err());

        let mut bad = small();
        bad.rates = RateAxis::Geometric { lo: 0.1, hi: 0.05, steps: 4 };
        assert!(bad.expand().is_err());

        let mut bad = small();
        bad.name = "has space".into();
        assert!(bad.expand().is_err());

        let mut bad = small();
        bad.sizes = vec![18]; // not a legal quarc/spidergon-with-quarc size
        assert!(bad.expand().is_err());

        let mut bad = small();
        bad.betas = vec![1.5];
        assert!(bad.expand().is_err());

        let mut bad = small();
        bad.arbs = vec![];
        assert!(bad.expand().is_err());
    }

    #[test]
    fn saturation_keys_ignore_replications() {
        // Searches probe with replication 0 only; changing --replications
        // must not invalidate cached frontier points (but must invalidate
        // fixed-rate points, whose merge really does depend on it).
        let mut sat = small();
        sat.rates = RateAxis::Saturation { rel_tol: 0.1, max_probes: 16 };
        let exp = sat.expand().unwrap();
        let mut more_reps = sat.clone();
        more_reps.replications += 3;
        for p in &exp.points {
            assert_eq!(p.content_hash(&sat), p.content_hash(&more_reps));
        }

        let grid = small();
        let mut grid_more = grid.clone();
        grid_more.replications += 3;
        let gp = grid.expand().unwrap().points[0];
        assert_ne!(gp.content_hash(&grid), gp.content_hash(&grid_more));
    }

    #[test]
    fn merge_keys_ignore_the_replication_protocol() {
        // The merge key (cache key + RNG substream) must be shared by every
        // replication protocol over the same physical point — that is the
        // whole upgrade story: a convergence campaign finds (and tops up)
        // the series a fixed-replications campaign cached, and replication
        // seeds never move when the protocol changes.
        let fixed = small();
        let mut more = fixed.clone();
        more.replications += 5;
        let mut conv = fixed.clone();
        conv.convergence = Some(Convergence { target: CiTarget::Rel(0.05), max_reps: 32 });
        let p = fixed.expand().unwrap().points[0];
        assert_eq!(p.merge_key(&fixed), p.merge_key(&more));
        assert_eq!(p.merge_key(&fixed), p.merge_key(&conv));
        // …while the content key (the artifact's result identity) reflects
        // the protocol, because the merged numbers differ.
        assert_ne!(p.content_hash(&fixed), p.content_hash(&more));
        assert_ne!(p.content_hash(&fixed), p.content_hash(&conv));
        assert!(p.content_key(&conv).contains("conv=rel:0.05 min=2 max=32"));
        assert!(p.content_key(&fixed).starts_with(&p.merge_key(&fixed)));
    }

    #[test]
    fn policy_resolves_min_reps_and_fixed_counts() {
        let mut spec = small();
        spec.replications = 1;
        assert_eq!(spec.policy(), ReplicationPolicy::Fixed(1));
        spec.convergence = Some(Convergence { target: CiTarget::Abs(0.5), max_reps: 16 });
        // One replication has no variance estimate; convergence needs ≥ 2.
        assert_eq!(
            spec.policy(),
            ReplicationPolicy::Converge { min_reps: 2, target: CiTarget::Abs(0.5), max_reps: 16 }
        );
        spec.replications = 4;
        assert_eq!(
            spec.policy(),
            ReplicationPolicy::Converge { min_reps: 4, target: CiTarget::Abs(0.5), max_reps: 16 }
        );
    }

    #[test]
    fn bad_convergence_policies_are_rejected() {
        let mut bad = small();
        bad.convergence = Some(Convergence { target: CiTarget::Rel(0.0), max_reps: 16 });
        assert!(bad.expand().is_err());

        let mut bad = small();
        bad.convergence = Some(Convergence { target: CiTarget::Abs(-1.0), max_reps: 16 });
        assert!(bad.expand().is_err());

        // max_reps below the starting count can never be satisfied.
        let mut bad = small();
        bad.replications = 8;
        bad.convergence = Some(Convergence { target: CiTarget::Rel(0.05), max_reps: 4 });
        assert!(bad.expand().is_err());

        let mut ok = small();
        ok.convergence = Some(Convergence { target: CiTarget::Rel(0.05), max_reps: 2 });
        assert!(ok.expand().is_ok(), "max_reps == max(replications, 2) is the floor");
    }

    #[test]
    fn saturation_axis_yields_one_point_per_curve() {
        let mut spec = small();
        spec.rates = RateAxis::Saturation { rel_tol: 0.1, max_probes: 16 };
        let exp = spec.expand().unwrap();
        assert_eq!(exp.points.len(), 4); // 2 topologies × 2 sizes
        for p in &exp.points {
            match p.work {
                PointWork::Saturation { lo, hi, .. } => assert!(0.0 < lo && lo < hi),
                PointWork::Rate(_) => panic!("expected saturation work"),
            }
        }
    }

    #[test]
    fn auto_geometric_tracks_the_analytic_bound() {
        let mut spec = small();
        spec.rates = RateAxis::AutoGeometric { span: 1.1, lo_div: 40.0, steps: 5 };
        let exp = spec.expand().unwrap();
        assert_eq!(exp.points.len(), 2 * 2 * 5);
        for p in &exp.points {
            let bound = quarc_analytical::quarc_saturation_rate(p.curve.n, p.curve.msg_len);
            match p.work {
                PointWork::Rate(r) => assert!(r <= bound * 1.1 + 1e-12 && r > 0.0),
                _ => panic!("expected rate work"),
            }
        }
    }
}
