//! Replication: running one point under several independent seeds and
//! merging the outcomes into means with confidence intervals.
//!
//! Across-replication spread uses [`OnlineStats`] (one sample per
//! replication per metric); within-replication latency *distributions* are
//! pooled with [`LatencyHistogram::merge`], so percentile estimates use every
//! sample from every seed. Replication seeds are drawn from per-point
//! [`DetRng::fork`] substreams keyed by the point's content hash — a pure
//! function of the point's parameters, which is what keeps a multi-threaded
//! campaign bit-identical to a serial one.

use crate::json::Json;
use quarc_engine::stats::{LatencyHistogram, OnlineStats};
use quarc_engine::DetRng;
use quarc_sim::{run_point, PointSpec, RunSpec};

/// Two-sided 95% Student-t quantiles for ν = n − 1 degrees of freedom
/// (ν ≥ 30 uses the normal 1.96).
fn t95(df: u32) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f64::NAN
    } else if df <= 30 {
        TABLE[(df - 1) as usize]
    } else {
        1.96
    }
}

/// A mean over replications with a 95% confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanCi {
    /// Across-replication mean.
    pub mean: f64,
    /// 95% confidence half-width (0 for a single replication).
    pub ci95: f64,
    /// Number of replications that contributed.
    pub n: u32,
}

impl MeanCi {
    fn from_stats(stats: &OnlineStats) -> MeanCi {
        let n = stats.count() as u32;
        let ci95 = if n >= 2 { t95(n - 1) * stats.std_dev() / (n as f64).sqrt() } else { 0.0 };
        MeanCi { mean: stats.mean(), ci95, n }
    }

    /// JSON form: `{"mean": …, "ci95": …, "n": …}`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("mean", Json::Num(self.mean)),
            ("ci95", Json::Num(self.ci95)),
            ("n", Json::UInt(self.n as u64)),
        ])
    }

    /// Parse the JSON form.
    pub fn from_json(v: &Json) -> Option<MeanCi> {
        Some(MeanCi {
            mean: v.get("mean")?.as_f64()?,
            ci95: v.get("ci95")?.as_f64()?,
            n: v.get("n")?.as_u64()? as u32,
        })
    }
}

/// The merged outcome of all replications of one fixed-rate point.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedRun {
    /// Replications executed.
    pub reps: u32,
    /// Mean unicast latency (cycles).
    pub unicast_mean: MeanCi,
    /// Mean broadcast reception latency.
    pub bcast_reception_mean: MeanCi,
    /// Mean broadcast completion latency.
    pub bcast_completion_mean: MeanCi,
    /// Delivered flits per node per cycle.
    pub throughput: MeanCi,
    /// 95th-percentile unicast latency from the pooled histogram.
    pub unicast_p95: Option<u64>,
    /// 95th-percentile broadcast completion latency from the pooled histogram.
    pub bcast_completion_p95: Option<u64>,
    /// Pooled unicast sample count.
    pub unicast_samples: u64,
    /// Pooled broadcast-completion sample count.
    pub bcast_samples: u64,
    /// How many replications hit a saturation criterion.
    pub saturated_reps: u32,
    /// Majority verdict.
    pub saturated: bool,
}

impl MergedRun {
    /// JSON form (stable field order).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("reps", Json::UInt(self.reps as u64)),
            ("unicast_mean", self.unicast_mean.to_json()),
            ("bcast_reception_mean", self.bcast_reception_mean.to_json()),
            ("bcast_completion_mean", self.bcast_completion_mean.to_json()),
            ("throughput", self.throughput.to_json()),
            ("unicast_p95", self.unicast_p95.map_or(Json::Null, Json::UInt)),
            ("bcast_completion_p95", self.bcast_completion_p95.map_or(Json::Null, Json::UInt)),
            ("unicast_samples", Json::UInt(self.unicast_samples)),
            ("bcast_samples", Json::UInt(self.bcast_samples)),
            ("saturated_reps", Json::UInt(self.saturated_reps as u64)),
            ("saturated", Json::Bool(self.saturated)),
        ])
    }

    /// Parse the JSON form.
    pub fn from_json(v: &Json) -> Option<MergedRun> {
        Some(MergedRun {
            reps: v.get("reps")?.as_u64()? as u32,
            unicast_mean: MeanCi::from_json(v.get("unicast_mean")?)?,
            bcast_reception_mean: MeanCi::from_json(v.get("bcast_reception_mean")?)?,
            bcast_completion_mean: MeanCi::from_json(v.get("bcast_completion_mean")?)?,
            throughput: MeanCi::from_json(v.get("throughput")?)?,
            unicast_p95: match v.get("unicast_p95")? {
                Json::Null => None,
                other => Some(other.as_u64()?),
            },
            bcast_completion_p95: match v.get("bcast_completion_p95")? {
                Json::Null => None,
                other => Some(other.as_u64()?),
            },
            unicast_samples: v.get("unicast_samples")?.as_u64()?,
            bcast_samples: v.get("bcast_samples")?.as_u64()?,
            saturated_reps: v.get("saturated_reps")?.as_u64()? as u32,
            saturated: v.get("saturated")?.as_bool()?,
        })
    }
}

/// The workload seed for replication `rep` of the point whose content hash
/// is `point_stream`, under master seed `base_seed`.
///
/// Pure function of its arguments: campaign-level determinism rests here.
pub fn replication_seed(base_seed: u64, point_stream: u64, rep: u32) -> u64 {
    DetRng::new(base_seed).fork(point_stream).fork(rep as u64).next_u64()
}

/// Run `reps` independent replications of `template` (its `seed` field is
/// overwritten per replication) and merge.
pub fn run_replicated(
    template: &PointSpec,
    run_spec: &RunSpec,
    base_seed: u64,
    point_stream: u64,
    reps: u32,
) -> MergedRun {
    assert!(reps >= 1);
    let mut unicast = OnlineStats::new();
    let mut reception = OnlineStats::new();
    let mut completion = OnlineStats::new();
    let mut throughput = OnlineStats::new();
    let mut pooled_unicast = LatencyHistogram::new();
    let mut pooled_bcast = LatencyHistogram::new();
    let mut bcast_samples = 0;
    let mut saturated_reps = 0;
    for rep in 0..reps {
        let mut point = *template;
        point.seed = replication_seed(base_seed, point_stream, rep);
        // Campaign points are validated at expansion, so a config error here
        // is a programming error, not an input error.
        let outcome = run_point(&point, run_spec).expect("expansion validated this configuration");
        let r = &outcome.result;
        unicast.push(r.unicast_mean);
        reception.push(r.bcast_reception_mean);
        completion.push(r.bcast_completion_mean);
        throughput.push(r.throughput);
        pooled_unicast.merge(&outcome.unicast_hist);
        pooled_bcast.merge(&outcome.bcast_completion_hist);
        bcast_samples += r.bcast_samples;
        saturated_reps += u32::from(r.saturated);
    }
    MergedRun {
        reps,
        unicast_mean: MeanCi::from_stats(&unicast),
        bcast_reception_mean: MeanCi::from_stats(&reception),
        bcast_completion_mean: MeanCi::from_stats(&completion),
        throughput: MeanCi::from_stats(&throughput),
        unicast_p95: pooled_unicast.percentile(95.0),
        bcast_completion_p95: pooled_bcast.percentile(95.0),
        unicast_samples: pooled_unicast.count(),
        bcast_samples,
        saturated_reps,
        saturated: saturated_reps * 2 > reps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarc_core::config::NocConfig;

    fn template() -> PointSpec {
        PointSpec { noc: NocConfig::quarc(8), msg_len: 4, beta: 0.05, seed: 0, rate: 0.01 }
    }

    fn quick() -> RunSpec {
        RunSpec { warmup: 200, measure: 1_500, drain: 3_000, ..Default::default() }
    }

    #[test]
    fn replication_seeds_are_stable_and_distinct() {
        let a = replication_seed(1, 99, 0);
        assert_eq!(a, replication_seed(1, 99, 0));
        assert_ne!(a, replication_seed(1, 99, 1));
        assert_ne!(a, replication_seed(1, 98, 0));
        assert_ne!(a, replication_seed(2, 99, 0));
    }

    #[test]
    fn merge_pools_samples_and_bounds_ci() {
        let merged = run_replicated(&template(), &quick(), 7, 11, 3);
        assert_eq!(merged.reps, 3);
        assert_eq!(merged.unicast_mean.n, 3);
        assert!(merged.unicast_mean.mean > 0.0);
        assert!(merged.unicast_mean.ci95 >= 0.0);
        assert!(merged.unicast_samples > 100);
        assert!(merged.unicast_p95.is_some());
        assert!(!merged.saturated);
    }

    #[test]
    fn single_replication_has_zero_ci() {
        let merged = run_replicated(&template(), &quick(), 7, 11, 1);
        assert_eq!(merged.unicast_mean.ci95, 0.0);
        assert_eq!(merged.unicast_mean.n, 1);
    }

    #[test]
    fn merged_run_json_roundtrip() {
        let merged = run_replicated(&template(), &quick(), 7, 11, 2);
        let json = merged.to_json();
        let back = MergedRun::from_json(&Json::parse(&json.to_pretty()).unwrap()).unwrap();
        assert_eq!(back, merged);
    }

    #[test]
    fn t_table_shape() {
        assert!((t95(1) - 12.706).abs() < 1e-9);
        assert!(t95(2) < t95(1));
        assert!((t95(100) - 1.96).abs() < 1e-9);
        assert!(t95(0).is_nan());
    }
}
