//! Replication: running one point under several independent seeds and
//! merging the outcomes into means with confidence intervals — incrementally.
//!
//! The unit of storage is the **replication series**: one [`RepOutcome`] per
//! seed, in replication-index order. Everything else is a pure function of a
//! series prefix: [`merge_series`] folds replications `0..n` into a
//! [`MergedRun`] (across-replication spread via [`OnlineStats`], pooled
//! latency *distributions* via [`LatencyHistogram::merge`]), and [`decide`]
//! picks `n` — exactly `replications` for a fixed protocol, or the smallest
//! prefix meeting a [`CiTarget`] under convergence control. Because the
//! reported prefix is chosen by scanning from the start, a point that was
//! over-simulated (a cached series longer than needed, or a batch that
//! overshot the target) still reports the same `n` — which is what keeps
//! campaigns bit-identical across batch schedules, worker counts and cache
//! states.
//!
//! Replication seeds are drawn from per-point [`DetRng::fork`] substreams
//! keyed by the point's *merge hash* — a pure function of the point's
//! physical parameters (never of the replication protocol), so replication
//! `i` always runs under the same seed and a stored series can be resumed,
//! topped up, or truncated to a prefix without invalidating a single run.

use crate::json::Json;
use crate::spec::{CiTarget, ReplicationPolicy};
use quarc_engine::stats::{LatencyHistogram, OnlineStats};
use quarc_engine::DetRng;
use quarc_sim::{run_point, run_point_outcome_deadline, PointRunOutcome, PointSpec, RunSpec};
use std::time::Instant;

/// Two-sided 95% Student-t quantiles for ν = n − 1 degrees of freedom
/// (ν > 30 uses the normal 1.96).
fn t95(df: u32) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f64::NAN
    } else if df <= 30 {
        TABLE[(df - 1) as usize]
    } else {
        1.96
    }
}

/// The convergence verdict of a reported replication prefix.
///
/// Serialised into artifacts as `true` / `false` /
/// `"abandoned-saturated"`, so pre-existing artifacts (booleans only) keep
/// parsing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Converged {
    /// The protocol's CI target was met at the reported prefix (vacuously
    /// true for fixed-replication protocols).
    Yes,
    /// The convergence cap was hit without meeting the target.
    No,
    /// The replication budget was abandoned early because the *saturation
    /// verdict itself* was already stable: every replication of the
    /// reported prefix saturated, so further replications would only
    /// re-measure queueing noise past the knee (their latency CIs never
    /// tighten). The reported prefix is the smallest all-saturated prefix
    /// of length ≥ `min_reps` — a pure function of the series, so cache
    /// state, batch size and worker count cannot move it.
    AbandonedSaturated,
}

impl Converged {
    /// Whether the CI target itself was met.
    pub fn met_target(self) -> bool {
        self == Converged::Yes
    }

    /// JSON form (`true` / `false` / `"abandoned-saturated"`).
    pub fn to_json(self) -> Json {
        match self {
            Converged::Yes => Json::Bool(true),
            Converged::No => Json::Bool(false),
            Converged::AbandonedSaturated => Json::Str("abandoned-saturated".into()),
        }
    }

    /// Parse the JSON form.
    pub fn from_json(v: &Json) -> Option<Converged> {
        match v {
            Json::Bool(true) => Some(Converged::Yes),
            Json::Bool(false) => Some(Converged::No),
            Json::Str(s) if s == "abandoned-saturated" => Some(Converged::AbandonedSaturated),
            _ => None,
        }
    }
}

impl std::fmt::Display for Converged {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Converged::Yes => write!(f, "true"),
            Converged::No => write!(f, "false"),
            Converged::AbandonedSaturated => write!(f, "abandoned-saturated"),
        }
    }
}

/// A mean over replications with a 95% confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeanCi {
    /// Across-replication mean.
    pub mean: f64,
    /// 95% confidence half-width (0 for a single replication).
    pub ci95: f64,
    /// Number of replications that contributed.
    pub n: u32,
}

impl MeanCi {
    fn from_stats(stats: &OnlineStats) -> MeanCi {
        let n = stats.count() as u32;
        let ci95 = if n >= 2 { t95(n - 1) * stats.std_dev() / (n as f64).sqrt() } else { 0.0 };
        MeanCi { mean: stats.mean(), ci95, n }
    }

    /// Whether this metric's half-width meets `target`.
    ///
    /// A relative target compares against the metric's own mean, so a
    /// metric that is identically zero across replications (broadcast
    /// latencies at β = 0) is converged by definition — zero half-width
    /// against a zero mean.
    pub fn meets(&self, target: CiTarget) -> bool {
        match target {
            CiTarget::Abs(w) => self.ci95 <= w,
            CiTarget::Rel(r) => self.ci95 <= r * self.mean.abs(),
        }
    }

    /// JSON form: `{"mean": …, "ci95": …, "n": …}`.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("mean", Json::Num(self.mean)),
            ("ci95", Json::Num(self.ci95)),
            ("n", Json::UInt(self.n as u64)),
        ])
    }

    /// Parse the JSON form.
    pub fn from_json(v: &Json) -> Option<MeanCi> {
        Some(MeanCi {
            mean: v.get("mean")?.as_f64()?,
            ci95: v.get("ci95")?.as_f64()?,
            n: v.get("n")?.as_u64()? as u32,
        })
    }
}

/// The outcome of one replication of one fixed-rate point: the per-seed
/// samples the across-replication statistics are built from, plus the
/// latency distributions pooled into percentile estimates.
///
/// This is what the result cache stores (per point, as an ordered series) —
/// summaries can always be recomputed from it, for any prefix, bit-exactly.
#[derive(Debug, Clone, PartialEq)]
pub struct RepOutcome {
    /// Mean unicast latency of this replication (cycles).
    pub unicast_mean: f64,
    /// Mean broadcast reception latency.
    pub bcast_reception_mean: f64,
    /// Mean broadcast completion latency.
    pub bcast_completion_mean: f64,
    /// Delivered flits per node per cycle.
    pub throughput: f64,
    /// Unicast latency distribution over the measurement window.
    pub unicast_hist: LatencyHistogram,
    /// Broadcast completion latency distribution.
    pub bcast_hist: LatencyHistogram,
    /// Broadcast-completion sample count.
    pub bcast_samples: u64,
    /// Whether this replication hit a saturation criterion.
    pub saturated: bool,
    /// Fraction of expected receiver deliveries that happened (1.0 on
    /// fault-free runs; the headline robustness number under faults).
    pub delivered_fraction: f64,
    /// Messages retired with at least one receiver lost to a fault.
    pub undeliverable: u64,
    /// Recovery-layer retransmissions issued (0 with recovery disabled).
    pub retransmissions: u64,
    /// Receivers first served by a retransmitted copy.
    pub recovered_receivers: u64,
}

fn hist_json(h: &LatencyHistogram) -> Json {
    // Sparse bucket encoding: almost all of the 65 buckets are empty.
    let buckets = h
        .bucket_counts()
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(k, &c)| Json::Arr(vec![Json::UInt(k as u64), Json::UInt(c)]))
        .collect();
    Json::obj(vec![
        ("buckets", Json::Arr(buckets)),
        // The exact value sum exceeds u64 in principle; a decimal string
        // round-trips u128 losslessly through the in-tree JSON module.
        ("total", Json::Str(h.total().to_string())),
    ])
}

fn hist_from_json(v: &Json) -> Option<LatencyHistogram> {
    let mut buckets = [0u64; 65];
    for pair in v.get("buckets")?.as_arr()? {
        let pair = pair.as_arr()?;
        let [k, c] = pair else { return None };
        let k = k.as_u64()? as usize;
        if k >= 65 {
            return None;
        }
        buckets[k] = c.as_u64()?;
    }
    let total: u128 = v.get("total")?.as_str()?.parse().ok()?;
    Some(LatencyHistogram::from_parts(buckets, total))
}

impl RepOutcome {
    /// JSON form (stable field order).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("unicast_mean", Json::Num(self.unicast_mean)),
            ("bcast_reception_mean", Json::Num(self.bcast_reception_mean)),
            ("bcast_completion_mean", Json::Num(self.bcast_completion_mean)),
            ("throughput", Json::Num(self.throughput)),
            ("bcast_samples", Json::UInt(self.bcast_samples)),
            ("saturated", Json::Bool(self.saturated)),
            ("delivered_fraction", Json::Num(self.delivered_fraction)),
            ("undeliverable", Json::UInt(self.undeliverable)),
            ("retransmissions", Json::UInt(self.retransmissions)),
            ("recovered_receivers", Json::UInt(self.recovered_receivers)),
            ("unicast_hist", hist_json(&self.unicast_hist)),
            ("bcast_hist", hist_json(&self.bcast_hist)),
        ])
    }

    /// Parse the JSON form. Strict about the fault- and recovery-accounting
    /// fields: the `v4`/`v5` merge-key bumps retired every earlier cache
    /// entry, so a series missing them is corrupt, not legacy.
    pub fn from_json(v: &Json) -> Option<RepOutcome> {
        Some(RepOutcome {
            unicast_mean: v.get("unicast_mean")?.as_f64()?,
            bcast_reception_mean: v.get("bcast_reception_mean")?.as_f64()?,
            bcast_completion_mean: v.get("bcast_completion_mean")?.as_f64()?,
            throughput: v.get("throughput")?.as_f64()?,
            bcast_samples: v.get("bcast_samples")?.as_u64()?,
            saturated: v.get("saturated")?.as_bool()?,
            delivered_fraction: v.get("delivered_fraction")?.as_f64()?,
            undeliverable: v.get("undeliverable")?.as_u64()?,
            retransmissions: v.get("retransmissions")?.as_u64()?,
            recovered_receivers: v.get("recovered_receivers")?.as_u64()?,
            unicast_hist: hist_from_json(v.get("unicast_hist")?)?,
            bcast_hist: hist_from_json(v.get("bcast_hist")?)?,
        })
    }
}

/// The merged outcome of a replication-series prefix of one fixed-rate point.
#[derive(Debug, Clone, PartialEq)]
pub struct MergedRun {
    /// Replications merged (the reported prefix length `n`).
    pub reps: u32,
    /// Mean unicast latency (cycles).
    pub unicast_mean: MeanCi,
    /// Mean broadcast reception latency.
    pub bcast_reception_mean: MeanCi,
    /// Mean broadcast completion latency.
    pub bcast_completion_mean: MeanCi,
    /// Delivered flits per node per cycle.
    pub throughput: MeanCi,
    /// 95th-percentile unicast latency from the pooled histogram.
    pub unicast_p95: Option<u64>,
    /// 95th-percentile broadcast completion latency from the pooled histogram.
    pub bcast_completion_p95: Option<u64>,
    /// Pooled unicast sample count.
    pub unicast_samples: u64,
    /// Pooled broadcast-completion sample count.
    pub bcast_samples: u64,
    /// How many replications hit a saturation criterion.
    pub saturated_reps: u32,
    /// Majority verdict.
    pub saturated: bool,
    /// Mean delivered fraction across replications (1.0 without faults).
    /// Summarised, never convergence-gated: a fault plan makes it a
    /// near-constant, a healthy plan makes it exactly 1.0.
    pub delivered_fraction: MeanCi,
    /// Messages retired undeliverable, summed over replications.
    pub undeliverable: u64,
    /// Recovery-layer retransmissions, summed over replications (0 with
    /// recovery disabled).
    pub retransmissions: u64,
    /// Receivers first served by a retransmitted copy, summed over
    /// replications.
    pub recovered_receivers: u64,
    /// Whether the replication protocol's CI target was met: the policy's
    /// half-width target for convergent campaigns (achieved half-widths are
    /// the `ci95` fields), vacuously met for fixed-replication ones — or
    /// [`Converged::AbandonedSaturated`] when the saturation early-abandon
    /// rule stopped the point first.
    pub converged: Converged,
}

impl MergedRun {
    /// JSON form (stable field order).
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("reps", Json::UInt(self.reps as u64)),
            ("unicast_mean", self.unicast_mean.to_json()),
            ("bcast_reception_mean", self.bcast_reception_mean.to_json()),
            ("bcast_completion_mean", self.bcast_completion_mean.to_json()),
            ("throughput", self.throughput.to_json()),
            ("unicast_p95", self.unicast_p95.map_or(Json::Null, Json::UInt)),
            ("bcast_completion_p95", self.bcast_completion_p95.map_or(Json::Null, Json::UInt)),
            ("unicast_samples", Json::UInt(self.unicast_samples)),
            ("bcast_samples", Json::UInt(self.bcast_samples)),
            ("saturated_reps", Json::UInt(self.saturated_reps as u64)),
            ("saturated", Json::Bool(self.saturated)),
            ("delivered_fraction", self.delivered_fraction.to_json()),
            ("undeliverable", Json::UInt(self.undeliverable)),
            ("retransmissions", Json::UInt(self.retransmissions)),
            ("recovered_receivers", Json::UInt(self.recovered_receivers)),
            ("converged", self.converged.to_json()),
        ])
    }

    /// Parse the JSON form.
    pub fn from_json(v: &Json) -> Option<MergedRun> {
        Some(MergedRun {
            reps: v.get("reps")?.as_u64()? as u32,
            unicast_mean: MeanCi::from_json(v.get("unicast_mean")?)?,
            bcast_reception_mean: MeanCi::from_json(v.get("bcast_reception_mean")?)?,
            bcast_completion_mean: MeanCi::from_json(v.get("bcast_completion_mean")?)?,
            throughput: MeanCi::from_json(v.get("throughput")?)?,
            unicast_p95: match v.get("unicast_p95")? {
                Json::Null => None,
                other => Some(other.as_u64()?),
            },
            bcast_completion_p95: match v.get("bcast_completion_p95")? {
                Json::Null => None,
                other => Some(other.as_u64()?),
            },
            unicast_samples: v.get("unicast_samples")?.as_u64()?,
            bcast_samples: v.get("bcast_samples")?.as_u64()?,
            saturated_reps: v.get("saturated_reps")?.as_u64()? as u32,
            saturated: v.get("saturated")?.as_bool()?,
            delivered_fraction: MeanCi::from_json(v.get("delivered_fraction")?)?,
            undeliverable: v.get("undeliverable")?.as_u64()?,
            retransmissions: v.get("retransmissions")?.as_u64()?,
            recovered_receivers: v.get("recovered_receivers")?.as_u64()?,
            converged: Converged::from_json(v.get("converged")?)?,
        })
    }
}

/// The workload seed for replication `rep` of the point whose merge hash
/// is `point_stream`, under master seed `base_seed`.
///
/// Pure function of its arguments: campaign-level determinism rests here.
pub fn replication_seed(base_seed: u64, point_stream: u64, rep: u32) -> u64 {
    DetRng::new(base_seed).fork(point_stream).fork(rep as u64).next_u64()
}

/// A replication the stall watchdog cut off: the wedged run's coordinates,
/// rendered for quarantine records and operator eyes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepStall {
    /// Replication index that stalled.
    pub rep: u32,
    /// Cycle at which the watchdog fired.
    pub cycle: u64,
    /// Where the traffic was wedged ([`quarc_sim::StallDiagnostics`],
    /// rendered).
    pub diagnostics: String,
}

/// Why a checked series extension stopped before reaching its target length.
///
/// Either way, the interrupted replication contributes nothing to the
/// series — only the replications completed before the cut are valid
/// outcomes — and the point is quarantined rather than cached.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RepInterrupt {
    /// The stall watchdog fired: the network wedged under this replication.
    Stall(RepStall),
    /// The cooperative wall-clock deadline expired mid-replication (the
    /// campaign's `--point-timeout` budget reaching inside a run instead of
    /// waiting for the batch boundary).
    Deadline {
        /// Replication index that was cut off.
        rep: u32,
        /// Simulation cycle at which the deadline was noticed.
        cycle: u64,
    },
}

fn rep_outcome(outcome: quarc_sim::PointOutcome) -> RepOutcome {
    let r = &outcome.result;
    RepOutcome {
        unicast_mean: r.unicast_mean,
        bcast_reception_mean: r.bcast_reception_mean,
        bcast_completion_mean: r.bcast_completion_mean,
        throughput: r.throughput,
        bcast_samples: r.bcast_samples,
        saturated: r.saturated,
        delivered_fraction: r.delivered_fraction,
        undeliverable: r.undeliverable,
        retransmissions: r.retransmissions,
        recovered_receivers: r.recovered_receivers,
        unicast_hist: outcome.unicast_hist,
        bcast_hist: outcome.bcast_completion_hist,
    }
}

/// Simulate replications `series.len()..upto` of `template` (its `seed`
/// field is overwritten per replication) and append them to `series`.
///
/// Appending is the only mutation a series ever sees, so any interleaving of
/// cache loads and top-up batches yields the same outcome at every index.
/// A stalled replication is folded into its partial statistics (flagged
/// saturated) — campaign execution uses [`extend_series_checked`] instead,
/// which quarantines the point.
pub fn extend_series(
    series: &mut Vec<RepOutcome>,
    template: &PointSpec,
    run_spec: &RunSpec,
    base_seed: u64,
    point_stream: u64,
    upto: u32,
) {
    for rep in series.len() as u32..upto {
        let mut point = *template;
        point.seed = replication_seed(base_seed, point_stream, rep);
        // Campaign points are validated at expansion, so a config error here
        // is a programming error, not an input error.
        let outcome = run_point(&point, run_spec).expect("expansion validated this configuration");
        series.push(rep_outcome(outcome));
    }
}

/// [`extend_series`], but a stalled or over-deadline replication stops the
/// extension and reports why instead of masquerading as a saturated sample.
///
/// The series keeps every replication completed *before* the interrupt —
/// those are valid outcomes, safe to persist and to resume from. The
/// interrupted replication itself contributes nothing: its partial numbers
/// describe a wedged (or cut-off) network, not the configured workload.
///
/// `deadline` is the campaign's remaining per-point wall-clock budget as an
/// absolute instant; `None` runs unbounded. It is checked cooperatively at
/// the stall watchdog's cadence inside each replication, so one over-budget
/// replication yields mid-run instead of pinning a worker to completion.
pub fn extend_series_checked(
    series: &mut Vec<RepOutcome>,
    template: &PointSpec,
    run_spec: &RunSpec,
    base_seed: u64,
    point_stream: u64,
    upto: u32,
    deadline: Option<Instant>,
) -> Result<(), RepInterrupt> {
    for rep in series.len() as u32..upto {
        let mut point = *template;
        point.seed = replication_seed(base_seed, point_stream, rep);
        let outcome = run_point_outcome_deadline(&point, run_spec, deadline)
            .expect("expansion validated this configuration");
        match outcome {
            PointRunOutcome::Finished(outcome) => series.push(rep_outcome(outcome)),
            PointRunOutcome::Stalled { cycle, diagnostics, .. } => {
                return Err(RepInterrupt::Stall(RepStall {
                    rep,
                    cycle,
                    diagnostics: diagnostics.to_string(),
                }));
            }
            PointRunOutcome::DeadlineExceeded { cycle, .. } => {
                return Err(RepInterrupt::Deadline { rep, cycle });
            }
        }
    }
    Ok(())
}

/// What [`decide`] concluded about a replication series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// The series is long enough: report the prefix `0..n`.
    Ready {
        /// The canonical prefix length to merge and report.
        n: u32,
        /// The verdict at `n`: target met (always, for fixed protocols),
        /// capped without converging, or abandoned on a stable saturation
        /// verdict.
        converged: Converged,
    },
    /// More replications are needed; grow the series to `upto` and ask
    /// again.
    NeedMore {
        /// Target series length for the next batch.
        upto: u32,
    },
}

/// Tracked metrics of a series prefix, in a fixed order. Every one of them
/// must meet the convergence target.
fn prefix_stats(reps: &[RepOutcome], n: usize) -> [OnlineStats; 4] {
    let mut stats =
        [OnlineStats::new(), OnlineStats::new(), OnlineStats::new(), OnlineStats::new()];
    for rep in &reps[..n] {
        stats[0].push(rep.unicast_mean);
        stats[1].push(rep.bcast_reception_mean);
        stats[2].push(rep.bcast_completion_mean);
        stats[3].push(rep.throughput);
    }
    stats
}

fn target_met(stats: &[OnlineStats; 4], target: CiTarget) -> bool {
    stats.iter().all(|s| MeanCi::from_stats(s).meets(target))
}

/// Apply the replication protocol to a (possibly partial) series: the
/// **canonical stopping rule**.
///
/// For [`ReplicationPolicy::Converge`], the reported prefix is the smallest
/// `n ∈ [min_reps, max_reps]` whose prefix merge meets the target — found by
/// scanning from `min_reps` upward, so the answer never depends on how the
/// series got its length (cache, batch size, worker count). `batch` sizes
/// only the *next request* when the series is still too short; it is an
/// execution knob that cannot move a reported number.
pub fn decide(policy: &ReplicationPolicy, reps: &[RepOutcome], batch: u32) -> Decision {
    let have = reps.len() as u32;
    match *policy {
        ReplicationPolicy::Fixed(n) => {
            if have >= n {
                Decision::Ready { n, converged: Converged::Yes }
            } else {
                Decision::NeedMore { upto: n }
            }
        }
        ReplicationPolicy::Converge { min_reps, target, max_reps } => {
            // One replication has no variance estimate; `CampaignSpec`
            // validation enforces this, the clamp covers direct callers.
            let min_reps = min_reps.max(2);
            let scan_to = have.min(max_reps);
            if scan_to >= min_reps {
                let mut stats = prefix_stats(reps, min_reps as usize - 1);
                let mut all_saturated = reps[..min_reps as usize - 1].iter().all(|r| r.saturated);
                for n in min_reps..=scan_to {
                    let rep = &reps[n as usize - 1];
                    stats[0].push(rep.unicast_mean);
                    stats[1].push(rep.bcast_reception_mean);
                    stats[2].push(rep.bcast_completion_mean);
                    stats[3].push(rep.throughput);
                    all_saturated = all_saturated && rep.saturated;
                    if target_met(&stats, target) {
                        return Decision::Ready { n, converged: Converged::Yes };
                    }
                    // Early abandon (ROADMAP): once the saturation verdict
                    // is unanimous over a full prefix, the point is past the
                    // knee and its latency CIs will never tighten — stop
                    // spending replications on it. Prefix-pure: the answer
                    // is the smallest all-saturated prefix ≥ min_reps,
                    // independent of how the series got its length.
                    if all_saturated {
                        return Decision::Ready { n, converged: Converged::AbandonedSaturated };
                    }
                }
            }
            if have >= max_reps {
                Decision::Ready { n: max_reps, converged: Converged::No }
            } else {
                // Grow to min_reps first (the earliest possible checkpoint),
                // then one batch at a time. Never jumping past an unreached
                // checkpoint keeps warm-started (cached) points on the same
                // batch trajectory as cold ones once they pass min_reps.
                let upto =
                    if have < min_reps { min_reps } else { have.saturating_add(batch.max(1)) };
                Decision::NeedMore { upto: max_reps.min(upto) }
            }
        }
    }
}

/// Merge the prefix `0..n` of a replication series into a [`MergedRun`],
/// folding replications in index order (bit-exact for any series that agrees
/// on the prefix).
pub fn merge_series(reps: &[RepOutcome], n: u32, converged: Converged) -> MergedRun {
    assert!(n >= 1 && (n as usize) <= reps.len());
    let mut unicast = OnlineStats::new();
    let mut reception = OnlineStats::new();
    let mut completion = OnlineStats::new();
    let mut throughput = OnlineStats::new();
    let mut delivered = OnlineStats::new();
    let mut pooled_unicast = LatencyHistogram::new();
    let mut pooled_bcast = LatencyHistogram::new();
    let mut bcast_samples = 0;
    let mut saturated_reps = 0;
    let mut undeliverable = 0;
    let mut retransmissions = 0;
    let mut recovered_receivers = 0;
    for rep in &reps[..n as usize] {
        unicast.push(rep.unicast_mean);
        reception.push(rep.bcast_reception_mean);
        completion.push(rep.bcast_completion_mean);
        throughput.push(rep.throughput);
        delivered.push(rep.delivered_fraction);
        pooled_unicast.merge(&rep.unicast_hist);
        pooled_bcast.merge(&rep.bcast_hist);
        bcast_samples += rep.bcast_samples;
        saturated_reps += u32::from(rep.saturated);
        undeliverable += rep.undeliverable;
        retransmissions += rep.retransmissions;
        recovered_receivers += rep.recovered_receivers;
    }
    MergedRun {
        reps: n,
        unicast_mean: MeanCi::from_stats(&unicast),
        bcast_reception_mean: MeanCi::from_stats(&reception),
        bcast_completion_mean: MeanCi::from_stats(&completion),
        throughput: MeanCi::from_stats(&throughput),
        unicast_p95: pooled_unicast.percentile(95.0),
        bcast_completion_p95: pooled_bcast.percentile(95.0),
        unicast_samples: pooled_unicast.count(),
        bcast_samples,
        saturated_reps,
        saturated: saturated_reps * 2 > n,
        delivered_fraction: MeanCi::from_stats(&delivered),
        undeliverable,
        retransmissions,
        recovered_receivers,
        converged,
    }
}

/// Run `reps` independent replications of `template` (its `seed` field is
/// overwritten per replication) and merge. The one-shot convenience wrapper
/// over [`extend_series`] + [`merge_series`]; campaign execution goes
/// through those directly so it can resume cached series.
pub fn run_replicated(
    template: &PointSpec,
    run_spec: &RunSpec,
    base_seed: u64,
    point_stream: u64,
    reps: u32,
) -> MergedRun {
    assert!(reps >= 1);
    let mut series = Vec::with_capacity(reps as usize);
    extend_series(&mut series, template, run_spec, base_seed, point_stream, reps);
    merge_series(&series, reps, Converged::Yes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarc_core::config::NocConfig;

    fn template() -> PointSpec {
        PointSpec { noc: NocConfig::quarc(8), msg_len: 4, beta: 0.05, seed: 0, rate: 0.01 }
    }

    fn quick() -> RunSpec {
        RunSpec { warmup: 200, measure: 1_500, drain: 3_000, ..Default::default() }
    }

    #[test]
    fn replication_seeds_are_stable_and_distinct() {
        let a = replication_seed(1, 99, 0);
        assert_eq!(a, replication_seed(1, 99, 0));
        assert_ne!(a, replication_seed(1, 99, 1));
        assert_ne!(a, replication_seed(1, 98, 0));
        assert_ne!(a, replication_seed(2, 99, 0));
    }

    #[test]
    fn merge_pools_samples_and_bounds_ci() {
        let merged = run_replicated(&template(), &quick(), 7, 11, 3);
        assert_eq!(merged.reps, 3);
        assert_eq!(merged.unicast_mean.n, 3);
        assert!(merged.unicast_mean.mean > 0.0);
        assert!(merged.unicast_mean.ci95 >= 0.0);
        assert!(merged.unicast_samples > 100);
        assert!(merged.unicast_p95.is_some());
        assert!(!merged.saturated);
        assert_eq!(merged.converged, Converged::Yes);
        // Fault-free replications deliver everything, with zero spread.
        assert_eq!(merged.delivered_fraction, MeanCi { mean: 1.0, ci95: 0.0, n: 3 });
        assert_eq!(merged.undeliverable, 0);
        // And with recovery off, no retransmission machinery ever engages.
        assert_eq!(merged.retransmissions, 0);
        assert_eq!(merged.recovered_receivers, 0);
    }

    #[test]
    fn checked_extension_matches_unchecked_on_healthy_runs() {
        let mut checked = Vec::new();
        extend_series_checked(&mut checked, &template(), &quick(), 7, 11, 3, None).unwrap();
        let mut plain = Vec::new();
        extend_series(&mut plain, &template(), &quick(), 7, 11, 3);
        assert_eq!(checked, plain);
    }

    #[test]
    fn single_replication_has_zero_ci() {
        let merged = run_replicated(&template(), &quick(), 7, 11, 1);
        assert_eq!(merged.unicast_mean.ci95, 0.0);
        assert_eq!(merged.unicast_mean.n, 1);
    }

    #[test]
    fn merged_run_json_roundtrip() {
        let merged = run_replicated(&template(), &quick(), 7, 11, 2);
        let json = merged.to_json();
        let back = MergedRun::from_json(&Json::parse(&json.to_pretty()).unwrap()).unwrap();
        assert_eq!(back, merged);
    }

    #[test]
    fn rep_outcome_json_roundtrip_is_bit_exact() {
        let mut series = Vec::new();
        extend_series(&mut series, &template(), &quick(), 7, 11, 2);
        for rep in &series {
            let text = rep.to_json().to_pretty();
            let back = RepOutcome::from_json(&Json::parse(&text).unwrap()).unwrap();
            // Bit-exactness here is what lets a topped-up cached series
            // merge identically to a never-persisted one.
            assert_eq!(&back, rep);
        }
    }

    #[test]
    fn extend_series_resumes_identically() {
        // 1 + 2 + 1 replications in three calls == 4 in one call: batching
        // cannot move a sample.
        let mut batched = Vec::new();
        extend_series(&mut batched, &template(), &quick(), 7, 11, 1);
        extend_series(&mut batched, &template(), &quick(), 7, 11, 3);
        extend_series(&mut batched, &template(), &quick(), 7, 11, 4);
        let mut oneshot = Vec::new();
        extend_series(&mut oneshot, &template(), &quick(), 7, 11, 4);
        assert_eq!(batched, oneshot);
        // And a round-trip through JSON mid-way changes nothing either.
        let mut resumed: Vec<RepOutcome> = batched[..2]
            .iter()
            .map(|r| {
                RepOutcome::from_json(&Json::parse(&r.to_json().to_pretty()).unwrap()).unwrap()
            })
            .collect();
        extend_series(&mut resumed, &template(), &quick(), 7, 11, 4);
        assert_eq!(resumed, oneshot);
    }

    #[test]
    fn merge_series_prefix_matches_run_replicated() {
        let mut series = Vec::new();
        extend_series(&mut series, &template(), &quick(), 7, 11, 5);
        for n in 1..=5u32 {
            let direct = run_replicated(&template(), &quick(), 7, 11, n);
            assert_eq!(merge_series(&series, n, Converged::Yes), direct, "prefix {n}");
        }
    }

    fn constant_rep(latency: f64, throughput: f64) -> RepOutcome {
        RepOutcome {
            unicast_mean: latency,
            bcast_reception_mean: 0.0,
            bcast_completion_mean: 0.0,
            throughput,
            unicast_hist: LatencyHistogram::new(),
            bcast_hist: LatencyHistogram::new(),
            bcast_samples: 0,
            saturated: false,
            delivered_fraction: 1.0,
            undeliverable: 0,
            retransmissions: 0,
            recovered_receivers: 0,
        }
    }

    #[test]
    fn decide_fixed_protocol() {
        let series = vec![constant_rep(10.0, 0.1); 3];
        let policy = ReplicationPolicy::Fixed(5);
        assert_eq!(decide(&policy, &series, 4), Decision::NeedMore { upto: 5 });
        let series = vec![constant_rep(10.0, 0.1); 8];
        // An over-long series (cached by a larger campaign) reports the
        // requested prefix, not everything available.
        assert_eq!(
            decide(&policy, &series, 4),
            Decision::Ready { n: 5, converged: Converged::Yes }
        );
    }

    #[test]
    fn decide_converges_at_smallest_satisfying_prefix() {
        let policy =
            ReplicationPolicy::Converge { min_reps: 2, target: CiTarget::Rel(0.05), max_reps: 16 };
        // Identical replications: zero variance, converged at min_reps —
        // regardless of how many extra replications the series carries.
        for len in [2usize, 3, 9] {
            let series = vec![constant_rep(20.0, 0.1); len];
            assert_eq!(
                decide(&policy, &series, 4),
                Decision::Ready { n: 2, converged: Converged::Yes },
                "series length {len}"
            );
        }
        // High-variance prefix: not converged, ask for one more batch.
        let series = vec![constant_rep(10.0, 0.1), constant_rep(30.0, 0.1)];
        assert_eq!(decide(&policy, &series, 4), Decision::NeedMore { upto: 6 });
        // The batch request never overshoots the cap.
        assert_eq!(decide(&policy, &series, 100), Decision::NeedMore { upto: 16 });
    }

    #[test]
    fn decide_caps_at_max_reps_unconverged() {
        let policy =
            ReplicationPolicy::Converge { min_reps: 2, target: CiTarget::Rel(0.001), max_reps: 4 };
        let noisy: Vec<RepOutcome> =
            [10.0, 30.0, 12.0, 28.0, 11.0].iter().map(|&l| constant_rep(l, 0.1)).collect();
        // At (or beyond) the cap with no satisfying prefix: report the cap,
        // unconverged — and ignore replications past it.
        assert_eq!(
            decide(&policy, &noisy[..4], 4),
            Decision::Ready { n: 4, converged: Converged::No }
        );
        assert_eq!(decide(&policy, &noisy, 4), Decision::Ready { n: 4, converged: Converged::No });
        assert_eq!(decide(&policy, &noisy[..2], 1), Decision::NeedMore { upto: 3 });
    }

    fn saturated_rep(latency: f64) -> RepOutcome {
        RepOutcome { saturated: true, ..constant_rep(latency, 0.01) }
    }

    #[test]
    fn decide_abandons_stable_saturation_verdicts_early() {
        // Saturated replications never tighten their latency CIs; once the
        // verdict is unanimous over a min_reps-long prefix, the point stops
        // burning budget and says why.
        let policy =
            ReplicationPolicy::Converge { min_reps: 2, target: CiTarget::Rel(0.01), max_reps: 32 };
        let noisy_sat: Vec<RepOutcome> =
            [900.0, 2500.0, 1700.0].iter().map(|&l| saturated_rep(l)).collect();
        assert_eq!(
            decide(&policy, &noisy_sat[..2], 4),
            Decision::Ready { n: 2, converged: Converged::AbandonedSaturated }
        );
        // Prefix-pure: a longer cached series reports the same prefix.
        assert_eq!(
            decide(&policy, &noisy_sat, 4),
            Decision::Ready { n: 2, converged: Converged::AbandonedSaturated }
        );
    }

    #[test]
    fn decide_does_not_abandon_mixed_verdicts() {
        // A borderline point (some replications saturate, some do not) keeps
        // the full convergence machinery: the verdict itself is unstable, so
        // the budget is exactly where it should be spent.
        let policy =
            ReplicationPolicy::Converge { min_reps: 2, target: CiTarget::Rel(0.001), max_reps: 4 };
        let mixed = vec![
            constant_rep(100.0, 0.05),
            saturated_rep(2500.0),
            saturated_rep(2100.0),
            saturated_rep(2300.0),
        ];
        // Replication 0 is unsaturated, so no prefix is ever unanimous and
        // the point runs to the cap like before.
        assert_eq!(decide(&policy, &mixed, 4), Decision::Ready { n: 4, converged: Converged::No });
    }

    #[test]
    fn ci_convergence_outranks_abandonment_at_the_same_prefix() {
        // Identical saturated replications meet any relative target with
        // zero variance; the CI verdict is checked first, so such a series
        // reports `converged: true`, not an abandonment.
        let policy =
            ReplicationPolicy::Converge { min_reps: 2, target: CiTarget::Rel(0.05), max_reps: 8 };
        let series = vec![saturated_rep(2000.0); 2];
        assert_eq!(
            decide(&policy, &series, 4),
            Decision::Ready { n: 2, converged: Converged::Yes }
        );
    }

    #[test]
    fn converged_json_roundtrips_and_accepts_legacy_booleans() {
        for c in [Converged::Yes, Converged::No, Converged::AbandonedSaturated] {
            assert_eq!(Converged::from_json(&c.to_json()), Some(c));
        }
        assert_eq!(Converged::from_json(&Json::Bool(true)), Some(Converged::Yes));
        assert_eq!(Converged::from_json(&Json::Str("nonsense".into())), None);
        assert_eq!(Converged::AbandonedSaturated.to_string(), "abandoned-saturated");
    }

    #[test]
    fn decide_needs_min_reps_before_judging() {
        let policy =
            ReplicationPolicy::Converge { min_reps: 3, target: CiTarget::Rel(0.05), max_reps: 8 };
        assert_eq!(decide(&policy, &[], 2), Decision::NeedMore { upto: 3 });
        let series = vec![constant_rep(20.0, 0.1); 1];
        assert_eq!(decide(&policy, &series, 2), Decision::NeedMore { upto: 3 });
    }

    #[test]
    fn decide_clamps_degenerate_min_reps() {
        // Spec validation forbids min_reps < 2, but `decide` is a public
        // entry point: a direct caller passing 0 must get the documented
        // floor of 2, not an index underflow.
        for min_reps in [0, 1] {
            let policy =
                ReplicationPolicy::Converge { min_reps, target: CiTarget::Rel(0.5), max_reps: 8 };
            assert_eq!(decide(&policy, &[], 4), Decision::NeedMore { upto: 2 });
            let series = vec![constant_rep(20.0, 0.1); 3];
            assert_eq!(
                decide(&policy, &series, 4),
                Decision::Ready { n: 2, converged: Converged::Yes }
            );
        }
    }

    #[test]
    fn abs_and_rel_targets_gate_on_half_width() {
        let tight = MeanCi { mean: 100.0, ci95: 0.4, n: 4 };
        assert!(tight.meets(CiTarget::Abs(0.5)));
        assert!(!tight.meets(CiTarget::Abs(0.3)));
        assert!(tight.meets(CiTarget::Rel(0.005)));
        assert!(!tight.meets(CiTarget::Rel(0.003)));
        // Zero-mean metrics (broadcast latencies at β = 0) are converged
        // exactly when their spread is zero too.
        assert!(MeanCi { mean: 0.0, ci95: 0.0, n: 4 }.meets(CiTarget::Rel(0.05)));
        assert!(!MeanCi { mean: 0.0, ci95: 0.1, n: 4 }.meets(CiTarget::Rel(0.05)));
    }

    #[test]
    fn t_table_shape() {
        assert!((t95(1) - 12.706).abs() < 1e-9);
        assert!(t95(2) < t95(1));
        assert!((t95(100) - 1.96).abs() < 1e-9);
        assert!(t95(0).is_nan());
    }
}
