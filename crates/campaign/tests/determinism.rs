//! The campaign determinism guarantee, held to bit-equality: a campaign run
//! on N workers produces byte-identical artifacts to the same campaign run
//! on one worker — across multiple topologies and replications, for both
//! fixed-grid and adaptive-saturation rate axes.

use quarc_campaign::{run_campaign, CampaignOptions, CampaignSpec, RateAxis};
use quarc_core::topology::TopologyKind;
use quarc_sim::RunSpec;

fn quick_run() -> RunSpec {
    RunSpec { warmup: 150, measure: 1_200, drain: 2_400, ..Default::default() }
}

fn opts(workers: usize) -> CampaignOptions {
    CampaignOptions { workers, quiet: true, ..Default::default() }
}

/// Render both artifacts for a run; this is exactly what lands on disk.
fn artifacts(spec: &CampaignSpec, workers: usize) -> (String, String) {
    let report = run_campaign(spec, &opts(workers)).expect("campaign runs");
    assert!(report.results.len() > 1);
    (report.to_json(spec).to_pretty(), report.csv())
}

#[test]
fn parallel_grid_campaign_is_bit_identical_to_serial() {
    let mut spec = CampaignSpec::new("determinism-grid");
    // ≥ 2 topologies and ≥ 2 replications, as the guarantee is stated.
    spec.topologies = vec![TopologyKind::Quarc, TopologyKind::Spidergon];
    spec.sizes = vec![8, 16];
    spec.msg_lens = vec![4];
    spec.betas = vec![0.0, 0.05];
    spec.rates = RateAxis::Explicit(vec![0.004, 0.008, 0.012]);
    spec.replications = 2;
    spec.run = quick_run();

    let (json_serial, csv_serial) = artifacts(&spec, 1);
    for workers in [2, 4, 8] {
        let (json_par, csv_par) = artifacts(&spec, workers);
        assert_eq!(json_serial, json_par, "JSON artifact diverged at {workers} workers");
        assert_eq!(csv_serial, csv_par, "CSV artifact diverged at {workers} workers");
    }
    // 2 topologies × 2 sizes × 2 betas × 3 rates = 24 points measured twice
    // each; sanity-check the scale so a silent expansion bug can't pass.
    assert_eq!(csv_serial.lines().count(), 1 + 24);
}

#[test]
fn parallel_saturation_campaign_is_bit_identical_to_serial() {
    let mut spec = CampaignSpec::new("determinism-sat");
    spec.topologies = vec![TopologyKind::Quarc, TopologyKind::Spidergon];
    spec.sizes = vec![8];
    spec.msg_lens = vec![4];
    spec.betas = vec![0.0];
    spec.rates = RateAxis::Saturation { rel_tol: 0.3, max_probes: 8 };
    spec.replications = 2;
    spec.run = quick_run();

    let (json_serial, csv_serial) = artifacts(&spec, 1);
    let (json_par, csv_par) = artifacts(&spec, 4);
    assert_eq!(json_serial, json_par);
    assert_eq!(csv_serial, csv_par);
}

#[test]
fn all_four_topologies_with_broadcast_are_bit_identical_at_any_worker_count() {
    // The §4 comparison grid: every topology family × β ∈ {0, 0.05} expands
    // to the full product (the old expander silently dropped mesh × β > 0)
    // and stays bit-identical across worker counts.
    let mut spec = CampaignSpec::new("determinism-all-topologies");
    spec.topologies =
        vec![TopologyKind::Quarc, TopologyKind::Spidergon, TopologyKind::Mesh, TopologyKind::Torus];
    spec.sizes = vec![16];
    spec.msg_lens = vec![4];
    spec.betas = vec![0.0, 0.05];
    spec.rates = RateAxis::Explicit(vec![0.005, 0.01]);
    spec.replications = 2;
    spec.run = quick_run();

    let expansion = spec.expand().expect("valid spec");
    assert_eq!(expansion.points.len(), 4 * 2 * 2, "zero silently dropped points");
    assert!(expansion.skipped.is_empty());

    let (json_serial, csv_serial) = artifacts(&spec, 1);
    for workers in [3, 8] {
        let (json_par, csv_par) = artifacts(&spec, workers);
        assert_eq!(json_serial, json_par, "JSON artifact diverged at {workers} workers");
        assert_eq!(csv_serial, csv_par, "CSV artifact diverged at {workers} workers");
    }
    for topo in ["\"topology\": \"mesh\"", "\"topology\": \"torus\""] {
        assert!(json_serial.contains(topo), "artifact lacks {topo}");
    }
    assert_eq!(csv_serial.lines().count(), 1 + 16);
}
