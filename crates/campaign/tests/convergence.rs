//! Convergence control, held to the same standard as the rest of the
//! campaign layer: the reported numbers are a pure function of the spec —
//! independent of worker count, replication batch size and cache state —
//! and the cache upgrades (tops up) rather than recomputes when a later
//! campaign needs more replications than an earlier one stored.

use quarc_campaign::{
    run_campaign, CampaignOptions, CampaignSpec, CiTarget, Converged, Convergence,
    PointOutcomeKind, RateAxis,
};
use quarc_core::topology::TopologyKind;
use quarc_sim::RunSpec;
use std::path::PathBuf;

fn quick_run() -> RunSpec {
    RunSpec { warmup: 150, measure: 1_200, drain: 2_400, ..Default::default() }
}

fn convergent_spec(name: &str) -> CampaignSpec {
    let mut spec = CampaignSpec::new(name);
    spec.topologies = vec![TopologyKind::Quarc, TopologyKind::Spidergon];
    spec.sizes = vec![8];
    spec.msg_lens = vec![4];
    spec.betas = vec![0.0, 0.05];
    spec.rates = RateAxis::Explicit(vec![0.004, 0.008]);
    spec.replications = 2;
    spec.convergence = Some(Convergence { target: CiTarget::Rel(0.2), max_reps: 24 });
    spec.run = quick_run();
    spec
}

fn unique_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("quarc-campaign-conv-{tag}-{}", std::process::id()))
}

#[test]
fn batch_schedule_and_worker_count_cannot_move_a_number() {
    // The satellite determinism pin: 1 worker vs N workers, batch size 2 vs
    // 8 — top-ups land in different orders on different threads in every
    // combination, yet the merged means (the whole artifact, in fact) must
    // be bit-identical, because the canonical stopping rule picks the same
    // series prefix regardless of how the series was produced.
    let spec = convergent_spec("conv-determinism");
    let mut artifacts = Vec::new();
    for workers in [1, 4] {
        for batch_reps in [2, 8] {
            let report = run_campaign(
                &spec,
                &CampaignOptions { workers, batch_reps, quiet: true, ..Default::default() },
            )
            .expect("campaign runs");
            artifacts.push((workers, batch_reps, report.to_json(&spec).to_pretty(), report.csv()));
        }
    }
    let (_, _, ref json0, ref csv0) = artifacts[0];
    for (workers, batch, json, csv) in &artifacts[1..] {
        assert_eq!(json0, json, "JSON diverged at {workers} workers, batch {batch}");
        assert_eq!(csv0, csv, "CSV diverged at {workers} workers, batch {batch}");
    }
}

#[test]
fn convergent_points_report_reached_targets_and_replication_counts() {
    let spec = convergent_spec("conv-targets");
    let report =
        run_campaign(&spec, &CampaignOptions { workers: 4, quiet: true, ..Default::default() })
            .expect("campaign runs");
    assert_eq!(report.results.len(), 8); // 2 topologies × 2 β × 2 rates
    for r in &report.results {
        let PointOutcomeKind::Rate { merged, .. } = &r.outcome else {
            panic!("unexpected outcome {r:?}");
        };
        assert!(merged.reps >= 2, "convergence needs a variance estimate");
        assert!(merged.reps <= 24, "the cap is a hard ceiling");
        assert!(
            merged.converged.met_target(),
            "comfortably unsaturated point failed to converge: {} n={} unicast ci95={}",
            r.label,
            merged.reps,
            merged.unicast_mean.ci95
        );
        for m in [
            &merged.unicast_mean,
            &merged.bcast_reception_mean,
            &merged.bcast_completion_mean,
            &merged.throughput,
        ] {
            assert!(m.meets(CiTarget::Rel(0.2)), "{}: {m:?} exceeds the target", r.label);
            assert_eq!(m.n, merged.reps, "every metric merges the same prefix");
        }
    }
    // The artifact records the convergence evidence per point.
    let json = report.to_json(&spec).to_pretty();
    assert!(json.contains("\"converged\": true"));
    assert!(!json.contains("\"converged\": false"));
    assert!(json.contains("\"ci95\":"));
}

#[test]
fn fixed_replication_cache_entries_top_up_instead_of_rerunning() {
    // The upgrade story end to end: a fixed-replications campaign stores
    // 2-replication series; a convergence campaign over the same grid needs
    // at least 4, so it must *resume* each stored series — simulating only
    // the missing tail — and still produce the byte-identical artifact a
    // cold convergence run produces.
    let dir = unique_dir("upgrade");
    let _ = std::fs::remove_dir_all(&dir);
    let mut fixed = convergent_spec("conv-upgrade");
    fixed.convergence = None;
    fixed.replications = 2;
    let opts = CampaignOptions {
        workers: 2,
        cache_dir: Some(dir.clone()),
        quiet: true,
        ..Default::default()
    };
    let seeded = run_campaign(&fixed, &opts).expect("fixed campaign runs");
    let points = seeded.results.len();
    assert_eq!(seeded.reps_simulated, 2 * points);

    let mut conv = fixed.clone();
    conv.replications = 4; // min_reps 4 > the 2 cached: every point tops up
    conv.convergence = Some(Convergence { target: CiTarget::Rel(0.2), max_reps: 24 });
    let upgraded = run_campaign(&conv, &opts).expect("convergent campaign runs");
    assert_eq!(upgraded.executed, points, "every point needed a top-up");
    assert_eq!(upgraded.from_cache, 0);
    assert_eq!(upgraded.reps_cached, 2 * points, "every cached replication was reused");

    let cold =
        run_campaign(&conv, &CampaignOptions { workers: 2, quiet: true, ..Default::default() })
            .expect("cold convergent campaign runs");
    assert_eq!(
        upgraded.reps_simulated + 2 * points,
        cold.reps_simulated,
        "the top-up simulated exactly the missing replications"
    );
    assert_eq!(
        upgraded.to_json(&conv).to_pretty(),
        cold.to_json(&conv).to_pretty(),
        "a topped-up cache hit must be bit-identical to a cold run"
    );

    // And a convergent re-run is now a pure cache hit.
    let replay = run_campaign(&conv, &opts).expect("replay runs");
    assert_eq!(replay.reps_simulated, 0);
    assert_eq!(replay.from_cache, points);
    assert_eq!(replay.to_json(&conv).to_pretty(), cold.to_json(&conv).to_pretty());

    // The convergent runs grew the cached series; the original fixed
    // campaign still reads its 2-replication prefix back bit-identically.
    let fixed_replay = run_campaign(&fixed, &opts).expect("fixed replay runs");
    assert_eq!(fixed_replay.reps_simulated, 0);
    assert_eq!(fixed_replay.from_cache, points);
    assert_eq!(
        fixed_replay.to_json(&fixed).to_pretty(),
        seeded.to_json(&fixed).to_pretty(),
        "growing a cached series must not disturb its prefix consumers"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn unconverged_points_stop_at_the_cap_and_say_so() {
    // An absurdly tight absolute target no stochastic point can meet: the
    // campaign must terminate at max_reps everywhere, report
    // converged: false, and stay deterministic while doing it.
    let mut spec = convergent_spec("conv-capped");
    spec.topologies = vec![TopologyKind::Quarc];
    spec.betas = vec![0.05];
    spec.rates = RateAxis::Explicit(vec![0.008]);
    spec.convergence = Some(Convergence { target: CiTarget::Abs(1e-12), max_reps: 6 });
    let a = run_campaign(&spec, &CampaignOptions { workers: 3, quiet: true, ..Default::default() })
        .expect("campaign runs");
    for r in &a.results {
        let PointOutcomeKind::Rate { merged, .. } = &r.outcome else { unreachable!() };
        assert_eq!(merged.reps, 6);
        assert_eq!(merged.converged, Converged::No);
    }
    let b = run_campaign(
        &spec,
        &CampaignOptions { workers: 1, batch_reps: 5, quiet: true, ..Default::default() },
    )
    .expect("campaign runs");
    assert_eq!(a.to_json(&spec).to_pretty(), b.to_json(&spec).to_pretty());
}
