//! Fail-soft campaign execution, end to end: a campaign containing a
//! deliberately panicking point (the chaos hook) and a deliberately
//! wedged point (a frozen-router fault plan under a short stall window)
//! must complete every other point, record both casualties as structured
//! artifact entries, and keep its cache free of quarantined outcomes.

use quarc_campaign::{
    run_campaign, CampaignOptions, CampaignSpec, Json, PointOutcomeKind, RateAxis,
};
use quarc_core::config::FaultPlan;
use quarc_core::topology::TopologyKind;
use quarc_sim::RunSpec;
use std::path::PathBuf;
use std::time::Duration;

/// Freeze two routers early: traffic wedges behind them and the watchdog
/// (short window, so the test stays fast) cuts the run off.
const FROZEN: FaultPlan = FaultPlan {
    seed: 3,
    onset: 200,
    dead_links: 0,
    frozen_routers: 2,
    lossy_links: 0,
    drop_per_64k: 0,
    transient_links: 0,
    transient_cycles: 0,
};

/// 2 fault plans × 2 rates = 4 points on one topology: one healthy pair,
/// one wedged pair.
fn chaos_spec(name: &str) -> CampaignSpec {
    let mut spec = CampaignSpec::new(name);
    spec.topologies = vec![TopologyKind::Quarc];
    spec.sizes = vec![8];
    spec.msg_lens = vec![4];
    spec.betas = vec![0.05];
    spec.rates = RateAxis::Explicit(vec![0.004, 0.008]);
    spec.faults = vec![FaultPlan::NONE, FROZEN];
    spec.replications = 2;
    spec.run = RunSpec {
        warmup: 150,
        measure: 1_200,
        drain: 2_400,
        stall_window: 1_500,
        ..RunSpec::default()
    };
    spec
}

/// The expansion id of one healthy point, to aim the chaos hook at.
fn healthy_point_id(spec: &CampaignSpec) -> usize {
    spec.expand()
        .unwrap()
        .points
        .iter()
        .find(|p| p.curve.fault.is_empty())
        .expect("the grid contains healthy points")
        .id
}

fn unique_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("quarc-campaign-failsoft-{tag}-{}", std::process::id()))
}

#[test]
fn panicking_and_wedged_points_quarantine_while_the_rest_complete() {
    let spec = chaos_spec("fail-soft");
    let chaos_id = healthy_point_id(&spec);
    let opts = CampaignOptions {
        workers: 2,
        quiet: true,
        chaos_panic_ids: vec![chaos_id],
        ..Default::default()
    };
    let report = run_campaign(&spec, &opts).expect("fail-soft campaigns return Ok");

    assert_eq!(report.results.len(), 4, "every point has a record, quarantined or not");
    assert_eq!(report.failed(), 1, "exactly the chaos point panicked");
    assert_eq!(report.stalled(), 2, "both frozen-router points wedge");
    assert_eq!(report.quarantined(), 3);

    for r in &report.results {
        if r.id == chaos_id {
            match &r.outcome {
                PointOutcomeKind::Failed { reason } => {
                    assert!(reason.contains("panicked"), "{reason}");
                    assert!(reason.contains("chaos hook"), "{reason}");
                }
                other => panic!("chaos point produced {other:?}"),
            }
        } else if r.point.curve.fault.is_empty() {
            // The surviving healthy point completed with real statistics.
            match &r.outcome {
                PointOutcomeKind::Rate { merged, .. } => {
                    assert_eq!(merged.reps, 2);
                    assert!(merged.unicast_mean.mean > 0.0);
                    assert!((merged.delivered_fraction.mean - 1.0).abs() < 1e-12);
                }
                other => panic!("healthy point produced {other:?}"),
            }
        } else {
            match &r.outcome {
                PointOutcomeKind::Stalled { rep, cycle, diagnostics, .. } => {
                    assert_eq!(*rep, 0, "the first replication already wedges");
                    assert!(*cycle >= spec.run.stall_window);
                    assert!(
                        diagnostics.contains("backlog"),
                        "diagnostics must describe the wedge: {diagnostics}"
                    );
                }
                other => panic!("frozen-router point produced {other:?}"),
            }
        }
    }

    // Both casualties are *structured artifact entries*: the JSON document
    // carries their kind, and the CSV stays rectangular.
    let doc = report.to_json(&spec).to_pretty();
    let parsed = Json::parse(&doc).unwrap();
    let kinds: Vec<&str> = parsed
        .get("points")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .map(|p| p.get("outcome").and_then(|o| o.get("kind")).and_then(Json::as_str).unwrap())
        .collect();
    assert_eq!(kinds.iter().filter(|k| **k == "failed").count(), 1);
    assert_eq!(kinds.iter().filter(|k| **k == "stalled").count(), 2);
    assert_eq!(kinds.iter().filter(|k| **k == "rate").count(), 1);
    let header_cols = report.csv().lines().next().unwrap().split(',').count();
    for line in report.csv().lines().skip(1) {
        assert_eq!(line.split(',').count(), header_cols, "ragged CSV row: {line}");
    }
}

#[test]
fn quarantined_outcomes_never_enter_the_cache() {
    let dir = unique_dir("cache");
    let _ = std::fs::remove_dir_all(&dir);
    let spec = chaos_spec("fail-soft-cache");
    let chaos_id = healthy_point_id(&spec);
    let opts = CampaignOptions {
        workers: 2,
        quiet: true,
        cache_dir: Some(dir.clone()),
        chaos_panic_ids: vec![chaos_id],
        ..Default::default()
    };
    let first = run_campaign(&spec, &opts).expect("first run");
    assert_eq!(first.quarantined(), 3);
    assert_eq!(first.from_cache, 0);

    // Second run: the surviving healthy point replays from cache; the
    // quarantined points re-diagnose (stalls and panics are never cached).
    let second = run_campaign(&spec, &opts).expect("second run");
    assert_eq!(second.from_cache, 1, "only the completed point is a cache hit");
    assert_eq!(second.quarantined(), 3, "quarantines re-diagnose on every run");
    assert_eq!(
        first.to_json(&spec).to_pretty(),
        second.to_json(&spec).to_pretty(),
        "fail-soft artifacts are still a pure function of the spec"
    );

    // Fixing the chaos (dropping the hook) heals that point without
    // touching the stalled ones.
    let healed =
        run_campaign(&spec, &CampaignOptions { chaos_panic_ids: vec![], ..opts.clone() }).unwrap();
    assert_eq!(healed.failed(), 0);
    assert_eq!(healed.stalled(), 2);
    assert_eq!(healed.from_cache, 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn point_timeout_quarantines_over_budget_points_without_touching_numbers() {
    // A zero budget trips immediately: every point is quarantined as
    // `failed` and flagged `timed_out` in the telemetry.
    let mut spec = chaos_spec("fail-soft-budget");
    spec.faults = vec![FaultPlan::NONE];
    let exhausted = run_campaign(
        &spec,
        &CampaignOptions { quiet: true, point_timeout: Some(Duration::ZERO), ..Default::default() },
    )
    .unwrap();
    assert_eq!(exhausted.failed(), 2);
    assert!(exhausted.point_telemetry.iter().all(|p| p.timed_out));
    for r in &exhausted.results {
        match &r.outcome {
            PointOutcomeKind::Failed { reason } => {
                assert!(reason.contains("budget"), "{reason}")
            }
            other => panic!("expected a budget failure, got {other:?}"),
        }
    }

    // A budget generous enough for every point reproduces the unbudgeted
    // campaign byte for byte.
    let unbudgeted =
        run_campaign(&spec, &CampaignOptions { quiet: true, ..Default::default() }).unwrap();
    let generous = run_campaign(
        &spec,
        &CampaignOptions {
            quiet: true,
            point_timeout: Some(Duration::from_secs(3_600)),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(generous.failed(), 0);
    assert!(generous.point_telemetry.iter().all(|p| !p.timed_out));
    assert_eq!(unbudgeted.to_json(&spec).to_pretty(), generous.to_json(&spec).to_pretty());
}
