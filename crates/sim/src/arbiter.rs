//! Round-robin arbitration.
//!
//! The paper's switch contains two layers of arbitration — the VC arbiter
//! that picks which lane of an input port may request (§2.3.2, with its
//! `times_up` fairness timer) and the OPC master FSM that grants one of up to
//! three requesting inputs (§2.3.3). Both are modelled as round-robin
//! pointers, which is what the timer-based multiplexing converges to under
//! sustained load.

pub use quarc_core::config::ArbPolicy;

/// A round-robin pointer over `len` candidates.
///
/// Two bytes: arbiters are replicated per port per node, and the arbitration
/// pass touches all of them every cycle — the whole router state should stay
/// cache-resident. Candidate domains are tiny (≤ 8).
#[derive(Debug, Clone, Default)]
pub struct RoundRobin {
    next: u8,
    policy: ArbPolicy,
}

impl RoundRobin {
    /// Fresh arbiter starting at candidate 0 with round-robin rotation.
    pub fn new() -> Self {
        RoundRobin { next: 0, policy: ArbPolicy::RoundRobin }
    }

    /// Fresh arbiter with an explicit policy.
    pub fn with_policy(policy: ArbPolicy) -> Self {
        RoundRobin { next: 0, policy }
    }

    /// Grant the first eligible candidate at or after the pointer, advancing
    /// the pointer past the winner (round-robin) or keeping it at zero
    /// (fixed priority). Returns `None` when nothing is eligible (the
    /// pointer does not move).
    pub fn pick(&mut self, len: usize, eligible: impl FnMut(usize) -> bool) -> Option<usize> {
        pick_from(&mut self.next, self.policy, len, eligible)
    }
}

/// The shared grant rule of [`RoundRobin`] and [`RoundRobinBank`].
#[inline]
fn pick_from(
    next: &mut u8,
    policy: ArbPolicy,
    len: usize,
    mut eligible: impl FnMut(usize) -> bool,
) -> Option<usize> {
    if len == 0 {
        return None;
    }
    for i in 0..len {
        let k = (*next as usize + i) % len;
        if eligible(k) {
            if policy == ArbPolicy::RoundRobin {
                *next = ((k + 1) % len) as u8;
            }
            return Some(k);
        }
    }
    None
}

/// Every arbiter pointer of one network in a single contiguous slab — the
/// structure-of-arrays twin of a per-node `[RoundRobin; ports]` field.
///
/// The arbitration pass walks the pointers of every *active* router every
/// cycle; keeping them in one `Box<[u8]>` (indexed `node * ports + port` by
/// the owning network) removes the per-node struct padding and keeps the
/// whole bank cache-resident at any network size.
#[derive(Debug, Clone)]
pub struct RoundRobinBank {
    next: Box<[u8]>,
    policy: ArbPolicy,
}

impl RoundRobinBank {
    /// A bank of `count` arbiters under one policy, all starting at 0.
    pub fn new(count: usize, policy: ArbPolicy) -> Self {
        RoundRobinBank { next: vec![0; count].into_boxed_slice(), policy }
    }

    /// [`RoundRobin::pick`] on the arbiter at `idx`.
    #[inline(always)]
    pub fn pick(
        &mut self,
        idx: usize,
        len: usize,
        eligible: impl FnMut(usize) -> bool,
    ) -> Option<usize> {
        pick_from(&mut self.next[idx], self.policy, len, eligible)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rotates_fairly_under_full_load() {
        let mut rr = RoundRobin::new();
        let picks: Vec<usize> = (0..8).map(|_| rr.pick(4, |_| true).unwrap()).collect();
        assert_eq!(picks, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn skips_ineligible() {
        let mut rr = RoundRobin::new();
        assert_eq!(rr.pick(4, |k| k == 2), Some(2));
        assert_eq!(rr.pick(4, |k| k == 2), Some(2));
        assert_eq!(rr.pick(4, |_| false), None);
    }

    #[test]
    fn empty_domain() {
        let mut rr = RoundRobin::new();
        assert_eq!(rr.pick(0, |_| true), None);
    }

    #[test]
    fn no_starvation_with_persistent_competitor() {
        // Candidate 0 always requests; candidate 1 requests always too.
        // Both must be served equally.
        let mut rr = RoundRobin::new();
        let mut counts = [0usize; 2];
        for _ in 0..100 {
            counts[rr.pick(2, |_| true).unwrap()] += 1;
        }
        assert_eq!(counts, [50, 50]);
    }

    #[test]
    fn bank_pointers_are_independent_and_match_scalar() {
        // The bank must behave exactly like an array of scalar arbiters.
        let mut bank = RoundRobinBank::new(3, ArbPolicy::RoundRobin);
        let mut scalars = [RoundRobin::new(), RoundRobin::new(), RoundRobin::new()];
        for round in 0..20usize {
            for (idx, scalar) in scalars.iter_mut().enumerate() {
                let mask = (round + idx) % 7;
                let got = bank.pick(idx, 4, |k| (mask >> (k % 3)) & 1 == 1);
                let want = scalar.pick(4, |k| (mask >> (k % 3)) & 1 == 1);
                assert_eq!(got, want, "round {round} idx {idx}");
            }
        }
    }

    #[test]
    fn fixed_priority_starves_low_priority() {
        let mut fp = RoundRobin::with_policy(ArbPolicy::FixedPriority);
        let mut counts = [0usize; 2];
        for _ in 0..100 {
            counts[fp.pick(2, |_| true).unwrap()] += 1;
        }
        assert_eq!(counts, [100, 0], "fixed priority must always grant index 0");
        // Candidate 1 is only served when 0 is silent.
        assert_eq!(fp.pick(2, |k| k == 1), Some(1));
    }
}
