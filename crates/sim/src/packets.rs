//! Message → packet expansion: the transmit half of the transceiver.
//!
//! The write controller of the paper's transceiver "divides the packet into a
//! number of flits" and "adds the flit type" (§2.4); the quadrant calculator
//! decides the injection port. For collectives the transceiver emits one
//! packet per branch — four tagged streams for a Quarc broadcast (§2.5.2),
//! three chain seeds for a Spidergon broadcast (§2.2 / ref. [9]).

use quarc_core::flit::{Flit, FlitKind, PacketMeta, TrafficClass};
use quarc_core::ids::{MessageId, PacketId};
use quarc_core::quadrant::{broadcast_branches, multicast_branches, quadrant_of, Quadrant};
use quarc_core::ring::{Ring, RingDir};
use quarc_core::routing::spidergon_broadcast_seeds;
use quarc_engine::Cycle;
use quarc_workloads::MessageRequest;

/// Serialise a packet's metadata into its flit stream (header … tail).
pub fn packetize(meta: PacketMeta) -> Vec<Flit> {
    assert!(meta.len >= 2, "a packet needs header and tail flits (paper §2.6)");
    (0..meta.len)
        .map(|seq| {
            let kind = if seq == 0 {
                FlitKind::Header
            } else if seq + 1 == meta.len {
                FlitKind::Tail
            } else {
                FlitKind::Body
            };
            Flit { meta, seq, kind, payload: seq }
        })
        .collect()
}

/// Allocates monotonically increasing message/packet identifiers.
#[derive(Debug, Default)]
pub struct IdAlloc {
    next_message: u64,
    next_packet: u64,
}

impl IdAlloc {
    /// Fresh allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// A new message id.
    pub fn message(&mut self) -> MessageId {
        let id = MessageId(self.next_message);
        self.next_message += 1;
        id
    }

    /// A new packet id.
    pub fn packet(&mut self) -> PacketId {
        let id = PacketId(self.next_packet);
        self.next_packet += 1;
        id
    }
}

/// One packet ready for injection at a Quarc node: the quadrant queue it
/// enters and its flits.
#[derive(Debug)]
pub struct QuarcInjection {
    /// Which of the four local ingress queues receives the packet.
    pub quadrant: Quadrant,
    /// The flit stream.
    pub flits: Vec<Flit>,
}

/// Expand a message into Quarc packets. Returns the packets and the number
/// of expected receivers (for completion tracking).
pub fn quarc_expand(
    ring: &Ring,
    req: &MessageRequest,
    message: MessageId,
    ids: &mut IdAlloc,
    now: Cycle,
) -> (Vec<QuarcInjection>, usize) {
    let base = PacketMeta {
        message,
        packet: PacketId(0), // overwritten per packet
        class: req.class,
        src: req.src,
        dst: req.src, // overwritten
        bitstring: 0,
        dir: RingDir::Cw,
        len: req.len as u32,
        created_at: now,
    };
    match req.class {
        TrafficClass::Unicast => {
            let dst = req.dst.expect("unicast carries dst");
            let meta = PacketMeta { packet: ids.packet(), dst, ..base };
            (
                vec![QuarcInjection {
                    quadrant: quadrant_of(ring, req.src, dst),
                    flits: packetize(meta),
                }],
                1,
            )
        }
        TrafficClass::Broadcast => {
            let injections = broadcast_branches(ring, req.src)
                .into_iter()
                .map(|b| QuarcInjection {
                    quadrant: b.quadrant,
                    flits: packetize(PacketMeta { packet: ids.packet(), dst: b.dst, ..base }),
                })
                .collect();
            (injections, ring.len() - 1)
        }
        TrafficClass::Multicast => {
            let branches = multicast_branches(ring, req.src, &req.targets);
            let receivers = branches.iter().map(|b| b.deliveries.len()).sum();
            let injections = branches
                .into_iter()
                .map(|b| QuarcInjection {
                    quadrant: b.quadrant,
                    flits: packetize(PacketMeta {
                        packet: ids.packet(),
                        dst: b.dst,
                        bitstring: b.bitstring,
                        ..base
                    }),
                })
                .collect();
            (injections, receivers)
        }
        other => panic!("applications do not inject {other} packets directly"),
    }
}

/// Expand a message into Spidergon packets (all enter the single local
/// queue). Broadcast becomes the three chain seeds; multicast becomes one
/// unicast per target (the paper gives Spidergon no native multicast).
pub fn spidergon_expand(
    ring: &Ring,
    req: &MessageRequest,
    message: MessageId,
    ids: &mut IdAlloc,
    now: Cycle,
) -> (Vec<Vec<Flit>>, usize) {
    let base = PacketMeta {
        message,
        packet: PacketId(0),
        class: req.class,
        src: req.src,
        dst: req.src,
        bitstring: 0,
        dir: RingDir::Cw,
        len: req.len as u32,
        created_at: now,
    };
    match req.class {
        TrafficClass::Unicast => {
            let dst = req.dst.expect("unicast carries dst");
            let meta = PacketMeta { packet: ids.packet(), dst, ..base };
            (vec![packetize(meta)], 1)
        }
        TrafficClass::Broadcast => {
            let packets = spidergon_broadcast_seeds(ring, req.src)
                .into_iter()
                .map(|seed| {
                    packetize(PacketMeta {
                        packet: ids.packet(),
                        class: seed.class,
                        dst: seed.dst,
                        bitstring: seed.remaining,
                        dir: seed.dir,
                        ..base
                    })
                })
                .collect();
            (packets, ring.len() - 1)
        }
        TrafficClass::Multicast => {
            let targets: Vec<_> = req.targets.iter().filter(|&&t| t != req.src).collect();
            let packets = targets
                .iter()
                .map(|&&dst| {
                    packetize(PacketMeta {
                        packet: ids.packet(),
                        class: TrafficClass::Unicast,
                        dst,
                        ..base
                    })
                })
                .collect();
            let count = targets.len();
            (packets, count)
        }
        other => panic!("applications do not inject {other} packets directly"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarc_core::ids::NodeId;

    #[test]
    fn packetize_shapes_header_body_tail() {
        let meta = PacketMeta {
            message: MessageId(1),
            packet: PacketId(2),
            class: TrafficClass::Unicast,
            src: NodeId(0),
            dst: NodeId(3),
            bitstring: 0,
            dir: RingDir::Cw,
            len: 5,
            created_at: 7,
        };
        let flits = packetize(meta);
        assert_eq!(flits.len(), 5);
        assert_eq!(flits[0].kind, FlitKind::Header);
        assert!(flits[1..4].iter().all(|f| f.kind == FlitKind::Body));
        assert_eq!(flits[4].kind, FlitKind::Tail);
        assert!(flits.iter().enumerate().all(|(i, f)| f.seq == i as u32));
    }

    #[test]
    fn two_flit_packet_has_no_body() {
        let meta = PacketMeta {
            message: MessageId(0),
            packet: PacketId(0),
            class: TrafficClass::Unicast,
            src: NodeId(0),
            dst: NodeId(1),
            bitstring: 0,
            dir: RingDir::Cw,
            len: 2,
            created_at: 0,
        };
        let flits = packetize(meta);
        assert_eq!(flits[0].kind, FlitKind::Header);
        assert_eq!(flits[1].kind, FlitKind::Tail);
    }

    #[test]
    fn quarc_unicast_single_packet() {
        let ring = Ring::new(16);
        let mut ids = IdAlloc::new();
        let req = MessageRequest::unicast(NodeId(0), NodeId(3), 8);
        let (inj, receivers) = quarc_expand(&ring, &req, MessageId(9), &mut ids, 100);
        assert_eq!(inj.len(), 1);
        assert_eq!(receivers, 1);
        assert_eq!(inj[0].quadrant, Quadrant::Right);
        assert_eq!(inj[0].flits.len(), 8);
        assert_eq!(inj[0].flits[0].meta.created_at, 100);
        assert_eq!(inj[0].flits[0].meta.message, MessageId(9));
    }

    #[test]
    fn quarc_broadcast_four_packets_distinct_quadrants() {
        let ring = Ring::new(16);
        let mut ids = IdAlloc::new();
        let req = MessageRequest::broadcast(NodeId(0), 4);
        let (inj, receivers) = quarc_expand(&ring, &req, MessageId(0), &mut ids, 0);
        assert_eq!(inj.len(), 4);
        assert_eq!(receivers, 15);
        let quads: std::collections::HashSet<_> = inj.iter().map(|i| i.quadrant).collect();
        assert_eq!(quads.len(), 4);
        // Distinct packet ids, same message id.
        let pkts: std::collections::HashSet<_> =
            inj.iter().map(|i| i.flits[0].meta.packet).collect();
        assert_eq!(pkts.len(), 4);
    }

    #[test]
    fn quarc_multicast_counts_targets() {
        let ring = Ring::new(16);
        let mut ids = IdAlloc::new();
        let req = MessageRequest::multicast(NodeId(0), vec![NodeId(2), NodeId(9)], 4);
        let (inj, receivers) = quarc_expand(&ring, &req, MessageId(0), &mut ids, 0);
        assert_eq!(receivers, 2);
        assert_eq!(inj.len(), 2); // right-rim + cross-right branches
    }

    #[test]
    fn spidergon_broadcast_three_seeds() {
        let ring = Ring::new(16);
        let mut ids = IdAlloc::new();
        let req = MessageRequest::broadcast(NodeId(0), 4);
        let (pkts, receivers) = spidergon_expand(&ring, &req, MessageId(0), &mut ids, 0);
        assert_eq!(pkts.len(), 3);
        assert_eq!(receivers, 15);
        let classes: Vec<_> = pkts.iter().map(|p| p[0].meta.class).collect();
        assert_eq!(classes.iter().filter(|c| **c == TrafficClass::ChainRim).count(), 2);
        assert_eq!(classes.iter().filter(|c| **c == TrafficClass::ChainCross).count(), 1);
    }

    #[test]
    fn spidergon_multicast_becomes_unicasts() {
        let ring = Ring::new(16);
        let mut ids = IdAlloc::new();
        let req = MessageRequest::multicast(NodeId(0), vec![NodeId(1), NodeId(5)], 4);
        let (pkts, receivers) = spidergon_expand(&ring, &req, MessageId(0), &mut ids, 0);
        assert_eq!(pkts.len(), 2);
        assert_eq!(receivers, 2);
        assert!(pkts.iter().all(|p| p[0].meta.class == TrafficClass::Unicast));
    }

    #[test]
    fn id_alloc_is_monotonic() {
        let mut ids = IdAlloc::new();
        assert_eq!(ids.message(), MessageId(0));
        assert_eq!(ids.message(), MessageId(1));
        assert_eq!(ids.packet(), PacketId(0));
        assert_eq!(ids.packet(), PacketId(1));
    }
}
