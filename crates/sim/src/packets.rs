//! Message → packet expansion: the transmit half of the transceiver.
//!
//! The write controller of the paper's transceiver "divides the packet into a
//! number of flits" and "adds the flit type" (§2.4); the quadrant calculator
//! decides the injection port. For collectives the transceiver emits one
//! packet per branch — four tagged streams for a Quarc broadcast (§2.5.2),
//! three chain seeds for a Spidergon broadcast (§2.2 / ref. [9]).
//!
//! Expansion runs inside the per-cycle simulation loop, so it is written to
//! be allocation-free in steady state: each packet's [`PacketMeta`] is
//! interned once in the network's [`PacketTable`] and the 16-byte flit
//! handles are serialised **directly into the destination injection queue**
//! ([`push_packet`]) — no intermediate `Vec<Flit>` per packet, no
//! per-injection container. (The one exception is multicast, whose
//! branch planner builds per-quadrant target partitions; multicast messages
//! exist only in explicit traces, never in the paper's synthetic loads.)

use quarc_core::bits::Bits;
use quarc_core::flit::{Flit, FlitKind, PacketMeta, PacketRef, PacketTable, TrafficClass};
use quarc_core::ids::{MessageId, NodeId, PacketId};
use quarc_core::quadrant::{broadcast_branch_heads, multicast_branches, quadrant_of};
use quarc_core::ring::{Ring, RingDir};
use quarc_core::routing::spidergon_broadcast_seeds;
use quarc_core::topology::GridBranch;
use quarc_engine::Cycle;
use quarc_workloads::MessageRequest;
use std::collections::VecDeque;

/// The `seq`-th flit of a `len`-flit packet: header, bodies, tail — or a
/// lone `Single` flit for one-flit packets (the recovery layer's ACKs) —
/// with the sequence number as payload (as the original transceiver model
/// emitted).
#[inline]
fn nth_flit(packet: PacketRef, seq: u32, len: u32) -> Flit {
    let kind = if len == 1 {
        FlitKind::Single
    } else if seq == 0 {
        FlitKind::Header
    } else if seq + 1 == len {
        FlitKind::Tail
    } else {
        FlitKind::Body
    };
    Flit { packet, seq, kind, payload: seq }
}

/// A source-side injection queue holding whole packets as `(packet, len)`
/// entries and materialising their flits on demand.
///
/// A queued flit is a pure function of `(packet, len, seq)` (see
/// [`nth_flit`]), so there is no reason to serialise `len` 16-byte flits
/// into a buffer at injection time: a saturated source queue holding a
/// million flits is a few thousand 8-byte entries instead, and enqueueing a
/// message costs one push per *packet* rather than one per flit. `front` /
/// `pop` synthesise exactly the flit stream the eager serialisation
/// produced, which the equivalence goldens pin down.
#[derive(Debug, Clone, Default)]
pub struct PacketQueue {
    entries: VecDeque<(PacketRef, u32)>,
    /// Sequence index of the next flit of the head entry.
    head_seq: u32,
}

impl PacketQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueue packet `packet` of `len` flits. Returns the flit count.
    pub fn push_packet(&mut self, packet: PacketRef, len: u32) -> usize {
        // Data packets carry header and tail flits (paper §2.6); the one
        // legal one-flit packet is the recovery layer's Single-flit ACK.
        assert!(len >= 1, "a packet needs at least one flit");
        self.entries.push_back((packet, len));
        len as usize
    }

    /// The flit at the head of the queue, if any.
    #[inline]
    pub fn front(&self) -> Option<Flit> {
        self.entries.front().map(|&(packet, len)| nth_flit(packet, self.head_seq, len))
    }

    /// Remove and return the head flit.
    #[inline]
    pub fn pop(&mut self) -> Option<Flit> {
        let &(packet, len) = self.entries.front()?;
        let flit = nth_flit(packet, self.head_seq, len);
        self.head_seq += 1;
        if self.head_seq == len {
            self.entries.pop_front();
            self.head_seq = 0;
        }
        Some(flit)
    }

    /// Whether no flit is queued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Remaining flits (the head packet counts only its unsent tail-end).
    pub fn flits(&self) -> usize {
        self.entries.iter().map(|&(_, len)| len as usize).sum::<usize>() - self.head_seq as usize
    }
}

/// Serialise packet `packet` (whose interned meta says it has `len` flits)
/// onto the back of `queue`. Returns the flit count.
pub fn push_packet(queue: &mut PacketQueue, packet: PacketRef, len: u32) -> usize {
    queue.push_packet(packet, len)
}

/// The recovery layer's single-flit ACK packet for data message `message`:
/// a control unicast from acking receiver `from` back to the data source
/// `to`. `message` names the *data* message — acks are never tracked
/// messages of their own (no `create_message`, no receiver ledger entry).
/// The caller interns the meta and serialises it into whichever injection
/// queue its topology routes `from → to` through.
pub fn ack_meta(
    message: MessageId,
    from: NodeId,
    to: NodeId,
    packet: PacketId,
    now: Cycle,
) -> PacketMeta {
    PacketMeta {
        message,
        packet,
        class: TrafficClass::Ack,
        src: from,
        dst: to,
        bitstring: Bits::ZERO,
        dir: RingDir::Cw,
        len: 1,
        created_at: now,
    }
}

/// Allocates monotonically increasing packet identifiers. (Message ids are
/// *not* monotonic: they come from `Metrics`' slot-recycling slab, tagged
/// with a generation — see `quarc_sim::metrics`.)
#[derive(Debug, Default)]
pub struct IdAlloc {
    next_packet: u64,
}

impl IdAlloc {
    /// Fresh allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// A new packet id.
    pub fn packet(&mut self) -> PacketId {
        let id = PacketId(self.next_packet);
        self.next_packet += 1;
        id
    }
}

/// Expand a message into Quarc packets, interning each packet's metadata in
/// `table` and serialising its flits straight into the matching quadrant
/// queue. Returns `(expected receivers, flits enqueued)`.
pub fn quarc_expand_into(
    ring: &Ring,
    req: &MessageRequest,
    message: MessageId,
    ids: &mut IdAlloc,
    now: Cycle,
    table: &mut PacketTable,
    queues: &mut [PacketQueue; 4],
) -> (usize, usize) {
    let base = PacketMeta {
        message,
        packet: PacketId(0), // overwritten per packet
        class: req.class,
        src: req.src,
        dst: req.src, // overwritten
        bitstring: Bits::ZERO,
        dir: RingDir::Cw,
        len: req.len as u32,
        created_at: now,
    };
    let len = base.len;
    let mut flits = 0usize;
    match req.class {
        TrafficClass::Unicast => {
            let dst = req.dst.expect("unicast carries dst");
            let pref = table.insert(PacketMeta { packet: ids.packet(), dst, ..base });
            flits += push_packet(&mut queues[quadrant_of(ring, req.src, dst).index()], pref, len);
            (1, flits)
        }
        TrafficClass::Broadcast => {
            for head in broadcast_branch_heads(ring, req.src).into_iter().flatten() {
                let (quadrant, dst) = head;
                let pref = table.insert(PacketMeta { packet: ids.packet(), dst, ..base });
                flits += push_packet(&mut queues[quadrant.index()], pref, len);
            }
            (ring.len() - 1, flits)
        }
        TrafficClass::Multicast => {
            let branches = multicast_branches(ring, req.src, &req.targets, table.bits_mut());
            let receivers = branches.iter().map(|b| b.deliveries.len()).sum();
            for b in branches {
                let pref = table.insert(PacketMeta {
                    packet: ids.packet(),
                    dst: b.dst,
                    bitstring: b.bitstring,
                    ..base
                });
                flits += push_packet(&mut queues[b.quadrant.index()], pref, len);
            }
            (receivers, flits)
        }
        other => panic!("applications do not inject {other} packets directly"),
    }
}

/// Expand a message into Spidergon packets, all serialised into the single
/// local queue (one-port router). Broadcast becomes the three chain seeds;
/// multicast becomes one unicast per target (the paper gives Spidergon no
/// native multicast). Returns `(expected receivers, flits enqueued)`.
pub fn spidergon_expand_into(
    ring: &Ring,
    req: &MessageRequest,
    message: MessageId,
    ids: &mut IdAlloc,
    now: Cycle,
    table: &mut PacketTable,
    queue: &mut PacketQueue,
) -> (usize, usize) {
    let base = PacketMeta {
        message,
        packet: PacketId(0),
        class: req.class,
        src: req.src,
        dst: req.src,
        bitstring: Bits::ZERO,
        dir: RingDir::Cw,
        len: req.len as u32,
        created_at: now,
    };
    let len = base.len;
    let mut flits = 0usize;
    match req.class {
        TrafficClass::Unicast => {
            let dst = req.dst.expect("unicast carries dst");
            let pref = table.insert(PacketMeta { packet: ids.packet(), dst, ..base });
            flits += push_packet(queue, pref, len);
            (1, flits)
        }
        TrafficClass::Broadcast => {
            for seed in spidergon_broadcast_seeds(ring, req.src) {
                let pref = table.insert(PacketMeta {
                    packet: ids.packet(),
                    class: seed.class,
                    dst: seed.dst,
                    bitstring: Bits::inline(seed.remaining as u64),
                    dir: seed.dir,
                    ..base
                });
                flits += push_packet(queue, pref, len);
            }
            (ring.len() - 1, flits)
        }
        TrafficClass::Multicast => {
            let mut count = 0;
            for &dst in req.targets.iter().filter(|&&t| t != req.src) {
                let pref = table.insert(PacketMeta {
                    packet: ids.packet(),
                    class: TrafficClass::Unicast,
                    dst,
                    ..base
                });
                flits += push_packet(queue, pref, len);
                count += 1;
            }
            (count, flits)
        }
        other => panic!("applications do not inject {other} packets directly"),
    }
}

/// Expand a message into mesh/torus packets, given the pre-planned
/// dimension-ordered tree `branches` (from
/// [`quarc_core::topology::MeshTopology::multicast_branches_into`] or its
/// torus twin; ignored for unicast). Every branch becomes one path-based
/// `Multicast` packet serialised into the single local queue. Returns
/// `(expected receivers, flits enqueued)`.
pub fn grid_expand_into(
    req: &MessageRequest,
    branches: &[GridBranch],
    message: MessageId,
    ids: &mut IdAlloc,
    now: Cycle,
    table: &mut PacketTable,
    queue: &mut PacketQueue,
) -> (usize, usize) {
    let base = PacketMeta {
        message,
        packet: PacketId(0), // overwritten per packet
        class: req.class,
        src: req.src,
        dst: req.src, // overwritten
        bitstring: Bits::ZERO,
        dir: RingDir::Cw,
        len: req.len as u32,
        created_at: now,
    };
    let len = base.len;
    let mut flits = 0usize;
    match req.class {
        TrafficClass::Unicast => {
            let dst = req.dst.expect("unicast carries dst");
            let pref = table.insert(PacketMeta { packet: ids.packet(), dst, ..base });
            flits += push_packet(queue, pref, len);
            (1, flits)
        }
        TrafficClass::Broadcast | TrafficClass::Multicast => {
            // Broadcast is multicast-to-all on the grid; either way every
            // packet is a path-based multicast with an explicit bitstring
            // (the message keeps its own class for the metrics).
            let mut receivers = 0usize;
            for b in branches {
                receivers += b.receivers(table.bits());
                let pref = table.insert(PacketMeta {
                    packet: ids.packet(),
                    class: TrafficClass::Multicast,
                    dst: b.dst,
                    bitstring: b.bitstring,
                    ..base
                });
                flits += push_packet(queue, pref, len);
            }
            (receivers, flits)
        }
        other => panic!("applications do not inject {other} packets directly"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarc_core::ids::NodeId;
    use quarc_core::quadrant::Quadrant;

    fn meta(len: u32) -> PacketMeta {
        PacketMeta {
            message: MessageId(1),
            packet: PacketId(2),
            class: TrafficClass::Unicast,
            src: NodeId(0),
            dst: NodeId(3),
            bitstring: Bits::ZERO,
            dir: RingDir::Cw,
            len,
            created_at: 7,
        }
    }

    /// Drain a queue into the flit stream it will emit.
    fn drain(mut q: PacketQueue) -> Vec<Flit> {
        let mut flits = Vec::new();
        while let Some(f) = q.pop() {
            flits.push(f);
        }
        flits
    }

    #[test]
    fn push_packet_shapes_header_body_tail() {
        let mut table = PacketTable::new();
        let pref = table.insert(meta(5));
        let mut q = PacketQueue::new();
        assert_eq!(push_packet(&mut q, pref, 5), 5);
        assert_eq!(q.flits(), 5);
        let flits = drain(q);
        assert_eq!(flits.len(), 5);
        assert_eq!(flits[0].kind, FlitKind::Header);
        assert!(flits[1..4].iter().all(|f| f.kind == FlitKind::Body));
        assert_eq!(flits[4].kind, FlitKind::Tail);
        assert!(flits.iter().enumerate().all(|(i, f)| f.seq == i as u32));
        assert!(flits.iter().all(|f| f.packet == pref));
        assert!(flits.iter().enumerate().all(|(i, f)| f.payload == i as u32));
    }

    #[test]
    fn two_flit_packet_has_no_body() {
        let mut table = PacketTable::new();
        let pref = table.insert(meta(2));
        let mut q = PacketQueue::new();
        push_packet(&mut q, pref, 2);
        assert_eq!(q.front().unwrap().kind, FlitKind::Header);
        assert_eq!(q.pop().unwrap().kind, FlitKind::Header);
        assert_eq!(q.front().unwrap().kind, FlitKind::Tail);
        assert_eq!(q.pop().unwrap().kind, FlitKind::Tail);
        assert!(q.is_empty());
    }

    #[test]
    fn single_flit_packet_is_header_and_tail_at_once() {
        let mut table = PacketTable::new();
        let pref = table.insert(ack_meta(MessageId(7), NodeId(3), NodeId(0), PacketId(9), 42));
        let mut q = PacketQueue::new();
        assert_eq!(push_packet(&mut q, pref, 1), 1);
        let f = q.pop().unwrap();
        assert_eq!(f.kind, FlitKind::Single);
        assert!(f.is_header() && f.is_tail());
        assert!(q.is_empty());
        assert_eq!(table.meta(pref).class, TrafficClass::Ack);
        assert_eq!(table.meta(pref).message, MessageId(7), "acks name the data message");
    }

    #[test]
    fn queue_interleaves_packets_in_fifo_order() {
        // Partially consumed head packet + a queued successor: `flits`
        // counts the unsent remainder and the streams never interleave.
        let mut table = PacketTable::new();
        let a = table.insert(meta(3));
        let b = table.insert(meta(2));
        let mut q = PacketQueue::new();
        push_packet(&mut q, a, 3);
        push_packet(&mut q, b, 2);
        assert_eq!(q.flits(), 5);
        assert_eq!(q.pop().unwrap().packet, a);
        assert_eq!(q.flits(), 4);
        let rest = drain(q);
        assert!(rest[..2].iter().all(|f| f.packet == a));
        assert!(rest[2..].iter().all(|f| f.packet == b));
        assert_eq!(rest.last().unwrap().kind, FlitKind::Tail);
    }

    fn expand_quarc(n: usize, req: &MessageRequest) -> (PacketTable, [Vec<Flit>; 4], usize, usize) {
        let ring = Ring::new(n);
        let mut ids = IdAlloc::new();
        let mut table = PacketTable::new();
        let mut queues: [PacketQueue; 4] = Default::default();
        let (receivers, flits) =
            quarc_expand_into(&ring, req, MessageId(9), &mut ids, 100, &mut table, &mut queues);
        (table, queues.map(drain), receivers, flits)
    }

    #[test]
    fn quarc_unicast_single_packet() {
        let req = MessageRequest::unicast(NodeId(0), NodeId(3), 8);
        let (table, queues, receivers, flits) = expand_quarc(16, &req);
        assert_eq!(receivers, 1);
        assert_eq!(flits, 8);
        assert_eq!(queues[Quadrant::Right.index()].len(), 8);
        let head = queues[Quadrant::Right.index()][0];
        assert_eq!(table.meta(head.packet).created_at, 100);
        assert_eq!(table.meta(head.packet).message, MessageId(9));
        assert_eq!(table.live(), 1);
    }

    #[test]
    fn quarc_broadcast_four_packets_distinct_quadrants() {
        let req = MessageRequest::broadcast(NodeId(0), 4);
        let (table, queues, receivers, flits) = expand_quarc(16, &req);
        assert_eq!(receivers, 15);
        assert_eq!(flits, 16);
        assert!(queues.iter().all(|q| q.len() == 4), "one packet per quadrant");
        // Distinct packet ids, same message id.
        let pkts: std::collections::HashSet<_> =
            queues.iter().map(|q| table.meta(q[0].packet).packet).collect();
        assert_eq!(pkts.len(), 4);
        assert!(queues.iter().all(|q| table.meta(q[0].packet).message == MessageId(9)));
    }

    #[test]
    fn quarc_multicast_counts_targets() {
        let req = MessageRequest::multicast(NodeId(0), vec![NodeId(2), NodeId(9)], 4);
        let (_, queues, receivers, flits) = expand_quarc(16, &req);
        assert_eq!(receivers, 2);
        assert_eq!(flits, 8); // right-rim + cross-right branches
        assert_eq!(queues.iter().filter(|q| !q.is_empty()).count(), 2);
    }

    fn expand_spider(n: usize, req: &MessageRequest) -> (PacketTable, Vec<Flit>, usize, usize) {
        let ring = Ring::new(n);
        let mut ids = IdAlloc::new();
        let mut table = PacketTable::new();
        let mut queue = PacketQueue::new();
        let (receivers, flits) =
            spidergon_expand_into(&ring, req, MessageId(0), &mut ids, 0, &mut table, &mut queue);
        (table, drain(queue), receivers, flits)
    }

    #[test]
    fn spidergon_broadcast_three_seeds() {
        let req = MessageRequest::broadcast(NodeId(0), 4);
        let (table, queue, receivers, flits) = expand_spider(16, &req);
        assert_eq!(receivers, 15);
        assert_eq!(flits, 12);
        let classes: Vec<TrafficClass> =
            queue.iter().filter(|f| f.is_header()).map(|f| table.meta(f.packet).class).collect();
        assert_eq!(classes.iter().filter(|c| **c == TrafficClass::ChainRim).count(), 2);
        assert_eq!(classes.iter().filter(|c| **c == TrafficClass::ChainCross).count(), 1);
    }

    #[test]
    fn spidergon_multicast_becomes_unicasts() {
        let req = MessageRequest::multicast(NodeId(0), vec![NodeId(1), NodeId(5)], 4);
        let (table, queue, receivers, _) = expand_spider(16, &req);
        assert_eq!(receivers, 2);
        assert!(queue
            .iter()
            .filter(|f| f.is_header())
            .all(|f| table.meta(f.packet).class == TrafficClass::Unicast));
    }

    #[test]
    fn id_alloc_is_monotonic() {
        let mut ids = IdAlloc::new();
        assert_eq!(ids.packet(), PacketId(0));
        assert_eq!(ids.packet(), PacketId(1));
    }
}
