//! Measurement and invariant checking.
//!
//! Latency is measured the way the paper measures it: from *message creation
//! at the source PE* (so source queueing counts — that is precisely where the
//! Spidergon one-port router loses) to tail delivery. Unicasts record one
//! sample per message; broadcasts record a sample per reception and a
//! *completion* sample when the last of the `N−1` receivers has the tail
//! (the figure harness reports receptions, matching the per-packet averages
//! of the paper's plots; completion is reported alongside).
//!
//! The tracker simultaneously enforces delivery invariants that would expose
//! simulator bugs: flits of a packet arrive in order at each node, no node
//! receives the same packet twice, unicasts arrive at their addressee, and a
//! broadcast reaches every node exactly once.

use quarc_core::config::MAX_VCS;
use quarc_core::flit::{Flit, PacketMeta, TrafficClass};
use quarc_core::ids::{MessageId, NodeId};
use quarc_engine::stats::{LatencyHistogram, OnlineStats};
use quarc_engine::Cycle;

/// Delivery-site numbering shared by the grid models (`mesh_net` /
/// `torus_net`): one site per input VC lane — where ingress-mux multicast
/// copies are absorbed — plus one for the arbitrated ejection port. Each
/// site streams one packet at a time (`in_route` / `eject_owner` pin it),
/// which is exactly what [`Metrics::record_flit_delivery`]'s per-site
/// in-order counter relies on; keeping the scheme in one place means the
/// two models can never drift into colliding site indices.
pub(crate) const GRID_SITES_PER_NODE: usize = 4 * MAX_VCS + 1;

/// The ejection-port delivery site of `node` in a grid model.
#[inline]
pub(crate) fn grid_eject_site(node: usize) -> usize {
    node * GRID_SITES_PER_NODE + 4 * MAX_VCS
}

/// The delivery site of input lane `(port, vc)` at `node` in a grid model.
#[inline]
pub(crate) fn grid_lane_site(node: usize, port: usize, vc: usize) -> usize {
    node * GRID_SITES_PER_NODE + port * MAX_VCS + vc
}

/// Per-in-flight-message completion tracking (one slab slot per live
/// message; kept small so the slab stays cache-friendly at saturation).
#[derive(Debug, Clone, Copy)]
struct MessageTrack {
    class: TrafficClass,
    live: bool,
    /// Incremented each time the slot is reused; the matching value is
    /// carried in the high half of the issued [`MessageId`], so a delivery
    /// for a completed message can never be attributed to the slot's next
    /// occupant.
    generation: u32,
    created_at: Cycle,
    expected: u32,
    received: u32,
    /// Receivers this message can no longer reach (packets dropped by an
    /// injected fault). Always 0 on a healthy network.
    lost: u32,
}

/// Split a slab-issued [`MessageId`] into `(slot, generation)`.
#[inline]
fn slot_of(message: MessageId) -> (usize, u32) {
    ((message.0 & 0xFFFF_FFFF) as usize, (message.0 >> 32) as u32)
}

/// Simulation measurements and delivery invariants.
///
/// Hot-path notes: `record_flit_delivery` runs for every delivered flit, so
/// nothing on its path hashes. Message tracks live in a slot-recycling slab
/// directly indexed by the [`MessageId`]s this struct allocates
/// ([`Metrics::create_message`]). The per-flit in-order check is a plain
/// counter per *delivery site* — the wormhole lane (or ejection port) a
/// packet's flits reach the PE through. A lane delivers one packet at a time
/// (route state pins it from header to tail), so the site counter tracks
/// exactly the old per-`(packet, node)` sequence; a packet that reached the
/// same node twice would still trip the over-delivery check on its message.
#[derive(Debug)]
pub struct Metrics {
    measure_from: Cycle,
    /// Expected next flit seq per delivery site (grown on first use).
    site_progress: Vec<u32>,
    /// Message tracks, indexed by `MessageId`; completed slots are recycled.
    tracks: Vec<MessageTrack>,
    /// Recyclable slots of `tracks`.
    free_tracks: Vec<u32>,
    /// Live (created, not yet fully delivered) messages.
    in_flight: usize,
    unicast: OnlineStats,
    unicast_hist: LatencyHistogram,
    bcast_reception: OnlineStats,
    bcast_completion: OnlineStats,
    bcast_completion_hist: LatencyHistogram,
    mcast_completion: OnlineStats,
    created: [u64; TrafficClass::COUNT],
    completed: [u64; TrafficClass::COUNT],
    /// Messages retired with at least one receiver lost to a fault: they
    /// terminated (all surviving receivers served, every loss accounted)
    /// but did not reach their full receiver set.
    undeliverable: [u64; TrafficClass::COUNT],
    flits_delivered: u64,
    /// Flits consumed by fault drops (dead or lossy links), per class and
    /// in total. A dropped flit is accounted here instead of transmitted —
    /// never silently lost.
    flits_dropped: u64,
    flits_dropped_class: [u64; TrafficClass::COUNT],
    /// Receiver-level delivery ledger: `expected` accumulates at
    /// [`Metrics::set_expected`], `delivered` at each tail reception,
    /// `lost` at each fault drop — so
    /// `delivered + lost == expected` once the network drains, faults or
    /// not (the probe-ledger invariant).
    receivers_expected: u64,
    receivers_delivered: u64,
    receivers_lost: u64,
    messages_completed_total: u64,
    /// Packets re-sent by the recovery layer (one per timeout-triggered
    /// retransmission of one message, however many branch packets it took).
    retransmissions: u64,
    /// Receivers served by a retransmission after the first attempt failed
    /// to reach them — the recovery layer's payoff counter.
    recovered_receivers: u64,
    /// Single-flit ACK packets absorbed at their source. ACKs are control
    /// traffic: they never count toward `flits_delivered` or the receiver
    /// ledger.
    acks_delivered: u64,
    /// Data flits drained by receivers that had already been served (late
    /// originals or over-wide retransmissions). Suppressed from
    /// `flits_delivered` so goodput stays duplicate-free.
    dup_flits_suppressed: u64,
    /// Message-creation → ACK-reception round-trip latency (measured
    /// messages only).
    ack_latency: OnlineStats,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh metrics measuring from cycle 0.
    pub fn new() -> Self {
        Metrics {
            measure_from: 0,
            site_progress: Vec::new(),
            tracks: Vec::new(),
            free_tracks: Vec::new(),
            in_flight: 0,
            unicast: OnlineStats::new(),
            unicast_hist: LatencyHistogram::new(),
            bcast_reception: OnlineStats::new(),
            bcast_completion: OnlineStats::new(),
            bcast_completion_hist: LatencyHistogram::new(),
            mcast_completion: OnlineStats::new(),
            created: [0; TrafficClass::COUNT],
            completed: [0; TrafficClass::COUNT],
            undeliverable: [0; TrafficClass::COUNT],
            flits_delivered: 0,
            flits_dropped: 0,
            flits_dropped_class: [0; TrafficClass::COUNT],
            receivers_expected: 0,
            receivers_delivered: 0,
            receivers_lost: 0,
            messages_completed_total: 0,
            retransmissions: 0,
            recovered_receivers: 0,
            acks_delivered: 0,
            dup_flits_suppressed: 0,
            ack_latency: OnlineStats::new(),
        }
    }

    /// Only messages created at or after `cycle` contribute latency samples
    /// (warmup exclusion). Flit/packet invariants are checked regardless.
    pub fn begin_measurement(&mut self, cycle: Cycle) {
        self.measure_from = cycle;
    }

    /// Register a created message, allocating its id: a slab slot (low half)
    /// tagged with the slot's generation (high half). Slots of completed
    /// messages are recycled, and the generation tag keeps stale ids
    /// detectable. The expected receiver count is known only after branch
    /// expansion — set it with [`Metrics::set_expected`] before the first
    /// delivery.
    pub fn create_message(&mut self, class: TrafficClass, created_at: Cycle) -> MessageId {
        self.created[class.index()] += 1;
        self.in_flight += 1;
        match self.free_tracks.pop() {
            Some(slot) => {
                let track = &mut self.tracks[slot as usize];
                debug_assert!(!track.live, "slot freed while live");
                let generation = track.generation + 1;
                *track = MessageTrack {
                    class,
                    live: true,
                    generation,
                    created_at,
                    expected: 0,
                    received: 0,
                    lost: 0,
                };
                MessageId((generation as u64) << 32 | slot as u64)
            }
            None => {
                self.tracks.push(MessageTrack {
                    class,
                    live: true,
                    generation: 0,
                    created_at,
                    expected: 0,
                    received: 0,
                    lost: 0,
                });
                MessageId(self.tracks.len() as u64 - 1)
            }
        }
    }

    /// Set the receiver count a created message must reach to complete.
    pub fn set_expected(&mut self, message: MessageId, expected: usize) {
        let (slot, generation) = slot_of(message);
        let track = &mut self.tracks[slot];
        debug_assert!(
            track.live && track.generation == generation && track.received == 0,
            "expected set too late"
        );
        track.expected = u32::try_from(expected).expect("receiver count fits u32");
        self.receivers_expected += expected as u64;
    }

    /// Record the delivery of one flit at `node` through delivery site
    /// `site` (a caller-assigned dense index of the wormhole lane or
    /// ejection port the flit reached the PE through); `meta` is the
    /// interned metadata of `flit.packet`. Enforces in-order, exactly-once
    /// flit delivery; on a tail flit, advances message completion and
    /// records latency samples.
    pub fn record_flit_delivery(
        &mut self,
        now: Cycle,
        node: NodeId,
        site: usize,
        flit: &Flit,
        meta: &PacketMeta,
    ) {
        self.flits_delivered += 1;
        if site >= self.site_progress.len() {
            self.site_progress.resize(site + 1, 0);
        }
        let expected_seq = &mut self.site_progress[site];
        assert_eq!(
            *expected_seq, flit.seq,
            "out-of-order flit at {node}: packet {} seq {} (expected {})",
            meta.packet, flit.seq, expected_seq
        );
        *expected_seq += 1;
        if !flit.is_tail() {
            return;
        }
        // Tail: the packet is fully received at this site.
        assert_eq!(*expected_seq, meta.len, "tail arrived before all flits");
        self.site_progress[site] = 0;

        if meta.class == TrafficClass::Unicast {
            assert_eq!(meta.dst, node, "unicast delivered to the wrong node");
        }

        let (slot, generation) = slot_of(meta.message);
        let track = &mut self.tracks[slot];
        assert!(track.live && track.generation == generation, "delivery for unregistered message");
        track.received += 1;
        self.receivers_delivered += 1;
        assert!(
            track.received + track.lost <= track.expected,
            "message {} over-delivered ({} + {} lost > {})",
            meta.message,
            track.received,
            track.lost,
            track.expected
        );
        let latency = now.saturating_sub(track.created_at);
        let measured = track.created_at >= self.measure_from;

        // Per-reception sample for collective classes.
        if measured && track.class == TrafficClass::Broadcast {
            self.bcast_reception.push(latency as f64)
        }

        if track.received + track.lost == track.expected {
            if track.lost > 0 {
                // Part of the receiver set was lost to a fault: the message
                // terminates (so the network can quiesce) but counts as
                // undeliverable, and its latency is not a sample.
                self.retire_undeliverable(slot);
                return;
            }
            let class = track.class;
            let created_at = track.created_at;
            track.live = false;
            self.free_tracks.push(slot as u32);
            self.in_flight -= 1;
            self.completed[class.index()] += 1;
            self.messages_completed_total += 1;
            if created_at >= self.measure_from {
                let lat = now.saturating_sub(created_at);
                match class {
                    TrafficClass::Unicast => {
                        self.unicast.push(lat as f64);
                        self.unicast_hist.record(lat);
                    }
                    TrafficClass::Broadcast => {
                        self.bcast_completion.push(lat as f64);
                        self.bcast_completion_hist.record(lat);
                    }
                    TrafficClass::Multicast => {
                        self.mcast_completion.push(lat as f64);
                    }
                    _ => {}
                }
            }
        }
    }

    /// Retire a track whose receiver set can no longer be fully served.
    fn retire_undeliverable(&mut self, slot: usize) {
        let track = &mut self.tracks[slot];
        track.live = false;
        self.free_tracks.push(slot as u32);
        self.in_flight -= 1;
        self.undeliverable[track.class.index()] += 1;
    }

    /// Record that `count` receivers of `message` were lost to an injected
    /// fault (a packet dropped by a dead or lossy link). Called once per
    /// dropped packet, at header-drop time, with the number of receivers
    /// the dropped packet would still have served. When losses plus
    /// deliveries cover the expected receiver set the message retires as
    /// undeliverable — which is what lets `quiesced()` terminate the drain
    /// phase under permanent faults instead of waiting forever.
    pub fn record_lost_receivers(&mut self, message: MessageId, count: usize) {
        if count == 0 {
            return;
        }
        let (slot, generation) = slot_of(message);
        let track = &mut self.tracks[slot];
        assert!(track.live && track.generation == generation, "loss for unregistered message");
        let count = u32::try_from(count).expect("receiver count fits u32");
        track.lost += count;
        self.receivers_lost += count as u64;
        assert!(
            track.received + track.lost <= track.expected,
            "message {} over-accounted ({} + {} lost > {})",
            message,
            track.received,
            track.lost,
            track.expected
        );
        if track.received + track.lost == track.expected {
            self.retire_undeliverable(slot);
        }
    }

    /// Record one flit of `class` consumed by a fault drop.
    pub fn record_flit_drop(&mut self, class: TrafficClass) {
        self.flits_dropped += 1;
        self.flits_dropped_class[class.index()] += 1;
    }

    /// Record one timeout-triggered retransmission issued by the recovery
    /// layer.
    pub fn note_retransmission(&mut self) {
        self.retransmissions += 1;
    }

    /// Record a receiver served by a retransmission (the first attempt never
    /// reached it).
    pub fn note_recovered_receiver(&mut self) {
        self.recovered_receivers += 1;
    }

    /// Record a data flit drained at an already-served receiver. Duplicates
    /// are invisible to the receiver ledger and latency stats; they only
    /// show up here and in link occupancy.
    pub fn note_dup_flit(&mut self) {
        self.dup_flits_suppressed += 1;
    }

    /// Record an ACK absorbed at the source of the message it acknowledges.
    /// `created_at` is the acknowledged message's creation cycle, so the
    /// sample is the full send → ack round trip including source queueing —
    /// measured messages only, like every other latency stat.
    pub fn record_ack_delivery(&mut self, now: Cycle, created_at: Cycle) {
        self.acks_delivered += 1;
        if created_at >= self.measure_from {
            self.ack_latency.push(now.saturating_sub(created_at) as f64);
        }
    }

    /// Retransmissions issued by the recovery layer.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Receivers served only thanks to a retransmission.
    pub fn recovered_receivers(&self) -> u64 {
        self.recovered_receivers
    }

    /// ACK packets absorbed at their destination source.
    pub fn acks_delivered(&self) -> u64 {
        self.acks_delivered
    }

    /// Duplicate data flits drained at already-served receivers.
    pub fn dup_flits_suppressed(&self) -> u64 {
        self.dup_flits_suppressed
    }

    /// Message-creation → ACK-reception round-trip latency.
    pub fn ack_latency(&self) -> &OnlineStats {
        &self.ack_latency
    }

    /// Mean unicast latency (message creation → tail at destination).
    pub fn unicast_latency(&self) -> &OnlineStats {
        &self.unicast
    }

    /// Unicast latency distribution.
    pub fn unicast_histogram(&self) -> &LatencyHistogram {
        &self.unicast_hist
    }

    /// Per-reception broadcast latency (creation → tail at *each* receiver).
    pub fn broadcast_reception_latency(&self) -> &OnlineStats {
        &self.bcast_reception
    }

    /// Broadcast completion latency (creation → last receiver's tail).
    pub fn broadcast_completion_latency(&self) -> &OnlineStats {
        &self.bcast_completion
    }

    /// Broadcast completion distribution.
    pub fn broadcast_completion_histogram(&self) -> &LatencyHistogram {
        &self.bcast_completion_hist
    }

    /// Multicast completion latency.
    pub fn multicast_completion_latency(&self) -> &OnlineStats {
        &self.mcast_completion
    }

    /// Total flits delivered to PEs since construction.
    pub fn flits_delivered(&self) -> u64 {
        self.flits_delivered
    }

    /// Messages created of a class.
    pub fn created(&self, class: TrafficClass) -> u64 {
        self.created[class.index()]
    }

    /// Messages fully completed of a class.
    pub fn completed(&self, class: TrafficClass) -> u64 {
        self.completed[class.index()]
    }

    /// Total messages fully completed.
    pub fn completed_total(&self) -> u64 {
        self.messages_completed_total
    }

    /// Messages still in flight (created but not fully delivered).
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Messages of a class retired with part of their receiver set lost to
    /// an injected fault.
    pub fn undeliverable(&self, class: TrafficClass) -> u64 {
        self.undeliverable[class.index()]
    }

    /// Total messages retired undeliverable.
    pub fn undeliverable_total(&self) -> u64 {
        self.undeliverable.iter().sum()
    }

    /// Total flits consumed by fault drops.
    pub fn flits_dropped(&self) -> u64 {
        self.flits_dropped
    }

    /// Flits of a class consumed by fault drops.
    pub fn flits_dropped_of(&self, class: TrafficClass) -> u64 {
        self.flits_dropped_class[class.index()]
    }

    /// Receivers promised by every registered message so far.
    pub fn receivers_expected(&self) -> u64 {
        self.receivers_expected
    }

    /// Receivers that got their tail flit.
    pub fn receivers_delivered(&self) -> u64 {
        self.receivers_delivered
    }

    /// Receivers lost to fault drops.
    pub fn receivers_lost(&self) -> u64 {
        self.receivers_lost
    }

    /// Fraction of expected receivers actually served (1.0 on a healthy
    /// network or before any traffic).
    pub fn delivered_fraction(&self) -> f64 {
        if self.receivers_expected == 0 {
            1.0
        } else {
            self.receivers_delivered as f64 / self.receivers_expected as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarc_core::flit::{FlitKind, PacketRef};
    use quarc_core::ids::PacketId;
    use quarc_core::ring::RingDir;

    fn meta(
        message: MessageId,
        packet: u64,
        class: TrafficClass,
        dst: u32,
        len: u32,
    ) -> PacketMeta {
        PacketMeta {
            message,
            packet: PacketId(packet),
            class,
            src: NodeId(0),
            dst: NodeId(dst),
            bitstring: quarc_core::bits::Bits::ZERO,
            dir: RingDir::Cw,
            len,
            created_at: 10,
        }
    }

    /// Register a message the way the networks do: allocate, then set the
    /// receiver count after expansion.
    fn created(
        m: &mut Metrics,
        class: TrafficClass,
        created_at: Cycle,
        expected: usize,
    ) -> MessageId {
        let id = m.create_message(class, created_at);
        m.set_expected(id, expected);
        id
    }

    fn deliver_packet(m: &mut Metrics, now: Cycle, node: NodeId, pm: PacketMeta) {
        for seq in 0..pm.len {
            let kind = if seq == 0 {
                FlitKind::Header
            } else if seq + 1 == pm.len {
                FlitKind::Tail
            } else {
                FlitKind::Body
            };
            let flit = Flit { packet: PacketRef(0), seq, kind, payload: 0 };
            // One delivery site per node is enough for these tests (matches
            // the single-eject-port networks).
            m.record_flit_delivery(now, node, node.index(), &flit, &pm);
        }
    }

    #[test]
    fn unicast_latency_measured_from_creation() {
        let mut m = Metrics::new();
        let id = created(&mut m, TrafficClass::Unicast, 10, 1);
        let pm = meta(id, 0, TrafficClass::Unicast, 3, 4);
        deliver_packet(&mut m, 30, NodeId(3), pm);
        assert_eq!(m.unicast_latency().count(), 1);
        assert_eq!(m.unicast_latency().mean(), 20.0);
        assert_eq!(m.completed(TrafficClass::Unicast), 1);
        assert_eq!(m.in_flight(), 0);
        assert_eq!(m.flits_delivered(), 4);
    }

    #[test]
    fn warmup_messages_excluded_from_latency() {
        let mut m = Metrics::new();
        m.begin_measurement(100);
        let id = created(&mut m, TrafficClass::Unicast, 10, 1); // created at 10 < 100
        deliver_packet(&mut m, 120, NodeId(3), meta(id, 0, TrafficClass::Unicast, 3, 2));
        assert_eq!(m.unicast_latency().count(), 0);
        assert_eq!(m.completed(TrafficClass::Unicast), 1); // still counted as completed
    }

    #[test]
    fn broadcast_completion_needs_all_receivers() {
        let mut m = Metrics::new();
        let id = created(&mut m, TrafficClass::Broadcast, 10, 3);
        deliver_packet(&mut m, 20, NodeId(1), meta(id, 1, TrafficClass::Broadcast, 2, 2));
        assert_eq!(m.broadcast_reception_latency().count(), 1);
        assert_eq!(m.broadcast_completion_latency().count(), 0);
        // Different branch packets of the same message.
        deliver_packet(&mut m, 25, NodeId(2), meta(id, 2, TrafficClass::Broadcast, 2, 2));
        deliver_packet(&mut m, 40, NodeId(3), meta(id, 3, TrafficClass::Broadcast, 3, 2));
        assert_eq!(m.broadcast_completion_latency().count(), 1);
        assert_eq!(m.broadcast_completion_latency().mean(), 30.0);
        assert_eq!(m.broadcast_reception_latency().count(), 3);
    }

    #[test]
    fn message_slots_are_recycled_with_fresh_generation() {
        let mut m = Metrics::new();
        let a = created(&mut m, TrafficClass::Unicast, 10, 1);
        deliver_packet(&mut m, 30, NodeId(3), meta(a, 0, TrafficClass::Unicast, 3, 2));
        // The completed slot is reused under a new generation tag; counters
        // keep accumulating.
        let b = created(&mut m, TrafficClass::Unicast, 40, 1);
        assert_eq!(slot_of(a).0, slot_of(b).0, "completed slot must be recycled");
        assert_ne!(a, b, "recycled slot must carry a fresh generation");
        deliver_packet(&mut m, 50, NodeId(4), meta(b, 1, TrafficClass::Unicast, 4, 2));
        assert_eq!(m.completed(TrafficClass::Unicast), 2);
        assert_eq!(m.in_flight(), 0);
        assert_eq!(m.unicast_latency().count(), 2);
    }

    #[test]
    #[should_panic(expected = "out-of-order")]
    fn out_of_order_flit_panics() {
        let mut m = Metrics::new();
        let id = created(&mut m, TrafficClass::Unicast, 0, 1);
        let pm = meta(id, 0, TrafficClass::Unicast, 1, 4);
        m.record_flit_delivery(
            5,
            NodeId(1),
            1,
            &Flit { packet: PacketRef(0), seq: 1, kind: FlitKind::Body, payload: 0 },
            &pm,
        );
    }

    #[test]
    #[should_panic(expected = "wrong node")]
    fn misdelivered_unicast_panics() {
        let mut m = Metrics::new();
        let id = created(&mut m, TrafficClass::Unicast, 0, 1);
        deliver_packet(&mut m, 9, NodeId(4), meta(id, 0, TrafficClass::Unicast, 5, 2));
    }

    #[test]
    #[should_panic(expected = "unregistered message")]
    fn duplicate_delivery_panics() {
        // A second delivery after completion hits the dead-slot check.
        let mut m = Metrics::new();
        let id = created(&mut m, TrafficClass::Unicast, 0, 1);
        deliver_packet(&mut m, 9, NodeId(1), meta(id, 0, TrafficClass::Unicast, 1, 2));
        deliver_packet(&mut m, 12, NodeId(1), meta(id, 1, TrafficClass::Unicast, 1, 2));
    }

    #[test]
    #[should_panic(expected = "unregistered message")]
    fn stale_id_after_slot_recycling_panics() {
        // Even once the slot is live again for a *different* message, a
        // delivery carrying the old id trips the generation check instead of
        // being attributed to the new occupant.
        let mut m = Metrics::new();
        let old = created(&mut m, TrafficClass::Unicast, 0, 1);
        deliver_packet(&mut m, 9, NodeId(1), meta(old, 0, TrafficClass::Unicast, 1, 2));
        let fresh = created(&mut m, TrafficClass::Unicast, 10, 1);
        assert_eq!(slot_of(old).0, slot_of(fresh).0);
        deliver_packet(&mut m, 12, NodeId(1), meta(old, 1, TrafficClass::Unicast, 1, 2));
    }

    #[test]
    fn lost_receivers_retire_a_message_as_undeliverable() {
        let mut m = Metrics::new();
        let id = created(&mut m, TrafficClass::Multicast, 0, 3);
        deliver_packet(&mut m, 10, NodeId(1), meta(id, 0, TrafficClass::Multicast, 1, 2));
        // The packet covering the other two receivers hits a dead link.
        m.record_lost_receivers(id, 2);
        assert_eq!(m.in_flight(), 0, "loss accounting must let the message terminate");
        assert_eq!(m.completed(TrafficClass::Multicast), 0);
        assert_eq!(m.undeliverable(TrafficClass::Multicast), 1);
        assert_eq!(m.multicast_completion_latency().count(), 0, "no latency sample for losses");
        assert_eq!(m.receivers_expected(), 3);
        assert_eq!(m.receivers_delivered(), 1);
        assert_eq!(m.receivers_lost(), 2);
        assert!((m.delivered_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn delivery_after_loss_completes_the_undeliverable_message() {
        // Losses recorded first, surviving receiver delivered after: the
        // message still terminates exactly once.
        let mut m = Metrics::new();
        let id = created(&mut m, TrafficClass::Broadcast, 0, 2);
        m.record_lost_receivers(id, 1);
        assert_eq!(m.in_flight(), 1);
        deliver_packet(&mut m, 10, NodeId(1), meta(id, 0, TrafficClass::Broadcast, 1, 2));
        assert_eq!(m.in_flight(), 0);
        assert_eq!(m.undeliverable(TrafficClass::Broadcast), 1);
        assert_eq!(m.undeliverable_total(), 1);
        assert_eq!(m.broadcast_completion_latency().count(), 0);
        // The reception that did land still contributes its sample.
        assert_eq!(m.broadcast_reception_latency().count(), 1);
    }

    #[test]
    #[should_panic(expected = "over-accounted")]
    fn over_accounted_loss_panics() {
        let mut m = Metrics::new();
        let id = created(&mut m, TrafficClass::Unicast, 0, 1);
        m.record_lost_receivers(id, 2);
    }

    #[test]
    fn flit_drops_are_counted_per_class() {
        let mut m = Metrics::new();
        m.record_flit_drop(TrafficClass::Unicast);
        m.record_flit_drop(TrafficClass::Unicast);
        m.record_flit_drop(TrafficClass::Broadcast);
        assert_eq!(m.flits_dropped(), 3);
        assert_eq!(m.flits_dropped_of(TrafficClass::Unicast), 2);
        assert_eq!(m.flits_dropped_of(TrafficClass::Broadcast), 1);
        assert_eq!(m.flits_dropped_of(TrafficClass::Multicast), 0);
    }

    #[test]
    fn recovery_counters_and_ack_latency_gating() {
        let mut m = Metrics::new();
        m.begin_measurement(100);
        m.note_retransmission();
        m.note_recovered_receiver();
        m.note_dup_flit();
        // Warmup message: counted, not sampled.
        m.record_ack_delivery(150, 50);
        // Measured message: counted and sampled.
        m.record_ack_delivery(180, 120);
        assert_eq!(m.retransmissions(), 1);
        assert_eq!(m.recovered_receivers(), 1);
        assert_eq!(m.dup_flits_suppressed(), 1);
        assert_eq!(m.acks_delivered(), 2);
        assert_eq!(m.ack_latency().count(), 1);
        assert_eq!(m.ack_latency().mean(), 60.0);
    }

    #[test]
    fn chain_classes_count_toward_broadcast_message() {
        // Spidergon chains: the message is registered as Broadcast but the
        // packets carry chain classes; completion is driven by the track's
        // class, receptions by reaching expected count.
        let mut m = Metrics::new();
        let id = created(&mut m, TrafficClass::Broadcast, 0, 2);
        let mut pm = meta(id, 0, TrafficClass::ChainRim, 1, 2);
        pm.created_at = 0;
        deliver_packet(&mut m, 8, NodeId(1), pm);
        let mut pm2 = meta(id, 1, TrafficClass::ChainRim, 2, 2);
        pm2.created_at = 0;
        deliver_packet(&mut m, 14, NodeId(2), pm2);
        assert_eq!(m.broadcast_completion_latency().count(), 1);
        assert_eq!(m.broadcast_completion_latency().mean(), 14.0);
    }
}
