//! Measurement and invariant checking.
//!
//! Latency is measured the way the paper measures it: from *message creation
//! at the source PE* (so source queueing counts — that is precisely where the
//! Spidergon one-port router loses) to tail delivery. Unicasts record one
//! sample per message; broadcasts record a sample per reception and a
//! *completion* sample when the last of the `N−1` receivers has the tail
//! (the figure harness reports receptions, matching the per-packet averages
//! of the paper's plots; completion is reported alongside).
//!
//! The tracker simultaneously enforces delivery invariants that would expose
//! simulator bugs: flits of a packet arrive in order at each node, no node
//! receives the same packet twice, unicasts arrive at their addressee, and a
//! broadcast reaches every node exactly once.

use quarc_core::flit::{Flit, FlitKind, TrafficClass};
use quarc_core::ids::{MessageId, NodeId, PacketId};
use quarc_engine::stats::{LatencyHistogram, OnlineStats};
use quarc_engine::Cycle;
use std::collections::HashMap;

/// Per-in-flight-message completion tracking.
#[derive(Debug)]
struct MessageTrack {
    class: TrafficClass,
    created_at: Cycle,
    expected: usize,
    received: usize,
}

/// Simulation measurements and delivery invariants.
#[derive(Debug)]
pub struct Metrics {
    measure_from: Cycle,
    /// Expected next flit seq per (packet, receiving node).
    flit_progress: HashMap<(PacketId, NodeId), u32>,
    /// In-flight message completion state.
    messages: HashMap<MessageId, MessageTrack>,
    unicast: OnlineStats,
    unicast_hist: LatencyHistogram,
    bcast_reception: OnlineStats,
    bcast_completion: OnlineStats,
    bcast_completion_hist: LatencyHistogram,
    mcast_completion: OnlineStats,
    created: HashMap<TrafficClass, u64>,
    completed: HashMap<TrafficClass, u64>,
    flits_delivered: u64,
    messages_completed_total: u64,
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// Fresh metrics measuring from cycle 0.
    pub fn new() -> Self {
        Metrics {
            measure_from: 0,
            flit_progress: HashMap::new(),
            messages: HashMap::new(),
            unicast: OnlineStats::new(),
            unicast_hist: LatencyHistogram::new(),
            bcast_reception: OnlineStats::new(),
            bcast_completion: OnlineStats::new(),
            bcast_completion_hist: LatencyHistogram::new(),
            mcast_completion: OnlineStats::new(),
            created: HashMap::new(),
            completed: HashMap::new(),
            flits_delivered: 0,
            messages_completed_total: 0,
        }
    }

    /// Only messages created at or after `cycle` contribute latency samples
    /// (warmup exclusion). Flit/packet invariants are checked regardless.
    pub fn begin_measurement(&mut self, cycle: Cycle) {
        self.measure_from = cycle;
    }

    /// Register a created message with its expected receiver count.
    pub fn record_created(
        &mut self,
        message: MessageId,
        class: TrafficClass,
        created_at: Cycle,
        expected: usize,
    ) {
        *self.created.entry(class).or_default() += 1;
        let prev = self
            .messages
            .insert(message, MessageTrack { class, created_at, expected, received: 0 });
        assert!(prev.is_none(), "message id reused");
    }

    /// Record the delivery of one flit at `node`. Enforces in-order,
    /// exactly-once flit delivery per (packet, node); on a tail flit,
    /// advances message completion and records latency samples.
    pub fn record_flit_delivery(&mut self, now: Cycle, node: NodeId, flit: &Flit) {
        self.flits_delivered += 1;
        let key = (flit.meta.packet, node);
        let expected_seq = self.flit_progress.entry(key).or_insert(0);
        assert_eq!(
            *expected_seq, flit.seq,
            "out-of-order flit at {node}: packet {} seq {} (expected {})",
            flit.meta.packet, flit.seq, expected_seq
        );
        *expected_seq += 1;
        if flit.kind != FlitKind::Tail {
            return;
        }
        // Tail: the packet is fully received at this node.
        assert_eq!(*expected_seq, flit.meta.len, "tail arrived before all flits");
        self.flit_progress.remove(&key);

        if flit.meta.class == TrafficClass::Unicast {
            assert_eq!(flit.meta.dst, node, "unicast delivered to the wrong node");
        }

        let track =
            self.messages.get_mut(&flit.meta.message).expect("delivery for unregistered message");
        track.received += 1;
        assert!(
            track.received <= track.expected,
            "message {} over-delivered ({} > {})",
            flit.meta.message,
            track.received,
            track.expected
        );
        let latency = now.saturating_sub(track.created_at);
        let measured = track.created_at >= self.measure_from;

        // Per-reception sample for collective classes.
        if measured {
            match track.class {
                TrafficClass::Broadcast => self.bcast_reception.push(latency as f64),
                _ => {}
            }
        }

        if track.received == track.expected {
            let class = track.class;
            let created_at = track.created_at;
            self.messages.remove(&flit.meta.message);
            *self.completed.entry(class).or_default() += 1;
            self.messages_completed_total += 1;
            if created_at >= self.measure_from {
                let lat = now.saturating_sub(created_at);
                match class {
                    TrafficClass::Unicast => {
                        self.unicast.push(lat as f64);
                        self.unicast_hist.record(lat);
                    }
                    TrafficClass::Broadcast => {
                        self.bcast_completion.push(lat as f64);
                        self.bcast_completion_hist.record(lat);
                    }
                    TrafficClass::Multicast => {
                        self.mcast_completion.push(lat as f64);
                    }
                    _ => {}
                }
            }
        }
    }

    /// Mean unicast latency (message creation → tail at destination).
    pub fn unicast_latency(&self) -> &OnlineStats {
        &self.unicast
    }

    /// Unicast latency distribution.
    pub fn unicast_histogram(&self) -> &LatencyHistogram {
        &self.unicast_hist
    }

    /// Per-reception broadcast latency (creation → tail at *each* receiver).
    pub fn broadcast_reception_latency(&self) -> &OnlineStats {
        &self.bcast_reception
    }

    /// Broadcast completion latency (creation → last receiver's tail).
    pub fn broadcast_completion_latency(&self) -> &OnlineStats {
        &self.bcast_completion
    }

    /// Broadcast completion distribution.
    pub fn broadcast_completion_histogram(&self) -> &LatencyHistogram {
        &self.bcast_completion_hist
    }

    /// Multicast completion latency.
    pub fn multicast_completion_latency(&self) -> &OnlineStats {
        &self.mcast_completion
    }

    /// Total flits delivered to PEs since construction.
    pub fn flits_delivered(&self) -> u64 {
        self.flits_delivered
    }

    /// Messages created of a class.
    pub fn created(&self, class: TrafficClass) -> u64 {
        self.created.get(&class).copied().unwrap_or(0)
    }

    /// Messages fully completed of a class.
    pub fn completed(&self, class: TrafficClass) -> u64 {
        self.completed.get(&class).copied().unwrap_or(0)
    }

    /// Total messages fully completed.
    pub fn completed_total(&self) -> u64 {
        self.messages_completed_total
    }

    /// Messages still in flight (created but not fully delivered).
    pub fn in_flight(&self) -> usize {
        self.messages.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarc_core::flit::PacketMeta;
    use quarc_core::ring::RingDir;

    fn meta(message: u64, packet: u64, class: TrafficClass, dst: u16, len: u32) -> PacketMeta {
        PacketMeta {
            message: MessageId(message),
            packet: PacketId(packet),
            class,
            src: NodeId(0),
            dst: NodeId(dst),
            bitstring: 0,
            dir: RingDir::Cw,
            len,
            created_at: 10,
        }
    }

    fn deliver_packet(m: &mut Metrics, now: Cycle, node: NodeId, pm: PacketMeta) {
        for seq in 0..pm.len {
            let kind = if seq == 0 {
                FlitKind::Header
            } else if seq + 1 == pm.len {
                FlitKind::Tail
            } else {
                FlitKind::Body
            };
            m.record_flit_delivery(now, node, &Flit { meta: pm, seq, kind, payload: 0 });
        }
    }

    #[test]
    fn unicast_latency_measured_from_creation() {
        let mut m = Metrics::new();
        let pm = meta(0, 0, TrafficClass::Unicast, 3, 4);
        m.record_created(pm.message, pm.class, pm.created_at, 1);
        deliver_packet(&mut m, 30, NodeId(3), pm);
        assert_eq!(m.unicast_latency().count(), 1);
        assert_eq!(m.unicast_latency().mean(), 20.0);
        assert_eq!(m.completed(TrafficClass::Unicast), 1);
        assert_eq!(m.in_flight(), 0);
        assert_eq!(m.flits_delivered(), 4);
    }

    #[test]
    fn warmup_messages_excluded_from_latency() {
        let mut m = Metrics::new();
        m.begin_measurement(100);
        let pm = meta(0, 0, TrafficClass::Unicast, 3, 2);
        m.record_created(pm.message, pm.class, pm.created_at, 1); // created at 10 < 100
        deliver_packet(&mut m, 120, NodeId(3), pm);
        assert_eq!(m.unicast_latency().count(), 0);
        assert_eq!(m.completed(TrafficClass::Unicast), 1); // still counted as completed
    }

    #[test]
    fn broadcast_completion_needs_all_receivers() {
        let mut m = Metrics::new();
        let pm0 = meta(5, 1, TrafficClass::Broadcast, 2, 2);
        m.record_created(pm0.message, pm0.class, pm0.created_at, 3);
        deliver_packet(&mut m, 20, NodeId(1), pm0);
        assert_eq!(m.broadcast_reception_latency().count(), 1);
        assert_eq!(m.broadcast_completion_latency().count(), 0);
        // Different branch packets of the same message.
        let pm1 = meta(5, 2, TrafficClass::Broadcast, 2, 2);
        deliver_packet(&mut m, 25, NodeId(2), pm1);
        let pm2 = meta(5, 3, TrafficClass::Broadcast, 3, 2);
        deliver_packet(&mut m, 40, NodeId(3), pm2);
        assert_eq!(m.broadcast_completion_latency().count(), 1);
        assert_eq!(m.broadcast_completion_latency().mean(), 30.0);
        assert_eq!(m.broadcast_reception_latency().count(), 3);
    }

    #[test]
    #[should_panic(expected = "out-of-order")]
    fn out_of_order_flit_panics() {
        let mut m = Metrics::new();
        let pm = meta(0, 0, TrafficClass::Unicast, 1, 4);
        m.record_created(pm.message, pm.class, 0, 1);
        m.record_flit_delivery(
            5,
            NodeId(1),
            &Flit { meta: pm, seq: 1, kind: FlitKind::Body, payload: 0 },
        );
    }

    #[test]
    #[should_panic(expected = "wrong node")]
    fn misdelivered_unicast_panics() {
        let mut m = Metrics::new();
        let pm = meta(0, 0, TrafficClass::Unicast, 5, 2);
        m.record_created(pm.message, pm.class, 0, 1);
        deliver_packet(&mut m, 9, NodeId(4), pm);
    }

    #[test]
    #[should_panic(expected = "unregistered message")]
    fn duplicate_delivery_panics() {
        // A second delivery after completion hits the "unregistered" check
        // (the tracker is removed once `expected` receptions arrive, so any
        // extra copy is a protocol violation either way).
        let mut m = Metrics::new();
        let pm = meta(0, 0, TrafficClass::Unicast, 1, 2);
        m.record_created(pm.message, pm.class, 0, 1);
        deliver_packet(&mut m, 9, NodeId(1), pm);
        let pm2 = meta(0, 1, TrafficClass::Unicast, 1, 2);
        deliver_packet(&mut m, 12, NodeId(1), pm2);
    }

    #[test]
    fn chain_classes_count_toward_broadcast_message() {
        // Spidergon chains: the message is registered as Broadcast but the
        // packets carry chain classes; completion is driven by the track's
        // class, receptions by reaching expected count.
        let mut m = Metrics::new();
        m.record_created(MessageId(1), TrafficClass::Broadcast, 0, 2);
        let mut pm = meta(1, 0, TrafficClass::ChainRim, 1, 2);
        pm.created_at = 0;
        deliver_packet(&mut m, 8, NodeId(1), pm);
        let mut pm2 = meta(1, 1, TrafficClass::ChainRim, 2, 2);
        pm2.created_at = 0;
        deliver_packet(&mut m, 14, NodeId(2), pm2);
        assert_eq!(m.broadcast_completion_latency().count(), 1);
        assert_eq!(m.broadcast_completion_latency().mean(), 14.0);
    }
}
