//! Virtual-channel input buffers.
//!
//! The paper's IPC "incorporates two lanes of input buffers ... parametrized
//! in width and depth" (§2.3.1). Width is abstracted away by the behavioural
//! simulator (a [`Flit`] is a flit); depth is enforced here, and the `full`
//! signal of the hardware becomes the credit check in the upstream router's
//! arbitration.

use quarc_core::flit::Flit;
use std::collections::VecDeque;

/// One VC lane of an input port: a bounded flit FIFO.
#[derive(Debug, Clone)]
pub struct VcFifo {
    q: VecDeque<Flit>,
    cap: usize,
}

impl VcFifo {
    /// A FIFO holding at most `cap` flits.
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1);
        VcFifo { q: VecDeque::with_capacity(cap), cap }
    }

    /// Append a flit. Panics if full — the upstream credit check must make
    /// this impossible, so violating it is a simulator bug, not back-pressure.
    pub fn push(&mut self, flit: Flit) {
        assert!(self.q.len() < self.cap, "VC buffer overflow: credit accounting broken");
        self.q.push_back(flit);
    }

    /// The flit at the head, if any.
    #[inline]
    pub fn front(&self) -> Option<&Flit> {
        self.q.front()
    }

    /// Remove and return the head flit.
    #[inline]
    pub fn pop(&mut self) -> Option<Flit> {
        self.q.pop_front()
    }

    /// Number of buffered flits.
    #[inline]
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether the lane is empty (the `empty` signal of §2.3.1).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Free slots (the complement of the `full`/`ch_status_n` signal).
    #[inline]
    pub fn free(&self) -> usize {
        self.cap - self.q.len()
    }

    /// Buffer capacity in flits.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.cap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarc_core::flit::{FlitKind, PacketMeta, TrafficClass};
    use quarc_core::ids::{MessageId, NodeId, PacketId};
    use quarc_core::ring::RingDir;

    fn flit(seq: u32) -> Flit {
        Flit {
            meta: PacketMeta {
                message: MessageId(0),
                packet: PacketId(0),
                class: TrafficClass::Unicast,
                src: NodeId(0),
                dst: NodeId(1),
                bitstring: 0,
                dir: RingDir::Cw,
                len: 4,
                created_at: 0,
            },
            seq,
            kind: FlitKind::Body,
            payload: seq,
        }
    }

    #[test]
    fn fifo_order() {
        let mut f = VcFifo::new(4);
        for i in 0..4 {
            f.push(flit(i));
        }
        assert_eq!(f.len(), 4);
        assert_eq!(f.free(), 0);
        for i in 0..4 {
            assert_eq!(f.pop().unwrap().seq, i);
        }
        assert!(f.is_empty());
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut f = VcFifo::new(1);
        f.push(flit(0));
        f.push(flit(1));
    }

    #[test]
    fn front_does_not_consume() {
        let mut f = VcFifo::new(2);
        f.push(flit(7));
        assert_eq!(f.front().unwrap().seq, 7);
        assert_eq!(f.len(), 1);
    }
}
