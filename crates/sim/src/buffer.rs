//! Virtual-channel input buffers.
//!
//! The paper's IPC "incorporates two lanes of input buffers ... parametrized
//! in width and depth" (§2.3.1). Width is abstracted away by the behavioural
//! simulator (a [`Flit`] is a flit); depth is enforced here, and the `full`
//! signal of the hardware becomes the credit check in the upstream router's
//! arbitration.
//!
//! All lanes of one router live in a single [`LaneBufs`] allocation — one
//! flit ring plus one `(head, len)` word per lane — so the arbitration pass,
//! which inspects the head of every lane of every router every cycle, walks
//! contiguous memory instead of chasing one heap `VecDeque` per lane.

use quarc_core::flit::{Flit, FlitKind, PacketRef};

/// The input VC lanes of a whole network: bounded flit FIFOs in one
/// contiguous block, indexed by a dense lane id (the networks use
/// `(node * ports + port) * vcs + vc`).
///
/// The head flit of every lane is mirrored into a dense `heads` slab: the
/// arbitration pass inspects the head of every lane of every *active* router
/// every cycle, and the mirror turns that inspection into sequential reads
/// of per-node-contiguous memory instead of chasing each lane's ring
/// position. Push/pop pay one extra 16-byte copy to maintain it — they run
/// once per flit movement, while `front` runs once per lane per arbitration
/// pass.
#[derive(Debug, Clone)]
pub struct LaneBufs {
    /// Ring storage, `depth` slots per lane.
    flits: Box<[Flit]>,
    /// `(head, len)` per lane.
    state: Box<[(u16, u16)]>,
    /// Mirror of each lane's head flit (valid iff the lane is non-empty).
    heads: Box<[Flit]>,
    depth: usize,
}

impl LaneBufs {
    /// Buffers for `lanes` lanes of `depth` flits each.
    pub fn new(lanes: usize, depth: usize) -> Self {
        assert!(depth >= 1 && depth <= u16::MAX as usize);
        let empty = Flit { packet: PacketRef(0), seq: 0, kind: FlitKind::Body, payload: 0 };
        LaneBufs {
            flits: vec![empty; lanes * depth].into_boxed_slice(),
            state: vec![(0u16, 0u16); lanes].into_boxed_slice(),
            heads: vec![empty; lanes].into_boxed_slice(),
            depth,
        }
    }

    /// Append a flit to `lane`. Panics if full — the upstream credit check
    /// must make this impossible, so violating it is a simulator bug, not
    /// back-pressure.
    #[inline]
    pub fn push(&mut self, lane: usize, flit: Flit) {
        let (head, len) = self.state[lane];
        assert!((len as usize) < self.depth, "VC buffer overflow: credit accounting broken");
        let slot = lane * self.depth + (head as usize + len as usize) % self.depth;
        self.flits[slot] = flit;
        if len == 0 {
            self.heads[lane] = flit;
        }
        self.state[lane].1 = len + 1;
    }

    /// The flit at the head of `lane`, if any.
    #[inline]
    pub fn front(&self, lane: usize) -> Option<&Flit> {
        let (_, len) = self.state[lane];
        (len > 0).then(|| &self.heads[lane])
    }

    /// Remove and return the head flit of `lane`.
    #[inline]
    pub fn pop(&mut self, lane: usize) -> Option<Flit> {
        let (head, len) = self.state[lane];
        if len == 0 {
            return None;
        }
        let flit = self.heads[lane];
        let next = (head as usize + 1) % self.depth;
        self.state[lane] = (next as u16, len - 1);
        if len > 1 {
            self.heads[lane] = self.flits[lane * self.depth + next];
        }
        Some(flit)
    }

    /// Number of buffered flits in `lane`.
    #[inline]
    pub fn len(&self, lane: usize) -> usize {
        self.state[lane].1 as usize
    }

    /// Whether `lane` is empty (the `empty` signal of §2.3.1).
    #[inline]
    pub fn is_empty(&self, lane: usize) -> bool {
        self.state[lane].1 == 0
    }

    /// Free slots of `lane` (the complement of `full`/`ch_status_n`).
    #[inline]
    pub fn free(&self, lane: usize) -> usize {
        self.depth - self.len(lane)
    }

    /// Buffer capacity per lane, in flits.
    #[inline]
    pub fn depth(&self) -> usize {
        self.depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flit(seq: u32) -> Flit {
        Flit { packet: PacketRef(0), seq, kind: FlitKind::Body, payload: seq }
    }

    #[test]
    fn fifo_order_per_lane() {
        let mut b = LaneBufs::new(2, 4);
        for i in 0..4 {
            b.push(0, flit(i));
        }
        b.push(1, flit(99));
        assert_eq!(b.len(0), 4);
        assert_eq!(b.free(0), 0);
        for i in 0..4 {
            assert_eq!(b.pop(0).unwrap().seq, i);
        }
        assert!(b.is_empty(0));
        assert_eq!(b.pop(1).unwrap().seq, 99);
    }

    #[test]
    fn ring_wraps_across_push_pop_interleaving() {
        let mut b = LaneBufs::new(1, 3);
        for round in 0..10u32 {
            b.push(0, flit(round));
            assert_eq!(b.pop(0).unwrap().seq, round);
        }
        assert!(b.is_empty(0));
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut b = LaneBufs::new(1, 1);
        b.push(0, flit(0));
        b.push(0, flit(1));
    }

    #[test]
    fn front_does_not_consume() {
        let mut b = LaneBufs::new(1, 2);
        b.push(0, flit(7));
        assert_eq!(b.front(0).unwrap().seq, 7);
        assert_eq!(b.len(0), 1);
        assert!(b.front(1 - 1).is_some());
    }

    #[test]
    fn lanes_are_independent() {
        let mut b = LaneBufs::new(3, 2);
        b.push(0, flit(1));
        b.push(2, flit(2));
        assert!(b.is_empty(1));
        assert_eq!(b.front(0).unwrap().seq, 1);
        assert_eq!(b.front(2).unwrap().seq, 2);
        assert_eq!(b.pop(1), None);
    }
}
