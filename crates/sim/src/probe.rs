//! `quarc-probe`: the permanent instrumentation layer.
//!
//! Three observation channels, all **off by default** and all bound by one
//! hard invariant — *observe, never mutate*. A probe reads simulator state
//! and wall-clock time; it never feeds anything back into arbitration,
//! routing, credits or the workload schedule, so enabling every probe must
//! leave the equivalence goldens byte-identical and the active-set lockstep
//! proptests green (`tests/probe.rs`, `tests/equivalence.rs` pin this —
//! proven, not asserted).
//!
//! 1. **Phase profiler** — wall-clock nanoseconds per step phase
//!    (arrivals / polls / gather / commit) plus the size of the worklist
//!    each phase walked, sampled every `profile_every`-th cycle so
//!    steady-state overhead is bounded. This replaces the "temporary
//!    `Instant` timers" workflow HOTPATH.md used to prescribe.
//! 2. **Counter time-series** — one [`CounterSample`] row every
//!    `counters_every`-th cycle: source backlog, buffered flits, link
//!    occupancy, live packet-table slots, the three worklist sizes, metric
//!    totals and the cumulative credit-stall count. Exported as CSV or JSON.
//! 3. **Flit-event trace** — structured inject / hop / clone / deliver
//!    events in a bounded ring buffer (drops counted, never blocking),
//!    exportable as Chrome trace-event JSON (`chrome://tracing`, Perfetto)
//!    via `quarc-bench trace`.
//!
//! The compiled-in cost with everything disabled is one branch per record
//! site; the perf gate holds the headline to that claim.

use quarc_core::flit::TrafficClass;
use quarc_engine::Cycle;
use std::time::Instant;

/// Counter-sample rows are capped so an accidental `counters_every = 1` on a
/// week-long campaign cannot eat the heap; rows beyond the cap are dropped
/// and counted.
const MAX_COUNTER_SAMPLES: usize = 1 << 20;

/// The four phases of every network's `step_cycle` (see
/// `crates/sim/HOTPATH.md`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// (a) link arrivals over the live-link worklist.
    Arrivals = 0,
    /// (b) workload polls over the due heap (plus chain re-injections).
    Polls = 1,
    /// (c) read-only arbitration over the sorted router worklist.
    Gather = 2,
    /// (d) commit of the planned transfers.
    Commit = 3,
}

impl Phase {
    /// All phases in step order.
    pub const ALL: [Phase; 4] = [Phase::Arrivals, Phase::Polls, Phase::Gather, Phase::Commit];

    /// Lower-case phase name (stable; used in exports).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Arrivals => "arrivals",
            Phase::Polls => "polls",
            Phase::Gather => "gather",
            Phase::Commit => "commit",
        }
    }
}

/// What to observe. Everything defaults to **off**; a disabled channel costs
/// one branch per record site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProbeConfig {
    /// Profile the step phases every `profile_every`-th cycle (0 = off).
    pub profile_every: u32,
    /// Sample the counter registry every `counters_every`-th cycle (0 = off).
    pub counters_every: u32,
    /// Flit-event ring capacity (0 = tracing off).
    pub trace_capacity: usize,
}

impl ProbeConfig {
    /// Everything off (the steady-state default).
    pub fn off() -> Self {
        Self::default()
    }

    /// Every channel on, at full cadence — what the observe-never-mutate
    /// tests run under.
    pub fn all(trace_capacity: usize) -> Self {
        ProbeConfig { profile_every: 1, counters_every: 1, trace_capacity }
    }

    /// Whether any channel is on.
    pub fn any(&self) -> bool {
        self.profile_every != 0 || self.counters_every != 0 || self.trace_capacity != 0
    }
}

/// One row of the counter time-series. All fields are reads of O(1) state
/// the networks already maintain — sampling allocates only the row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterSample {
    /// Cycle the sample was taken at (end of the step, before the tick).
    pub cycle: Cycle,
    /// Flits queued at source transceivers.
    pub backlog: u64,
    /// Flits buffered in network input VC lanes.
    pub buffered: u64,
    /// Flits in flight on links.
    pub on_links: u64,
    /// Interned packet-table slots in use.
    pub live_packets: u64,
    /// Links in the live-link worklist.
    pub live_links: u64,
    /// Routers marked for the next arbitration pass.
    pub active_routers: u64,
    /// Entries in the source poll heap.
    pub poll_sources: u64,
    /// Messages created but not fully delivered.
    pub in_flight: u64,
    /// Messages fully completed.
    pub completed: u64,
    /// Flits delivered to PEs.
    pub delivered: u64,
    /// Flits consumed by fault drops (dead/lossy links).
    pub dropped: u64,
    /// Cumulative input-lane heads blocked on zero downstream credits.
    pub credit_stalls: u64,
}

impl CounterSample {
    /// CSV header matching [`CounterSample::csv_row`].
    pub fn csv_header() -> &'static str {
        "cycle,backlog,buffered,on_links,live_packets,live_links,active_routers,\
         poll_sources,in_flight,completed,delivered,dropped,credit_stalls"
    }

    /// One CSV row.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{}",
            self.cycle,
            self.backlog,
            self.buffered,
            self.on_links,
            self.live_packets,
            self.live_links,
            self.active_routers,
            self.poll_sources,
            self.in_flight,
            self.completed,
            self.delivered,
            self.dropped,
            self.credit_stalls,
        )
    }

    fn json(&self) -> String {
        format!(
            "{{\"cycle\":{},\"backlog\":{},\"buffered\":{},\"on_links\":{},\
             \"live_packets\":{},\"live_links\":{},\"active_routers\":{},\
             \"poll_sources\":{},\"in_flight\":{},\"completed\":{},\
             \"delivered\":{},\"dropped\":{},\"credit_stalls\":{}}}",
            self.cycle,
            self.backlog,
            self.buffered,
            self.on_links,
            self.live_packets,
            self.live_links,
            self.active_routers,
            self.poll_sources,
            self.in_flight,
            self.completed,
            self.delivered,
            self.dropped,
            self.credit_stalls,
        )
    }
}

/// What happened to a packet header (events are header-granularity so trace
/// volume scales with hops, not flits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlitEventKind {
    /// A message entered a source queue; `arg` is its expected receiver
    /// count (so the event stream is self-contained for conservation
    /// checks).
    Inject,
    /// A header was forwarded onto a link; `arg` is the output-port index.
    Hop,
    /// A copy was made — an ingress-mux clone at a branch node (`arg` =
    /// output the original continued on) or a Spidergon chain replication
    /// (`arg` = number of continuations).
    Clone,
    /// A tail flit was delivered to a PE (one event per reception).
    Deliver,
    /// A packet's forward was suppressed by a fault at header-plan time;
    /// `arg` is the number of receivers written off as lost. Under an
    /// active recovery policy data drops carry `arg = 0` — loss accounting
    /// is deferred to the retry window and shows up as [`Self::Expire`].
    Drop,
    /// An ACK was absorbed at the source of the message it acknowledges;
    /// `node` is the acking receiver, `arg` is 1 for the first ack from
    /// that receiver and 0 for a drained duplicate.
    Ack,
    /// The recovery layer retransmitted a message to its unacked receiver
    /// subset; `node` is the source, `arg` is the subset size.
    Retry,
    /// The recovery layer exhausted its retries; `arg` is the number of
    /// never-served receivers written off as lost (closing the per-message
    /// ledger: delivers + drop-losses + expire-losses == expected).
    Expire,
}

impl FlitEventKind {
    /// Stable lower-case name (used as the Chrome trace event name).
    pub fn name(self) -> &'static str {
        match self {
            FlitEventKind::Inject => "inject",
            FlitEventKind::Hop => "hop",
            FlitEventKind::Clone => "clone",
            FlitEventKind::Deliver => "deliver",
            FlitEventKind::Drop => "drop",
            FlitEventKind::Ack => "ack",
            FlitEventKind::Retry => "retry",
            FlitEventKind::Expire => "expire",
        }
    }
}

/// One structured flit event (24 bytes; the ring holds `trace_capacity` of
/// them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlitEvent {
    /// Cycle the event happened at.
    pub cycle: Cycle,
    /// The message id (`MessageId.0`: metrics slab slot + generation tag).
    pub message: u64,
    /// Node the event happened at.
    pub node: u32,
    /// Kind-specific argument (see [`FlitEventKind`]).
    pub arg: u32,
    /// What happened.
    pub kind: FlitEventKind,
    /// Traffic class of the message.
    pub class: TrafficClass,
}

/// The per-network probe. Owned as a plain field by every network model;
/// with the default [`ProbeConfig`] every record method is a single
/// early-return branch.
#[derive(Debug, Default)]
pub struct SimProbe {
    cfg: ProbeConfig,
    // Phase profiler.
    phase_ns: [u64; 4],
    phase_items: [u64; 4],
    profiled_cycles: u64,
    // Counter time-series.
    samples: Vec<CounterSample>,
    samples_dropped: u64,
    credit_stalls: u64,
    // Flit-event ring.
    events: Vec<FlitEvent>,
    /// Next ring slot to overwrite once `events` is at capacity.
    ring_head: usize,
    events_dropped: u64,
}

impl SimProbe {
    /// A probe with everything off.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a configuration. Retains nothing from earlier observation —
    /// call before the run being observed.
    pub fn configure(&mut self, cfg: ProbeConfig) {
        *self = SimProbe { cfg, ..SimProbe::default() };
        if cfg.trace_capacity > 0 {
            self.events.reserve_exact(cfg.trace_capacity);
        }
    }

    /// The active configuration.
    pub fn config(&self) -> ProbeConfig {
        self.cfg
    }

    // ---- phase profiler ------------------------------------------------

    /// Whether this cycle is a profiled one; counts it if so. The caller
    /// takes its own `Instant` marks and reports each phase through
    /// [`SimProbe::phase_lap`] — time never flows back into the simulation.
    #[inline]
    pub fn begin_profiled_cycle(&mut self, now: Cycle) -> bool {
        let every = self.cfg.profile_every;
        if every == 0 || !now.is_multiple_of(every as u64) {
            return false;
        }
        self.profiled_cycles += 1;
        true
    }

    /// Record that `phase` just finished, having walked `items` worklist
    /// entries; advances `mark` to now so the next lap starts here.
    #[inline]
    pub fn phase_lap(&mut self, phase: Phase, mark: &mut Instant, items: usize) {
        let t = Instant::now();
        self.phase_ns[phase as usize] += t.duration_since(*mark).as_nanos() as u64;
        self.phase_items[phase as usize] += items as u64;
        *mark = t;
    }

    /// Cycles the profiler actually timed.
    pub fn profiled_cycles(&self) -> u64 {
        self.profiled_cycles
    }

    /// Accumulated nanoseconds of a phase across all profiled cycles.
    pub fn phase_nanos(&self, phase: Phase) -> u64 {
        self.phase_ns[phase as usize]
    }

    /// Accumulated worklist entries a phase walked across profiled cycles.
    pub fn phase_items(&self, phase: Phase) -> u64 {
        self.phase_items[phase as usize]
    }

    /// The phase profile as a JSON object: per-phase totals, means per
    /// profiled cycle, and the phase's share of the profiled step time.
    pub fn profile_json(&self) -> String {
        let cycles = self.profiled_cycles.max(1) as f64;
        let total_ns: u64 = self.phase_ns.iter().sum();
        let mut out = String::from("{");
        out.push_str(&format!("\"profiled_cycles\":{},\"phases\":{{", self.profiled_cycles));
        for (i, p) in Phase::ALL.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let ns = self.phase_ns[p as usize];
            out.push_str(&format!(
                "\"{}\":{{\"ns\":{},\"items\":{},\"ns_per_cycle\":{:.1},\"share\":{:.4}}}",
                p.name(),
                ns,
                self.phase_items[p as usize],
                ns as f64 / cycles,
                ns as f64 / total_ns.max(1) as f64,
            ));
        }
        out.push_str("}}");
        out
    }

    // ---- counter time-series -------------------------------------------

    /// Whether the counter registry is being sampled at all (gates the
    /// credit-stall accounting in the gather phases).
    #[inline]
    pub fn counters_on(&self) -> bool {
        self.cfg.counters_every != 0
    }

    /// Whether this cycle is a counter-sample one.
    #[inline]
    pub fn counters_due(&self, now: Cycle) -> bool {
        let every = self.cfg.counters_every;
        every != 0 && now.is_multiple_of(every as u64)
    }

    /// Count an input-lane head blocked by zero downstream credits. Called
    /// from the gather phases only while [`SimProbe::counters_on`].
    #[inline]
    pub fn note_credit_stall(&mut self) {
        self.credit_stalls += 1;
    }

    /// Cumulative credit-stall count (what [`CounterSample::credit_stalls`]
    /// snapshots).
    pub fn credit_stalls(&self) -> u64 {
        self.credit_stalls
    }

    /// Append one sample row (bounded by [`MAX_COUNTER_SAMPLES`]).
    pub fn push_sample(&mut self, sample: CounterSample) {
        if self.samples.len() >= MAX_COUNTER_SAMPLES {
            self.samples_dropped += 1;
            return;
        }
        self.samples.push(sample);
    }

    /// The sampled time-series, in cycle order.
    pub fn samples(&self) -> &[CounterSample] {
        &self.samples
    }

    /// Sample rows dropped at the cap.
    pub fn samples_dropped(&self) -> u64 {
        self.samples_dropped
    }

    /// The counter time-series as CSV (header + one row per sample).
    pub fn counters_csv(&self) -> String {
        let mut out = String::from(CounterSample::csv_header());
        out.push('\n');
        for s in &self.samples {
            out.push_str(&s.csv_row());
            out.push('\n');
        }
        out
    }

    /// The counter time-series as a JSON array of row objects.
    pub fn counters_json(&self) -> String {
        let mut out = String::from("[");
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&s.json());
        }
        out.push(']');
        out
    }

    // ---- flit-event trace ----------------------------------------------

    /// Whether flit tracing is on (callers gate meta lookups behind this).
    #[inline]
    pub fn trace_on(&self) -> bool {
        self.cfg.trace_capacity != 0
    }

    /// Record one flit event into the ring (overwrites the oldest entry at
    /// capacity; overwrites are counted, never block).
    #[inline]
    pub fn trace(
        &mut self,
        kind: FlitEventKind,
        cycle: Cycle,
        message: u64,
        class: TrafficClass,
        node: u32,
        arg: u32,
    ) {
        let cap = self.cfg.trace_capacity;
        if cap == 0 {
            return;
        }
        let ev = FlitEvent { cycle, message, node, arg, kind, class };
        if self.events.len() < cap {
            self.events.push(ev);
        } else {
            self.events[self.ring_head] = ev;
            self.ring_head = (self.ring_head + 1) % cap;
            self.events_dropped += 1;
        }
    }

    /// Events currently in the ring, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlitEvent> {
        let (wrapped, tail) = self.events.split_at(self.ring_head);
        tail.iter().chain(wrapped.iter())
    }

    /// Events overwritten because the ring was full.
    pub fn events_dropped(&self) -> u64 {
        self.events_dropped
    }

    /// The flit-event ring as Chrome trace-event JSON (the object form with
    /// a `traceEvents` array), loadable in `chrome://tracing` and Perfetto.
    /// Timestamps are cycles rendered as microseconds; `pid` 0 is the
    /// network, `tid` is the node index; per-message detail rides in `args`.
    pub fn chrome_trace_json(&self, process_name: &str) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        out.push_str(&format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"ts\":0,\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape_json(process_name)
        ));
        for ev in self.events() {
            out.push(',');
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":0,\"tid\":{},\
                 \"args\":{{\"message\":{},\"class\":\"{}\",\"arg\":{}}}}}",
                ev.kind.name(),
                ev.cycle,
                ev.node,
                ev.message,
                ev.class,
                ev.arg,
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping for the hand-rendered exports.
fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_probe_records_nothing() {
        let mut p = SimProbe::new();
        assert!(!p.begin_profiled_cycle(0));
        assert!(!p.counters_due(0));
        assert!(!p.trace_on());
        p.trace(FlitEventKind::Inject, 0, 1, TrafficClass::Unicast, 0, 1);
        assert_eq!(p.events().count(), 0);
        assert_eq!(p.profiled_cycles(), 0);
        assert!(p.samples().is_empty());
    }

    #[test]
    fn profile_cadence_samples_every_kth_cycle() {
        let mut p = SimProbe::new();
        p.configure(ProbeConfig { profile_every: 4, ..ProbeConfig::off() });
        let hits = (0..16u64).filter(|&c| p.begin_profiled_cycle(c)).count();
        assert_eq!(hits, 4);
        assert_eq!(p.profiled_cycles(), 4);
    }

    #[test]
    fn phase_lap_accumulates_time_and_items() {
        let mut p = SimProbe::new();
        p.configure(ProbeConfig { profile_every: 1, ..ProbeConfig::off() });
        assert!(p.begin_profiled_cycle(0));
        let mut mark = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(2));
        p.phase_lap(Phase::Gather, &mut mark, 7);
        assert!(p.phase_nanos(Phase::Gather) >= 1_000_000, "sleep must register");
        assert_eq!(p.phase_items(Phase::Gather), 7);
        // The mark advanced: an immediate second lap is near-zero.
        p.phase_lap(Phase::Commit, &mut mark, 1);
        assert!(p.phase_nanos(Phase::Commit) < p.phase_nanos(Phase::Gather));
        let json = p.profile_json();
        assert!(json.contains("\"gather\""), "{json}");
        assert!(json.contains("\"profiled_cycles\":1"), "{json}");
    }

    #[test]
    fn trace_ring_wraps_and_counts_drops() {
        let mut p = SimProbe::new();
        p.configure(ProbeConfig { trace_capacity: 3, ..ProbeConfig::off() });
        for i in 0..5u64 {
            p.trace(FlitEventKind::Hop, i, i, TrafficClass::Unicast, i as u32, 0);
        }
        assert_eq!(p.events_dropped(), 2);
        let cycles: Vec<u64> = p.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4], "oldest-first after wrap");
    }

    #[test]
    fn counters_csv_and_json_round_the_same_rows() {
        let mut p = SimProbe::new();
        p.configure(ProbeConfig { counters_every: 2, ..ProbeConfig::off() });
        assert!(p.counters_due(0) && !p.counters_due(1) && p.counters_due(2));
        p.note_credit_stall();
        p.push_sample(CounterSample {
            cycle: 2,
            backlog: 1,
            buffered: 2,
            on_links: 3,
            live_packets: 4,
            live_links: 5,
            active_routers: 6,
            poll_sources: 7,
            in_flight: 8,
            completed: 9,
            delivered: 10,
            dropped: 0,
            credit_stalls: p.credit_stalls(),
        });
        let csv = p.counters_csv();
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.lines().nth(1).unwrap().ends_with(",1"), "{csv}");
        assert!(p.counters_json().contains("\"credit_stalls\":1"));
    }

    #[test]
    fn chrome_trace_shape_is_loadable() {
        let mut p = SimProbe::new();
        p.configure(ProbeConfig { trace_capacity: 8, ..ProbeConfig::off() });
        p.trace(FlitEventKind::Inject, 0, 42, TrafficClass::Broadcast, 3, 15);
        p.trace(FlitEventKind::Deliver, 9, 42, TrafficClass::Broadcast, 5, 0);
        let json = p.chrome_trace_json("quarc n=16");
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        for field in ["\"ph\":\"i\"", "\"ts\":9", "\"tid\":5", "\"pid\":0", "\"name\":\"deliver\""]
        {
            assert!(json.contains(field), "missing {field} in {json}");
        }
    }

    #[test]
    fn configure_resets_prior_observation() {
        let mut p = SimProbe::new();
        p.configure(ProbeConfig::all(4));
        p.trace(FlitEventKind::Hop, 1, 1, TrafficClass::Unicast, 0, 0);
        p.note_credit_stall();
        p.configure(ProbeConfig::off());
        assert_eq!(p.events().count(), 0);
        assert_eq!(p.credit_stalls(), 0);
    }
}
