//! The simulation driver: warmup, measurement, drain and saturation
//! detection — the protocol behind every latency-vs-load point in the
//! paper's Figs. 9–11.
//!
//! The run protocol is written once, generically, over [`MonoStep`]: called
//! through [`run_mono`] with an [`AnyNet`] and a concrete workload it
//! monomorphizes into a fully static inner loop (enum dispatch per cycle, no
//! virtual calls anywhere on the hot path — `run_point` and the perf harness
//! take this road); called through [`run`] it degrades gracefully to the old
//! object-safe facade for callers that only hold `&mut dyn NocSim`.

use crate::mesh_net::MeshNetwork;
use crate::metrics::Metrics;
use crate::probe::SimProbe;
use crate::quarc_net::QuarcNetwork;
use crate::spider_net::SpidergonNetwork;
use crate::torus_net::TorusNetwork;
use quarc_core::flit::TrafficClass;
use quarc_core::topology::TopologyKind;
use quarc_engine::Cycle;
use quarc_workloads::Workload;

/// Object-safe interface over the concrete network simulators.
pub trait NocSim {
    /// Advance one cycle, polling `workload` for new messages.
    fn step(&mut self, workload: &mut dyn Workload);
    /// Tell the network the workload object passed to `step` is about to be
    /// replaced by a *different* one. The networks schedule polls from
    /// [`Workload::next_due`] answers, so a swap to a workload with earlier
    /// due cycles must reset that schedule (every node is re-polled on the
    /// next step). Swapping to a workload that never produces anything — the
    /// drain-phase silence — is safe without this call, but [`run`] calls it
    /// anyway.
    fn note_workload_change(&mut self);
    /// Current cycle.
    fn now(&self) -> Cycle;
    /// Node count.
    fn num_nodes(&self) -> usize;
    /// Topology family.
    fn kind(&self) -> TopologyKind;
    /// Measurement state.
    fn metrics(&self) -> &Metrics;
    /// Mutable measurement state (used to start the measurement window).
    fn metrics_mut(&mut self) -> &mut Metrics;
    /// The instrumentation layer (phase profiler, counter time-series,
    /// flit-event trace). Off by default; see [`crate::probe`].
    fn probe(&self) -> &SimProbe;
    /// Mutable probe access (used to configure channels before a run and to
    /// drain exports after it). Probes observe, never mutate: any
    /// configuration must leave simulated behaviour bit-identical.
    fn probe_mut(&mut self) -> &mut SimProbe;
    /// Flits queued at source transceivers.
    fn source_backlog(&self) -> usize;
    /// Total link traversals (flit-hops) since construction. One flit moving
    /// over one physical link for one cycle counts once; the perf harness
    /// divides deltas of this by wall time to get Mflit-hops/s.
    fn flit_hops(&self) -> u64;
    /// Whether no traffic is anywhere in the system.
    fn quiesced(&self) -> bool;
    /// Recovery windows still open (messages with unacknowledged receivers
    /// whose retry budget is not exhausted). A non-zero count means the
    /// end-to-end recovery layer is waiting out a backoff — legitimate
    /// progress even when no flit moves — so the stall watchdog must not
    /// fire. Zero whenever [`quarc_core::config::RecoveryPolicy`] is
    /// disabled.
    fn recovery_pending(&self) -> u64 {
        0
    }
    /// A snapshot of where traffic is wedged, taken when the stall watchdog
    /// fires: the quiescence counters plus the most occupied routers. Walks
    /// the network (cold path — never called per cycle).
    fn stall_diagnostics(&self) -> StallDiagnostics;
}

/// Where the traffic was when a run stalled: the four quiescence counters
/// plus the most occupied routers (buffered + source-queued flits), so a
/// wedged run points at the faulted region instead of just timing out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StallDiagnostics {
    /// Flits queued at source transceivers.
    pub backlog: u64,
    /// Flits buffered in router input lanes.
    pub buffered: u64,
    /// Flits in flight on links.
    pub on_links: u64,
    /// Messages created but not yet fully accounted.
    pub in_flight: u64,
    /// Packets interned in the packet table.
    pub live_packets: u64,
    /// The active fault plan's compact token (`s{}o{}d{}l{}t{}f{}`, see
    /// [`quarc_core::config::FaultPlan`]'s `Display`), so a stall report
    /// names the injected faults that wedged the run without a trip back
    /// to the spec.
    pub fault: String,
    /// Up to [`Self::TOP_ROUTERS`] `(node, flits)` pairs, most occupied
    /// first (ties broken by node id).
    pub busiest_routers: Vec<(u32, u32)>,
}

impl StallDiagnostics {
    /// How many router occupancy entries a snapshot keeps.
    pub const TOP_ROUTERS: usize = 8;
}

impl std::fmt::Display for StallDiagnostics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "backlog={} buffered={} on_links={} in_flight={} live_packets={} fault={} busiest=[",
            self.backlog,
            self.buffered,
            self.on_links,
            self.in_flight,
            self.live_packets,
            self.fault
        )?;
        for (i, (node, flits)) in self.busiest_routers.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{node}:{flits}")?;
        }
        write!(f, "]")
    }
}

/// Parameters of one measured run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSpec {
    /// Cycles simulated before measurement starts.
    pub warmup: Cycle,
    /// Cycles of measured injection.
    pub measure: Cycle,
    /// Maximum extra cycles allowed for in-flight traffic to drain.
    pub drain: Cycle,
    /// A run is declared saturated when the mean measured latency exceeds
    /// this cap or the source backlog at the end of measurement exceeds
    /// `backlog_cap` flits per node.
    pub latency_cap: f64,
    /// Per-node backlog (in flits) above which the run counts as saturated.
    pub backlog_cap: f64,
    /// Stall watchdog window (cycles): if traffic is pending and no flit
    /// moves (hop, delivery or fault drop) for a full window, the run ends
    /// with [`RunOutcome::Stalled`] instead of spinning to the cycle cap.
    /// Progress is sampled once per window, so the check costs nothing per
    /// cycle and a stall is reported within two windows. `0` disarms it.
    pub stall_window: Cycle,
}

impl Default for RunSpec {
    fn default() -> Self {
        RunSpec {
            warmup: 2_000,
            measure: 20_000,
            drain: 30_000,
            latency_cap: 2_000.0,
            backlog_cap: 200.0,
            stall_window: 10_000,
        }
    }
}

impl RunSpec {
    /// A shorter spec for tests and smoke runs.
    pub fn quick() -> Self {
        RunSpec { warmup: 500, measure: 4_000, drain: 8_000, ..Default::default() }
    }
}

/// Summary of one run: the numbers a figure plots.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Topology family.
    pub kind: TopologyKind,
    /// Nodes.
    pub n: usize,
    /// Offered load in messages/node/cycle, as reported by the workload.
    pub offered_rate: Option<f64>,
    /// Mean unicast latency (cycles), creation → tail at destination.
    pub unicast_mean: f64,
    /// 95th-percentile unicast latency.
    pub unicast_p95: Option<u64>,
    /// Unicast sample count.
    pub unicast_samples: u64,
    /// Mean broadcast latency per reception.
    pub bcast_reception_mean: f64,
    /// Mean broadcast completion latency (last receiver).
    pub bcast_completion_mean: f64,
    /// Broadcast messages completed in the window.
    pub bcast_samples: u64,
    /// Flit throughput per node per cycle over the measurement window:
    /// every flit the fabric moved to an ejection port — fresh data,
    /// duplicate data suppressed by the recovery layer, and ACK control
    /// flits. Equals [`Self::goodput`] whenever recovery is disabled (no
    /// acks, no duplicates), so pre-recovery runs are unchanged.
    pub throughput: f64,
    /// Whether the run hit a saturation criterion.
    pub saturated: bool,
    /// Source backlog (flits) at the end of the measurement window.
    pub end_backlog: usize,
    /// Fraction of expected receiver deliveries that actually happened
    /// (1.0 on fault-free runs; the headline robustness number under
    /// fault injection).
    pub delivered_fraction: f64,
    /// Messages retired with at least one receiver lost to a fault.
    pub undeliverable: u64,
    /// Flits consumed by fault drops.
    pub flits_dropped: u64,
    /// Recovery-layer retransmissions issued (0 with recovery disabled).
    pub retransmissions: u64,
    /// Receivers whose first successful delivery rode a retransmission.
    pub recovered_receivers: u64,
    /// Mean data-send → ACK-received round trip (cycles) over the
    /// measurement window (`NaN` with no samples).
    pub ack_latency_mean: f64,
    /// *Fresh* delivered data flits per node per cycle over the measurement
    /// window — the pre-recovery definition of throughput, excluding ACK
    /// and duplicate traffic.
    pub goodput: f64,
}

impl RunResult {
    /// CSV header matching [`Self::csv_row`].
    pub fn csv_header() -> &'static str {
        "topology,n,rate,unicast_mean,unicast_p95,unicast_samples,bcast_reception_mean,\
         bcast_completion_mean,bcast_samples,throughput,saturated,end_backlog,\
         delivered_fraction,undeliverable,flits_dropped,retransmissions,\
         recovered_receivers,ack_latency_mean,goodput"
    }

    /// One CSV row.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{:.3},{},{},{:.3},{:.3},{},{:.5},{},{},{:.6},{},{},{},{},{:.3},{:.5}",
            self.kind,
            self.n,
            self.offered_rate.map_or_else(|| "-".into(), |r| format!("{r:.5}")),
            self.unicast_mean,
            self.unicast_p95.map_or_else(|| "-".into(), |p| p.to_string()),
            self.unicast_samples,
            self.bcast_reception_mean,
            self.bcast_completion_mean,
            self.bcast_samples,
            self.throughput,
            self.saturated,
            self.end_backlog,
            self.delivered_fraction,
            self.undeliverable,
            self.flits_dropped,
            self.retransmissions,
            self.recovered_receivers,
            self.ack_latency_mean,
            self.goodput,
        )
    }
}

/// How a run ended: cleanly, or wedged with the watchdog's snapshot.
#[derive(Debug, Clone)]
pub enum RunOutcome {
    /// The protocol ran to completion (possibly saturated).
    Finished(RunResult),
    /// The stall watchdog fired: traffic was pending but nothing moved for
    /// a full [`RunSpec::stall_window`]. Carries partial statistics.
    Stalled {
        /// Cycle at which the stall was detected.
        cycle: Cycle,
        /// Where the traffic is wedged.
        diagnostics: StallDiagnostics,
        /// Statistics accumulated up to the stall (flagged saturated).
        partial: RunResult,
    },
    /// A cooperative wall-clock deadline (a campaign's `--point-timeout`
    /// budget) expired mid-run. Checked at the stall watchdog's cadence, so
    /// a run yields within one window of going over budget instead of
    /// pinning a worker to the cycle cap. The partial statistics describe a
    /// truncated run and must never be cached or merged as a finished point.
    DeadlineExceeded {
        /// Cycle at which the deadline was noticed.
        cycle: Cycle,
        /// Statistics accumulated up to the cutoff (flagged saturated).
        partial: RunResult,
    },
}

impl RunOutcome {
    /// Whether the watchdog ended this run.
    pub fn is_stalled(&self) -> bool {
        matches!(self, RunOutcome::Stalled { .. })
    }

    /// The run statistics, complete or partial.
    pub fn result(&self) -> &RunResult {
        match self {
            RunOutcome::Finished(r) => r,
            RunOutcome::Stalled { partial, .. } => partial,
            RunOutcome::DeadlineExceeded { partial, .. } => partial,
        }
    }

    /// Collapse to the statistics (a stalled run reads as saturated — the
    /// legacy [`run`]/[`run_mono`] view).
    pub fn into_result(self) -> RunResult {
        match self {
            RunOutcome::Finished(r) => r,
            RunOutcome::Stalled { partial, .. } => partial,
            RunOutcome::DeadlineExceeded { partial, .. } => partial,
        }
    }
}

/// A workload that generates nothing (used to drain).
struct Silence;

impl Workload for Silence {
    fn poll_into(
        &mut self,
        _node: quarc_core::ids::NodeId,
        _now: Cycle,
        _out: &mut Vec<quarc_workloads::MessageRequest>,
    ) {
    }

    fn next_due(&self, _node: quarc_core::ids::NodeId, _now: Cycle) -> Cycle {
        Cycle::MAX
    }
}

/// The monomorphized stepping interface: a generic twin of [`NocSim::step`]
/// that lets the run protocol inline the per-cycle loop for a concrete
/// `(network, workload)` pair instead of paying two virtual dispatches per
/// cycle (plus one per poll) through `dyn`.
pub trait MonoStep: NocSim {
    /// Advance one cycle, polling `workload` for new messages.
    fn step_mono<W: Workload + ?Sized>(&mut self, workload: &mut W);
}

impl MonoStep for QuarcNetwork {
    fn step_mono<W: Workload + ?Sized>(&mut self, workload: &mut W) {
        self.step_cycle(workload);
    }
}

impl MonoStep for SpidergonNetwork {
    fn step_mono<W: Workload + ?Sized>(&mut self, workload: &mut W) {
        self.step_cycle(workload);
    }
}

impl MonoStep for MeshNetwork {
    fn step_mono<W: Workload + ?Sized>(&mut self, workload: &mut W) {
        self.step_cycle(workload);
    }
}

impl MonoStep for TorusNetwork {
    fn step_mono<W: Workload + ?Sized>(&mut self, workload: &mut W) {
        self.step_cycle(workload);
    }
}

/// The four concrete network simulators behind one enum, so the run loop
/// dispatches with a predictable match instead of a vtable. The `dyn` facade
/// ([`crate::build_network`], [`run`]) stays at the API boundary for callers
/// that want type erasure.
#[derive(Debug)]
pub enum AnyNet {
    /// The paper's contribution.
    Quarc(QuarcNetwork),
    /// The one-port baseline.
    Spidergon(SpidergonNetwork),
    /// The §4 mesh comparison grid.
    Mesh(MeshNetwork),
    /// The §4 torus comparison grid.
    Torus(TorusNetwork),
}

macro_rules! for_each_net {
    ($self:ident, $n:ident => $e:expr) => {
        match $self {
            AnyNet::Quarc($n) => $e,
            AnyNet::Spidergon($n) => $e,
            AnyNet::Mesh($n) => $e,
            AnyNet::Torus($n) => $e,
        }
    };
}

impl MonoStep for AnyNet {
    #[inline]
    fn step_mono<W: Workload + ?Sized>(&mut self, workload: &mut W) {
        for_each_net!(self, n => n.step_cycle(workload))
    }
}

impl NocSim for AnyNet {
    fn step(&mut self, workload: &mut dyn Workload) {
        for_each_net!(self, n => n.step_cycle(workload))
    }

    fn note_workload_change(&mut self) {
        for_each_net!(self, n => n.note_workload_change())
    }

    fn now(&self) -> Cycle {
        for_each_net!(self, n => NocSim::now(n))
    }

    fn num_nodes(&self) -> usize {
        for_each_net!(self, n => NocSim::num_nodes(n))
    }

    fn kind(&self) -> TopologyKind {
        for_each_net!(self, n => NocSim::kind(n))
    }

    fn metrics(&self) -> &Metrics {
        for_each_net!(self, n => NocSim::metrics(n))
    }

    fn metrics_mut(&mut self) -> &mut Metrics {
        for_each_net!(self, n => NocSim::metrics_mut(n))
    }

    fn probe(&self) -> &SimProbe {
        for_each_net!(self, n => NocSim::probe(n))
    }

    fn probe_mut(&mut self) -> &mut SimProbe {
        for_each_net!(self, n => NocSim::probe_mut(n))
    }

    fn source_backlog(&self) -> usize {
        for_each_net!(self, n => NocSim::source_backlog(n))
    }

    fn flit_hops(&self) -> u64 {
        for_each_net!(self, n => NocSim::flit_hops(n))
    }

    fn quiesced(&self) -> bool {
        for_each_net!(self, n => NocSim::quiesced(n))
    }

    fn recovery_pending(&self) -> u64 {
        for_each_net!(self, n => NocSim::recovery_pending(n))
    }

    fn stall_diagnostics(&self) -> StallDiagnostics {
        for_each_net!(self, n => NocSim::stall_diagnostics(n))
    }
}

/// Adapter running the generic protocol over a type-erased network (one
/// virtual `step` per cycle — the pre-refactor behaviour of [`run`]).
struct DynNet<'a>(&'a mut dyn NocSim);

impl NocSim for DynNet<'_> {
    fn step(&mut self, workload: &mut dyn Workload) {
        self.0.step(workload);
    }

    fn note_workload_change(&mut self) {
        self.0.note_workload_change();
    }

    fn now(&self) -> Cycle {
        self.0.now()
    }

    fn num_nodes(&self) -> usize {
        self.0.num_nodes()
    }

    fn kind(&self) -> TopologyKind {
        self.0.kind()
    }

    fn metrics(&self) -> &Metrics {
        self.0.metrics()
    }

    fn metrics_mut(&mut self) -> &mut Metrics {
        self.0.metrics_mut()
    }

    fn probe(&self) -> &SimProbe {
        self.0.probe()
    }

    fn probe_mut(&mut self) -> &mut SimProbe {
        self.0.probe_mut()
    }

    fn source_backlog(&self) -> usize {
        self.0.source_backlog()
    }

    fn flit_hops(&self) -> u64 {
        self.0.flit_hops()
    }

    fn quiesced(&self) -> bool {
        self.0.quiesced()
    }

    fn recovery_pending(&self) -> u64 {
        self.0.recovery_pending()
    }

    fn stall_diagnostics(&self) -> StallDiagnostics {
        self.0.stall_diagnostics()
    }
}

impl MonoStep for DynNet<'_> {
    fn step_mono<W: Workload + ?Sized>(&mut self, workload: &mut W) {
        // Re-borrow the (possibly unsized) workload through the blanket
        // `impl Workload for &mut W` so it coerces to `&mut dyn Workload`.
        let mut wl: &mut W = workload;
        self.0.step(&mut wl);
    }
}

/// What tripped the per-cycle sentinel.
enum Trip {
    /// Traffic was pending and nothing moved for a full stall window.
    Wedged,
    /// The cooperative wall-clock deadline expired.
    Overdue,
}

/// Sampling cadence for the wall-clock deadline when the stall watchdog is
/// disarmed (`stall_window == 0`) — deadline checks still need a cadence.
const DEADLINE_CADENCE: Cycle = 4_096;

/// The stall watchdog: samples the progress counters once per window and
/// fires if nothing moved across a full window while traffic was pending.
/// Reading only counters (and walking links once per window), it cannot
/// affect simulated behaviour — fault-free runs stay byte-identical with
/// the watchdog armed. It doubles as the run's wall-clock sentinel: an
/// optional [`std::time::Instant`] deadline is checked at the same cadence,
/// keeping `Instant::now` (a syscall) off the per-cycle path.
struct Watchdog {
    window: Cycle,
    countdown: Cycle,
    last_progress: u64,
    deadline: Option<std::time::Instant>,
}

impl Watchdog {
    fn new(window: Cycle, deadline: Option<std::time::Instant>) -> Self {
        let cadence = if window == 0 { DEADLINE_CADENCE } else { window };
        Watchdog { window, countdown: cadence, last_progress: u64::MAX, deadline }
    }

    /// Call once per simulated cycle.
    fn poll<N: MonoStep>(&mut self, net: &N) -> Option<Trip> {
        if self.window == 0 && self.deadline.is_none() {
            return None;
        }
        self.countdown -= 1;
        if self.countdown > 0 {
            return None;
        }
        self.countdown = if self.window == 0 { DEADLINE_CADENCE } else { self.window };
        if let Some(deadline) = self.deadline {
            if std::time::Instant::now() >= deadline {
                return Some(Trip::Overdue);
            }
        }
        if self.window == 0 {
            return None;
        }
        // Every commit moves one of these three counters (forward = hop,
        // absorption = delivery, fault drain = drop), so "all unchanged"
        // is exactly "no flit moved". An open recovery window waiting out
        // a retransmission backoff is progress the counters can't see —
        // the network may be legitimately empty until the timer fires —
        // so pending recovery suppresses the verdict.
        let progress =
            net.flit_hops() + net.metrics().flits_delivered() + net.metrics().flits_dropped();
        let wedged =
            progress == self.last_progress && !net.quiesced() && net.recovery_pending() == 0;
        self.last_progress = progress;
        if wedged {
            Some(Trip::Wedged)
        } else {
            None
        }
    }
}

/// `(fresh data flits, total flits moved)` delivered so far: the pair of
/// counters the throughput/goodput split snapshots at the measurement
/// window's edges. "Total" adds ACK control flits and suppressed duplicate
/// data — fabric work the goodput definition excludes. The two components
/// are equal whenever recovery is disabled.
fn flits_moved<N: MonoStep>(net: &N) -> (u64, u64) {
    let m = net.metrics();
    let data = m.flits_delivered();
    (data, data + m.acks_delivered() + m.dup_flits_suppressed())
}

/// Summarise a (possibly partial) run from the current network state.
fn summarise<N: MonoStep>(
    net: &N,
    offered_rate: Option<f64>,
    spec: &RunSpec,
    flits_before: (u64, u64),
    flits_after: (u64, u64),
    end_backlog: usize,
    force_saturated: bool,
) -> RunResult {
    let m = net.metrics();
    let per_node_cycle = spec.measure as f64 * net.num_nodes() as f64;
    let unicast_mean = m.unicast_latency().mean();
    let bcast_completion_mean = m.broadcast_completion_latency().mean();
    let backlog_per_node = end_backlog as f64 / net.num_nodes() as f64;
    let saturated = force_saturated
        || unicast_mean > spec.latency_cap
        || bcast_completion_mean > spec.latency_cap
        || backlog_per_node > spec.backlog_cap
        || !net.quiesced();

    RunResult {
        kind: net.kind(),
        n: net.num_nodes(),
        offered_rate,
        unicast_mean,
        unicast_p95: m.unicast_histogram().percentile(95.0),
        unicast_samples: m.unicast_latency().count(),
        bcast_reception_mean: m.broadcast_reception_latency().mean(),
        bcast_completion_mean,
        bcast_samples: m.completed(TrafficClass::Broadcast),
        throughput: (flits_after.1 - flits_before.1) as f64 / per_node_cycle,
        saturated,
        end_backlog,
        delivered_fraction: m.delivered_fraction(),
        undeliverable: m.undeliverable_total(),
        flits_dropped: m.flits_dropped(),
        retransmissions: m.retransmissions(),
        recovered_receivers: m.recovered_receivers(),
        ack_latency_mean: m.ack_latency().mean(),
        goodput: (flits_after.0 - flits_before.0) as f64 / per_node_cycle,
    }
}

/// The warmup/measure/drain protocol, written once for every dispatch mode.
/// `deadline` is the cooperative wall-clock cutoff (a campaign's
/// `--point-timeout` budget), checked at the stall watchdog's cadence;
/// `None` runs unbounded.
fn run_protocol<N: MonoStep, W: Workload + ?Sized>(
    net: &mut N,
    workload: &mut W,
    spec: &RunSpec,
    deadline: Option<std::time::Instant>,
) -> RunOutcome {
    let t0 = net.now();
    let offered_rate = workload.nominal_rate();
    // A fresh network schedules every source at cycle 0, so this is a no-op
    // for the usual one-network-one-run case — but a *reused* network left
    // its poll schedule parked at the previous drain's silence; reset it so
    // `workload` is actually consulted.
    net.note_workload_change();
    let mut dog = Watchdog::new(spec.stall_window, deadline);
    for _ in 0..spec.warmup {
        net.step_mono(workload);
        if let Some(trip) = dog.poll(net) {
            let end_backlog = net.source_backlog();
            let partial = summarise(net, offered_rate, spec, (0, 0), (0, 0), end_backlog, true);
            return trip_outcome(net, trip, partial);
        }
    }
    net.metrics_mut().begin_measurement(t0 + spec.warmup);
    let flits_before = flits_moved(net);
    for _ in 0..spec.measure {
        net.step_mono(workload);
        if let Some(trip) = dog.poll(net) {
            let flits_after = flits_moved(net);
            let end_backlog = net.source_backlog();
            let partial =
                summarise(net, offered_rate, spec, flits_before, flits_after, end_backlog, true);
            return trip_outcome(net, trip, partial);
        }
    }
    let flits_after = flits_moved(net);
    let end_backlog = net.source_backlog();

    let mut silence = Silence;
    net.note_workload_change();
    for _ in 0..spec.drain {
        if net.quiesced() {
            break;
        }
        net.step_mono(&mut silence);
        if let Some(trip) = dog.poll(net) {
            let partial =
                summarise(net, offered_rate, spec, flits_before, flits_after, end_backlog, true);
            return trip_outcome(net, trip, partial);
        }
    }

    RunOutcome::Finished(summarise(
        net,
        offered_rate,
        spec,
        flits_before,
        flits_after,
        end_backlog,
        false,
    ))
}

/// Package a tripped sentinel as the matching outcome (diagnostics are only
/// gathered for a genuine stall — the deadline cut is not a wedge).
fn trip_outcome<N: MonoStep>(net: &N, trip: Trip, partial: RunResult) -> RunOutcome {
    match trip {
        Trip::Wedged => {
            RunOutcome::Stalled { cycle: net.now(), diagnostics: net.stall_diagnostics(), partial }
        }
        Trip::Overdue => RunOutcome::DeadlineExceeded { cycle: net.now(), partial },
    }
}

/// Run the warmup/measure/drain protocol and summarise.
///
/// Injection runs for `warmup + measure` cycles; only messages created inside
/// the measurement window contribute latency samples. After measurement the
/// workload is silenced and the network drains (bounded by `spec.drain`) so
/// in-flight measured messages still complete. A saturated network will not
/// drain — the partial statistics plus the `saturated` flag are returned.
///
/// This is the type-erased facade (one virtual `step` per cycle); the hot
/// callers — `run_point`, the perf harness — use [`run_mono`], which
/// monomorphizes the same protocol.
pub fn run(net: &mut dyn NocSim, workload: &mut dyn Workload, spec: &RunSpec) -> RunResult {
    run_protocol(&mut DynNet(net), workload, spec, None).into_result()
}

/// [`run`], monomorphized: the whole per-cycle loop — enum dispatch over the
/// network, static dispatch into the workload — compiles to one specialised
/// body per concrete workload type, with no virtual calls.
pub fn run_mono<W: Workload + ?Sized>(
    net: &mut AnyNet,
    workload: &mut W,
    spec: &RunSpec,
) -> RunResult {
    run_protocol(net, workload, spec, None).into_result()
}

/// [`run_mono`], but reporting how the run ended: [`RunOutcome::Stalled`]
/// carries the watchdog's diagnostics instead of silently folding a wedged
/// network into `saturated`. Fault-injection campaigns use this entry point.
pub fn run_mono_outcome<W: Workload + ?Sized>(
    net: &mut AnyNet,
    workload: &mut W,
    spec: &RunSpec,
) -> RunOutcome {
    run_protocol(net, workload, spec, None)
}

/// [`run_mono_outcome`] with a cooperative wall-clock deadline: the run
/// checks `deadline` at the stall watchdog's cadence and yields
/// [`RunOutcome::DeadlineExceeded`] once it passes, so an over-budget
/// campaign point stops within one window instead of pinning its worker to
/// the cycle cap. `None` is exactly [`run_mono_outcome`].
pub fn run_mono_outcome_deadline<W: Workload + ?Sized>(
    net: &mut AnyNet,
    workload: &mut W,
    spec: &RunSpec,
    deadline: Option<std::time::Instant>,
) -> RunOutcome {
    run_protocol(net, workload, spec, deadline)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quarc_net::QuarcNetwork;
    use quarc_core::config::NocConfig;
    use quarc_workloads::{Synthetic, SyntheticConfig};

    #[test]
    fn light_load_run_is_unsaturated() {
        let mut net = QuarcNetwork::new(NocConfig::quarc(16));
        let mut wl = Synthetic::new(16, SyntheticConfig::paper(0.01, 8, 0.05, 1));
        let res = run(&mut net, &mut wl, &RunSpec::quick());
        assert!(!res.saturated, "{res:?}");
        assert!(res.unicast_samples > 100, "{res:?}");
        assert!(res.unicast_mean > 5.0 && res.unicast_mean < 50.0, "{res:?}");
        assert!(res.bcast_samples > 0);
        assert!(res.throughput > 0.0);
    }

    #[test]
    fn overload_is_flagged_saturated() {
        let mut net = QuarcNetwork::new(NocConfig::quarc(16));
        let mut wl = Synthetic::new(16, SyntheticConfig::paper(0.5, 16, 0.1, 2));
        let spec = RunSpec { warmup: 200, measure: 2_000, drain: 2_000, ..Default::default() };
        let res = run(&mut net, &mut wl, &spec);
        assert!(res.saturated, "{res:?}");
    }

    #[test]
    fn csv_row_shape() {
        let mut net = QuarcNetwork::new(NocConfig::quarc(8));
        let mut wl = Synthetic::new(8, SyntheticConfig::paper(0.01, 4, 0.0, 3));
        let res = run(&mut net, &mut wl, &RunSpec::quick());
        let header_cols = RunResult::csv_header().split(',').count();
        let row_cols = res.csv_row().split(',').count();
        assert_eq!(header_cols, row_cols);
    }
}
