//! Load sweeps: the latency-vs-injection-rate curves of Figs. 9–11.
//!
//! The unit of work is [`run_point`] — one fully-specified `(network,
//! workload, rate)` simulation. [`latency_curve`] walks a rate axis serially
//! with early saturation cut-off; `quarc-campaign` shards the same points
//! across worker threads, so any change to how a point is built or seeded
//! must keep `run_point` a pure function of its arguments.

use crate::driver::{
    run_mono_outcome_deadline, AnyNet, NocSim, RunOutcome, RunResult, RunSpec, StallDiagnostics,
};
use crate::mesh_net::MeshNetwork;
use crate::quarc_net::QuarcNetwork;
use crate::spider_net::SpidergonNetwork;
use crate::torus_net::TorusNetwork;
use quarc_core::config::{ConfigError, NocConfig};
use quarc_core::topology::TopologyKind;
use quarc_engine::stats::LatencyHistogram;
use quarc_engine::Cycle;
use quarc_workloads::{Synthetic, SyntheticConfig};
use std::fmt;

/// Instantiate the simulator matching a configuration, enum-dispatched.
///
/// This is the form the hot callers want: [`run_mono`] over an [`AnyNet`]
/// monomorphizes the whole per-cycle loop. Note the mesh and torus models
/// round `cfg.n` up to a near-square node count — size the workload from
/// [`NocSim::num_nodes`], not from `cfg.n`.
pub fn build_any(cfg: NocConfig) -> AnyNet {
    match cfg.kind {
        TopologyKind::Quarc => AnyNet::Quarc(QuarcNetwork::new(cfg)),
        TopologyKind::Spidergon => AnyNet::Spidergon(SpidergonNetwork::new(cfg)),
        TopologyKind::Mesh => AnyNet::Mesh(MeshNetwork::new(cfg)),
        TopologyKind::Torus => AnyNet::Torus(TorusNetwork::new(cfg)),
    }
}

/// Instantiate the simulator matching a configuration, type-erased.
///
/// The box is `Send` so whole simulations can be handed to worker threads
/// (none of the network models hold thread-local state). Kept as the API
/// boundary for callers that want `dyn NocSim`; the run protocol itself goes
/// through [`build_any`] + [`run_mono`].
pub fn build_network(cfg: NocConfig) -> Box<dyn NocSim + Send> {
    Box::new(build_any(cfg))
}

/// Why a sweep point could not be simulated.
///
/// There are no "unsupported" parameter combinations any more — every
/// topology carries every traffic class — so the only way to reject a point
/// is a structurally invalid network configuration, surfaced as a typed
/// error instead of a downstream panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PointError {
    /// The point's [`NocConfig`] failed validation.
    Config(ConfigError),
}

impl fmt::Display for PointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PointError::Config(e) => write!(f, "invalid point configuration: {e}"),
        }
    }
}

impl std::error::Error for PointError {}

impl From<ConfigError> for PointError {
    fn from(e: ConfigError) -> Self {
        PointError::Config(e)
    }
}

/// Parameters of one latency-vs-load curve.
#[derive(Debug, Clone, Copy)]
pub struct CurveSpec {
    /// Network configuration.
    pub noc: NocConfig,
    /// Message length in flits (the paper's `M`).
    pub msg_len: usize,
    /// Broadcast fraction (the paper's `β`).
    pub beta: f64,
    /// Workload seed.
    pub seed: u64,
}

/// One fully-specified simulation point: a [`CurveSpec`] pinned to a rate.
#[derive(Debug, Clone, Copy)]
pub struct PointSpec {
    /// Network configuration.
    pub noc: NocConfig,
    /// Message length in flits (the paper's `M`).
    pub msg_len: usize,
    /// Broadcast fraction (the paper's `β`).
    pub beta: f64,
    /// Workload seed.
    pub seed: u64,
    /// Offered load (messages/node/cycle).
    pub rate: f64,
}

impl CurveSpec {
    /// This curve's point at `rate`.
    pub fn at_rate(&self, rate: f64) -> PointSpec {
        PointSpec { noc: self.noc, msg_len: self.msg_len, beta: self.beta, seed: self.seed, rate }
    }
}

/// The outcome of one point: the run summary plus the measured latency
/// distributions, so replicated runs can pool histograms across seeds.
#[derive(Debug, Clone)]
pub struct PointOutcome {
    /// The run summary (what a figure plots).
    pub result: RunResult,
    /// Unicast latency distribution over the measurement window.
    pub unicast_hist: LatencyHistogram,
    /// Broadcast completion latency distribution.
    pub bcast_completion_hist: LatencyHistogram,
}

/// How one point's run protocol ended: cleanly, or cut short by the stall
/// watchdog ([`RunSpec::stall_window`]).
///
/// Campaign executors should treat `Stalled` as a quarantined result — the
/// partial outcome carries whatever was measured before the wedge plus the
/// watchdog's diagnostics, and must never enter the merge cache as if it
/// were a finished point.
#[derive(Debug, Clone)]
pub enum PointRunOutcome {
    /// The warmup/measure/drain protocol ran to completion.
    Finished(PointOutcome),
    /// The watchdog saw a full window with backlog and zero flit progress.
    Stalled {
        /// Cycle at which the stall was detected.
        cycle: Cycle,
        /// Occupancy snapshot for the stall report.
        diagnostics: StallDiagnostics,
        /// Summary of whatever completed before the wedge.
        partial: PointOutcome,
    },
    /// The cooperative wall-clock deadline passed to
    /// [`run_point_outcome_deadline`] expired mid-run. Campaign executors
    /// quarantine this as an over-budget failure; the partial outcome must
    /// never be cached.
    DeadlineExceeded {
        /// Cycle at which the deadline was noticed.
        cycle: Cycle,
        /// Summary of whatever completed before the cutoff.
        partial: PointOutcome,
    },
}

impl PointRunOutcome {
    /// Whether the run was cut short by the watchdog.
    pub fn is_stalled(&self) -> bool {
        matches!(self, PointRunOutcome::Stalled { .. })
    }

    /// The outcome, finished or partial.
    pub fn outcome(&self) -> &PointOutcome {
        match self {
            PointRunOutcome::Finished(o) => o,
            PointRunOutcome::Stalled { partial, .. } => partial,
            PointRunOutcome::DeadlineExceeded { partial, .. } => partial,
        }
    }

    /// The outcome, finished or partial, by value.
    pub fn into_outcome(self) -> PointOutcome {
        match self {
            PointRunOutcome::Finished(o) => o,
            PointRunOutcome::Stalled { partial, .. } => partial,
            PointRunOutcome::DeadlineExceeded { partial, .. } => partial,
        }
    }
}

/// Simulate one point: build the network, run the warmup/measure/drain
/// protocol, and return the summary plus latency distributions.
///
/// This is a pure function of `(point, run_spec)` — it seeds the workload
/// only from `point.seed` — which is what lets `quarc-campaign` run points on
/// any thread in any order and still produce bit-identical results.
///
/// Every topology (Quarc, Spidergon, mesh, torus) carries every traffic
/// class, so any `beta ∈ [0, 1]` is simulable; the only failure mode is a
/// structurally invalid configuration, returned as [`PointError`] instead of
/// panicking inside a network constructor.
///
/// A watchdog-stalled run (possible under fault plans that wedge the
/// network) collapses to its partial summary here; callers that must
/// distinguish a stall use [`run_point_outcome`].
pub fn run_point(point: &PointSpec, run_spec: &RunSpec) -> Result<PointOutcome, PointError> {
    run_point_outcome(point, run_spec).map(PointRunOutcome::into_outcome)
}

/// [`run_point`], but keeping the stall/finished distinction.
pub fn run_point_outcome(
    point: &PointSpec,
    run_spec: &RunSpec,
) -> Result<PointRunOutcome, PointError> {
    run_point_outcome_deadline(point, run_spec, None)
}

/// [`run_point_outcome`] with a cooperative wall-clock deadline, checked at
/// the stall watchdog's cadence — how a campaign's `--point-timeout` budget
/// reaches inside a replication instead of waiting for a batch boundary.
pub fn run_point_outcome_deadline(
    point: &PointSpec,
    run_spec: &RunSpec,
    deadline: Option<std::time::Instant>,
) -> Result<PointRunOutcome, PointError> {
    point.noc.validate()?;
    let mut net = build_any(point.noc);
    // Grid topologies round n up to a near-square; ask the network, not the
    // config.
    let n = net.num_nodes();
    let mut wl = Synthetic::new(
        n,
        SyntheticConfig::paper(point.rate, point.msg_len, point.beta, point.seed),
    );
    // Fully monomorphized inner loop: enum dispatch on the network, static
    // dispatch into the Synthetic workload.
    let outcome = run_mono_outcome_deadline(&mut net, &mut wl, run_spec, deadline);
    let m = net.metrics();
    let wrap = |result: RunResult| PointOutcome {
        result,
        unicast_hist: m.unicast_histogram().clone(),
        bcast_completion_hist: m.broadcast_completion_histogram().clone(),
    };
    Ok(match outcome {
        RunOutcome::Finished(result) => PointRunOutcome::Finished(wrap(result)),
        RunOutcome::Stalled { cycle, diagnostics, partial } => {
            PointRunOutcome::Stalled { cycle, diagnostics, partial: wrap(partial) }
        }
        RunOutcome::DeadlineExceeded { cycle, partial } => {
            PointRunOutcome::DeadlineExceeded { cycle, partial: wrap(partial) }
        }
    })
}

/// One measured curve point.
#[derive(Debug, Clone)]
pub struct CurvePoint {
    /// Offered load (messages/node/cycle).
    pub rate: f64,
    /// The full run summary.
    pub result: RunResult,
}

/// Measure the curve at each offered rate, stopping early once two
/// consecutive points saturate (the curve has gone vertical, as in the
/// paper's plots).
pub fn latency_curve(
    spec: &CurveSpec,
    rates: &[f64],
    run_spec: &RunSpec,
) -> Result<Vec<CurvePoint>, PointError> {
    let mut points = Vec::with_capacity(rates.len());
    let mut saturated_streak = 0;
    for &rate in rates {
        let outcome = run_point(&spec.at_rate(rate), run_spec)?;
        let is_sat = outcome.result.saturated;
        points.push(CurvePoint { rate, result: outcome.result });
        saturated_streak = if is_sat { saturated_streak + 1 } else { 0 };
        if saturated_streak >= 2 {
            break;
        }
    }
    Ok(points)
}

/// Render a curve as CSV (one row per point, run columns from
/// [`RunResult::csv_row`] plus the sweep parameters).
pub fn curve_csv(spec: &CurveSpec, points: &[CurvePoint]) -> String {
    let mut out = String::new();
    out.push_str("msg_len,beta,");
    out.push_str(RunResult::csv_header());
    out.push('\n');
    for p in points {
        out.push_str(&format!("{},{},{}\n", spec.msg_len, spec.beta, p.result.csv_row()));
    }
    out
}

/// Geometrically spaced rates between `lo` and `hi` (inclusive), the usual
/// x-axis for latency/load plots.
pub fn geometric_rates(lo: f64, hi: f64, steps: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo && steps >= 2);
    let ratio = (hi / lo).powf(1.0 / (steps - 1) as f64);
    (0..steps).map(|i| lo * ratio.powi(i as i32)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_rates_span_bounds() {
        let r = geometric_rates(0.001, 0.1, 5);
        assert_eq!(r.len(), 5);
        assert!((r[0] - 0.001).abs() < 1e-9);
        assert!((r[4] - 0.1).abs() < 1e-6);
        assert!(r.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn curve_stops_after_saturation() {
        let spec = CurveSpec { noc: NocConfig::quarc(8), msg_len: 8, beta: 0.0, seed: 1 };
        let run_spec = RunSpec { warmup: 200, measure: 1_500, drain: 1_500, ..Default::default() };
        // Include absurd rates; the sweep must cut off after two saturated
        // points rather than simulating them all.
        let rates = [0.005, 0.4, 0.5, 0.6, 0.7, 0.8];
        let points = latency_curve(&spec, &rates, &run_spec).unwrap();
        assert!(points.len() >= 2 && points.len() < rates.len(), "{}", points.len());
        assert!(!points[0].result.saturated);
    }

    #[test]
    fn csv_has_row_per_point() {
        let spec = CurveSpec { noc: NocConfig::quarc(8), msg_len: 4, beta: 0.0, seed: 2 };
        let run_spec = RunSpec { warmup: 100, measure: 800, drain: 800, ..Default::default() };
        let points = latency_curve(&spec, &[0.005, 0.01], &run_spec).unwrap();
        let csv = curve_csv(&spec, &points);
        assert_eq!(csv.lines().count(), 1 + points.len());
    }

    #[test]
    fn build_network_matches_kind() {
        assert_eq!(build_network(NocConfig::quarc(8)).kind(), TopologyKind::Quarc);
        assert_eq!(build_network(NocConfig::spidergon(8)).kind(), TopologyKind::Spidergon);
        assert_eq!(build_network(NocConfig::mesh(16)).kind(), TopologyKind::Mesh);
        assert_eq!(build_network(NocConfig::torus(16)).kind(), TopologyKind::Torus);
    }

    #[test]
    fn mesh_point_runs_broadcast_traffic() {
        // Mesh × β > 0 used to be filtered upstream (and panicked if a point
        // slipped through); the multicast tree makes it an ordinary point.
        let mut cfg = NocConfig::mesh(16);
        cfg.vcs = 1;
        let point = PointSpec { noc: cfg, msg_len: 8, beta: 0.05, seed: 5, rate: 0.01 };
        let run_spec = RunSpec { warmup: 200, measure: 2_000, drain: 4_000, ..Default::default() };
        let out = run_point(&point, &run_spec).unwrap();
        assert_eq!(out.result.kind, TopologyKind::Mesh);
        assert!(!out.result.saturated, "{:?}", out.result);
        assert!(out.result.unicast_samples > 50);
        assert!(out.result.bcast_samples > 0, "{:?}", out.result);
        assert_eq!(out.unicast_hist.count(), out.result.unicast_samples);
    }

    #[test]
    fn torus_point_runs_end_to_end() {
        let point =
            PointSpec { noc: NocConfig::torus(16), msg_len: 8, beta: 0.05, seed: 5, rate: 0.01 };
        let run_spec = RunSpec { warmup: 200, measure: 2_000, drain: 4_000, ..Default::default() };
        let out = run_point(&point, &run_spec).unwrap();
        assert_eq!(out.result.kind, TopologyKind::Torus);
        assert!(!out.result.saturated, "{:?}", out.result);
        assert!(out.result.unicast_samples > 50);
        assert!(out.result.bcast_samples > 0, "{:?}", out.result);
    }

    #[test]
    fn invalid_config_is_a_typed_error_not_a_panic() {
        let point =
            PointSpec { noc: NocConfig::quarc(18), msg_len: 8, beta: 0.0, seed: 1, rate: 0.01 };
        match run_point(&point, &RunSpec::quick()) {
            Err(PointError::Config(e)) => assert!(e.to_string().contains("18")),
            other => panic!("expected a config error, got {other:?}"),
        }
    }

    #[test]
    fn run_point_is_deterministic() {
        let point =
            PointSpec { noc: NocConfig::quarc(8), msg_len: 8, beta: 0.05, seed: 42, rate: 0.01 };
        let run_spec = RunSpec::quick();
        let a = run_point(&point, &run_spec).unwrap();
        let b = run_point(&point, &run_spec).unwrap();
        assert_eq!(a.result.unicast_mean, b.result.unicast_mean);
        assert_eq!(a.result.throughput, b.result.throughput);
        assert_eq!(a.unicast_hist.count(), b.unicast_hist.count());
        assert_eq!(a.unicast_hist.percentile(95.0), b.unicast_hist.percentile(95.0));
    }
}
