//! Load sweeps: the latency-vs-injection-rate curves of Figs. 9–11.

use crate::driver::{run, NocSim, RunResult, RunSpec};
use crate::quarc_net::QuarcNetwork;
use crate::spider_net::SpidergonNetwork;
use quarc_core::config::NocConfig;
use quarc_core::topology::TopologyKind;
use quarc_workloads::{Synthetic, SyntheticConfig};

/// Instantiate the simulator matching a configuration.
pub fn build_network(cfg: NocConfig) -> Box<dyn NocSim> {
    match cfg.kind {
        TopologyKind::Quarc => Box::new(QuarcNetwork::new(cfg)),
        TopologyKind::Spidergon => Box::new(SpidergonNetwork::new(cfg)),
        TopologyKind::Mesh => {
            unimplemented!("mesh latency simulation is provided by quarc_sim::mesh_net")
        }
    }
}

/// Parameters of one latency-vs-load curve.
#[derive(Debug, Clone, Copy)]
pub struct CurveSpec {
    /// Network configuration.
    pub noc: NocConfig,
    /// Message length in flits (the paper's `M`).
    pub msg_len: usize,
    /// Broadcast fraction (the paper's `β`).
    pub beta: f64,
    /// Workload seed.
    pub seed: u64,
}

/// One measured curve point.
#[derive(Debug, Clone)]
pub struct CurvePoint {
    /// Offered load (messages/node/cycle).
    pub rate: f64,
    /// The full run summary.
    pub result: RunResult,
}

/// Measure the curve at each offered rate, stopping early once two
/// consecutive points saturate (the curve has gone vertical, as in the
/// paper's plots).
pub fn latency_curve(spec: &CurveSpec, rates: &[f64], run_spec: &RunSpec) -> Vec<CurvePoint> {
    let mut points = Vec::with_capacity(rates.len());
    let mut saturated_streak = 0;
    for &rate in rates {
        let mut net = build_network(spec.noc);
        let mut wl = Synthetic::new(
            spec.noc.n,
            SyntheticConfig::paper(rate, spec.msg_len, spec.beta, spec.seed),
        );
        let result = run(net.as_mut(), &mut wl, run_spec);
        let is_sat = result.saturated;
        points.push(CurvePoint { rate, result });
        saturated_streak = if is_sat { saturated_streak + 1 } else { 0 };
        if saturated_streak >= 2 {
            break;
        }
    }
    points
}

/// Render a curve as CSV (one row per point, run columns from
/// [`RunResult::csv_row`] plus the sweep parameters).
pub fn curve_csv(spec: &CurveSpec, points: &[CurvePoint]) -> String {
    let mut out = String::new();
    out.push_str("msg_len,beta,");
    out.push_str(RunResult::csv_header());
    out.push('\n');
    for p in points {
        out.push_str(&format!("{},{},{}\n", spec.msg_len, spec.beta, p.result.csv_row()));
    }
    out
}

/// Geometrically spaced rates between `lo` and `hi` (inclusive), the usual
/// x-axis for latency/load plots.
pub fn geometric_rates(lo: f64, hi: f64, steps: usize) -> Vec<f64> {
    assert!(lo > 0.0 && hi > lo && steps >= 2);
    let ratio = (hi / lo).powf(1.0 / (steps - 1) as f64);
    (0..steps).map(|i| lo * ratio.powi(i as i32)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_rates_span_bounds() {
        let r = geometric_rates(0.001, 0.1, 5);
        assert_eq!(r.len(), 5);
        assert!((r[0] - 0.001).abs() < 1e-9);
        assert!((r[4] - 0.1).abs() < 1e-6);
        assert!(r.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn curve_stops_after_saturation() {
        let spec = CurveSpec {
            noc: NocConfig::quarc(8),
            msg_len: 8,
            beta: 0.0,
            seed: 1,
        };
        let run_spec = RunSpec { warmup: 200, measure: 1_500, drain: 1_500, ..Default::default() };
        // Include absurd rates; the sweep must cut off after two saturated
        // points rather than simulating them all.
        let rates = [0.005, 0.4, 0.5, 0.6, 0.7, 0.8];
        let points = latency_curve(&spec, &rates, &run_spec);
        assert!(points.len() >= 2 && points.len() < rates.len(), "{}", points.len());
        assert!(!points[0].result.saturated);
    }

    #[test]
    fn csv_has_row_per_point() {
        let spec = CurveSpec { noc: NocConfig::quarc(8), msg_len: 4, beta: 0.0, seed: 2 };
        let run_spec = RunSpec { warmup: 100, measure: 800, drain: 800, ..Default::default() };
        let points = latency_curve(&spec, &[0.005, 0.01], &run_spec);
        let csv = curve_csv(&spec, &points);
        assert_eq!(csv.lines().count(), 1 + points.len());
    }

    #[test]
    fn build_network_matches_kind() {
        assert_eq!(build_network(NocConfig::quarc(8)).kind(), TopologyKind::Quarc);
        assert_eq!(build_network(NocConfig::spidergon(8)).kind(), TopologyKind::Spidergon);
    }
}
