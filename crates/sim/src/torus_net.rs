//! A 2D-torus wormhole network — the second half of the paper's "next
//! objective" comparison (§4), alongside the mesh.
//!
//! Structure matches [`crate::mesh_net`] (one local injection queue, single
//! arbitrated ejection port, credit flow control) except that every link
//! wraps and therefore every row/column is a ring: packets carry the
//! per-dimension dateline VC class computed by
//! [`quarc_core::torus::TorusTopology::next_vc`], the same discipline that
//! keeps the Quarc rims deadlock-free.
//!
//! ## Collectives: the dimension-ordered multicast tree
//!
//! Broadcast and multicast use the same source-planned tree as the mesh
//! ([`TorusTopology::multicast_branches_into`]): the target set is
//! partitioned by destination column and shortest-way y direction, each
//! group becomes one path-based `Multicast` packet whose bitstring marks the
//! copy-taking nodes along the ordinary dimension-ordered route (branching
//! out of the x run at the turn node), and marked transit nodes
//! absorb-and-forward at the ingress multiplexer exactly as Quarc routers
//! clone (§2.5.3 semantics, bit 0 shifted per hop). Branch paths are
//! unicast routes, so the dateline VC argument for deadlock freedom carries
//! over unchanged.

use crate::arbiter::RoundRobin;
use crate::buffer::LaneBufs;
use crate::driver::NocSim;
use crate::link::{Link, TaggedFlit};
use crate::metrics::{grid_eject_site, grid_lane_site, Metrics};
use crate::packets::{grid_expand_into, IdAlloc};
use quarc_core::config::{NocConfig, MAX_VCS};
use quarc_core::flit::{Flit, PacketMeta, PacketTable, TrafficClass};
use quarc_core::ids::{NodeId, VcId};
use quarc_core::routing::advance_header;
use quarc_core::topology::{GridBranch, TopologyKind};
use quarc_core::torus::{TorusOut, TorusTopology};
use quarc_core::vc::INJECTION_VC;
use quarc_engine::{Clock, Cycle};
use quarc_workloads::{MessageRequest, Workload};
use std::collections::VecDeque;

/// Network ports in index order (matches `TorusOut::index()` 0..4).
const NET_OUT: [TorusOut; 4] =
    [TorusOut::XPlus, TorusOut::XMinus, TorusOut::YPlus, TorusOut::YMinus];
/// Ejection pseudo-output index.
const EJECT: usize = 4;

/// The input port a flit sent via `out` arrives on (the opposite side).
fn arrival_port(out: TorusOut) -> usize {
    match out {
        TorusOut::XPlus => TorusOut::XMinus.index(),
        TorusOut::XMinus => TorusOut::XPlus.index(),
        TorusOut::YPlus => TorusOut::YMinus.index(),
        TorusOut::YMinus => TorusOut::YPlus.index(),
        TorusOut::Eject => unreachable!(),
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    Net { port: usize, vc: usize },
    Local,
}

#[derive(Debug, Clone, Copy)]
struct HopPlan {
    /// Local PE takes a copy at the ingress multiplexer (marked multicast
    /// node in transit; the branch terminal delivers via [`EJECT`] instead).
    deliver: bool,
    /// `0..4` = link, [`EJECT`] = deliver-and-stop.
    out: usize,
    out_vc: VcId,
}

#[derive(Debug, Clone, Copy)]
struct PortReq {
    src: Src,
    plan: HopPlan,
    is_header: bool,
    is_tail: bool,
}

#[derive(Debug, Clone, Copy)]
struct Transfer {
    node: usize,
    req: PortReq,
}

#[derive(Debug)]
struct NodeState {
    inject_q: VecDeque<Flit>,
    inject_plan: Option<HopPlan>,
    /// Input buffers, flat over `port * vcs + vc`.
    in_buf: LaneBufs,
    in_route: [[Option<HopPlan>; MAX_VCS]; 4],
    out_owner: [[Option<Src>; MAX_VCS]; 4],
    eject_owner: Option<Src>,
    rr_in_vc: [RoundRobin; 4],
    rr_out: [RoundRobin; 5],
}

impl NodeState {
    fn new(vcs: usize, depth: usize) -> Self {
        NodeState {
            inject_q: VecDeque::new(),
            inject_plan: None,
            in_buf: LaneBufs::new(4 * vcs, depth),
            in_route: [[None; MAX_VCS]; 4],
            out_owner: [[None; MAX_VCS]; 4],
            eject_owner: None,
            rr_in_vc: Default::default(),
            rr_out: Default::default(),
        }
    }
}

/// The flit-level torus network simulator.
#[derive(Debug)]
pub struct TorusNetwork {
    topo: TorusTopology,
    cfg: NocConfig,
    clock: Clock,
    nodes: Vec<NodeState>,
    /// `node * 4 + out` (all links exist — the torus wraps).
    links: Vec<Link>,
    ids: IdAlloc,
    metrics: Metrics,
    /// Interned metadata of every in-flight packet (see [`PacketTable`]).
    packets: PacketTable,
    transfers: Vec<Transfer>,
    /// Scratch for workload polling, reused across every poll of the run.
    poll_buf: Vec<MessageRequest>,
    /// Scratch for the multicast branch planner, reused across messages.
    branch_buf: Vec<GridBranch>,
    /// Total link traversals (observability; the perf harness reads deltas).
    flit_hops: u64,
    /// Precomputed `(downstream node, arrival port)` per `node * 4 + out`.
    targets: Vec<(u32, u8)>,
    /// Sender-side credits per `(node * 4 + out) * vcs + vc` (exact mirror
    /// of downstream free space minus in-flight flits, as in `quarc_net`).
    credits: Vec<u32>,
    /// Link id feeding input `node * 4 + in_port` (inverse of `targets`).
    feeder: Vec<u32>,
    /// O(1) counter twins for `backlog()` / `quiesced()`.
    inject_backlog: usize,
    buffered_flits: u64,
    link_occupancy: u64,
}

impl TorusNetwork {
    /// Build a near-square torus of at least `cfg.n` nodes (use
    /// [`NocConfig::torus`]; validation enforces the 2-VC dateline minimum).
    pub fn new(cfg: NocConfig) -> Self {
        assert!(cfg.vcs >= 2, "torus rings need ≥ 2 VCs for the dateline scheme");
        assert_eq!(cfg.kind, TopologyKind::Torus, "config is not a torus network");
        cfg.validate().expect("invalid configuration");
        let topo = TorusTopology::square(cfg.n);
        let n = topo.num_nodes();
        let targets: Vec<(u32, u8)> = (0..n * 4)
            .map(|i| {
                let to = topo.link_target(NodeId::new(i / 4), NET_OUT[i % 4]).expect("torus link");
                (to.index() as u32, arrival_port(NET_OUT[i % 4]) as u8)
            })
            .collect();
        let mut feeder = vec![u32::MAX; n * 4];
        for (lid, &(to, tin)) in targets.iter().enumerate() {
            feeder[to as usize * 4 + tin as usize] = lid as u32;
        }
        assert!(feeder.iter().all(|&f| f != u32::MAX), "every input port has a feeder");
        TorusNetwork {
            topo,
            cfg,
            clock: Clock::new(),
            nodes: (0..n).map(|_| NodeState::new(cfg.vcs, cfg.buffer_depth)).collect(),
            links: (0..n * 4).map(|_| Link::new(cfg.link_latency)).collect(),
            ids: IdAlloc::new(),
            metrics: Metrics::new(),
            packets: PacketTable::new(),
            transfers: Vec::new(),
            poll_buf: Vec::new(),
            branch_buf: Vec::new(),
            flit_hops: 0,
            credits: vec![cfg.buffer_depth as u32; n * 4 * cfg.vcs],
            feeder,
            targets,
            inject_backlog: 0,
            buffered_flits: 0,
            link_occupancy: 0,
        }
    }

    /// The torus dimensions chosen for this node count.
    pub fn topology(&self) -> &TorusTopology {
        &self.topo
    }

    /// Resolve the per-hop plan for a header at `node`. `from_net` marks
    /// headers arriving on a network input: only those may clone (bit 0 of a
    /// freshly injected multicast header refers to the node one hop out, not
    /// to the source itself).
    fn plan_header(&self, node: usize, meta: &PacketMeta, cur_vc: VcId, from_net: bool) -> HopPlan {
        let cur = NodeId::new(node);
        match self.topo.route(cur, meta.dst) {
            TorusOut::Eject => HopPlan { deliver: false, out: EJECT, out_vc: INJECTION_VC },
            out => {
                // A packet turning into y (or injecting) starts fresh on that
                // dimension's dateline class; continuing in-dimension carries
                // its lane class forward.
                let out_vc = self.topo.next_vc(cur, out, cur_vc);
                HopPlan {
                    deliver: from_net
                        && meta.class == TrafficClass::Multicast
                        && meta.bitstring & 1 == 1,
                    out: out.index(),
                    out_vc,
                }
            }
        }
    }

    /// The VC class a flit arriving on `port`/`vc` holds for its *next* hop
    /// decision: staying in dimension keeps the lane class; turning resets
    /// (handled inside `plan_header` via `cur_vc = VC0` when the next hop is
    /// in the other dimension).
    fn arrival_class(&self, node: usize, port: usize, vc: usize, dst: NodeId) -> VcId {
        let cur = NodeId::new(node);
        let next = self.topo.route(cur, dst);
        let same_dim = matches!(
            (port, next),
            (0 | 1, TorusOut::XPlus | TorusOut::XMinus)
                | (2 | 3, TorusOut::YPlus | TorusOut::YMinus)
        );
        if same_dim {
            VcId(vc as u8)
        } else {
            INJECTION_VC
        }
    }

    fn downstream_free(&self, node: usize, out: usize, vc: VcId) -> usize {
        // One read of the sender-side credit counter.
        self.credits[(node * 4 + out) * self.cfg.vcs + vc.index()] as usize
    }

    fn feasible(&self, node: usize, plan: HopPlan, src: Src, is_header: bool) -> bool {
        let owner = if plan.out == EJECT {
            self.nodes[node].eject_owner
        } else {
            self.nodes[node].out_owner[plan.out][plan.out_vc.index()]
        };
        let own_ok = match owner {
            Some(o) => o == src && !is_header,
            None => is_header,
        };
        own_ok && (plan.out == EJECT || self.downstream_free(node, plan.out, plan.out_vc) > 0)
    }

    // Index loops couple several per-lane arrays; iterator forms obscure
    // the coupling in this golden-pinned hot path.
    #[allow(clippy::needless_range_loop)]
    fn gather_net_port(&mut self, node: usize, p: usize) -> Option<PortReq> {
        let vcs = self.cfg.vcs;
        // Fixed-size scratch: runs 4·n times per cycle, must not allocate.
        let mut feasible: [Option<PortReq>; MAX_VCS] = [None; MAX_VCS];
        for vc in 0..vcs {
            let Some(head) = self.nodes[node].in_buf.front(p * vcs + vc).copied() else {
                continue;
            };
            let plan = match self.nodes[node].in_route[p][vc] {
                Some(plan) => plan,
                None => {
                    assert!(head.is_header(), "wormhole violated");
                    let meta = self.packets.meta(head.packet);
                    let class = self.arrival_class(node, p, vc, meta.dst);
                    self.plan_header(node, meta, class, true)
                }
            };
            let src = Src::Net { port: p, vc };
            if self.feasible(node, plan, src, head.is_header()) {
                feasible[vc] = Some(PortReq {
                    src,
                    plan,
                    is_header: head.is_header(),
                    is_tail: head.is_tail(),
                });
            }
        }
        let pick = self.nodes[node].rr_in_vc[p].pick(vcs, |vc| feasible[vc].is_some())?;
        feasible[pick]
    }

    fn gather_local(&self, node: usize) -> Option<PortReq> {
        let head = self.nodes[node].inject_q.front()?;
        let plan = match self.nodes[node].inject_plan {
            Some(plan) => plan,
            None => {
                assert!(head.is_header(), "local queue must start with a header");
                self.plan_header(node, self.packets.meta(head.packet), INJECTION_VC, false)
            }
        };
        self.feasible(node, plan, Src::Local, head.is_header()).then_some(PortReq {
            src: Src::Local,
            plan,
            is_header: head.is_header(),
            is_tail: head.is_tail(),
        })
    }

    // Index loops couple several per-lane arrays; iterator forms obscure
    // the coupling in this golden-pinned hot path.
    #[allow(clippy::needless_range_loop)]
    fn gather_node(&mut self, node: usize, transfers: &mut Vec<Transfer>) {
        let mut reqs: [Option<PortReq>; 5] = [None; 5];
        for p in 0..4 {
            reqs[p] = self.gather_net_port(node, p);
        }
        reqs[4] = self.gather_local(node);
        for o in 0..5 {
            let winner = self.nodes[node].rr_out[o]
                .pick(5, |slot| matches!(reqs[slot], Some(r) if r.plan.out == o));
            if let Some(slot) = winner {
                let req = reqs[slot].take().expect("winner exists");
                transfers.push(Transfer { node, req });
            }
        }
    }

    fn commit(&mut self, t: Transfer) {
        let now = self.clock.now();
        let node = t.node;
        let flit = match t.req.src {
            Src::Net { port, vc } => {
                let vcs = self.cfg.vcs;
                let flit = self.nodes[node].in_buf.pop(port * vcs + vc).expect("planned flit");
                self.buffered_flits -= 1;
                // The freed slot becomes a credit at the upstream sender.
                self.credits[self.feeder[node * 4 + port] as usize * vcs + vc] += 1;
                if t.req.is_header {
                    self.nodes[node].in_route[port][vc] = Some(t.req.plan);
                }
                if t.req.is_tail {
                    self.nodes[node].in_route[port][vc] = None;
                }
                flit
            }
            Src::Local => {
                let flit = self.nodes[node].inject_q.pop_front().expect("planned flit");
                self.inject_backlog -= 1;
                if t.req.is_header {
                    self.nodes[node].inject_plan = Some(t.req.plan);
                }
                if t.req.is_tail {
                    self.nodes[node].inject_plan = None;
                }
                flit
            }
        };
        if t.req.plan.out == EJECT {
            if t.req.is_header {
                self.nodes[node].eject_owner = Some(t.req.src);
            }
            if t.req.is_tail {
                self.nodes[node].eject_owner = None;
            }
            // The single arbitrated ejection port is the delivery site: it
            // streams one packet at a time (eject_owner pins it).
            self.metrics.record_flit_delivery(
                now,
                NodeId::new(node),
                grid_eject_site(node),
                &flit,
                self.packets.meta(flit.packet),
            );
            if t.req.is_tail {
                // The packet has fully left the network: retire it.
                self.packets.release(flit.packet);
            }
        } else {
            // Ingress-mux multicast copy: the marked node absorbs while the
            // flit moves on (the input lane is the delivery site — it streams
            // one packet at a time, pinned by `in_route`).
            if t.req.plan.deliver {
                let Src::Net { port, vc } = t.req.src else {
                    unreachable!("local injections never clone")
                };
                self.metrics.record_flit_delivery(
                    now,
                    NodeId::new(node),
                    grid_lane_site(node, port, vc),
                    &flit,
                    self.packets.meta(flit.packet),
                );
            }
            let o = t.req.plan.out;
            let vc = t.req.plan.out_vc;
            if t.req.is_header {
                self.nodes[node].out_owner[o][vc.index()] = Some(t.req.src);
            }
            if t.req.is_tail {
                self.nodes[node].out_owner[o][vc.index()] = None;
            }
            // Routers shift multicast bitstrings as they forward headers, so
            // bit 0 always answers "does the next node take a copy?".
            if flit.is_header() && matches!(t.req.src, Src::Net { .. }) {
                advance_header(self.packets.meta_mut(flit.packet));
            }
            self.flit_hops += 1;
            self.link_occupancy += 1;
            self.credits[(node * 4 + o) * self.cfg.vcs + vc.index()] -= 1;
            self.links[node * 4 + o].send(TaggedFlit { flit, vc });
        }
    }

    /// Total flits queued at sources. O(1).
    pub fn backlog(&self) -> usize {
        self.inject_backlog
    }
}

impl NocSim for TorusNetwork {
    fn step(&mut self, workload: &mut dyn Workload) {
        let now = self.clock.now();
        let n = self.topo.num_nodes();
        let vcs = self.cfg.vcs;
        for lid in 0..n * 4 {
            if let Some(tf) = self.links[lid].step() {
                let (to, tin) = self.targets[lid];
                self.nodes[to as usize].in_buf.push(tin as usize * vcs + tf.vc.index(), tf.flit);
                self.link_occupancy -= 1;
                self.buffered_flits += 1;
            }
        }
        let mut reqs = std::mem::take(&mut self.poll_buf);
        let mut branches = std::mem::take(&mut self.branch_buf);
        for node in 0..n {
            reqs.clear();
            workload.poll_into(NodeId::new(node), now, &mut reqs);
            for req in reqs.drain(..) {
                // Collectives expand into the dimension-ordered tree: one
                // path-based multicast packet per (column, y direction).
                match req.class {
                    TrafficClass::Unicast => branches.clear(),
                    TrafficClass::Broadcast => self.topo.multicast_branches_into(
                        req.src,
                        (0..n).map(NodeId::new),
                        &mut branches,
                    ),
                    TrafficClass::Multicast => self.topo.multicast_branches_into(
                        req.src,
                        req.targets.iter().copied(),
                        &mut branches,
                    ),
                    other => panic!("applications do not inject {other} packets directly"),
                }
                let message = self.metrics.create_message(req.class, now);
                let (expected, flits) = grid_expand_into(
                    &req,
                    &branches,
                    message,
                    &mut self.ids,
                    now,
                    &mut self.packets,
                    &mut self.nodes[node].inject_q,
                );
                self.metrics.set_expected(message, expected);
                self.inject_backlog += flits;
            }
        }
        self.poll_buf = reqs;
        self.branch_buf = branches;
        let mut transfers = std::mem::take(&mut self.transfers);
        transfers.clear();
        for node in 0..n {
            self.gather_node(node, &mut transfers);
        }
        for t in transfers.drain(..) {
            self.commit(t);
        }
        self.transfers = transfers;
        self.clock.tick();
    }

    fn now(&self) -> Cycle {
        self.clock.now()
    }

    fn num_nodes(&self) -> usize {
        self.topo.num_nodes()
    }

    fn kind(&self) -> TopologyKind {
        TopologyKind::Torus
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    fn source_backlog(&self) -> usize {
        self.backlog()
    }

    fn flit_hops(&self) -> u64 {
        self.flit_hops
    }

    fn quiesced(&self) -> bool {
        // Counters only — O(1) per call (drain loops poll this every cycle).
        self.metrics.in_flight() == 0
            && self.inject_backlog == 0
            && self.link_occupancy == 0
            && self.buffered_flits == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarc_workloads::{MessageRequest, TraceRecord, TraceWorkload};

    #[test]
    fn wraparound_route_is_short() {
        // 0 → 3 on a 4×4 torus: one x− wrap hop instead of three x+ hops.
        let mut net = TorusNetwork::new(NocConfig::torus(16));
        let mut wl = TraceWorkload::new(
            16,
            vec![TraceRecord {
                cycle: 0,
                request: MessageRequest::unicast(NodeId(0), NodeId(3), 8),
            }],
        );
        for _ in 0..100 {
            net.step(&mut wl);
            if net.quiesced() {
                break;
            }
        }
        assert!(net.quiesced());
        let got = net.metrics().unicast_latency().mean();
        let ideal = 1.0 + 7.0 + 1.0; // 1 hop + (M−1) serialisation + injection
        assert!((got - ideal).abs() <= 1.0, "latency {got} vs {ideal}");
    }

    #[test]
    fn all_pairs_deliver() {
        let mut records = Vec::new();
        for s in 0..16u16 {
            for t in 0..16u16 {
                if s != t {
                    records.push(TraceRecord {
                        cycle: (s as u64) * 50,
                        request: MessageRequest::unicast(NodeId(s), NodeId(t), 4),
                    });
                }
            }
        }
        let count = records.len() as u64;
        let mut net = TorusNetwork::new(NocConfig::torus(16));
        let mut wl = TraceWorkload::new(16, records);
        for _ in 0..10_000 {
            net.step(&mut wl);
            if net.quiesced() && wl.remaining() == 0 {
                break;
            }
        }
        assert!(net.quiesced(), "torus failed to drain");
        assert_eq!(net.metrics().completed(TrafficClass::Unicast), count);
    }

    #[test]
    fn sustained_load_no_deadlock() {
        use quarc_workloads::{Synthetic, SyntheticConfig};
        let mut net = TorusNetwork::new(NocConfig::torus(16).with_buffer_depth(2));
        let mut wl = Synthetic::new(16, SyntheticConfig::paper(0.1, 8, 0.0, 5));
        for _ in 0..5_000 {
            net.step(&mut wl);
        }
        let before = net.metrics().flits_delivered();
        for _ in 0..2_000 {
            net.step(&mut wl);
        }
        assert!(net.metrics().flits_delivered() > before, "deadlock on the torus");
    }

    #[test]
    fn broadcast_reaches_all_nodes_exactly_once() {
        for n in [9usize, 16] {
            let mut net = TorusNetwork::new(NocConfig::torus(n));
            let mut wl = TraceWorkload::new(
                n,
                vec![TraceRecord { cycle: 0, request: MessageRequest::broadcast(NodeId(2), 4) }],
            );
            for _ in 0..1_000 {
                net.step(&mut wl);
                if net.quiesced() {
                    break;
                }
            }
            assert!(net.quiesced(), "n={n}");
            let m = net.metrics();
            assert_eq!(m.completed(TrafficClass::Broadcast), 1, "n={n}");
            assert_eq!(m.flits_delivered() as usize, (n - 1) * 4, "n={n}");
        }
    }

    #[test]
    fn multicast_uses_wrap_links_and_delivers_exactly_once() {
        // Targets on the far side of both datelines: the tree must take the
        // wrap shortcuts and still deliver one copy each, in order (metrics
        // enforce both).
        let mut net = TorusNetwork::new(NocConfig::torus(16));
        let targets = vec![NodeId(3), NodeId(12), NodeId(15), NodeId(10)];
        let mut wl = TraceWorkload::new(
            16,
            vec![TraceRecord {
                cycle: 0,
                request: MessageRequest::multicast(NodeId(0), targets.clone(), 5),
            }],
        );
        for _ in 0..500 {
            net.step(&mut wl);
            if net.quiesced() {
                break;
            }
        }
        assert!(net.quiesced());
        let m = net.metrics();
        assert_eq!(m.completed(TrafficClass::Multicast), 1);
        assert_eq!(m.flits_delivered(), 4 * 5);
    }

    #[test]
    fn sustained_broadcast_load_drains_on_wrap_rings() {
        use quarc_workloads::{Synthetic, SyntheticConfig};
        // β > 0 with tight buffers: the dateline VCs must keep the wrap
        // rings deadlock-free even with multicast clones in the mix.
        let mut net = TorusNetwork::new(NocConfig::torus(16).with_buffer_depth(2));
        let mut wl = Synthetic::new(16, SyntheticConfig::paper(0.02, 8, 0.1, 11));
        for _ in 0..4_000 {
            net.step(&mut wl);
        }
        let mut none = TraceWorkload::new(16, vec![]);
        for _ in 0..20_000 {
            net.step(&mut none);
            if net.quiesced() {
                break;
            }
        }
        assert!(net.quiesced(), "torus failed to drain under β > 0");
        let m = net.metrics();
        assert_eq!(m.created(TrafficClass::Broadcast), m.completed(TrafficClass::Broadcast));
        assert!(m.created(TrafficClass::Broadcast) > 10);
    }

    #[test]
    fn torus_beats_mesh_on_mean_latency() {
        use crate::mesh_net::MeshNetwork;
        use quarc_workloads::{Synthetic, SyntheticConfig};
        let spec = crate::driver::RunSpec {
            warmup: 1_000,
            measure: 8_000,
            drain: 12_000,
            ..Default::default()
        };
        let mut torus = TorusNetwork::new(NocConfig::torus(16));
        let mut wl = Synthetic::new(16, SyntheticConfig::paper(0.02, 8, 0.0, 6));
        let rt = crate::driver::run(&mut torus, &mut wl, &spec);
        let mut mesh = MeshNetwork::new(NocConfig::mesh(16));
        let mut wl = Synthetic::new(16, SyntheticConfig::paper(0.02, 8, 0.0, 6));
        let rm = crate::driver::run(&mut mesh, &mut wl, &spec);
        assert!(
            rt.unicast_mean < rm.unicast_mean,
            "torus {:.1} should beat mesh {:.1} (shorter mean distance)",
            rt.unicast_mean,
            rm.unicast_mean
        );
    }
}
