//! A 2D-torus wormhole network — the second half of the paper's "next
//! objective" comparison (§4), alongside the mesh.
//!
//! Structure matches [`crate::mesh_net`] (one local injection queue, single
//! arbitrated ejection port, credit flow control) except that every link
//! wraps and therefore every row/column is a ring: packets carry the
//! per-dimension dateline VC class computed by
//! [`quarc_core::torus::TorusTopology::next_vc`], the same discipline that
//! keeps the Quarc rims deadlock-free.
//!
//! ## Collectives: the dimension-ordered multicast tree
//!
//! Broadcast and multicast use the same source-planned tree as the mesh
//! ([`TorusTopology::multicast_branches_into`]): the target set is
//! partitioned by destination column and shortest-way y direction, each
//! group becomes one path-based `Multicast` packet whose bitstring marks the
//! copy-taking nodes along the ordinary dimension-ordered route (branching
//! out of the x run at the turn node), and marked transit nodes
//! absorb-and-forward at the ingress multiplexer exactly as Quarc routers
//! clone (§2.5.3 semantics, bit 0 shifted per hop). Branch paths are
//! unicast routes, so the dateline VC argument for deadlock freedom carries
//! over unchanged.
//!
//! State layout and per-cycle scheduling follow `quarc_net`: network-owned
//! structure-of-arrays slabs and active-set worklists for links, routers and
//! sources (see `crates/sim/HOTPATH.md`).

use crate::arbiter::{ArbPolicy, RoundRobinBank};
use crate::buffer::LaneBufs;
use crate::driver::{NocSim, StallDiagnostics};
use crate::fault::FaultState;
use crate::link::{LinkBank, TaggedFlit};
use crate::metrics::{grid_eject_site, grid_lane_site, Metrics};
use crate::packets::{ack_meta, grid_expand_into, IdAlloc, PacketQueue};
use crate::probe::{CounterSample, FlitEventKind, Phase, SimProbe};
use crate::recovery::{DataDelivery, RecoveryAction, RecoveryState};
use quarc_core::config::{NocConfig, MAX_VCS};
use quarc_core::flit::{PacketMeta, PacketTable, TrafficClass};
use quarc_core::ids::{NodeId, VcId};
use quarc_core::topology::{GridBranch, TopologyKind};
use quarc_core::torus::{TorusOut, TorusTopology};
use quarc_core::vc::INJECTION_VC;
use quarc_engine::{Clock, Cycle};
use quarc_workloads::{MessageRequest, Workload};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Network ports in index order (matches `TorusOut::index()` 0..4).
const NET_OUT: [TorusOut; 4] =
    [TorusOut::XPlus, TorusOut::XMinus, TorusOut::YPlus, TorusOut::YMinus];
/// Ejection pseudo-output index.
const EJECT: usize = 4;

/// The input port a flit sent via `out` arrives on (the opposite side).
fn arrival_port(out: TorusOut) -> usize {
    match out {
        TorusOut::XPlus => TorusOut::XMinus.index(),
        TorusOut::XMinus => TorusOut::XPlus.index(),
        TorusOut::YPlus => TorusOut::YMinus.index(),
        TorusOut::YMinus => TorusOut::YPlus.index(),
        TorusOut::Eject => unreachable!(),
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Src {
    Net { port: usize, vc: usize },
    Local,
}

#[derive(Debug, Clone, Copy)]
struct HopPlan {
    /// Local PE takes a copy at the ingress multiplexer (marked multicast
    /// node in transit; the branch terminal delivers via [`EJECT`] instead).
    deliver: bool,
    /// `0..4` = link, [`EJECT`] = deliver-and-stop.
    out: usize,
    out_vc: VcId,
    /// The forward was suppressed by a fault: drain the packet's flits
    /// without transmitting (the local copy, if any, still delivers). Set
    /// only at header-plan time.
    dropped: bool,
    /// The delivery at *this* node (ingress copy or ejection) duplicates an
    /// already-served receiver (recovery only): drain it without recording,
    /// but still re-ack the tail. Decided at the header's commit, cached
    /// here for the body.
    dup: bool,
}

#[derive(Debug, Clone, Copy)]
struct PortReq {
    src: Src,
    plan: HopPlan,
    is_header: bool,
    is_tail: bool,
}

#[derive(Debug, Clone, Copy)]
struct Transfer {
    node: usize,
    req: PortReq,
}

/// The flit-level torus network simulator. Per-router state is
/// structure-of-arrays (flat `node * ports + port` slabs), stepped over
/// active-set worklists exactly as in [`crate::quarc_net`].
#[derive(Debug)]
pub struct TorusNetwork {
    topo: TorusTopology,
    cfg: NocConfig,
    clock: Clock,
    /// The single local injection queue per node, holding whole packets
    /// (flits materialise on pop).
    inject_q: Box<[PacketQueue]>,
    /// Plan of the packet currently streaming from each local queue.
    inject_plan: Box<[Option<HopPlan>]>,
    /// Input buffers, one bank; lane `(node * 4 + port) * vcs + vc`.
    in_buf: LaneBufs,
    /// Route state per input lane, set by the header.
    in_route: Box<[Option<HopPlan>]>,
    /// Wormhole ownership per output lane `(node * 4 + out) * vcs + vc`.
    out_owner: Box<[Option<Src>]>,
    /// Ejection-port ownership per node.
    eject_owner: Box<[Option<Src>]>,
    /// VC arbiter per network input port (`node * 4 + port`).
    rr_in_vc: RoundRobinBank,
    /// Grant arbiter per output (`node * 5 + out`; 4 links + eject).
    rr_out: RoundRobinBank,
    /// `node * 4 + out` (all links exist — the torus wraps).
    links: LinkBank,
    ids: IdAlloc,
    metrics: Metrics,
    /// Interned metadata of every in-flight packet (see [`PacketTable`]).
    packets: PacketTable,
    transfers: Vec<Transfer>,
    /// Scratch for workload polling, reused across every poll of the run.
    poll_buf: Vec<MessageRequest>,
    /// Scratch for the multicast branch planner, reused across messages.
    branch_buf: Vec<GridBranch>,
    /// Total link traversals (observability; the perf harness reads deltas).
    flit_hops: u64,
    /// Precomputed `(downstream node, arrival port)` per `node * 4 + out`.
    targets: Vec<(u32, u8)>,
    /// Sender-side credits per `(node * 4 + out) * vcs + vc` (exact mirror
    /// of downstream free space minus in-flight flits, as in `quarc_net`).
    credits: Vec<u32>,
    /// Link id feeding input `node * 4 + in_port` (inverse of `targets`).
    feeder: Vec<u32>,
    /// Active-set state (see `quarc_net` for the invariants).
    node_active: Vec<bool>,
    active_nodes: Vec<u32>,
    node_worklist: Vec<u32>,
    link_live: Vec<bool>,
    live_links: Vec<u32>,
    poll_heap: BinaryHeap<Reverse<(Cycle, u32)>>,
    full_scan: bool,
    /// O(1) counter twins for `backlog()` / `quiesced()`.
    inject_backlog: usize,
    buffered_flits: u64,
    link_occupancy: u64,
    /// Injected fault schedule (all-healthy when the plan is empty).
    fault: FaultState,
    /// End-to-end ack/timeout/retransmit engine from
    /// [`NocConfig::recovery`]. Disabled policies cost one predictable
    /// branch per hook.
    recovery: RecoveryState,
    /// Scratch for retry-target extraction, reused across pump calls.
    retry_targets: Vec<NodeId>,
    /// Instrumentation (off by default; observe, never mutate).
    probe: SimProbe,
}

impl TorusNetwork {
    /// Build a near-square torus of at least `cfg.n` nodes (use
    /// [`NocConfig::torus`]; validation enforces the 2-VC dateline minimum).
    pub fn new(cfg: NocConfig) -> Self {
        assert!(cfg.vcs >= 2, "torus rings need ≥ 2 VCs for the dateline scheme");
        assert_eq!(cfg.kind, TopologyKind::Torus, "config is not a torus network");
        cfg.validate().expect("invalid configuration");
        let topo = TorusTopology::square(cfg.n);
        let n = topo.num_nodes();
        let targets: Vec<(u32, u8)> = (0..n * 4)
            .map(|i| {
                let to = topo.link_target(NodeId::new(i / 4), NET_OUT[i % 4]).expect("torus link");
                (to.index() as u32, arrival_port(NET_OUT[i % 4]) as u8)
            })
            .collect();
        let mut feeder = vec![u32::MAX; n * 4];
        for (lid, &(to, tin)) in targets.iter().enumerate() {
            feeder[to as usize * 4 + tin as usize] = lid as u32;
        }
        assert!(feeder.iter().all(|&f| f != u32::MAX), "every input port has a feeder");
        TorusNetwork {
            topo,
            cfg,
            clock: Clock::new(),
            inject_q: (0..n).map(|_| PacketQueue::new()).collect(),
            inject_plan: vec![None; n].into_boxed_slice(),
            in_buf: LaneBufs::new(n * 4 * cfg.vcs, cfg.buffer_depth),
            in_route: vec![None; n * 4 * cfg.vcs].into_boxed_slice(),
            out_owner: vec![None; n * 4 * cfg.vcs].into_boxed_slice(),
            eject_owner: vec![None; n].into_boxed_slice(),
            rr_in_vc: RoundRobinBank::new(n * 4, ArbPolicy::RoundRobin),
            rr_out: RoundRobinBank::new(n * 5, ArbPolicy::RoundRobin),
            links: LinkBank::new(n * 4, cfg.link_latency),
            ids: IdAlloc::new(),
            metrics: Metrics::new(),
            // Sized so the longest dimension-ordered branch's bitstring fits;
            // small networks stay inline and the slab never allocates.
            packets: PacketTable::with_bit_capacity(topo.diameter() + 1),
            transfers: Vec::new(),
            poll_buf: Vec::new(),
            branch_buf: Vec::new(),
            flit_hops: 0,
            credits: vec![cfg.buffer_depth as u32; n * 4 * cfg.vcs],
            feeder,
            targets,
            node_active: vec![true; n],
            active_nodes: (0..n as u32).collect(),
            node_worklist: Vec::new(),
            link_live: vec![false; n * 4],
            live_links: Vec::new(),
            poll_heap: (0..n as u32).map(|node| Reverse((0, node))).collect(),
            full_scan: false,
            inject_backlog: 0,
            buffered_flits: 0,
            link_occupancy: 0,
            fault: FaultState::new(&cfg.fault, n, n * 4, |lid| lid / 4, |_| true),
            recovery: RecoveryState::new(cfg.recovery, n),
            retry_targets: Vec::new(),
            probe: SimProbe::new(),
        }
    }

    /// The torus dimensions chosen for this node count.
    pub fn topology(&self) -> &TorusTopology {
        &self.topo
    }

    /// Test oracle: scan everything every cycle (see
    /// `QuarcNetwork::set_full_scan`). Call before the first `step`.
    pub fn set_full_scan(&mut self, on: bool) {
        assert_eq!(self.clock.now(), 0, "full-scan mode is a construction-time choice");
        self.full_scan = on;
    }

    #[inline]
    fn mark_node(&mut self, node: usize) {
        if !self.node_active[node] {
            self.node_active[node] = true;
            self.active_nodes.push(node as u32);
        }
    }

    /// Resolve the per-hop plan for a header at `node`. `from_net` marks
    /// headers arriving on a network input: only those may clone (bit 0 of a
    /// freshly injected multicast header refers to the node one hop out, not
    /// to the source itself).
    /// The fault drop decision is made here, once per packet per hop: a
    /// forward onto a dead (or hash-selected lossy) link becomes a drop plan
    /// the whole wormhole then follows. Ejection uses no link and is never
    /// dropped, and a marked transit node's ingress copy still delivers.
    fn plan_header(&self, node: usize, meta: &PacketMeta, cur_vc: VcId, from_net: bool) -> HopPlan {
        let cur = NodeId::new(node);
        match self.topo.route(cur, meta.dst) {
            TorusOut::Eject => HopPlan {
                deliver: false,
                out: EJECT,
                out_vc: INJECTION_VC,
                dropped: false,
                dup: false,
            },
            out => {
                // A packet turning into y (or injecting) starts fresh on that
                // dimension's dateline class; continuing in-dimension carries
                // its lane class forward.
                let out_vc = self.topo.next_vc(cur, out, cur_vc);
                HopPlan {
                    deliver: from_net
                        && meta.class == TrafficClass::Multicast
                        && meta.bitstring.bit0(),
                    out: out.index(),
                    out_vc,
                    dropped: self.fault.any()
                        && self.fault.drops_packet(
                            node * 4 + out.index(),
                            meta.packet,
                            self.clock.now(),
                        ),
                    dup: false,
                }
            }
        }
    }

    /// The VC class a flit arriving on `port`/`vc` holds for its *next* hop
    /// decision: staying in dimension keeps the lane class; turning resets
    /// (handled inside `plan_header` via `cur_vc = VC0` when the next hop is
    /// in the other dimension).
    fn arrival_class(&self, node: usize, port: usize, vc: usize, dst: NodeId) -> VcId {
        let cur = NodeId::new(node);
        let next = self.topo.route(cur, dst);
        let same_dim = matches!(
            (port, next),
            (0 | 1, TorusOut::XPlus | TorusOut::XMinus)
                | (2 | 3, TorusOut::YPlus | TorusOut::YMinus)
        );
        if same_dim {
            VcId(vc as u8)
        } else {
            INJECTION_VC
        }
    }

    fn downstream_free(&self, node: usize, out: usize, vc: VcId) -> usize {
        if self.fault.any() && self.fault.link_blocked(node * 4 + out, self.clock.now()) {
            return 0;
        }
        // One read of the sender-side credit counter.
        self.credits[(node * 4 + out) * self.cfg.vcs + vc.index()] as usize
    }

    fn ownership_allows(&self, node: usize, plan: HopPlan, src: Src, is_header: bool) -> bool {
        let owner = if plan.out == EJECT {
            self.eject_owner[node]
        } else {
            self.out_owner[(node * 4 + plan.out) * self.cfg.vcs + plan.out_vc.index()]
        };
        match owner {
            Some(o) => o == src && !is_header,
            None => is_header,
        }
    }

    fn feasible(&self, node: usize, plan: HopPlan, src: Src, is_header: bool) -> bool {
        // Drops consume the flit without claiming any output resource.
        plan.dropped
            || (self.ownership_allows(node, plan, src, is_header)
                && (plan.out == EJECT || self.downstream_free(node, plan.out, plan.out_vc) > 0))
    }

    // Index loops couple several per-lane arrays; iterator forms obscure
    // the coupling in this golden-pinned hot path.
    #[allow(clippy::needless_range_loop)]
    fn gather_net_port(&mut self, node: usize, p: usize) -> Option<PortReq> {
        let vcs = self.cfg.vcs;
        let base = (node * 4 + p) * vcs;
        // Fixed-size scratch: runs per active router per cycle, must not
        // allocate.
        let mut feasible: [Option<PortReq>; MAX_VCS] = [None; MAX_VCS];
        for vc in 0..vcs {
            let Some(head) = self.in_buf.front(base + vc).copied() else {
                continue;
            };
            let plan = match self.in_route[base + vc] {
                Some(plan) => plan,
                None => {
                    assert!(head.is_header(), "wormhole violated");
                    let meta = self.packets.meta(head.packet);
                    let class = self.arrival_class(node, p, vc, meta.dst);
                    self.plan_header(node, meta, class, true)
                }
            };
            let src = Src::Net { port: p, vc };
            // Inlined `feasible` so the credit failure is distinguishable —
            // probe-only: a lane head blocked purely on credits is a credit
            // stall. Evaluation order matches `feasible` exactly.
            let ok = plan.dropped
                || (self.ownership_allows(node, plan, src, head.is_header())
                    && (plan.out == EJECT || {
                        let free = self.downstream_free(node, plan.out, plan.out_vc) > 0;
                        if !free && self.probe.counters_on() {
                            self.probe.note_credit_stall();
                        }
                        free
                    }));
            if ok {
                feasible[vc] = Some(PortReq {
                    src,
                    plan,
                    is_header: head.is_header(),
                    is_tail: head.is_tail(),
                });
            }
        }
        let pick = self.rr_in_vc.pick(node * 4 + p, vcs, |vc| feasible[vc].is_some())?;
        feasible[pick]
    }

    fn gather_local(&self, node: usize) -> Option<PortReq> {
        let head = self.inject_q[node].front()?;
        let plan = match self.inject_plan[node] {
            Some(plan) => plan,
            None => {
                assert!(head.is_header(), "local queue must start with a header");
                self.plan_header(node, self.packets.meta(head.packet), INJECTION_VC, false)
            }
        };
        self.feasible(node, plan, Src::Local, head.is_header()).then_some(PortReq {
            src: Src::Local,
            plan,
            is_header: head.is_header(),
            is_tail: head.is_tail(),
        })
    }

    // Index loops couple several per-lane arrays; iterator forms obscure
    // the coupling in this golden-pinned hot path.
    #[allow(clippy::needless_range_loop)]
    fn gather_node(&mut self, node: usize, transfers: &mut Vec<Transfer>) {
        // A frozen router grants nothing: returning before any arbiter is
        // consulted keeps full-scan and active-set arbiter state identical.
        if self.fault.node_frozen(node, self.clock.now()) {
            return;
        }
        let mut reqs: [Option<PortReq>; 5] = [None; 5];
        for p in 0..4 {
            reqs[p] = self.gather_net_port(node, p);
        }
        reqs[4] = self.gather_local(node);
        // Drop plans claim no output: commit them directly instead of
        // letting them contend in (and possibly lose) output arbitration.
        for slot in 0..5 {
            if let Some(r) = reqs[slot] {
                if r.plan.dropped {
                    reqs[slot] = None;
                    transfers.push(Transfer { node, req: r });
                }
            }
        }
        for o in 0..5 {
            let winner = self.rr_out.pick(
                node * 5 + o,
                5,
                |slot| matches!(reqs[slot], Some(r) if r.plan.out == o),
            );
            if let Some(slot) = winner {
                let req = reqs[slot].take().expect("winner exists");
                transfers.push(Transfer { node, req });
            }
        }
    }

    fn commit(&mut self, t: Transfer) {
        let now = self.clock.now();
        let node = t.node;
        let vcs = self.cfg.vcs;
        // Any commit mutates this router's lane/ownership/credit state.
        self.mark_node(node);
        let flit = match t.req.src {
            Src::Net { port, vc } => {
                let lane = (node * 4 + port) * vcs + vc;
                let flit = self.in_buf.pop(lane).expect("planned flit");
                self.buffered_flits -= 1;
                // The freed slot becomes a credit at the upstream sender.
                let feeder = self.feeder[node * 4 + port] as usize;
                self.credits[feeder * vcs + vc] += 1;
                self.mark_node(feeder / 4);
                if t.req.is_header {
                    self.in_route[lane] = Some(t.req.plan);
                }
                if t.req.is_tail {
                    self.in_route[lane] = None;
                }
                flit
            }
            Src::Local => {
                let flit = self.inject_q[node].pop().expect("planned flit");
                self.inject_backlog -= 1;
                if t.req.is_header {
                    self.inject_plan[node] = Some(t.req.plan);
                }
                if t.req.is_tail {
                    self.inject_plan[node] = None;
                }
                flit
            }
        };
        if t.req.plan.out == EJECT {
            if t.req.is_header {
                self.eject_owner[node] = Some(t.req.src);
            }
            if t.req.is_tail {
                self.eject_owner[node] = None;
            }
            let meta = *self.packets.meta(flit.packet);
            if meta.class == TrafficClass::Ack {
                // ACK absorbed at the data source: a control packet, never a
                // tracked delivery (the data message may already be completed
                // and its slot recycled). First ack per receiver closes its
                // pending bit and samples the round trip; duplicates drain.
                let fresh = self.recovery.on_ack(meta.message, meta.src, now);
                if let Some(created_at) = fresh {
                    self.metrics.record_ack_delivery(now, created_at);
                }
                if self.probe.trace_on() {
                    self.probe.trace(
                        FlitEventKind::Ack,
                        now,
                        meta.message.0,
                        meta.class,
                        meta.src.index() as u32,
                        fresh.is_some() as u32,
                    );
                }
                if t.req.is_tail {
                    self.packets.release(flit.packet);
                }
            } else {
                let dup = self.data_dup(&t, &meta, node);
                if dup {
                    self.metrics.note_dup_flit();
                } else {
                    // The single arbitrated ejection port is the delivery
                    // site: it streams one packet at a time (eject_owner
                    // pins it).
                    self.metrics.record_flit_delivery(
                        now,
                        NodeId::new(node),
                        grid_eject_site(node),
                        &flit,
                        &meta,
                    );
                }
                if t.req.is_tail {
                    if !dup && self.probe.trace_on() {
                        let (msg, class) = (meta.message.0, meta.class);
                        self.probe.trace(FlitEventKind::Deliver, now, msg, class, node as u32, 0);
                    }
                    // Every tail reception acks — fresh or duplicate: a
                    // duplicate's re-ack may be the one that finally closes
                    // the window when the original ack was itself dropped.
                    if self.recovery.enabled() {
                        self.emit_ack(node, &meta, now);
                    }
                    // The packet has fully left the network: retire it.
                    self.packets.release(flit.packet);
                }
            }
        } else {
            // Ingress-mux multicast copy: the marked node absorbs while the
            // flit moves on (the input lane is the delivery site — it streams
            // one packet at a time, pinned by `in_route`).
            if t.req.plan.deliver {
                let Src::Net { port, vc } = t.req.src else {
                    unreachable!("local injections never clone")
                };
                let meta = *self.packets.meta(flit.packet);
                let dup = self.data_dup(&t, &meta, node);
                if dup {
                    self.metrics.note_dup_flit();
                } else {
                    self.metrics.record_flit_delivery(
                        now,
                        NodeId::new(node),
                        grid_lane_site(node, port, vc),
                        &flit,
                        &meta,
                    );
                    if self.probe.trace_on() {
                        let (msg, class) = (meta.message.0, meta.class);
                        if flit.is_header() {
                            // Ingress-mux clone: the local copy and the
                            // forwarded flit move in the same cycle.
                            let o = t.req.plan.out as u32;
                            self.probe.trace(FlitEventKind::Clone, now, msg, class, node as u32, o);
                        }
                        if flit.is_tail() {
                            self.probe.trace(
                                FlitEventKind::Deliver,
                                now,
                                msg,
                                class,
                                node as u32,
                                0,
                            );
                        }
                    }
                }
                // Every tail reception acks — fresh or duplicate (see the
                // ejection branch).
                if self.recovery.enabled() && flit.is_tail() {
                    self.emit_ack(node, &meta, now);
                }
            }
            if t.req.plan.dropped {
                // Fault drop: every flit is accounted; the header writes off
                // the receivers the suppressed forward would still have
                // served (the ingress copy above, if any, was not among
                // them), so the message ledger balances and drains terminate.
                // Dropped ACKs are pure control loss (the data source's
                // timeout recovers them), and with recovery on every data
                // loss is deferred to the retransmit window — the exhaust
                // pump is the sole write-off site.
                let meta = *self.packets.meta(flit.packet);
                self.metrics.record_flit_drop(meta.class);
                if t.req.is_header && meta.class != TrafficClass::Ack {
                    let lost = if self.recovery.enabled() {
                        0
                    } else {
                        self.receivers_beyond(node, t.req.src, &meta)
                    };
                    self.metrics.record_lost_receivers(meta.message, lost);
                    if self.probe.trace_on() {
                        self.probe.trace(
                            FlitEventKind::Drop,
                            now,
                            meta.message.0,
                            meta.class,
                            node as u32,
                            lost as u32,
                        );
                    }
                }
                if t.req.is_tail {
                    // No flit of this packet exists anywhere any more.
                    self.packets.release(flit.packet);
                }
                return;
            }
            let o = t.req.plan.out;
            let vc = t.req.plan.out_vc;
            let lid = node * 4 + o;
            if t.req.is_header {
                self.out_owner[lid * vcs + vc.index()] = Some(t.req.src);
            }
            if t.req.is_tail {
                self.out_owner[lid * vcs + vc.index()] = None;
            }
            // Routers shift multicast bitstrings as they forward headers, so
            // bit 0 always answers "does the next node take a copy?".
            if flit.is_header() && matches!(t.req.src, Src::Net { .. }) {
                self.packets.advance_header(flit.packet);
            }
            if flit.is_header() && self.probe.trace_on() {
                let m = self.packets.meta(flit.packet);
                let (msg, class) = (m.message.0, m.class);
                self.probe.trace(FlitEventKind::Hop, now, msg, class, node as u32, o as u32);
            }
            self.flit_hops += 1;
            self.link_occupancy += 1;
            self.credits[lid * vcs + vc.index()] -= 1;
            let idx = self.links.slot_index(now);
            self.links.send(lid, idx, TaggedFlit { flit, vc });
            if !self.link_live[lid] {
                self.link_live[lid] = true;
                self.live_links.push(lid as u32);
            }
        }
    }

    /// Commit-time duplicate verdict for the data delivery at `node`
    /// (gather is read-only arbitration). The header consults the recovery
    /// window once; the verdict rides the cached plan so the worm's body
    /// and tail agree with it.
    fn data_dup(&mut self, t: &Transfer, meta: &PacketMeta, node: usize) -> bool {
        if !self.recovery.enabled() {
            return false;
        }
        if !t.req.is_header {
            return t.req.plan.dup;
        }
        match self.recovery.on_data_header(meta.message, NodeId::new(node)) {
            DataDelivery::Fresh { recovered } => {
                if recovered {
                    self.metrics.note_recovered_receiver();
                }
                false
            }
            DataDelivery::Dup => {
                if let Src::Net { port, vc } = t.req.src {
                    let lane = (node * 4 + port) * self.cfg.vcs + vc;
                    if let Some(plan) = self.in_route[lane].as_mut() {
                        plan.dup = true;
                    }
                } else if let Some(plan) = self.inject_plan[node].as_mut() {
                    plan.dup = true;
                }
                true
            }
        }
    }

    /// Enqueue the single-flit ACK a receiver emits on absorbing a data
    /// tail: a control unicast back to the data source, injected through
    /// the single local port like any application packet.
    fn emit_ack(&mut self, node: usize, meta: &PacketMeta, now: Cycle) {
        let packet = self.ids.packet();
        let pm = ack_meta(meta.message, NodeId::new(node), meta.src, packet, now);
        let pref = self.packets.insert(pm);
        let flits = self.inject_q[node].push_packet(pref, 1);
        self.inject_backlog += flits;
        self.mark_node(node);
    }

    /// Drain the recovery timer heap: re-inject each due message to its
    /// unacked receiver subset, or write off the never-served receivers of
    /// a retry-exhausted window. Runs in step phase (b) right after the
    /// workload polls, so retransmissions enter the same injection path as
    /// fresh traffic in a deterministic order.
    fn pump_recovery(&mut self, now: Cycle) {
        let mut targets = std::mem::take(&mut self.retry_targets);
        let mut branches = std::mem::take(&mut self.branch_buf);
        while let Some(action) = self.recovery.pop_action(now, &mut targets) {
            match action {
                RecoveryAction::Retry { message, src, class, len, attempt: _ } => {
                    // Re-expand under the *original* message id (no
                    // create_message / set_expected: the ledger entry is the
                    // original's) narrowed to the unacked subset; collective
                    // classes retransmit as a multicast over that subset,
                    // riding a freshly planned dimension-ordered tree.
                    let req = if class == TrafficClass::Unicast {
                        branches.clear();
                        MessageRequest::unicast(src, targets[0], len as usize)
                    } else {
                        self.topo.multicast_branches_into(
                            src,
                            targets.iter().copied(),
                            self.packets.bits_mut(),
                            &mut branches,
                        );
                        MessageRequest::multicast(src, targets.clone(), len as usize)
                    };
                    let node = src.index();
                    let (_, flits) = grid_expand_into(
                        &req,
                        &branches,
                        message,
                        &mut self.ids,
                        now,
                        &mut self.packets,
                        &mut self.inject_q[node],
                    );
                    self.inject_backlog += flits;
                    self.mark_node(node);
                    self.metrics.note_retransmission();
                    if self.probe.trace_on() {
                        self.probe.trace(
                            FlitEventKind::Retry,
                            now,
                            message.0,
                            class,
                            node as u32,
                            targets.len() as u32,
                        );
                    }
                }
                RecoveryAction::Exhaust { message, src, class, lost } => {
                    if lost > 0 {
                        self.metrics.record_lost_receivers(message, lost);
                    }
                    if self.probe.trace_on() {
                        self.probe.trace(
                            FlitEventKind::Expire,
                            now,
                            message.0,
                            class,
                            src.index() as u32,
                            lost as u32,
                        );
                    }
                }
            }
        }
        self.retry_targets = targets;
        self.branch_buf = branches;
    }

    /// Receivers a packet dropped at `node` would still have served: replay
    /// the remaining dimension-ordered route on a meta copy, counting marked
    /// transit copies and the branch terminal. Cold path — runs once per
    /// dropped packet.
    fn receivers_beyond(&self, node: usize, src: Src, meta: &PacketMeta) -> usize {
        // Replay against the packet's bitstring through a read-only offset
        // (`bit_at`) rather than shifting a meta copy: a slab-backed
        // bitstring is shared with the live packet and must not be mutated.
        let bits = meta.bitstring;
        // Fresh local headers are not advanced before their first hop (bit 0
        // of an injected multicast header refers to the node one hop out);
        // net-sourced headers advance at every forward.
        let mut advance = matches!(src, Src::Net { .. });
        let mut shift = 0usize;
        let mut cur = NodeId::new(node);
        let mut count = 0usize;
        loop {
            let out = self.topo.route(cur, meta.dst);
            debug_assert!(!matches!(out, TorusOut::Eject), "ejections are never dropped");
            if advance {
                shift += 1;
            }
            advance = true;
            cur = self.topo.link_target(cur, out).expect("torus link");
            if matches!(self.topo.route(cur, meta.dst), TorusOut::Eject) {
                // The branch terminal delivers through the ejection port.
                return count + 1;
            }
            if meta.class == TrafficClass::Multicast && self.packets.bits().bit_at(bits, shift) {
                count += 1;
            }
        }
    }

    /// Deliver the flit arriving on link `lid` this cycle (if any).
    #[inline]
    fn arrive_link(&mut self, lid: usize, slot_index: usize) {
        if let Some(tf) = self.links.arrive(lid, slot_index) {
            let (to, tin) = self.targets[lid];
            let lane = (to as usize * 4 + tin as usize) * self.cfg.vcs + tf.vc.index();
            self.in_buf.push(lane, tf.flit);
            self.link_occupancy -= 1;
            self.buffered_flits += 1;
            self.mark_node(to as usize);
        }
    }

    /// Poll one source and expand its messages (collectives ride the
    /// dimension-ordered tree) into the local queue.
    fn poll_node<W: Workload + ?Sized>(
        &mut self,
        workload: &mut W,
        node: usize,
        now: Cycle,
        reqs: &mut Vec<MessageRequest>,
        branches: &mut Vec<GridBranch>,
    ) {
        let n = self.topo.num_nodes();
        reqs.clear();
        workload.poll_into(NodeId::new(node), now, reqs);
        for req in reqs.drain(..) {
            // Collectives expand into the dimension-ordered tree: one
            // path-based multicast packet per (column, y direction).
            match req.class {
                TrafficClass::Unicast => branches.clear(),
                TrafficClass::Broadcast => self.topo.multicast_branches_into(
                    req.src,
                    (0..n).map(NodeId::new),
                    self.packets.bits_mut(),
                    branches,
                ),
                TrafficClass::Multicast => self.topo.multicast_branches_into(
                    req.src,
                    req.targets.iter().copied(),
                    self.packets.bits_mut(),
                    branches,
                ),
                other => panic!("applications do not inject {other} packets directly"),
            }
            let message = self.metrics.create_message(req.class, now);
            let (expected, flits) = grid_expand_into(
                &req,
                branches,
                message,
                &mut self.ids,
                now,
                &mut self.packets,
                &mut self.inject_q[node],
            );
            self.metrics.set_expected(message, expected);
            if self.recovery.enabled() {
                self.recovery.on_send(message, &req, now, expected);
            }
            self.probe.trace(
                FlitEventKind::Inject,
                now,
                message.0,
                req.class,
                node as u32,
                expected as u32,
            );
            self.inject_backlog += flits;
            self.mark_node(node);
        }
    }

    /// Advance one cycle (monomorphized; see `QuarcNetwork::step_cycle`).
    pub fn step_cycle<W: Workload + ?Sized>(&mut self, workload: &mut W) {
        let now = self.clock.now();
        let n = self.topo.num_nodes();
        let mut mark = if self.probe.begin_profiled_cycle(now) {
            Some(std::time::Instant::now())
        } else {
            None
        };
        let arrivals_walked = if mark.is_some() {
            if self.full_scan {
                n * 4
            } else {
                self.live_links.len()
            }
        } else {
            0
        };

        // (a) Link arrivals — only links carrying flits.
        let slot = self.links.slot_index(now);
        if self.full_scan {
            for lid in 0..n * 4 {
                self.arrive_link(lid, slot);
            }
            let mut live = std::mem::take(&mut self.live_links);
            for &lid in &live {
                self.link_live[lid as usize] = false;
            }
            live.clear();
            self.live_links = live;
        } else {
            let mut live = std::mem::take(&mut self.live_links);
            live.retain(|&lid| {
                self.arrive_link(lid as usize, slot);
                let still = !self.links.is_empty(lid as usize);
                if !still {
                    self.link_live[lid as usize] = false;
                }
                still
            });
            self.live_links = live;
        }
        if let Some(m) = mark.as_mut() {
            self.probe.phase_lap(Phase::Arrivals, m, arrivals_walked);
        }

        // (b) New messages from due sources.
        let mut polled = 0usize;
        let mut reqs = std::mem::take(&mut self.poll_buf);
        let mut branches = std::mem::take(&mut self.branch_buf);
        if self.full_scan {
            polled = n;
            for node in 0..n {
                self.poll_node(workload, node, now, &mut reqs, &mut branches);
            }
        } else {
            while self.poll_heap.peek().is_some_and(|&Reverse((due, _))| due <= now) {
                let Reverse((due, node)) = self.poll_heap.pop().expect("peeked");
                debug_assert!(due == now, "due cycles never pass unpolled");
                polled += 1;
                self.poll_node(workload, node as usize, now, &mut reqs, &mut branches);
                let next = workload.next_due(NodeId::new(node as usize), now).max(now + 1);
                self.poll_heap.push(Reverse((next, node)));
            }
        }
        self.poll_buf = reqs;
        self.branch_buf = branches;
        // Recovery deadlines: retransmissions and write-offs join phase (b)
        // alongside fresh traffic.
        if self.recovery.enabled() {
            self.pump_recovery(now);
        }
        if let Some(m) = mark.as_mut() {
            self.probe.phase_lap(Phase::Polls, m, polled);
        }

        // Faulted links flip feasibility by time, not via a tracked event
        // (a header waiting at a link when `onset` arrives becomes
        // droppable in place): keep their source routers in the active set.
        if self.fault.any() {
            for i in 0..self.fault.watch_nodes().len() {
                let node = self.fault.watch_nodes()[i] as usize;
                self.mark_node(node);
            }
        }

        // (c) Arbitration over the sorted routers-with-work worklist,
        // (d) commit.
        let mut transfers = std::mem::take(&mut self.transfers);
        transfers.clear();
        let gather_walked;
        if self.full_scan {
            let mut marks = std::mem::take(&mut self.active_nodes);
            for &node in &marks {
                self.node_active[node as usize] = false;
            }
            marks.clear();
            self.active_nodes = marks;
            gather_walked = n;
            for node in 0..n {
                self.gather_node(node, &mut transfers);
            }
        } else {
            let mut worklist = std::mem::take(&mut self.node_worklist);
            debug_assert!(worklist.is_empty());
            std::mem::swap(&mut worklist, &mut self.active_nodes);
            worklist.sort_unstable();
            gather_walked = worklist.len();
            for &node in &worklist {
                self.node_active[node as usize] = false;
                self.gather_node(node as usize, &mut transfers);
            }
            worklist.clear();
            self.node_worklist = worklist;
        }
        if let Some(m) = mark.as_mut() {
            self.probe.phase_lap(Phase::Gather, m, gather_walked);
        }
        let committed = transfers.len();
        for t in transfers.drain(..) {
            self.commit(t);
        }
        self.transfers = transfers;
        if let Some(m) = mark.as_mut() {
            self.probe.phase_lap(Phase::Commit, m, committed);
        }
        if self.probe.counters_due(now) {
            let sample = CounterSample {
                cycle: now,
                backlog: self.inject_backlog as u64,
                buffered: self.buffered_flits,
                on_links: self.link_occupancy,
                live_packets: self.packets.live() as u64,
                live_links: self.live_links.len() as u64,
                active_routers: self.active_nodes.len() as u64,
                poll_sources: self.poll_heap.len() as u64,
                in_flight: self.metrics.in_flight() as u64,
                completed: self.metrics.completed_total(),
                delivered: self.metrics.flits_delivered(),
                dropped: self.metrics.flits_dropped(),
                credit_stalls: self.probe.credit_stalls(),
            };
            self.probe.push_sample(sample);
        }
        self.clock.tick();
    }

    /// Total flits queued at sources. O(1).
    pub fn backlog(&self) -> usize {
        self.inject_backlog
    }
}

impl NocSim for TorusNetwork {
    fn step(&mut self, workload: &mut dyn Workload) {
        self.step_cycle(workload);
    }

    fn note_workload_change(&mut self) {
        let now = self.clock.now();
        self.poll_heap.clear();
        for node in 0..self.topo.num_nodes() as u32 {
            self.poll_heap.push(Reverse((now, node)));
        }
    }

    fn now(&self) -> Cycle {
        self.clock.now()
    }

    fn num_nodes(&self) -> usize {
        self.topo.num_nodes()
    }

    fn kind(&self) -> TopologyKind {
        TopologyKind::Torus
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    fn probe(&self) -> &SimProbe {
        &self.probe
    }

    fn probe_mut(&mut self) -> &mut SimProbe {
        &mut self.probe
    }

    fn source_backlog(&self) -> usize {
        self.backlog()
    }

    fn flit_hops(&self) -> u64 {
        self.flit_hops
    }

    fn quiesced(&self) -> bool {
        // Counters only — O(1) per call (drain loops poll this every cycle).
        // `pending() > 0` keeps drains alive while a backoff timer holds the
        // fabric idle: an empty network whose recovery window is not done is
        // not quiet — a deadline will still fire.
        self.metrics.in_flight() == 0
            && self.inject_backlog == 0
            && self.link_occupancy == 0
            && self.buffered_flits == 0
            && self.recovery.pending() == 0
    }

    fn recovery_pending(&self) -> u64 {
        self.recovery.pending()
    }

    fn stall_diagnostics(&self) -> StallDiagnostics {
        let vcs = self.cfg.vcs;
        let mut busiest: Vec<(u32, u32)> = (0..self.topo.num_nodes())
            .map(|node| {
                let mut flits = 0usize;
                for lane in node * 4 * vcs..(node + 1) * 4 * vcs {
                    flits += self.in_buf.len(lane);
                }
                flits += self.inject_q[node].flits();
                (node as u32, flits as u32)
            })
            .filter(|&(_, flits)| flits > 0)
            .collect();
        busiest.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        busiest.truncate(StallDiagnostics::TOP_ROUTERS);
        StallDiagnostics {
            backlog: self.inject_backlog as u64,
            buffered: self.buffered_flits,
            on_links: self.link_occupancy,
            in_flight: self.metrics.in_flight() as u64,
            live_packets: self.packets.live() as u64,
            fault: self.cfg.fault.to_string(),
            busiest_routers: busiest,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarc_workloads::{MessageRequest, TraceRecord, TraceWorkload};

    #[test]
    fn wraparound_route_is_short() {
        // 0 → 3 on a 4×4 torus: one x− wrap hop instead of three x+ hops.
        let mut net = TorusNetwork::new(NocConfig::torus(16));
        let mut wl = TraceWorkload::new(
            16,
            vec![TraceRecord {
                cycle: 0,
                request: MessageRequest::unicast(NodeId(0), NodeId(3), 8),
            }],
        );
        for _ in 0..100 {
            net.step(&mut wl);
            if net.quiesced() {
                break;
            }
        }
        assert!(net.quiesced());
        let got = net.metrics().unicast_latency().mean();
        let ideal = 1.0 + 7.0 + 1.0; // 1 hop + (M−1) serialisation + injection
        assert!((got - ideal).abs() <= 1.0, "latency {got} vs {ideal}");
    }

    #[test]
    fn all_pairs_deliver() {
        let mut records = Vec::new();
        for s in 0..16u32 {
            for t in 0..16u32 {
                if s != t {
                    records.push(TraceRecord {
                        cycle: (s as u64) * 50,
                        request: MessageRequest::unicast(NodeId(s), NodeId(t), 4),
                    });
                }
            }
        }
        let count = records.len() as u64;
        let mut net = TorusNetwork::new(NocConfig::torus(16));
        let mut wl = TraceWorkload::new(16, records);
        for _ in 0..10_000 {
            net.step(&mut wl);
            if net.quiesced() && wl.remaining() == 0 {
                break;
            }
        }
        assert!(net.quiesced(), "torus failed to drain");
        assert_eq!(net.metrics().completed(TrafficClass::Unicast), count);
    }

    #[test]
    fn sustained_load_no_deadlock() {
        use quarc_workloads::{Synthetic, SyntheticConfig};
        let mut net = TorusNetwork::new(NocConfig::torus(16).with_buffer_depth(2));
        let mut wl = Synthetic::new(16, SyntheticConfig::paper(0.1, 8, 0.0, 5));
        for _ in 0..5_000 {
            net.step(&mut wl);
        }
        let before = net.metrics().flits_delivered();
        for _ in 0..2_000 {
            net.step(&mut wl);
        }
        assert!(net.metrics().flits_delivered() > before, "deadlock on the torus");
    }

    #[test]
    fn broadcast_reaches_all_nodes_exactly_once() {
        for n in [9usize, 16] {
            let mut net = TorusNetwork::new(NocConfig::torus(n));
            let mut wl = TraceWorkload::new(
                n,
                vec![TraceRecord { cycle: 0, request: MessageRequest::broadcast(NodeId(2), 4) }],
            );
            for _ in 0..1_000 {
                net.step(&mut wl);
                if net.quiesced() {
                    break;
                }
            }
            assert!(net.quiesced(), "n={n}");
            let m = net.metrics();
            assert_eq!(m.completed(TrafficClass::Broadcast), 1, "n={n}");
            assert_eq!(m.flits_delivered() as usize, (n - 1) * 4, "n={n}");
        }
    }

    #[test]
    fn multicast_uses_wrap_links_and_delivers_exactly_once() {
        // Targets on the far side of both datelines: the tree must take the
        // wrap shortcuts and still deliver one copy each, in order (metrics
        // enforce both).
        let mut net = TorusNetwork::new(NocConfig::torus(16));
        let targets = vec![NodeId(3), NodeId(12), NodeId(15), NodeId(10)];
        let mut wl = TraceWorkload::new(
            16,
            vec![TraceRecord {
                cycle: 0,
                request: MessageRequest::multicast(NodeId(0), targets.clone(), 5),
            }],
        );
        for _ in 0..500 {
            net.step(&mut wl);
            if net.quiesced() {
                break;
            }
        }
        assert!(net.quiesced());
        let m = net.metrics();
        assert_eq!(m.completed(TrafficClass::Multicast), 1);
        assert_eq!(m.flits_delivered(), 4 * 5);
    }

    #[test]
    fn sustained_broadcast_load_drains_on_wrap_rings() {
        use quarc_workloads::{Synthetic, SyntheticConfig};
        // β > 0 with tight buffers: the dateline VCs must keep the wrap
        // rings deadlock-free even with multicast clones in the mix.
        let mut net = TorusNetwork::new(NocConfig::torus(16).with_buffer_depth(2));
        let mut wl = Synthetic::new(16, SyntheticConfig::paper(0.02, 8, 0.1, 11));
        for _ in 0..4_000 {
            net.step(&mut wl);
        }
        let mut none = TraceWorkload::new(16, vec![]);
        for _ in 0..20_000 {
            net.step(&mut none);
            if net.quiesced() {
                break;
            }
        }
        assert!(net.quiesced(), "torus failed to drain under β > 0");
        let m = net.metrics();
        assert_eq!(m.created(TrafficClass::Broadcast), m.completed(TrafficClass::Broadcast));
        assert!(m.created(TrafficClass::Broadcast) > 10);
    }

    #[test]
    fn torus_beats_mesh_on_mean_latency() {
        use crate::mesh_net::MeshNetwork;
        use quarc_workloads::{Synthetic, SyntheticConfig};
        let spec = crate::driver::RunSpec {
            warmup: 1_000,
            measure: 8_000,
            drain: 12_000,
            ..Default::default()
        };
        let mut torus = TorusNetwork::new(NocConfig::torus(16));
        let mut wl = Synthetic::new(16, SyntheticConfig::paper(0.02, 8, 0.0, 6));
        let rt = crate::driver::run(&mut torus, &mut wl, &spec);
        let mut mesh = MeshNetwork::new(NocConfig::mesh(16));
        let mut wl = Synthetic::new(16, SyntheticConfig::paper(0.02, 8, 0.0, 6));
        let rm = crate::driver::run(&mut mesh, &mut wl, &spec);
        assert!(
            rt.unicast_mean < rm.unicast_mean,
            "torus {:.1} should beat mesh {:.1} (shorter mean distance)",
            rt.unicast_mean,
            rm.unicast_mean
        );
    }

    #[test]
    fn full_scan_oracle_matches_active_set() {
        use quarc_workloads::{Synthetic, SyntheticConfig};
        let run = |full_scan: bool| {
            let mut net = TorusNetwork::new(NocConfig::torus(16));
            net.set_full_scan(full_scan);
            let mut wl = Synthetic::new(16, SyntheticConfig::paper(0.03, 8, 0.1, 12));
            for _ in 0..3_000 {
                net.step(&mut wl);
            }
            (
                net.metrics().flits_delivered(),
                net.flit_hops(),
                net.metrics().unicast_latency().mean().to_bits(),
                net.metrics().broadcast_completion_latency().mean().to_bits(),
            )
        };
        assert_eq!(run(false), run(true));
    }
}
