//! Physical links: single-flit-per-cycle pipelines, stored as one
//! structure-of-arrays bank per network.
//!
//! A link carries at most one flit per cycle (the two VCs multiplex the same
//! wires, §2.7) and delivers it `latency` cycles later. All links of a
//! network share one latency, so the whole network's pipelines live in a
//! single [`LinkBank`]: one contiguous slot slab (`link × latency`) plus one
//! occupancy counter per link. The slot that arrives at cycle `c` is simply
//! `c mod latency` — no per-link head pointer, no rotation of idle links —
//! and a send at cycle `c` lands in the slot just vacated, arriving
//! `latency` cycles later.
//!
//! The bank is built for **active-set stepping**: the occupancy counters let
//! the owning network keep a live-link worklist and touch only links that
//! actually carry flits. A link whose slots are all empty behaves
//! identically whether it is stepped or skipped, because its state is
//! position-independent (every slot `None`).

use quarc_core::flit::Flit;
use quarc_core::ids::VcId;
use quarc_engine::Cycle;

/// A flit in flight, tagged with the VC it will occupy downstream.
#[derive(Debug, Clone, Copy)]
pub struct TaggedFlit {
    /// The flit.
    pub flit: Flit,
    /// Downstream VC lane.
    pub vc: VcId,
}

/// All unidirectional links of one network, with a shared fixed latency ≥ 1.
#[derive(Debug, Clone)]
pub struct LinkBank {
    /// Pipeline slots, `latency` per link (`link * latency + slot`).
    slots: Box<[Option<TaggedFlit>]>,
    /// Occupied slots per link (counter twin of scanning the slab).
    occupied: Box<[u32]>,
    latency: usize,
}

impl LinkBank {
    /// A bank of `links` links delivering after `latency` cycles.
    pub fn new(links: usize, latency: u64) -> Self {
        assert!(latency >= 1);
        let latency = latency as usize;
        LinkBank {
            slots: vec![None; links * latency].into_boxed_slice(),
            occupied: vec![0; links].into_boxed_slice(),
            latency,
        }
    }

    /// The slab index arriving (and being refilled) at cycle `now`. Compute
    /// once per cycle and pass to [`LinkBank::arrive`] / [`LinkBank::send`].
    #[inline]
    pub fn slot_index(&self, now: Cycle) -> usize {
        if self.latency == 1 {
            0
        } else {
            (now % self.latency as u64) as usize
        }
    }

    /// Take the flit arriving on `link` this cycle, if any. Call at most
    /// once per link per cycle, before any [`LinkBank::send`] to that link.
    #[inline]
    pub fn arrive(&mut self, link: usize, slot_index: usize) -> Option<TaggedFlit> {
        let taken = self.slots[link * self.latency + slot_index].take();
        if taken.is_some() {
            self.occupied[link] -= 1;
        }
        taken
    }

    /// Place a flit onto `link`; it arrives `latency` cycles later. Panics if
    /// the link already accepted a flit this cycle (a simulator bug — every
    /// physical link carries one flit per cycle).
    #[inline]
    pub fn send(&mut self, link: usize, slot_index: usize, tf: TaggedFlit) {
        let slot = &mut self.slots[link * self.latency + slot_index];
        assert!(slot.is_none(), "link already carries a flit this cycle");
        self.occupied[link] += 1;
        *slot = Some(tf);
    }

    /// Whether `link` is completely empty. O(1).
    #[inline]
    pub fn is_empty(&self, link: usize) -> bool {
        self.occupied[link] == 0
    }

    /// Number of links in the bank.
    #[allow(clippy::len_without_is_empty)] // per-link `is_empty(link)` is the meaningful query
    #[inline]
    pub fn len(&self) -> usize {
        self.occupied.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarc_core::flit::{FlitKind, PacketRef};

    fn tf(seq: u32, vc: VcId) -> TaggedFlit {
        TaggedFlit {
            flit: Flit { packet: PacketRef(0), seq, kind: FlitKind::Body, payload: 0 },
            vc,
        }
    }

    /// Drive one cycle for `bank`: arrivals on every link, then the sends.
    fn cycle(bank: &mut LinkBank, now: Cycle, sends: &[(usize, TaggedFlit)]) -> Vec<(usize, u32)> {
        let idx = bank.slot_index(now);
        let mut arrived = Vec::new();
        for link in 0..bank.len() {
            if let Some(a) = bank.arrive(link, idx) {
                arrived.push((link, a.flit.seq));
            }
        }
        for (link, t) in sends {
            bank.send(*link, idx, *t);
        }
        arrived
    }

    #[test]
    fn latency_one_delivers_next_cycle() {
        let mut b = LinkBank::new(2, 1);
        assert!(cycle(&mut b, 0, &[(0, tf(1, VcId::VC0))]).is_empty());
        assert!(!b.is_empty(0));
        assert!(b.is_empty(1));
        assert_eq!(cycle(&mut b, 1, &[]), vec![(0, 1)]);
        assert!(b.is_empty(0));
    }

    #[test]
    fn latency_three_delays_three_cycles() {
        let mut b = LinkBank::new(1, 3);
        cycle(&mut b, 0, &[(0, tf(9, VcId::VC1))]);
        assert!(cycle(&mut b, 1, &[]).is_empty());
        assert!(cycle(&mut b, 2, &[]).is_empty());
        assert_eq!(cycle(&mut b, 3, &[]), vec![(0, 9)]);
    }

    #[test]
    #[should_panic(expected = "already carries")]
    fn double_send_panics() {
        let mut b = LinkBank::new(1, 1);
        let idx = b.slot_index(0);
        b.send(0, idx, tf(1, VcId::VC0));
        b.send(0, idx, tf(2, VcId::VC1));
    }

    #[test]
    fn occupancy_counter_matches_slot_scan() {
        let mut b = LinkBank::new(1, 3);
        for now in 0..20u64 {
            let sends: Vec<(usize, TaggedFlit)> = if now % 3 != 2 {
                vec![(0, tf(now as u32, if now % 2 == 0 { VcId::VC0 } else { VcId::VC1 }))]
            } else {
                vec![]
            };
            cycle(&mut b, now, &sends);
            let scanned = b.slots.iter().flatten().count() as u32;
            assert_eq!(b.occupied[0], scanned, "cycle {now}");
            assert_eq!(b.is_empty(0), scanned == 0);
        }
    }

    #[test]
    fn pipelining_back_to_back() {
        let mut b = LinkBank::new(1, 2);
        let mut received = Vec::new();
        for now in 0..10u64 {
            let sends: Vec<(usize, TaggedFlit)> =
                if now < 5 { vec![(0, tf(now as u32, VcId::VC0))] } else { vec![] };
            for (_, seq) in cycle(&mut b, now, &sends) {
                received.push(seq);
            }
        }
        assert_eq!(received, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn skipped_empty_link_is_position_independent() {
        // A link left untouched for a while behaves exactly as if it had
        // been stepped every cycle — the active-set invariant.
        let mut b = LinkBank::new(1, 3);
        // Skip cycles 0..7 entirely (empty link, nothing to do).
        let idx = b.slot_index(7);
        b.send(0, idx, tf(42, VcId::VC0));
        assert!(b.arrive(0, b.slot_index(8)).is_none());
        assert!(b.arrive(0, b.slot_index(9)).is_none());
        assert_eq!(b.arrive(0, b.slot_index(10)).unwrap().flit.seq, 42);
    }
}
