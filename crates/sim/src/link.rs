//! Physical links: single-flit-per-cycle pipelines.
//!
//! A link carries at most one flit per cycle (the two VCs multiplex the same
//! wires, §2.7) and delivers it `latency` cycles later. The occupancy query
//! lets the sender account for flits that are in flight but not yet buffered
//! downstream, which keeps the credit arithmetic exact for any latency.
//!
//! Occupancy is tracked by per-VC counters maintained in `send`/`step`, so
//! the credit check [`Link::in_flight`] — issued for every head flit of every
//! lane, every cycle — is O(1) instead of a scan over all latency slots.

use quarc_core::config::MAX_VCS;
use quarc_core::flit::Flit;
use quarc_core::ids::VcId;

/// A flit in flight, tagged with the VC it will occupy downstream.
#[derive(Debug, Clone, Copy)]
pub struct TaggedFlit {
    /// The flit.
    pub flit: Flit,
    /// Downstream VC lane.
    pub vc: VcId,
}

/// A unidirectional link with fixed latency ≥ 1.
///
/// The pipeline is a fixed ring buffer: `head` is the slot that arrives
/// next, and a send lands `latency − 1` slots behind it. Rotating an empty
/// pipeline is the identity, so `step` on an idle link is a single branch —
/// the common case, since every network steps all `O(n)` links every cycle.
#[derive(Debug, Clone)]
pub struct Link {
    slots: Box<[Option<TaggedFlit>]>,
    /// Index of the slot that arrives on the next `step`.
    head: usize,
    /// In-flight flits per downstream VC (counter-maintained; invariantly
    /// equals the matching scan over `slots`).
    per_vc: [u32; MAX_VCS],
    /// Total occupied slots.
    occupied: u32,
}

impl Link {
    /// A link delivering after `latency` cycles.
    pub fn new(latency: u64) -> Self {
        assert!(latency >= 1);
        Link {
            slots: (0..latency).map(|_| None).collect(),
            head: 0,
            per_vc: [0; MAX_VCS],
            occupied: 0,
        }
    }

    /// Advance one cycle: the oldest slot arrives (if occupied) and a fresh
    /// empty slot opens at the tail. Call once per cycle *before* `send`.
    #[inline]
    pub fn step(&mut self) -> Option<TaggedFlit> {
        if self.occupied == 0 {
            // All slots are empty; skipping the rotation preserves every
            // relative position.
            return None;
        }
        let arrived = self.slots[self.head].take();
        self.head = (self.head + 1) % self.slots.len();
        if let Some(tf) = &arrived {
            self.per_vc[tf.vc.index()] -= 1;
            self.occupied -= 1;
        }
        arrived
    }

    /// Place a flit into the newest slot. Panics if the slot is already in
    /// use (more than one send per cycle is a simulator bug).
    #[inline]
    pub fn send(&mut self, tf: TaggedFlit) {
        let latency = self.slots.len();
        let tail = &mut self.slots[(self.head + latency - 1) % latency];
        assert!(tail.is_none(), "link already carries a flit this cycle");
        self.per_vc[tf.vc.index()] += 1;
        self.occupied += 1;
        *tail = Some(tf);
    }

    /// Number of in-flight flits destined for VC `vc` downstream. O(1).
    #[inline]
    pub fn in_flight(&self, vc: VcId) -> usize {
        self.per_vc[vc.index()] as usize
    }

    /// Whether the link is completely empty. O(1).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.occupied == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarc_core::flit::{FlitKind, PacketRef};

    fn tf(seq: u32, vc: VcId) -> TaggedFlit {
        TaggedFlit {
            flit: Flit { packet: PacketRef(0), seq, kind: FlitKind::Body, payload: 0 },
            vc,
        }
    }

    #[test]
    fn latency_one_delivers_next_cycle() {
        let mut l = Link::new(1);
        assert!(l.step().is_none());
        l.send(tf(1, VcId::VC0));
        assert_eq!(l.in_flight(VcId::VC0), 1);
        assert_eq!(l.in_flight(VcId::VC1), 0);
        let arrived = l.step().unwrap();
        assert_eq!(arrived.flit.seq, 1);
        assert!(l.is_empty());
    }

    #[test]
    fn latency_three_delays_three_cycles() {
        let mut l = Link::new(3);
        l.step();
        l.send(tf(9, VcId::VC1));
        assert!(l.step().is_none());
        assert!(l.step().is_none());
        assert_eq!(l.step().unwrap().flit.seq, 9);
    }

    #[test]
    #[should_panic(expected = "already carries")]
    fn double_send_panics() {
        let mut l = Link::new(1);
        l.step();
        l.send(tf(1, VcId::VC0));
        l.send(tf(2, VcId::VC1));
    }

    #[test]
    fn counters_match_slot_scan_under_mixed_traffic() {
        // The O(1) counters must agree with a slot scan at every cycle.
        let mut l = Link::new(3);
        for cycle in 0..20u32 {
            l.step();
            if cycle % 3 != 2 {
                l.send(tf(cycle, if cycle % 2 == 0 { VcId::VC0 } else { VcId::VC1 }));
            }
            for vc in [VcId::VC0, VcId::VC1] {
                let scanned = l.slots.iter().flatten().filter(|t| t.vc == vc).count();
                assert_eq!(l.in_flight(vc), scanned, "cycle {cycle} {vc}");
            }
            assert_eq!(l.is_empty(), l.slots.iter().all(Option::is_none));
        }
    }

    #[test]
    fn pipelining_back_to_back() {
        let mut l = Link::new(2);
        let mut received = Vec::new();
        for cycle in 0..10u32 {
            if let Some(a) = l.step() {
                received.push(a.flit.seq);
            }
            if cycle < 5 {
                l.send(tf(cycle, VcId::VC0));
            }
        }
        assert_eq!(received, vec![0, 1, 2, 3, 4]);
    }
}
