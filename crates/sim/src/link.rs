//! Physical links: single-flit-per-cycle pipelines.
//!
//! A link carries at most one flit per cycle (the two VCs multiplex the same
//! wires, §2.7) and delivers it `latency` cycles later. The occupancy query
//! lets the sender account for flits that are in flight but not yet buffered
//! downstream, which keeps the credit arithmetic exact for any latency.

use quarc_core::flit::Flit;
use quarc_core::ids::VcId;
use std::collections::VecDeque;

/// A flit in flight, tagged with the VC it will occupy downstream.
#[derive(Debug, Clone, Copy)]
pub struct TaggedFlit {
    /// The flit.
    pub flit: Flit,
    /// Downstream VC lane.
    pub vc: VcId,
}

/// A unidirectional link with fixed latency ≥ 1.
#[derive(Debug, Clone)]
pub struct Link {
    slots: VecDeque<Option<TaggedFlit>>,
}

impl Link {
    /// A link delivering after `latency` cycles.
    pub fn new(latency: u64) -> Self {
        assert!(latency >= 1);
        Link { slots: (0..latency).map(|_| None).collect() }
    }

    /// Advance one cycle: the oldest slot arrives (if occupied) and a fresh
    /// empty slot opens at the tail. Call once per cycle *before* `send`.
    pub fn step(&mut self) -> Option<TaggedFlit> {
        let arrived = self.slots.pop_front().expect("latency >= 1");
        self.slots.push_back(None);
        arrived
    }

    /// Place a flit into the newest slot. Panics if the slot is already in
    /// use (more than one send per cycle is a simulator bug).
    pub fn send(&mut self, tf: TaggedFlit) {
        let tail = self.slots.back_mut().expect("latency >= 1");
        assert!(tail.is_none(), "link already carries a flit this cycle");
        *tail = Some(tf);
    }

    /// Number of in-flight flits destined for VC `vc` downstream.
    pub fn in_flight(&self, vc: VcId) -> usize {
        self.slots.iter().flatten().filter(|tf| tf.vc == vc).count()
    }

    /// Whether the link is completely empty.
    pub fn is_empty(&self) -> bool {
        self.slots.iter().all(Option::is_none)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quarc_core::flit::{FlitKind, PacketMeta, TrafficClass};
    use quarc_core::ids::{MessageId, NodeId, PacketId};
    use quarc_core::ring::RingDir;

    fn tf(seq: u32, vc: VcId) -> TaggedFlit {
        TaggedFlit {
            flit: Flit {
                meta: PacketMeta {
                    message: MessageId(0),
                    packet: PacketId(0),
                    class: TrafficClass::Unicast,
                    src: NodeId(0),
                    dst: NodeId(1),
                    bitstring: 0,
                    dir: RingDir::Cw,
                    len: 4,
                    created_at: 0,
                },
                seq,
                kind: FlitKind::Body,
                payload: 0,
            },
            vc,
        }
    }

    #[test]
    fn latency_one_delivers_next_cycle() {
        let mut l = Link::new(1);
        assert!(l.step().is_none());
        l.send(tf(1, VcId::VC0));
        assert_eq!(l.in_flight(VcId::VC0), 1);
        assert_eq!(l.in_flight(VcId::VC1), 0);
        let arrived = l.step().unwrap();
        assert_eq!(arrived.flit.seq, 1);
        assert!(l.is_empty());
    }

    #[test]
    fn latency_three_delays_three_cycles() {
        let mut l = Link::new(3);
        l.step();
        l.send(tf(9, VcId::VC1));
        assert!(l.step().is_none());
        assert!(l.step().is_none());
        assert_eq!(l.step().unwrap().flit.seq, 9);
    }

    #[test]
    #[should_panic(expected = "already carries")]
    fn double_send_panics() {
        let mut l = Link::new(1);
        l.step();
        l.send(tf(1, VcId::VC0));
        l.send(tf(2, VcId::VC1));
    }

    #[test]
    fn pipelining_back_to_back() {
        let mut l = Link::new(2);
        let mut received = Vec::new();
        for cycle in 0..10u32 {
            if let Some(a) = l.step() {
                received.push(a.flit.seq);
            }
            if cycle < 5 {
                l.send(tf(cycle, VcId::VC0));
            }
        }
        assert_eq!(received, vec![0, 1, 2, 3, 4]);
    }
}
